//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the (small) API subset the workspace actually uses:
//! [`Rng`], [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom`]. The generator is xoshiro256** seeded through
//! SplitMix64 — deterministic, fast, and of ample statistical quality for
//! Monte Carlo sampling. Streams differ from upstream `rand`'s `StdRng`
//! (ChaCha12), which only matters to tests pinning exact values; all
//! in-tree consumers pin *their own* streams via `seed_from_u64`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Samples a value of type `T` from its standard distribution
    /// (uniform `[0, 1)` for floats, uniform over all values for
    /// integers, fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must lie in [0, 1]");
        f64::from_rng(self) < p
    }

    /// Samples from an explicit distribution (mirrors
    /// `rand::Rng::sample`).
    fn sample<T, D: SampleFrom<T>>(&mut self, distr: D) -> T {
        distr.sample_from_rng(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Distribution-like values usable with [`Rng::sample`].
pub trait SampleFrom<T> {
    /// Draws one value from the distribution.
    fn sample_from_rng<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Types sampleable from their "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform sampler over an interval. The single generic
/// [`SampleRange`] impl below relates a range's element type to
/// `gen_range`'s output type, which is what lets integer-literal ranges
/// infer their type from how the result is used (as upstream rand does).
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let unit = f64::from_rng(rng) as $t;
                lo + (hi - lo) * unit
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                Self::sample_half_open(rng, lo, hi)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256**
    /// seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices (`shuffle`, `choose`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&y));
            let z = rng.gen_range(1u8..=5);
            assert!((1..=5).contains(&z));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            lo |= u < 0.1;
            hi |= u > 0.9;
        }
        assert!(lo && hi, "samples should cover the unit interval");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_returns_members() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [10, 20, 30];
        for _ in 0..20 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
