//! Offline stand-in for `serde`.
//!
//! Instead of serde's zero-copy visitor architecture, this vendored crate
//! uses a simple *value tree* model: [`Serialize`] renders any value into
//! a [`Value`], and [`Deserialize`] rebuilds a value from one. The
//! companion `serde_json` stub converts between [`Value`] and JSON text.
//! The derive macros (re-exported from `serde_derive`) cover the shapes
//! this workspace uses: structs with named fields and enums with unit or
//! struct variants, externally tagged exactly like upstream serde.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like number: integer representations are preserved exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// The number as an `f64` (lossy for huge integers).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// The number as a `u64`, if exactly representable.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(_) => None,
            Number::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// The number as an `i64`, if exactly representable.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(v)
                if v.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&v) =>
            {
                Some(v as i64)
            }
            Number::Float(_) => None,
        }
    }
}

/// An in-memory serialized value (the serde data model, materialized).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array's items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

macro_rules! impl_value_from {
    ($($t:ty => $variant:expr),* $(,)?) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                $variant(v)
            }
        }
    )*};
}

impl_value_from! {
    bool => Value::Bool,
    String => Value::String,
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_owned())
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Number(Number::PosInt(v))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        if v >= 0 {
            Value::Number(Number::PosInt(v as u64))
        } else {
            Value::Number(Number::NegInt(v))
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::from(i64::from(v))
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::from(u64::from(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::from(v as u64)
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from any message.
    pub fn msg(m: impl Into<String>) -> Self {
        Self(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Renders a value into the serialized [`Value`] tree.
pub trait Serialize {
    /// Serializes `self`.
    fn serialize(&self) -> Value;
}

/// Rebuilds a value from a serialized [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from `value`.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] describing the first mismatch between the
    /// value tree and the expected shape.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::msg(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => n
                        .as_u64()
                        .and_then(|v| <$t>::try_from(v).ok())
                        .ok_or_else(|| Error::msg(concat!("number out of range for ", stringify!($t)))),
                    other => Err(Error::msg(format!(
                        concat!("expected ", stringify!($t), ", found {}"),
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::from(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|v| <$t>::try_from(v).ok())
                        .ok_or_else(|| Error::msg(concat!("number out of range for ", stringify!($t)))),
                    other => Err(Error::msg(format!(
                        concat!("expected ", stringify!($t), ", found {}"),
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Number(n) => Ok(n.as_f64()),
            other => Err(Error::msg(format!("expected f64, found {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        f64::deserialize(value).map(|v| v as f32)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::msg(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::deserialize(value)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::msg(format!("expected array of length {N}, found {len}")))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
            }
            other => Err(Error::msg(format!(
                "expected 2-element array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Array(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn serialize(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::deserialize(&7u32.serialize()).unwrap(), 7);
        assert_eq!(i64::deserialize(&(-3i64).serialize()).unwrap(), -3);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert_eq!(
            String::deserialize(&"hi".serialize()).unwrap(),
            "hi".to_owned()
        );
        assert_eq!(Option::<f64>::deserialize(&Value::Null).unwrap(), None);
        assert_eq!(
            Vec::<u8>::deserialize(&vec![1u8, 2, 3].serialize()).unwrap(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn mismatches_error_cleanly() {
        assert!(bool::deserialize(&Value::Null).is_err());
        assert!(u8::deserialize(&300u32.serialize()).is_err());
        assert!(Vec::<f64>::deserialize(&Value::Bool(true)).is_err());
    }

    #[test]
    fn object_lookup_preserves_order() {
        let v = Value::Object(vec![
            ("b".into(), Value::Bool(true)),
            ("a".into(), Value::Null),
        ]);
        assert_eq!(v.get("b"), Some(&Value::Bool(true)));
        assert_eq!(v.as_object().unwrap()[0].0, "b");
        assert!(v.get("missing").is_none());
    }
}
