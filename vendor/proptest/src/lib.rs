//! Offline stand-in for `proptest`: a miniature property-testing harness
//! covering the API subset this workspace uses — the [`proptest!`] macro,
//! range and tuple strategies, `prop::collection::vec`, `prop_map`, and
//! the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream: no shrinking (failures report the raw
//! failing input), and case generation is seeded deterministically from
//! the test's module path, so failures reproduce across runs.

#![forbid(unsafe_code)]

/// Test-runner configuration and error plumbing used by the macros.
pub mod test_runner {
    pub use rand::rngs::StdRng as TestRng;
    use rand::SeedableRng;

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Outcome of one generated case, produced by the `prop_*` macros.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case did not meet a `prop_assume!` precondition.
        Reject,
        /// The property failed with the given message.
        Fail(String),
    }

    /// Deterministic per-test seed from the fully qualified test name.
    pub fn seed_for(name: &str) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }

    /// RNG for one case of one property.
    pub fn case_rng(seed: u64, case: u32) -> TestRng {
        TestRng::seed_from_u64(seed ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of an associated type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests. Accepts an optional
/// `#![proptest_config(...)]` header followed by `#[test] fn` items whose
/// parameters are drawn from strategies via `pattern in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @config($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @config($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@config($config:expr) $(
        $(#[$meta:meta])+
        fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let __seed = $crate::test_runner::seed_for(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::case_rng(__seed, __case);
                let __input = ($(
                    $crate::strategy::Strategy::generate(&($strat), &mut __rng),
                )*);
                let __description = format!("{:?}", __input);
                let ($($pat,)*) = __input;
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        __message,
                    )) => {
                        panic!(
                            "property {} failed at case {}/{}: {}\ninput: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __message,
                            __description
                        );
                    }
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property, failing the case (not the
/// whole process) so the harness can report the generated input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let __l = $left;
        let __r = $right;
        if __l != __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{:?} != {:?}", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if __l != __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Rejects cases that do not meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 1usize..10, y in 0.0f64..1.0) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y), "y was {y}");
        }

        #[test]
        fn vec_lengths_respect_the_size_range(
            v in prop::collection::vec(0u8..=255, 3..7)
        ) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn prop_map_applies_the_function(n in (1usize..5).prop_map(|n| n * 2)) {
            prop_assert_eq!(n % 2, 0);
            prop_assert!((2..10).contains(&n));
        }

        #[test]
        fn assume_rejects_without_failing(parts in 0usize..10) {
            prop_assume!(parts > 0);
            prop_assert!(parts >= 1);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0.0f64..1.0, 5..=5);
        let seed = crate::test_runner::seed_for("determinism");
        let a = strat.generate(&mut crate::test_runner::case_rng(seed, 3));
        let b = strat.generate(&mut crate::test_runner::case_rng(seed, 3));
        assert_eq!(a, b);
    }
}
