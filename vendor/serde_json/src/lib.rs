//! Offline stand-in for `serde_json`: JSON text ⇄ the vendored
//! [`serde::Value`] tree, plus a [`json!`] macro subset (object/array/
//! literal syntax with expression interpolation).

#![forbid(unsafe_code)]

pub use serde::{Error, Number, Value};

use serde::{Deserialize, Serialize};

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Never fails for the value-tree model; the `Result` mirrors the real
/// `serde_json` signature so call sites can `?`/`unwrap` identically.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails; see [`to_string`].
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::deserialize(&value)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) if v.is_finite() => {
            // `{}` on f64 is the shortest string that round-trips, but it
            // drops the float marker for integral values ("1", "-0"),
            // which would re-parse as integers — losing the sign of -0.0
            // and the Float kind. Keep a `.0` suffix so every finite f64
            // re-parses as a bit-identical `Number::Float`, making
            // serialize → parse → serialize byte-stable (checkpoint
            // digests depend on this).
            let s = format!("{v}");
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        // JSON has no Inf/NaN; mirror serde_json's lossy `null`.
        Number::Float(_) => out.push_str("null"),
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    let (nl, pad, pad_close, colon) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * (depth + 1)),
            " ".repeat(w * depth),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_value(out, item, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_escaped(out, k);
                out.push_str(colon);
                write_value(out, v, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(Error::msg("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::msg("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error::msg("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error::msg("non-utf8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // workspace; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume the full UTF-8 sequence starting at c.
                    let start = self.pos - 1;
                    let width = utf8_width(c);
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(Error::msg("truncated utf-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::msg("invalid utf-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::Float(v)))
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Builds a [`Value`] from JSON-like syntax: objects, arrays, `null`,
/// and Rust expressions for scalars.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($item) ),* ])
    };
    ({ $($key:literal : $val:tt),* $(,)? }) => {
        $crate::Value::Object(vec![ $( ($key.to_string(), $crate::json!($val)) ),* ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = json!({
            "name": "fair-co2",
            "ok": true,
            "count": 3u64,
            "ratio": 0.25,
            "tags": ["a", "b"],
            "missing": null
        });
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v, "text was {text}");
        }
    }

    #[test]
    fn pretty_output_uses_spaced_colons() {
        let text = to_string_pretty(&json!({"ok": true})).unwrap();
        assert!(text.contains("\"ok\": true"), "{text}");
    }

    #[test]
    fn escapes_and_parses_special_characters() {
        let v = Value::String("line\nbreak \"quoted\" \\slash".into());
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn numbers_preserve_integerness() {
        let back: Value = from_str("[1, -2, 3.5, 1e3]").unwrap();
        assert_eq!(
            back,
            Value::Array(vec![
                Value::Number(Number::PosInt(1)),
                Value::Number(Number::NegInt(-2)),
                Value::Number(Number::Float(3.5)),
                Value::Number(Number::Float(1000.0)),
            ])
        );
    }

    #[test]
    fn negative_zero_keeps_its_sign() {
        // `{}` formats -0.0 as "-0"; without the float marker the parser
        // used to classify it as an integer and fold it to +0 — a silent
        // sign flip inside Welford means serialized through checkpoints.
        let text = to_string(&Value::Number(Number::Float(-0.0))).unwrap();
        assert_eq!(text, "-0.0");
        let back: Value = from_str(&text).unwrap();
        match back {
            Value::Number(Number::Float(v)) => {
                assert_eq!(v.to_bits(), (-0.0f64).to_bits());
            }
            other => panic!("-0.0 reparsed as {other:?}"),
        }
    }

    #[test]
    fn integral_floats_stay_floats() {
        let text = to_string(&Value::Number(Number::Float(1.0))).unwrap();
        assert_eq!(text, "1.0");
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, Value::Number(Number::Float(1.0)));
    }

    /// Edge-of-representable values a checkpoint payload can contain:
    /// signed zeros, the smallest subnormal, extremes, and max-precision
    /// Welford moments. All must survive serialize → parse with their
    /// exact bit pattern.
    fn hard_floats() -> Vec<f64> {
        let mut vals = vec![
            0.0,
            5e-324,            // smallest positive subnormal
            f64::MIN_POSITIVE, // smallest normal
            f64::EPSILON,
            0.1 + 0.2, // classic shortest-representation stress
            1.0 / 3.0,
            123_456_789.987_654_32, // max-precision mean-like value
            2.225_073_858_507_201e-308,
            1e300, // huge integral value (positional notation)
            f64::MAX,
        ];
        for i in 0..vals.len() {
            vals.push(-vals[i]);
        }
        vals
    }

    #[test]
    fn extreme_floats_round_trip_bit_for_bit() {
        for v in hard_floats() {
            let text = to_string(&Value::Number(Number::Float(v))).unwrap();
            let back: Value = from_str(&text).unwrap();
            match back {
                Value::Number(Number::Float(r)) => {
                    assert_eq!(r.to_bits(), v.to_bits(), "value {v:e} via {text}");
                }
                other => panic!("{v:e} reparsed as {other:?} via {text}"),
            }
        }
    }

    #[test]
    fn float_serialization_is_reparse_stable() {
        // serialize(parse(serialize(x))) == serialize(x): checkpoint
        // digests recompute the payload text after a parse, so
        // self-produced JSON must be byte-stable under a round trip.
        let v = Value::Array(
            hard_floats()
                .into_iter()
                .map(|f| Value::Number(Number::Float(f)))
                .collect(),
        );
        let first = to_string(&v).unwrap();
        let back: Value = from_str(&first).unwrap();
        let second = to_string(&back).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
