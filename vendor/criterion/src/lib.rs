//! Offline stand-in for `criterion`: a miniature wall-clock benchmark
//! harness covering the API subset this workspace uses — `Criterion`,
//! benchmark groups, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Timing model: each benchmark is warmed up briefly, then the target is
//! invoked in timed batches until the per-sample budget is spent; the
//! median per-iteration time is printed. There is no statistical
//! analysis, plotting, or baseline comparison. Passing `--test` (as
//! `cargo test` does for harness = false benches) runs each benchmark
//! exactly once as a smoke test.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group, combining an optional
/// function name with a parameter rendered via `Display`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter, rendered as
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything usable as a benchmark name: a string or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Renders the name for display.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_count: usize,
    smoke_test: bool,
}

impl Bencher<'_> {
    /// Times `routine`, recording per-iteration wall-clock samples. The
    /// closure's return value is passed through [`black_box`] so the
    /// optimizer cannot delete the measured work.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke_test {
            black_box(routine());
            self.samples.push(Duration::ZERO);
            return;
        }
        // Warm-up: run until ~50ms elapse to settle caches and clocks,
        // and learn roughly how long one iteration takes.
        let warmup_budget = Duration::from_millis(50);
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < warmup_budget {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_nanos().max(1) / u128::from(warmup_iters);
        // Size timed batches so each takes ~1ms, bounding clock overhead.
        let batch = (1_000_000 / per_iter).clamp(1, 1_000_000) as u64;
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed / batch as u32);
        }
    }
}

fn median(samples: &mut [Duration]) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn run_benchmark(id: &str, sample_count: usize, smoke_test: bool, f: impl FnOnce(&mut Bencher)) {
    let mut samples = Vec::new();
    let mut bencher = Bencher {
        samples: &mut samples,
        sample_count,
        smoke_test,
    };
    f(&mut bencher);
    if smoke_test {
        println!("{id:<50} ... ok (smoke test)");
    } else {
        let mid = median(&mut samples);
        println!("{id:<50} median {mid:>12.3?} ({} samples)", samples.len());
    }
}

/// A named collection of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
    sample_count: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(1);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        if self.criterion.should_run(&full) {
            let mut f = f;
            run_benchmark(&full, self.sample_count, self.criterion.smoke_test, |b| {
                f(b)
            });
        }
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        if self.criterion.should_run(&full) {
            let mut f = f;
            run_benchmark(&full, self.sample_count, self.criterion.smoke_test, |b| {
                f(b, input)
            });
        }
        self
    }

    /// Ends the group. Accepted for upstream compatibility; the mini
    /// harness reports per-benchmark, so this is a no-op.
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    filter: Option<String>,
    smoke_test: bool,
    default_sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // harness = false benches receive the libtest CLI: `--bench` when
        // run via `cargo bench`, `--test` via `cargo test`. Any other
        // free argument is a name filter.
        let mut filter = None;
        let mut smoke_test = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => {}
                "--test" => smoke_test = true,
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Self {
            filter,
            smoke_test,
            default_sample_count: 20,
        }
    }
}

impl Criterion {
    fn should_run(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Starts a [`BenchmarkGroup`] named `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_count: self.default_sample_count,
        }
    }

    /// Benchmarks `f` under `id` at the top level.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = id.into_id();
        if self.should_run(&full) {
            let mut f = f;
            run_benchmark(&full, self.default_sample_count, self.smoke_test, |b| f(b));
        }
        self
    }

    /// Runs `final_summary` for upstream compatibility; a no-op here.
    pub fn final_summary(&mut self) {}
}

/// Bundles benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples_and_runs_the_closure() {
        let mut calls = 0usize;
        {
            let mut samples = Vec::new();
            let mut b = Bencher {
                samples: &mut samples,
                sample_count: 3,
                smoke_test: false,
            };
            b.iter(|| calls += 1);
            assert_eq!(samples.len(), 3);
        }
        assert!(calls > 0);
    }

    #[test]
    fn smoke_test_mode_runs_exactly_once() {
        let mut calls = 0usize;
        let mut samples = Vec::new();
        let mut b = Bencher {
            samples: &mut samples,
            sample_count: 10,
            smoke_test: true,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
    }

    #[test]
    fn benchmark_ids_render_like_upstream() {
        assert_eq!(
            BenchmarkId::new("first_fit", 200).to_string(),
            "first_fit/200"
        );
        assert_eq!(BenchmarkId::from_parameter(6).to_string(), "6");
    }

    #[test]
    fn median_of_samples_is_the_middle_value() {
        let mut s = vec![
            Duration::from_nanos(30),
            Duration::from_nanos(10),
            Duration::from_nanos(20),
        ];
        assert_eq!(median(&mut s), Duration::from_nanos(20));
    }
}
