//! Derive macros for the vendored `serde` stand-in.
//!
//! Implemented without `syn`/`quote` (unavailable offline): the item is
//! parsed directly from the `proc_macro` token stream and the impl is
//! emitted as source text. Supported shapes — exactly what this
//! workspace uses:
//!
//! * structs with named fields;
//! * tuple structs (newtypes serialize transparently as their inner
//!   value, wider tuples as arrays — upstream serde's defaults);
//! * enums with unit, tuple, and struct variants (externally tagged,
//!   matching upstream serde's default representation).
//!
//! Generics and `#[serde(...)]` attributes are not supported and produce
//! a compile-time panic with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

#[derive(Debug)]
enum VariantFields {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: VariantFields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

fn skip_attributes(iter: &mut TokenIter) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("expected attribute contents, found {other:?}"),
                }
            }
            _ => return,
        }
    }
}

fn skip_visibility(iter: &mut TokenIter) {
    if let Some(TokenTree::Ident(id)) = iter.peek() {
        if id.to_string() == "pub" {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    iter.next();
                }
            }
        }
    }
}

/// Skips a type expression up to a top-level `,` (consumed) or the end of
/// the stream. Tracks `<...>` nesting; parens/brackets arrive as single
/// groups and need no tracking.
fn skip_type(iter: &mut TokenIter) {
    let mut angle_depth = 0usize;
    for tok in iter.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut iter);
        skip_visibility(&mut iter);
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("expected field name, found {other}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        skip_type(&mut iter);
        fields.push(name);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut iter = stream.into_iter().peekable();
    let mut count = 0usize;
    loop {
        skip_attributes(&mut iter);
        skip_visibility(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        skip_type(&mut iter);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut iter);
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("expected variant name, found {other}"),
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                iter.next();
                VariantFields::Struct(parse_named_fields(inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner = g.stream();
                iter.next();
                VariantFields::Tuple(count_tuple_fields(inner))
            }
            _ => VariantFields::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        let mut angle_depth = 0usize;
        while let Some(tok) = iter.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    iter.next();
                    break;
                }
                TokenTree::Punct(p) => {
                    match p.as_char() {
                        '<' => angle_depth += 1,
                        '>' => angle_depth = angle_depth.saturating_sub(1),
                        _ => {}
                    }
                    iter.next();
                }
                _ => {
                    iter.next();
                }
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    skip_attributes(&mut iter);
    skip_visibility(&mut iter);
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("vendored serde_derive does not support generic type `{name}`");
        }
    }
    // Skip a `where` clause if one ever appears (none do today).
    while let Some(tok) = iter.peek() {
        if matches!(tok, TokenTree::Group(g) if g.delimiter() == Delimiter::Brace)
            || matches!(tok, TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
            || matches!(tok, TokenTree::Punct(p) if p.as_char() == ';')
        {
            break;
        }
        iter.next();
    }
    match (kind.as_str(), iter.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Item::Struct {
                name,
                fields: parse_named_fields(g.stream()),
            }
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Item::TupleStruct {
                name,
                arity: count_tuple_fields(g.stream()),
            }
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => Item::Enum {
            name,
            variants: parse_variants(g.stream()),
        },
        (k, other) => panic!(
            "vendored serde_derive supports structs and brace-bodied enums only; \
             `{name}` is a {k} with body {other:?}"
        ),
    }
}

fn serialize_impl(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!("(\"{f}\".to_string(), ::serde::Serialize::serialize(&self.{f})),")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{pushes}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::serialize(&self.0)".to_string()
            } else {
                let items: String = (0..*arity)
                    .map(|i| format!("::serde::Serialize::serialize(&self.{i}),"))
                    .collect();
                format!("::serde::Value::Array(vec![{items}])")
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),"
                        ),
                        VariantFields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let items: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b}),"))
                                .collect();
                            let payload = if *n == 1 {
                                "::serde::Serialize::serialize(x0)".to_string()
                            } else {
                                format!("::serde::Value::Array(vec![{items}])")
                            };
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), {payload})]),",
                                binds.join(", ")
                            )
                        }
                        VariantFields::Struct(fields) => {
                            let binds = fields.join(", ");
                            let pushes: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::serialize({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(vec![{pushes}]))]),"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn deserialize_impl(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let field_inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize(value.get(\"{f}\")\
                         .ok_or_else(|| ::serde::Error::msg(\"missing field `{f}` in {name}\"))?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         if value.as_object().is_none() {{\n\
                             return ::std::result::Result::Err(::serde::Error::msg(\
                                 format!(\"expected object for {name}, found {{}}\", value.kind())));\n\
                         }}\n\
                         ::std::result::Result::Ok({name} {{ {field_inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(value)?))"
                )
            } else {
                let elems: String = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?,"))
                    .collect();
                format!(
                    "{{ let items = value.as_array()\
                       .ok_or_else(|| ::serde::Error::msg(\"expected array for {name}\"))?;\n\
                       if items.len() != {arity} {{\n\
                           return ::std::result::Result::Err(::serde::Error::msg(\
                               \"wrong arity for {name}\"));\n\
                       }}\n\
                       ::std::result::Result::Ok({name}({elems})) }}"
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),")
                })
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => None,
                        VariantFields::Tuple(n) => {
                            let body = if *n == 1 {
                                format!(
                                    "::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::deserialize(inner)?))"
                                )
                            } else {
                                let elems: String = (0..*n)
                                    .map(|i| {
                                        format!("::serde::Deserialize::deserialize(&items[{i}])?,")
                                    })
                                    .collect();
                                format!(
                                    "{{ let items = inner.as_array()\
                                       .ok_or_else(|| ::serde::Error::msg(\"expected array for {name}::{vn}\"))?;\n\
                                       if items.len() != {n} {{\n\
                                           return ::std::result::Result::Err(::serde::Error::msg(\
                                               \"wrong arity for {name}::{vn}\"));\n\
                                       }}\n\
                                       ::std::result::Result::Ok({name}::{vn}({elems})) }}"
                                )
                            };
                            Some(format!("\"{vn}\" => {body},"))
                        }
                        VariantFields::Struct(fields) => {
                            let field_inits: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::deserialize(inner.get(\"{f}\")\
                                         .ok_or_else(|| ::serde::Error::msg(\"missing field `{f}` in {name}::{vn}\"))?)?,"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {field_inits} }}),"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match value {{\n\
                             ::serde::Value::String(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => ::std::result::Result::Err(::serde::Error::msg(\
                                     format!(\"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                                 let (tag, inner) = &fields[0];\n\
                                 let _ = inner;\n\
                                 match tag.as_str() {{\n\
                                     {data_arms}\n\
                                     other => ::std::result::Result::Err(::serde::Error::msg(\
                                         format!(\"unknown {name} variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             other => ::std::result::Result::Err(::serde::Error::msg(\
                                 format!(\"expected {name}, found {{}}\", other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    serialize_impl(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    deserialize_impl(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}
