//! Offline stand-in for `rand_distr`: the [`Distribution`] trait plus the
//! [`Normal`], [`LogNormal`], and [`Exp`] distributions used by the
//! workspace's trace and cluster generators. Sampling is deterministic
//! given the RNG stream (Box–Muller for the normal family, inverse CDF
//! for the exponential).

#![forbid(unsafe_code)]

use rand::{Rng, RngCore};

/// Types that can draw values of `T` from an RNG.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistrError(&'static str);

impl std::fmt::Display for DistrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for DistrError {}

fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // Box–Muller; clamp u1 away from zero so ln() stays finite.
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// The normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Fails if `std_dev` is negative or either parameter is non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, DistrError> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(DistrError("Normal requires finite mean and std_dev >= 0"));
        }
        Ok(Self { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// The log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Creates a log-normal distribution with location `mu` and scale
    /// `sigma` (parameters of the underlying normal).
    ///
    /// # Errors
    ///
    /// Fails under the same conditions as [`Normal::new`].
    pub fn new(mu: f64, sigma: f64) -> Result<Self, DistrError> {
        Ok(Self {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// The exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Creates an exponential distribution.
    ///
    /// # Errors
    ///
    /// Fails if `lambda` is not finite and positive.
    pub fn new(lambda: f64) -> Result<Self, DistrError> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(DistrError("Exp requires a positive finite rate"));
        }
        Ok(Self { lambda })
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        -u.ln() / self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_roughly_right() {
        let d = Normal::new(5.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn exp_mean_matches_rate() {
        let d = Exp::new(0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!(Exp::new(0.0).is_err());
    }

    #[test]
    fn lognormal_is_positive() {
        let d = LogNormal::new(0.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..1000).all(|_| d.sample(&mut rng) > 0.0));
        assert!(Normal::new(0.0, -1.0).is_err());
    }
}
