//! A colocation carbon audit: take a rack of paired workloads, compute
//! every attribution method, and show per-tenant invoices with their
//! deviation from the fair (Shapley) ground truth — including what
//! happens when the provider only has sparse interference history.
//!
//! Run with `cargo run --example colocation_audit`.

use fair_co2::attribution::colocation::{
    ColocationAttributor, ColocationScenario, FairCo2Colocation, GroundTruthMatching, RupColocation,
};
use fair_co2::attribution::metrics::summarize;
use fair_co2::carbon::units::CarbonIntensity;
use fair_co2::workloads::history::sampled_profile_from_population;
use fair_co2::workloads::{NodeAccounting, WorkloadKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    use WorkloadKind::*;
    // A rack of 12 tenants, paired in placement order.
    let tenants = [
        Nbody, Ch, Spark, Pg100, Llama, Wc, Faiss, Sa, H265, Pg10, Ddup, Bfs,
    ];
    let scenario = ColocationScenario::pair_in_order(&tenants)?;
    let ctx = NodeAccounting::paper_default(CarbonIntensity::from_g_per_kwh(250.0));
    let total = scenario.carbon(&ctx);
    println!(
        "rack total: {:.0} gCO2e (embodied {:.0} + static {:.0} + dynamic {:.0})\n",
        total.total(),
        total.embodied,
        total.static_operational,
        total.dynamic_operational
    );

    let truth = GroundTruthMatching.attribute(&scenario, &ctx)?;
    let rup = RupColocation.attribute(&scenario, &ctx)?;
    let fair = FairCo2Colocation::with_full_history().attribute(&scenario, &ctx)?;

    println!(
        "{:<8} {:<8} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "tenant", "partner", "truth g", "RUP g", "Fair g", "RUP err", "Fair err"
    );
    for (i, w) in scenario.workloads().iter().enumerate() {
        println!(
            "{:<8} {:<8} {:>10.2} {:>10.2} {:>10.2} {:>8.1}% {:>8.1}%",
            w.kind.name(),
            w.partner.map_or("-", |p| p.name()),
            truth[i],
            rup[i],
            fair[i],
            100.0 * (rup[i] - truth[i]) / truth[i],
            100.0 * (fair[i] - truth[i]) / truth[i],
        );
    }

    let rup_sum = summarize(&rup, &truth).expect("non-zero shares");
    let fair_sum = summarize(&fair, &truth).expect("non-zero shares");
    println!(
        "\nfull history : RUP avg {:.2}% worst {:.2}% | Fair-CO2 avg {:.2}% worst {:.2}%",
        rup_sum.average_pct, rup_sum.worst_case_pct, fair_sum.average_pct, fair_sum.worst_case_pct
    );

    // Sparse history: every tenant has seen only K past colocations.
    let kinds: Vec<WorkloadKind> = scenario.workloads().iter().map(|w| w.kind).collect();
    for k in [1usize, 4, 14] {
        let mut rng = StdRng::seed_from_u64(42 + k as u64);
        let profiles = scenario
            .workloads()
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let mut pool = kinds.clone();
                pool.swap_remove(i);
                sampled_profile_from_population(ctx.interference(), w.kind, &pool, k, &mut rng)
            })
            .collect();
        let sparse = FairCo2Colocation::with_profiles(profiles).attribute(&scenario, &ctx)?;
        let s = summarize(&sparse, &truth).expect("non-zero shares");
        println!(
            "{k:>2} historical sample(s): Fair-CO2 avg {:.2}% worst {:.2}%",
            s.average_pct, s.worst_case_pct
        );
    }
    println!("\neven one sample of history beats the interference-blind baseline.");
    Ok(())
}
