//! Quickstart: attribute embodied carbon to three workloads sharing a
//! small cluster, then attribute a colocated pair's total carbon — the
//! two settings of the Fair-CO₂ paper, in ~60 lines.
//!
//! Run with `cargo run --example quickstart`.

use fair_co2::attribution::colocation::{
    ColocationAttributor, ColocationScenario, FairCo2Colocation, GroundTruthMatching, RupColocation,
};
use fair_co2::attribution::demand::{
    DemandAttributor, DemandProportional, GroundTruthShapley, RupBaseline, TemporalFairCo2,
};
use fair_co2::attribution::schedule::{Schedule, ScheduledWorkload};
use fair_co2::carbon::units::CarbonIntensity;
use fair_co2::workloads::{NodeAccounting, WorkloadKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Setting 1: dynamic demand -------------------------------------
    // Three workloads over four hours; workload B rides the demand peak.
    let schedule = Schedule::new(
        3600,
        4,
        vec![
            ScheduledWorkload::new(32.0, 0, 4)?, // A: steady, always on
            ScheduledWorkload::new(64.0, 1, 3)?, // B: big, at the peak
            ScheduledWorkload::new(16.0, 3, 4)?, // C: small, off-peak
        ],
    )?;
    let pool = 1000.0; // gCO2e of amortized embodied carbon to divide

    println!("== Demand setting: who pays for peak provisioning? ==");
    println!("{:<22} {:>8} {:>8} {:>8}", "method", "A", "B", "C");
    let methods: Vec<Box<dyn DemandAttributor>> = vec![
        Box::new(GroundTruthShapley),
        Box::new(RupBaseline),
        Box::new(DemandProportional),
        Box::new(TemporalFairCo2::per_step()),
    ];
    for m in &methods {
        let shares = m.attribute(&schedule, pool)?;
        println!(
            "{:<22} {:>7.1}g {:>7.1}g {:>7.1}g",
            m.name(),
            shares[0],
            shares[1],
            shares[2]
        );
    }
    println!("(RUP undercharges B, the peak-maker; Fair-CO2 tracks the ground truth)\n");

    // ---- Setting 2: colocation with interference -----------------------
    // NBODY (sensitive victim) shares a node with CH (heavy aggressor).
    let scenario = ColocationScenario::pair_in_order(&[WorkloadKind::Nbody, WorkloadKind::Ch])?;
    let ctx = NodeAccounting::paper_default(CarbonIntensity::from_g_per_kwh(250.0));

    println!("== Colocation setting: who pays for interference? ==");
    println!("{:<22} {:>9} {:>9}", "method", "NBODY", "CH");
    let methods: Vec<Box<dyn ColocationAttributor>> = vec![
        Box::new(GroundTruthMatching),
        Box::new(RupColocation),
        Box::new(FairCo2Colocation::with_full_history()),
    ];
    for m in &methods {
        let shares = m.attribute(&scenario, &ctx)?;
        println!("{:<22} {:>8.1}g {:>8.1}g", m.name(), shares[0], shares[1]);
    }
    println!("(RUP bills NBODY for the slowdown CH causes; Fair-CO2 refunds it)");
    Ok(())
}
