//! A month in the life of a (synthetic) data center: generate the
//! Azure-like 30-day demand trace, amortize a fleet's embodied carbon,
//! build the hierarchical Temporal Shapley intensity signal, price a few
//! representative tenants against it, and publish a *live* signal that
//! extends 9 days into the future via the demand forecaster.
//!
//! Run with `cargo run --example datacenter_month`.

use fair_co2::attribution::signal::LiveSignal;
use fair_co2::carbon::ServerSpec;
use fair_co2::forecast::split_at_day;
use fair_co2::shapley::temporal::TemporalShapley;
use fair_co2::trace::stats::mape;
use fair_co2::trace::AzureLikeTrace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The fleet and its demand.
    let trace = AzureLikeTrace::builder().days(30).seed(2026).build();
    let demand = trace.series();
    let server = ServerSpec::xeon_6240r();
    let fleet = (demand.peak() / f64::from(server.physical_cores())).ceil();
    let monthly_embodied = server.embodied_per_month().as_grams() * fleet;
    println!(
        "fleet: {fleet} servers ({} cores peak demand), embodied this month: {:.1} t CO2e",
        demand.peak().round(),
        monthly_embodied / 1e6
    );

    // 2. The dynamic embodied-carbon-intensity signal (Figure 4).
    let attribution = TemporalShapley::paper_hierarchy().attribute(demand, monthly_embodied)?;
    let signal = attribution.leaf_intensity();
    println!(
        "intensity signal: min {:.3e}, mean {:.3e}, max {:.3e} gCO2e/core-s ({}x swing)",
        signal.min(),
        signal.mean(),
        signal.peak(),
        (signal.peak() / signal.min()).round()
    );

    // 3. Price three tenants with identical core-hours but different
    //    timing: peak-riding, off-peak, and always-on.
    let peak_idx = demand
        .values()
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty trace")
        .0 as i64;
    let trough_idx = demand
        .values()
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty trace")
        .0 as i64;
    let step = i64::from(demand.step());
    let window = 6 * 3600; // six hours
    let cores = 96.0;
    let at_peak = attribution.workload_carbon(
        peak_idx * step - window / 2,
        peak_idx * step + window / 2,
        cores,
    );
    let at_trough = attribution.workload_carbon(
        trough_idx * step - window / 2,
        trough_idx * step + window / 2,
        cores,
    );
    println!("\ntwo 96-core 6-hour tenants, same usage, different timing:");
    println!(
        "  at the monthly demand peak : {:.1} kgCO2e",
        at_peak / 1000.0
    );
    println!(
        "  at the monthly trough      : {:.1} kgCO2e",
        at_trough / 1000.0
    );
    println!("  peak/trough price ratio    : {:.1}x", at_peak / at_trough);

    // 4. The live signal: 21 days of history, 9 days of forecast.
    let (history, holdout) = split_at_day(demand, 21)?;
    let live = LiveSignal::paper_default().generate(&history, holdout.len(), monthly_embodied)?;
    let start = history.end();
    let project = |att: &fair_co2::shapley::temporal::TemporalAttribution| -> Vec<f64> {
        att.leaf_intensity()
            .iter()
            .filter(|(t, _)| *t >= start)
            .map(|(_, v)| v)
            .collect()
    };
    let err = mape(&project(&attribution), &project(&live)).expect("aligned windows");
    println!(
        "\nlive signal (21 d history + 9 d forecast) deviates {err:.2} % MAPE from the oracle signal"
    );
    println!("tenants can now shift load against *projected* embodied intensity.");
    Ok(())
}
