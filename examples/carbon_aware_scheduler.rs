//! A carbon-aware service scheduler: a FAISS retrieval service with a
//! 2-second tail-latency SLO re-optimizes its (index, cores, batch)
//! configuration every hour against the live grid carbon intensity and
//! Fair-CO₂'s embodied intensity signal — the paper's Figure 13 case
//! study as a reusable program.
//!
//! Run with `cargo run --release --example carbon_aware_scheduler`.

use fair_co2::optimize::dynamic::DynamicStudy;
use fair_co2::optimize::faiss::IndexKind;
use fair_co2::shapley::temporal::TemporalShapley;
use fair_co2::trace::{AzureLikeTrace, GridIntensityTrace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Live inputs: a CAISO-like duck-curve week and the embodied
    // intensity signal from the cluster's demand trace.
    let grid = GridIntensityTrace::caiso_like(7, 3600, 99);
    let demand = AzureLikeTrace::builder()
        .days(7)
        .step_seconds(3600)
        .seed(7)
        .build();
    let embodied_signal = TemporalShapley::new(vec![7, 24])
        .attribute(demand.series(), 1000.0)?
        .leaf_intensity()
        .clone();

    let study = DynamicStudy::default();
    let outcome = study.run(&grid, &embodied_signal);

    println!("hour-by-hour decisions (first two days):");
    println!(
        "{:>4} {:>8} {:>7} {:>6} {:>6} {:>6}",
        "hour", "grid CI", "emb", "index", "cores", "batch"
    );
    for i in outcome.intervals.iter().take(48) {
        println!(
            "{:>4} {:>8.0} {:>7.2} {:>6} {:>6} {:>6}",
            i.t / 3600,
            i.grid_ci,
            i.embodied_scale,
            i.config.index,
            i.config.cores,
            i.config.batch
        );
    }

    let hnsw = outcome
        .intervals
        .iter()
        .filter(|i| i.config.index == IndexKind::Hnsw)
        .count();
    println!(
        "\nweek summary: {:.1} kg optimized vs {:.1} kg performance-optimal — {:.1}% saved",
        outcome.optimized_total_g() / 1000.0,
        outcome.baseline_total_g() / 1000.0,
        100.0 * outcome.saving()
    );
    println!(
        "index mix: {} h IVF / {} h HNSW, {} switches (HNSW wins when the grid is dirty \
         and embodied intensity low)",
        outcome.intervals.len() - hnsw,
        hnsw,
        outcome.index_switches()
    );
    Ok(())
}
