//! Replay a synthetic VM population (Hadary-style: most VMs live
//! minutes, a long tail spans the horizon) through Temporal Shapley and
//! examine the price each VM pays per core-second — the Section 5.1
//! unit-resource-time effect on a realistic population, plus the
//! long-running-VM discount analysis.
//!
//! Run with `cargo run --release --example vm_trace_replay`.

use fair_co2::carbon::ServerSpec;
use fair_co2::shapley::temporal::TemporalShapley;
use fair_co2::shapley::unit_time::{IntensityConvention, UnitTimeScenario};
use fair_co2::trace::vms::VmPopulation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate the population and its aggregate demand.
    let pop = VmPopulation::builder()
        .horizon_days(3)
        .short_vms_per_hour(150.0)
        .long_vm_count(60)
        .seed(11)
        .build();
    let demand = pop.demand_series(300);
    println!(
        "population: {} VMs ({} short-lived < 1 h), demand peak {:.0} / mean {:.0} cores",
        pop.vms().len(),
        pop.short_lived(3600.0).count(),
        demand.peak(),
        demand.mean()
    );

    // 2. Amortized embodied carbon for a fleet sized to the peak.
    let server = ServerSpec::xeon_6240r();
    let fleet = (demand.peak() / f64::from(server.physical_cores())).ceil();
    let window_carbon = server.embodied_per_month().as_grams() * fleet * (3.0 / 30.0); // 3-day slice
    println!(
        "fleet: {fleet} servers, embodied for the window: {:.1} kgCO2e",
        window_carbon / 1000.0
    );

    // 3. The intensity signal (3 d -> 6 h -> 30 min -> 5 min).
    let att = TemporalShapley::new(vec![12, 12, 6]).attribute(&demand, window_carbon)?;

    // 4. Price every VM; compare per-core-second rates by lifetime class.
    let mut short_rate = (0.0, 0.0); // (carbon, core-seconds)
    let mut long_rate = (0.0, 0.0);
    for vm in pop.vms() {
        let carbon = att.workload_carbon(vm.start, vm.end, vm.cores);
        let bucket = if vm.lifetime_s() < 3600.0 {
            &mut short_rate
        } else {
            &mut long_rate
        };
        bucket.0 += carbon;
        bucket.1 += vm.core_seconds();
    }
    let short_price = short_rate.0 / short_rate.1;
    let long_price = long_rate.0 / long_rate.1;
    println!("\nembodied price per core-second:");
    println!("  short-lived VMs : {short_price:.3e} g");
    println!("  long-running VMs: {long_price:.3e} g");
    println!(
        "  ratio long/short: {:.2} (1.0 = uniform pricing)",
        long_price / short_price
    );
    println!("(long VMs ride the cheap off-peak valleys, so Eq. 5 prices them lower)");

    // 5. The paper's §5.1 stylized scenario, for contrast.
    let stylized = UnitTimeScenario {
        workloads: 100,
        short_lived: 90,
        intervals: 12,
        long_peak: 0.2,
        total_carbon: 1000.0,
    };
    println!(
        "\nstylized §5.1 scenario: over-attribution of long jobs = {:.2}x (φ convention), \
         {:.2}x (Eq. 5), equalizing discount = {:.2}",
        stylized.over_attribution(IntensityConvention::ProportionalToPhi),
        stylized.over_attribution(IntensityConvention::Eq5),
        stylized.equalizing_discount(IntensityConvention::ProportionalToPhi)
    );
    Ok(())
}
