//! End-to-end tests of the live-signal and optimization pipeline: demand
//! trace → Temporal Shapley signal → forecast-extended live signal →
//! carbon-aware configuration decisions.

use fair_co2::attribution::signal::LiveSignal;
use fair_co2::carbon::ServerSpec;
use fair_co2::forecast::split_at_day;
use fair_co2::optimize::dynamic::DynamicStudy;
use fair_co2::shapley::temporal::TemporalShapley;
use fair_co2::trace::stats::mape;
use fair_co2::trace::{AzureLikeTrace, GridIntensityTrace};

#[test]
fn month_signal_conserves_fleet_carbon() {
    let trace = AzureLikeTrace::builder().days(30).seed(1).build();
    let server = ServerSpec::xeon_6240r();
    let fleet = (trace.series().peak() / f64::from(server.physical_cores())).ceil();
    let monthly = server.embodied_per_month().as_grams() * fleet;
    let att = TemporalShapley::paper_hierarchy()
        .attribute(trace.series(), monthly)
        .unwrap();
    let reattributed: f64 = att
        .leaf_intensity()
        .iter()
        .zip(trace.series().iter())
        .map(|((_, y), (_, d))| y * d * 300.0)
        .sum();
    assert!(
        (reattributed + att.stranded_carbon() - monthly).abs() < 1e-6 * monthly,
        "conservation violated: {reattributed} vs {monthly}"
    );
    assert_eq!(att.stranded_carbon(), 0.0, "demand never hits zero");
}

#[test]
fn signal_prices_peak_time_above_trough_time() {
    let trace = AzureLikeTrace::builder().days(30).seed(2).build();
    let att = TemporalShapley::paper_hierarchy()
        .attribute(trace.series(), 1.0e6)
        .unwrap();
    let signal = att.leaf_intensity();
    // Correlation between demand and intensity must be strongly positive.
    let d = trace.series().values();
    let y = signal.values();
    let (dm, ym) = (
        d.iter().sum::<f64>() / d.len() as f64,
        y.iter().sum::<f64>() / y.len() as f64,
    );
    let cov: f64 = d.iter().zip(y).map(|(a, b)| (a - dm) * (b - ym)).sum();
    let vd: f64 = d.iter().map(|a| (a - dm) * (a - dm)).sum();
    let vy: f64 = y.iter().map(|b| (b - ym) * (b - ym)).sum();
    let corr = cov / (vd.sqrt() * vy.sqrt());
    assert!(corr > 0.6, "demand-intensity correlation {corr}");
}

#[test]
fn live_signal_tracks_oracle_with_low_noise_demand() {
    let trace = AzureLikeTrace::builder()
        .days(30)
        .noise_sigma(0.004)
        .seed(3)
        .build();
    let (history, holdout) = split_at_day(trace.series(), 21).unwrap();
    let live = LiveSignal::paper_default()
        .generate(&history, holdout.len(), 1.0e6)
        .unwrap();
    let oracle = TemporalShapley::paper_hierarchy()
        .attribute(trace.series(), 1.0e6)
        .unwrap();
    let start = history.end();
    let pick = |att: &fair_co2::shapley::temporal::TemporalAttribution| -> Vec<f64> {
        att.leaf_intensity()
            .iter()
            .filter(|(t, _)| *t >= start)
            .map(|(_, v)| v)
            .collect()
    };
    let err = mape(&pick(&oracle), &pick(&live)).unwrap();
    assert!(err < 8.0, "live-signal MAPE {err}%");
}

#[test]
fn dynamic_optimizer_consumes_the_live_signal() {
    // The full loop: demand → signal → week-long optimization; the
    // optimized service must never exceed baseline carbon.
    let grid = GridIntensityTrace::caiso_like(3, 3600, 4);
    let demand = AzureLikeTrace::builder()
        .days(3)
        .step_seconds(3600)
        .seed(5)
        .build();
    let signal = TemporalShapley::new(vec![3, 24])
        .attribute(demand.series(), 1000.0)
        .unwrap()
        .leaf_intensity()
        .clone();
    let outcome = DynamicStudy::default().run(&grid, &signal);
    assert!(outcome.saving() > 0.0);
    for i in &outcome.intervals {
        assert!(i.optimized_g <= i.baseline_g + 1e-9);
    }
}
