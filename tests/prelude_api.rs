//! The facade prelude must cover the full quickstart journey without any
//! other imports — this is the API surface the README promises.

use fair_co2::prelude::*;

#[test]
fn quickstart_journey_through_the_prelude_only() {
    // Demand setting.
    let schedule = Schedule::new(
        3600,
        4,
        vec![
            ScheduledWorkload::new(32.0, 0, 4).unwrap(),
            ScheduledWorkload::new(64.0, 1, 3).unwrap(),
        ],
    )
    .unwrap();
    let truth = GroundTruthShapley.attribute(&schedule, 100.0).unwrap();
    let fair = TemporalFairCo2::per_step()
        .attribute(&schedule, 100.0)
        .unwrap();
    let rup = RupBaseline.attribute(&schedule, 100.0).unwrap();
    let dp = DemandProportional.attribute(&schedule, 100.0).unwrap();
    let fair_dev = summarize(&fair, &truth).unwrap();
    let rup_dev = summarize(&rup, &truth).unwrap();
    assert!(fair_dev.average_pct <= rup_dev.average_pct);
    assert_eq!(dp.len(), 2);

    // Colocation setting.
    let scenario =
        ColocationScenario::pair_in_order(&[WorkloadKind::Nbody, WorkloadKind::Ch]).unwrap();
    let ctx = NodeAccounting::paper_default(CarbonIntensity::from_g_per_kwh(250.0));
    let gt = GroundTruthMatching.attribute(&scenario, &ctx).unwrap();
    let fc = FairCo2Colocation::with_full_history()
        .attribute(&scenario, &ctx)
        .unwrap();
    let rc = RupColocation.attribute(&scenario, &ctx).unwrap();
    assert!(summarize(&fc, &gt).unwrap().average_pct < summarize(&rc, &gt).unwrap().average_pct);

    // Signals.
    let trace = AzureLikeTrace::builder().days(30).seed(1).build();
    let server = ServerSpec::xeon_6240r();
    let att = TemporalShapley::paper_hierarchy()
        .attribute(trace.series(), server.embodied_per_month().as_grams())
        .unwrap();
    assert!(att.leaf_intensity().peak() > att.leaf_intensity().min());
    let phi = peak_shapley(&[5.0, 3.0, 3.0]);
    assert!((phi.iter().sum::<f64>() - 5.0).abs() < 1e-12);

    // Units compose.
    let energy = Power::from_watts(400.0).for_seconds(3600.0);
    let carbon: Carbon = energy * CarbonIntensity::from_g_per_kwh(250.0);
    assert!((carbon.as_grams() - 100.0).abs() < 1e-9);
    let _ = Energy::from_kwh(1.0);
    let _: &TimeSeries = trace.series();
    let _ = GridIntensityTrace::constant(100.0, 1, 3600);
    let _ = LiveSignal::paper_default();
    assert_eq!(ALL_WORKLOADS.len(), 15);
    let _ = NodePlacement::Isolated(WorkloadKind::Wc);
    let _: DeviationSummary = fair_dev;
}
