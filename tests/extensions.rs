//! Integration tests for the extension subsystems: multi-resource
//! attribution, tenant statements, VM populations, the cluster
//! simulator, amortization schedules, and the §5.1 theory module —
//! exercised together across crate boundaries.

use fair_co2::attribution::colocation::{
    ColocationScenario, FairCo2Colocation, GroundTruthMatching,
};
use fair_co2::attribution::demand::{
    DemandAttributor, GroundTruthShapley, RupBaseline, SampledGroundTruth, TemporalFairCo2,
};
use fair_co2::attribution::multi::{MultiResourceSchedule, MultiResourceWorkload, ResourcePools};
use fair_co2::attribution::report::CarbonStatement;
use fair_co2::attribution::schedule::Schedule;
use fair_co2::carbon::amortization::Amortization;
use fair_co2::carbon::units::CarbonIntensity;
use fair_co2::carbon::ServerSpec;
use fair_co2::cluster::policy::{FirstFit, LeastInterference};
use fair_co2::cluster::{JobStream, Simulator};
use fair_co2::shapley::temporal::TemporalShapley;
use fair_co2::shapley::unit_time::{IntensityConvention, UnitTimeScenario};
use fair_co2::trace::vms::VmPopulation;
use fair_co2::workloads::{NodeAccounting, WorkloadKind};

#[test]
fn vm_population_flows_through_the_whole_demand_pipeline() {
    // VM events → schedule → RUP and temporal attribution → efficiency.
    let pop = VmPopulation::builder()
        .horizon_days(1)
        .short_vms_per_hour(40.0)
        .long_vm_count(8)
        .seed(2)
        .build();
    let schedule = Schedule::from_vm_population(&pop, 3600).unwrap();
    let pool = 5000.0;
    for method in [
        &RupBaseline as &dyn DemandAttributor,
        &TemporalFairCo2::per_step(),
        &SampledGroundTruth::with_seed(8),
    ] {
        let shares = method.attribute(&schedule, pool).unwrap();
        assert_eq!(shares.len(), pop.vms().len());
        let total: f64 = shares.iter().sum();
        assert!((total - pool).abs() < 1e-6, "{}", method.name());
    }
}

#[test]
fn amortized_monthly_share_feeds_temporal_shapley() {
    // Server embodied → declining-balance month-1 share → intensity
    // signal; earlier months carry higher intensity for the same demand.
    let server = ServerSpec::xeon_6240r();
    let life_s = server.lifetime_years * 365.0 * 86_400.0;
    let schedule = Amortization::DecliningBalance { decline_rate: 1.5 };
    let month = 30.0 * 86_400.0;
    let first = schedule.window(server.embodied().total(), life_s, 0.0, month);
    let last = schedule.window(server.embodied().total(), life_s, life_s - month, life_s);
    assert!(first.as_grams() > last.as_grams());

    let demand = fair_co2::trace::AzureLikeTrace::builder()
        .days(30)
        .seed(4)
        .build();
    let att_first = TemporalShapley::paper_hierarchy()
        .attribute(demand.series(), first.as_grams())
        .unwrap();
    let att_last = TemporalShapley::paper_hierarchy()
        .attribute(demand.series(), last.as_grams())
        .unwrap();
    assert!(att_first.leaf_intensity().mean() > att_last.leaf_intensity().mean());
}

#[test]
fn multi_resource_ground_truth_agrees_with_single_resource_when_one_pool_is_empty() {
    let schedule = MultiResourceSchedule::new(
        3600,
        4,
        vec![
            MultiResourceWorkload {
                cpu_cores: 48.0,
                memory_gb: 32.0,
                start: 0,
                end: 2,
            },
            MultiResourceWorkload {
                cpu_cores: 96.0,
                memory_gb: 8.0,
                start: 1,
                end: 4,
            },
        ],
    )
    .unwrap();
    let multi = schedule
        .attribute(
            &GroundTruthShapley,
            ResourcePools {
                cpu: 100.0,
                memory: 0.0,
            },
        )
        .unwrap();
    let single = GroundTruthShapley.attribute(schedule.cpu(), 100.0).unwrap();
    for (m, s) in multi.iter().zip(&single) {
        assert!((m - s).abs() < 1e-9);
    }
}

#[test]
fn simulator_telemetry_feeds_a_carbon_statement() {
    // Run the cluster sim, snapshot a colocated pair it produced, and
    // render a statement for that placement.
    let stream = JobStream::poisson(24, 100.0, 5);
    let sim = Simulator::paper_default();
    let out = sim.run(&stream, &mut FirstFit);
    // Find a job that was colocated most of its life.
    let victim = out
        .jobs
        .iter()
        .max_by(|a, b| a.colocated_s.total_cmp(&b.colocated_s))
        .unwrap();
    assert!(victim.colocated_s > 0.0, "no colocation happened");

    let scenario =
        ColocationScenario::pair_in_order(&[victim.kind, WorkloadKind::Ch, WorkloadKind::Wc])
            .unwrap();
    let ctx = NodeAccounting::paper_default(CarbonIntensity::from_g_per_kwh(250.0));
    let statement = CarbonStatement::for_scenario(
        &scenario,
        &ctx,
        &FairCo2Colocation::with_full_history(),
        Some(&GroundTruthMatching),
    )
    .unwrap();
    let actual = scenario.carbon(&ctx).total();
    assert!((statement.total_g() - actual).abs() < 1e-6 * actual);
    assert!(statement.to_table().contains("with"));
}

#[test]
fn scheduler_choice_changes_observed_runtimes_but_not_fair_weights() {
    let stream = JobStream::poisson(80, 70.0, 33);
    let sim = Simulator::paper_default();
    let ff = sim.run(&stream, &mut FirstFit);
    let li = sim.run(&stream, &mut LeastInterference::default());
    // Observed runtimes differ for at least some jobs...
    let differing = ff
        .jobs
        .iter()
        .zip(&li.jobs)
        .filter(|(a, b)| (a.runtime_s() - b.runtime_s()).abs() > 1.0)
        .count();
    assert!(differing > 10, "only {differing} jobs differ");
    // ...while Fair-CO₂'s historical weights (kind-determined) are
    // trivially identical — the scheduler-agnosticism property.
    use fair_co2::workloads::history::full_profile;
    for job in stream.jobs() {
        let a = full_profile(sim.interference(), job.kind);
        let b = full_profile(sim.interference(), job.kind);
        assert_eq!(a, b);
    }
}

#[test]
fn unit_time_theory_is_consistent_with_the_production_signal_path() {
    // The stylized §5.1 scenario's Eq. 5 attribution must match what the
    // actual TemporalShapley pipeline computes on the equivalent series.
    let s = UnitTimeScenario {
        workloads: 20,
        short_lived: 15,
        intervals: 6,
        long_peak: 0.25,
        total_carbon: 600.0,
    };
    let theory = s.temporal_attribution(IntensityConvention::Eq5, 0.0);

    // Equivalent demand series: interval 0 demand 1.0, later p.
    let mut values = vec![s.long_peak; s.intervals];
    values[0] = 1.0;
    let series = fair_co2::trace::TimeSeries::from_values(0, 3600, values).unwrap();
    let att = TemporalShapley::new(vec![s.intervals])
        .attribute(&series, s.total_carbon)
        .unwrap();
    // Short workload: 1/n of interval 0's demand for one interval.
    let n = s.workloads as f64;
    let short = att.workload_carbon(0, 3600, 1.0 / n);
    assert!(
        (short - theory.short_each).abs() < 1e-9,
        "{short} vs {}",
        theory.short_each
    );
}
