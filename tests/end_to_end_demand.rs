//! End-to-end pipeline tests for the dynamic-demand setting: random
//! schedules → ground truth → every method → fairness metrics, plus the
//! qualitative findings of the paper's Figure 7.

use fair_co2::attribution::demand::{
    DemandAttributor, DemandProportional, GroundTruthShapley, RupBaseline, TemporalFairCo2,
};
use fair_co2::attribution::metrics::{deviations_pct, summarize};
use fair_co2::montecarlo::schedules::{random_schedule, DemandStudy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn methods() -> Vec<Box<dyn DemandAttributor>> {
    vec![
        Box::new(GroundTruthShapley),
        Box::new(RupBaseline),
        Box::new(DemandProportional),
        Box::new(TemporalFairCo2::per_step()),
    ]
}

#[test]
fn every_method_is_efficient_on_random_schedules() {
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..25 {
        let schedule = random_schedule(&mut rng, 4, 9, 22);
        for m in methods() {
            let shares = m.attribute(&schedule, 777.0).unwrap();
            let total: f64 = shares.iter().sum();
            assert!(
                (total - 777.0).abs() < 1e-6,
                "{} leaked carbon: {total}",
                m.name()
            );
            assert!(
                shares.iter().all(|&s| s >= 0.0),
                "{} produced a negative share",
                m.name()
            );
        }
    }
}

#[test]
fn ground_truth_deviation_from_itself_is_zero() {
    let mut rng = StdRng::seed_from_u64(2);
    let schedule = random_schedule(&mut rng, 4, 9, 18);
    let truth = GroundTruthShapley.attribute(&schedule, 100.0).unwrap();
    let devs = deviations_pct(&truth, &truth);
    assert!(devs.iter().all(|&d| d < 1e-9));
}

#[test]
fn fair_co2_beats_both_baselines_in_aggregate() {
    // A compressed Figure 7(a): over 40 random schedules, the method
    // ordering must match the paper's.
    let study = DemandStudy {
        trials: 40,
        ..DemandStudy::default()
    };
    let mut sums = [0.0f64; 3]; // rup, dp, fair
    let mut worst = [0.0f64; 3];
    for t in 0..study.trials {
        let r = study.run_trial(t);
        sums[0] += r.rup.average_pct;
        sums[1] += r.demand_proportional.average_pct;
        sums[2] += r.fair_co2.average_pct;
        worst[0] += r.rup.worst_case_pct;
        worst[1] += r.demand_proportional.worst_case_pct;
        worst[2] += r.fair_co2.worst_case_pct;
    }
    assert!(
        sums[2] < sums[1] && sums[1] < sums[0],
        "avg ordering {sums:?}"
    );
    assert!(
        worst[2] < worst[1] && worst[1] < worst[0],
        "worst ordering {worst:?}"
    );
}

#[test]
fn attribution_is_invariant_to_pool_size() {
    // Shares must scale linearly with the carbon pool: method fairness is
    // about the split, not the amount.
    let mut rng = StdRng::seed_from_u64(5);
    let schedule = random_schedule(&mut rng, 5, 8, 15);
    for m in methods() {
        let small = m.attribute(&schedule, 1.0).unwrap();
        let large = m.attribute(&schedule, 1e9).unwrap();
        for (s, l) in small.iter().zip(&large) {
            assert!(
                (l - s * 1e9).abs() < 1e-3 * l.abs().max(1.0),
                "{} not scale-invariant",
                m.name()
            );
        }
    }
}

#[test]
fn summaries_agree_with_raw_deviations() {
    let mut rng = StdRng::seed_from_u64(9);
    let schedule = random_schedule(&mut rng, 4, 9, 12);
    let truth = GroundTruthShapley.attribute(&schedule, 500.0).unwrap();
    let rup = RupBaseline.attribute(&schedule, 500.0).unwrap();
    let devs = deviations_pct(&rup, &truth);
    let summary = summarize(&rup, &truth).unwrap();
    let mean: f64 = devs.iter().sum::<f64>() / devs.len() as f64;
    let max = devs.iter().copied().fold(0.0f64, f64::max);
    assert!((summary.average_pct - mean).abs() < 1e-12);
    assert!((summary.worst_case_pct - max).abs() < 1e-12);
}
