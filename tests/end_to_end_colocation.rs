//! End-to-end pipeline tests for the colocation setting, including the
//! qualitative findings of the paper's Figures 8 and 9.

use fair_co2::attribution::colocation::{
    AdjustmentKind, ColocationAttributor, ColocationScenario, FairCo2Colocation,
    GroundTruthMatching, RupColocation,
};
use fair_co2::attribution::metrics::summarize;
use fair_co2::carbon::units::CarbonIntensity;
use fair_co2::montecarlo::colocations::ColocationStudy;
use fair_co2::workloads::{NodeAccounting, WorkloadKind, ALL_WORKLOADS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_scenario(rng: &mut impl Rng, n: usize) -> ColocationScenario {
    let kinds: Vec<WorkloadKind> = (0..n)
        .map(|_| ALL_WORKLOADS[rng.gen_range(0..ALL_WORKLOADS.len())])
        .collect();
    ColocationScenario::pair_in_order(&kinds).unwrap()
}

#[test]
fn every_method_attributes_exactly_the_actual_carbon() {
    let mut rng = StdRng::seed_from_u64(11);
    for &n in &[2usize, 5, 17, 60] {
        let scenario = random_scenario(&mut rng, n);
        let ctx = NodeAccounting::paper_default(CarbonIntensity::from_g_per_kwh(300.0));
        let actual = scenario.carbon(&ctx).total();
        let methods: Vec<Box<dyn ColocationAttributor>> = vec![
            Box::new(GroundTruthMatching),
            Box::new(RupColocation),
            Box::new(FairCo2Colocation::with_full_history()),
            Box::new(FairCo2Colocation::with_full_history().adjustment(AdjustmentKind::RatioForm)),
        ];
        for m in methods {
            let shares = m.attribute(&scenario, &ctx).unwrap();
            let total: f64 = shares.iter().sum();
            assert!(
                (total - actual).abs() < 1e-6 * actual,
                "{} at n={n}: {total} vs {actual}",
                m.name()
            );
        }
    }
}

#[test]
fn moment_estimator_dominates_ratio_form_and_rup() {
    // The ablation the repo adds on top of the paper: the exact-formula
    // moment estimator beats the literal Eq. 8/10 ratio form, which in
    // turn beats interference-blind RUP.
    let mut rng = StdRng::seed_from_u64(13);
    let mut rup_sum = 0.0;
    let mut ratio_sum = 0.0;
    let mut moment_sum = 0.0;
    for _ in 0..15 {
        let n = rng.gen_range(10..60);
        let ci = rng.gen_range(0.0..800.0);
        let scenario = random_scenario(&mut rng, n);
        let ctx = NodeAccounting::paper_default(CarbonIntensity::from_g_per_kwh(ci));
        let truth = GroundTruthMatching.attribute(&scenario, &ctx).unwrap();
        let rup = RupColocation.attribute(&scenario, &ctx).unwrap();
        let ratio = FairCo2Colocation::with_full_history()
            .adjustment(AdjustmentKind::RatioForm)
            .attribute(&scenario, &ctx)
            .unwrap();
        let moment = FairCo2Colocation::with_full_history()
            .attribute(&scenario, &ctx)
            .unwrap();
        rup_sum += summarize(&rup, &truth).unwrap().average_pct;
        ratio_sum += summarize(&ratio, &truth).unwrap().average_pct;
        moment_sum += summarize(&moment, &truth).unwrap().average_pct;
    }
    assert!(
        moment_sum < ratio_sum,
        "moment {moment_sum:.1} ratio {ratio_sum:.1}"
    );
    assert!(ratio_sum < rup_sum, "ratio {ratio_sum:.1} rup {rup_sum:.1}");
}

#[test]
fn ground_truth_is_placement_invariant() {
    // Shapley explores all counterfactual pairings, so shuffling the
    // actual placement must not change the *relative* ground-truth shares
    // (only the actual total changes).
    let kinds = [
        WorkloadKind::Nbody,
        WorkloadKind::Ch,
        WorkloadKind::Spark,
        WorkloadKind::Wc,
        WorkloadKind::Pg50,
        WorkloadKind::Faiss,
    ];
    let ctx = NodeAccounting::paper_default(CarbonIntensity::from_g_per_kwh(200.0));
    let a = ColocationScenario::pair_in_order(&kinds).unwrap();
    let mut reordered = kinds;
    reordered.swap(1, 4);
    reordered.swap(0, 5);
    let b = ColocationScenario::pair_in_order(&reordered).unwrap();

    let shares_a = GroundTruthMatching.attribute(&a, &ctx).unwrap();
    let shares_b = GroundTruthMatching.attribute(&b, &ctx).unwrap();
    let total_a: f64 = shares_a.iter().sum();
    let total_b: f64 = shares_b.iter().sum();
    // Match by workload kind (kinds are unique here).
    for (i, w) in a.workloads().iter().enumerate() {
        let j = b.workloads().iter().position(|x| x.kind == w.kind).unwrap();
        let frac_a = shares_a[i] / total_a;
        let frac_b = shares_b[j] / total_b;
        assert!(
            (frac_a - frac_b).abs() < 1e-9,
            "{}: {frac_a} vs {frac_b}",
            w.kind
        );
    }
}

#[test]
fn deviation_shrinks_with_history_depth() {
    // Compressed Figure 8(b): more historical samples → fairer Fair-CO₂.
    let sparse = ColocationStudy {
        trials: 30,
        min_samples: 1,
        max_samples: 2,
        base_seed: 404,
        ..ColocationStudy::default()
    };
    let rich = ColocationStudy {
        trials: 30,
        min_samples: 12,
        max_samples: 14,
        base_seed: 404,
        ..ColocationStudy::default()
    };
    let avg = |study: &ColocationStudy| {
        (0..study.trials)
            .map(|t| study.run_trial(t).fair_co2.average_pct)
            .sum::<f64>()
            / study.trials as f64
    };
    let sparse_avg = avg(&sparse);
    let rich_avg = avg(&rich);
    assert!(
        rich_avg < sparse_avg,
        "rich {rich_avg:.2}% should beat sparse {sparse_avg:.2}%"
    );
}

#[test]
fn grid_intensity_extremes_are_handled() {
    let mut rng = StdRng::seed_from_u64(21);
    let scenario = random_scenario(&mut rng, 12);
    for ci in [0.0, 1000.0] {
        let ctx = NodeAccounting::paper_default(CarbonIntensity::from_g_per_kwh(ci));
        let truth = GroundTruthMatching.attribute(&scenario, &ctx).unwrap();
        let fair = FairCo2Colocation::with_full_history()
            .attribute(&scenario, &ctx)
            .unwrap();
        let s = summarize(&fair, &truth).unwrap();
        assert!(s.average_pct < 10.0, "CI={ci}: avg {:.2}%", s.average_pct);
    }
}
