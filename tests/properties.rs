//! Property-based tests of the core invariants, across random games,
//! schedules, scenarios, and traces.

use fair_co2::attribution::demand::{
    DemandAttributor, DemandProportional, GroundTruthShapley, RupBaseline, TemporalFairCo2,
};
use fair_co2::attribution::schedule::{Schedule, ScheduledWorkload};
use fair_co2::shapley::axioms::{check_efficiency, check_linearity};
use fair_co2::shapley::exact::{exact_shapley, exact_shapley_fast};
use fair_co2::shapley::game::{Game, PeakDemandGame};
use fair_co2::shapley::temporal::{peak_shapley, peak_shapley_enumerated, TemporalShapley};
use fair_co2::shapley::{Coalition, MatchingGame};
use fair_co2::trace::TimeSeries;
use proptest::prelude::*;

fn demand_matrix(players: usize, steps: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(
        prop::collection::vec(0.0f64..100.0, steps..=steps),
        players..=players,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exact_shapley_is_efficient(demand in demand_matrix(6, 4)) {
        let game = PeakDemandGame::new(demand);
        let phi = exact_shapley(&game).unwrap();
        prop_assert!(check_efficiency(&game, &phi, 1e-9).holds());
        prop_assert!(phi.iter().all(|&p| p >= -1e-12));
    }

    #[test]
    fn gray_code_solver_matches_plain(demand in demand_matrix(7, 3)) {
        let game = PeakDemandGame::new(demand);
        let plain = exact_shapley(&game).unwrap();
        let fast = exact_shapley_fast(&game).unwrap();
        for (a, b) in plain.iter().zip(&fast) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn peak_closed_form_matches_enumeration(
        peaks in prop::collection::vec(0.0f64..1000.0, 1..10)
    ) {
        let fast = peak_shapley(&peaks);
        let slow = peak_shapley_enumerated(&peaks).unwrap();
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((a - b).abs() < 1e-9);
        }
        let total: f64 = fast.iter().sum();
        let max = peaks.iter().copied().fold(0.0f64, f64::max);
        prop_assert!((total - max).abs() < 1e-9);
    }

    #[test]
    fn matching_closed_form_matches_enumeration(
        isolated in prop::collection::vec(0.5f64..5.0, 2..8),
        scale in prop::collection::vec(1.0f64..1.8, 28..=28),
    ) {
        let n = isolated.len();
        let mut pair = vec![vec![0.0; n]; n];
        let mut k = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                let c = 0.55 * (isolated[i] + isolated[j]) * scale[k];
                k += 1;
                pair[i][j] = c;
                pair[j][i] = c;
            }
        }
        let game = MatchingGame::new(isolated, pair);
        let analytic = game.shapley();
        let enumerated = exact_shapley(&game).unwrap();
        for (a, e) in analytic.iter().zip(&enumerated) {
            prop_assert!((a - e).abs() < 1e-9, "analytic {a} vs exact {e}");
        }
    }

    #[test]
    fn shapley_operator_is_linear(
        d1 in demand_matrix(5, 3),
        d2 in demand_matrix(5, 3),
    ) {
        struct Sum(PeakDemandGame, PeakDemandGame);
        impl Game for Sum {
            fn player_count(&self) -> usize { self.0.player_count() }
            fn value(&self, c: &Coalition) -> f64 { self.0.value(c) + self.1.value(c) }
        }
        let g1 = PeakDemandGame::new(d1);
        let g2 = PeakDemandGame::new(d2);
        let sum = Sum(g1.clone(), g2.clone());
        let phi1 = exact_shapley(&g1).unwrap();
        let phi2 = exact_shapley(&g2).unwrap();
        let phi_sum = exact_shapley(&sum).unwrap();
        prop_assert!(check_linearity(&phi_sum, &phi1, &phi2, 1e-9).holds());
    }

    #[test]
    fn temporal_attribution_conserves_carbon(
        values in prop::collection::vec(0.1f64..500.0, 24..=24),
        carbon in 1.0f64..1e6,
    ) {
        let series = TimeSeries::from_values(0, 300, values).unwrap();
        let att = TemporalShapley::new(vec![4, 3]).attribute(&series, carbon).unwrap();
        let total: f64 = att
            .leaf_intensity()
            .iter()
            .zip(series.iter())
            .map(|((_, y), (_, d))| y * d * 300.0)
            .sum();
        prop_assert!((total + att.stranded_carbon() - carbon).abs() < 1e-6 * carbon);
    }

    #[test]
    fn all_demand_methods_are_efficient(
        cores in prop::collection::vec(1u8..7, 1..12),
        starts in prop::collection::vec(0usize..5, 1..12),
        durs in prop::collection::vec(1usize..4, 1..12),
    ) {
        let n = cores.len().min(starts.len()).min(durs.len());
        let workloads: Vec<ScheduledWorkload> = (0..n)
            .map(|i| {
                ScheduledWorkload::new(
                    f64::from(cores[i]) * 16.0,
                    starts[i],
                    (starts[i] + durs[i]).min(8),
                )
                .unwrap()
            })
            .collect();
        let schedule = Schedule::new(3600, 8, workloads).unwrap();
        let methods: Vec<Box<dyn DemandAttributor>> = vec![
            Box::new(GroundTruthShapley),
            Box::new(RupBaseline),
            Box::new(DemandProportional),
            Box::new(TemporalFairCo2::per_step()),
        ];
        for m in methods {
            let shares = m.attribute(&schedule, 100.0).unwrap();
            let total: f64 = shares.iter().sum();
            prop_assert!((total - 100.0).abs() < 1e-6, "{}", m.name());
        }
    }

    #[test]
    fn series_split_partition_preserves_integral(
        values in prop::collection::vec(0.0f64..100.0, 6..60),
        parts in 1usize..6,
    ) {
        let series = TimeSeries::from_values(0, 300, values).unwrap();
        prop_assume!(parts <= series.len());
        let chunks = series.split(parts).unwrap();
        let total: f64 = chunks.iter().map(TimeSeries::integral).sum();
        prop_assert!((total - series.integral()).abs() < 1e-9);
        let peak = chunks.iter().map(TimeSeries::peak).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((peak - series.peak()).abs() < 1e-12);
    }
}
