//! Carbon accounting for isolated and colocated node runs.
//!
//! In the paper's colocation scenarios (Section 6.3) every workload is
//! allocated half a node (48 logical cores, 96 GB); a node therefore runs
//! either one workload (half stranded) or a colocated pair. The carbon of
//! a node run is
//!
//! * **embodied**: the node's amortized embodied rate times its occupancy,
//! * **static operational**: idle power times occupancy times grid CI,
//! * **dynamic operational**: each resident workload's dynamic energy
//!   (interference-stretched) times grid CI.
//!
//! These three terms are exactly what the attribution methods divide and
//! what the ground-truth Shapley game evaluates.

use fairco2_carbon::units::CarbonIntensity;
use fairco2_carbon::ServerSpec;

use crate::catalog::WorkloadKind;
use crate::interference::InterferenceModel;

/// How node fixed costs (embodied + idle power) accrue to a colocated
/// pair's run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OccupancyModel {
    /// **Slot accounting** (default): each workload pays for its
    /// half-node slot while it runs; a slot freed early returns to the
    /// cluster pool. A workload placed *alone* on a node strands the
    /// second slot and carries the whole node. This matches the paper's
    /// separable cost structure (its Eqs. 8–11 decompose cost into
    /// suffered α and inflicted β terms, which is only exact when pair
    /// costs are sums of per-workload terms).
    #[default]
    SlotSeconds,
    /// **Whole-node accounting**: the node is dedicated to the pair until
    /// the slower (interference-stretched) run finishes; both fixed-cost
    /// terms accrue for `max` of the two runtimes. A harsher model kept
    /// for ablation — under it, severe asymmetric interference can erase
    /// the colocation benefit entirely.
    WholeNodeMax,
}

/// Carbon accounting context: a server model, an interference model, and
/// a (fixed) grid carbon intensity.
#[derive(Debug, Clone)]
pub struct NodeAccounting {
    server: ServerSpec,
    interference: InterferenceModel,
    grid: CarbonIntensity,
    occupancy: OccupancyModel,
}

/// Carbon of one node run, split by origin (all in gCO₂e).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeCarbon {
    /// Amortized embodied carbon for the occupancy window.
    pub embodied: f64,
    /// Static (idle-power) operational carbon for the occupancy window.
    pub static_operational: f64,
    /// Dynamic operational carbon of all resident workloads.
    pub dynamic_operational: f64,
}

impl NodeCarbon {
    /// Total node carbon.
    pub fn total(&self) -> f64 {
        self.embodied + self.static_operational + self.dynamic_operational
    }
}

impl NodeAccounting {
    /// Creates an accounting context with the default slot accounting.
    pub fn new(server: ServerSpec, interference: InterferenceModel, grid: CarbonIntensity) -> Self {
        Self {
            server,
            interference,
            grid,
            occupancy: OccupancyModel::default(),
        }
    }

    /// Switches the fixed-cost occupancy model (builder-style).
    pub fn occupancy_model(mut self, occupancy: OccupancyModel) -> Self {
        self.occupancy = occupancy;
        self
    }

    /// The paper's default context: Xeon 6240R node, calibrated
    /// interference model, given grid intensity.
    pub fn paper_default(grid: CarbonIntensity) -> Self {
        Self::new(
            ServerSpec::xeon_6240r(),
            InterferenceModel::paper_calibrated(),
            grid,
        )
    }

    /// The server model in use.
    pub fn server(&self) -> &ServerSpec {
        &self.server
    }

    /// The interference model in use.
    pub fn interference(&self) -> &InterferenceModel {
        &self.interference
    }

    /// The grid carbon intensity in use.
    pub fn grid(&self) -> CarbonIntensity {
        self.grid
    }

    /// The fixed-cost occupancy model in use.
    pub fn occupancy(&self) -> OccupancyModel {
        self.occupancy
    }

    /// Runtime of `w` given an optional colocation partner, in seconds.
    pub fn runtime(&self, w: WorkloadKind, partner: Option<WorkloadKind>) -> f64 {
        match partner {
            Some(p) => self.interference.colocated_runtime(w, p),
            None => w.profile().runtime_s,
        }
    }

    /// Dynamic energy of `w` given an optional partner, in joules.
    pub fn dynamic_energy_j(&self, w: WorkloadKind, partner: Option<WorkloadKind>) -> f64 {
        match partner {
            Some(p) => self.interference.colocated_energy_j(w, p),
            None => w.profile().dynamic_energy_j(),
        }
    }

    /// Carbon of a node running `w` alone (the other half is stranded but
    /// the whole node is occupied and idles).
    pub fn isolated(&self, w: WorkloadKind) -> NodeCarbon {
        let occupancy = self.runtime(w, None);
        self.node_carbon(occupancy, self.dynamic_energy_j(w, None))
    }

    /// Carbon of a node colocating `a` and `b` (both start together).
    /// Fixed costs accrue per the configured [`OccupancyModel`].
    pub fn pair(&self, a: WorkloadKind, b: WorkloadKind) -> NodeCarbon {
        let t_a = self.runtime(a, Some(b));
        let t_b = self.runtime(b, Some(a));
        let node_seconds = match self.occupancy {
            OccupancyModel::SlotSeconds => (t_a + t_b) / 2.0,
            OccupancyModel::WholeNodeMax => t_a.max(t_b),
        };
        let dynamic = self.dynamic_energy_j(a, Some(b)) + self.dynamic_energy_j(b, Some(a));
        self.node_carbon(node_seconds, dynamic)
    }

    fn node_carbon(&self, occupancy_s: f64, dynamic_j: f64) -> NodeCarbon {
        let rates = self.server.embodied_rates();
        let embodied = rates.node_per_second.as_grams() * occupancy_s;
        let static_energy = self.server.power.static_energy(occupancy_s);
        let static_operational = (static_energy * self.grid).as_grams();
        let dynamic_operational =
            (fairco2_carbon::Energy::from_joules(dynamic_j) * self.grid).as_grams();
        NodeCarbon {
            embodied,
            static_operational,
            dynamic_operational,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use WorkloadKind::*;

    fn ctx() -> NodeAccounting {
        NodeAccounting::paper_default(CarbonIntensity::from_g_per_kwh(250.0))
    }

    #[test]
    fn isolated_carbon_components_are_positive() {
        let c = ctx().isolated(Ch);
        assert!(c.embodied > 0.0);
        assert!(c.static_operational > 0.0);
        assert!(c.dynamic_operational > 0.0);
        assert!(
            (c.total() - (c.embodied + c.static_operational + c.dynamic_operational)).abs() < 1e-12
        );
    }

    #[test]
    fn colocation_is_cheaper_for_mildly_interfering_pairs() {
        // Amortizing idle power and embodied carbon across two tenants
        // beats dedicating a node to each when interference is moderate.
        let ctx = ctx();
        for (a, b) in [(Ddup, Wc), (Pg10, Spark), (H265, Pg50), (Wc, Nn)] {
            let pair = ctx.pair(a, b).total();
            let separate = ctx.isolated(a).total() + ctx.isolated(b).total();
            assert!(pair < separate, "{a}+{b}: pair {pair} separate {separate}");
        }
    }

    #[test]
    fn severe_interference_can_erase_the_colocation_benefit() {
        // Under whole-node accounting, NBODY stretched 87 % by CH
        // occupies the node so long that the pair emits more than two
        // dedicated nodes — the pathological case that makes
        // interference-blind attribution unfair.
        let ctx = ctx().occupancy_model(OccupancyModel::WholeNodeMax);
        let pair = ctx.pair(Nbody, Ch).total();
        let separate = ctx.isolated(Nbody).total() + ctx.isolated(Ch).total();
        assert!(pair > separate, "pair {pair} separate {separate}");
        // Slot accounting still credits the pair for releasing capacity.
        let slot_ctx = NodeAccounting::paper_default(CarbonIntensity::from_g_per_kwh(250.0));
        assert!(slot_ctx.pair(Nbody, Ch).total() < separate);
    }

    #[test]
    fn pair_is_symmetric() {
        let ctx = ctx();
        let ab = ctx.pair(Nbody, Ch);
        let ba = ctx.pair(Ch, Nbody);
        assert!((ab.total() - ba.total()).abs() < 1e-9);
    }

    #[test]
    fn occupancy_models_price_fixed_costs_differently() {
        // NBODY stretched by CH: 800 × 1.87 = 1496 s; CH: 700 × 1.39 = 973 s.
        let slot_ctx = ctx();
        let max_ctx = ctx().occupancy_model(OccupancyModel::WholeNodeMax);
        let nbody_rt = slot_ctx.runtime(Nbody, Some(Ch));
        let ch_rt = slot_ctx.runtime(Ch, Some(Nbody));
        assert!((nbody_rt - 1496.0).abs() < 2.0);
        assert!((ch_rt - 973.0).abs() < 2.0);
        let rates = slot_ctx.server().embodied_rates();
        let slot_pair = slot_ctx.pair(Nbody, Ch);
        let max_pair = max_ctx.pair(Nbody, Ch);
        let expected_slot = rates.node_per_second.as_grams() * (nbody_rt + ch_rt) / 2.0;
        let expected_max = rates.node_per_second.as_grams() * nbody_rt;
        assert!((slot_pair.embodied - expected_slot).abs() < 1e-6);
        assert!((max_pair.embodied - expected_max).abs() < 1e-6);
        // Dynamic energy is identical under both models.
        assert_eq!(slot_pair.dynamic_operational, max_pair.dynamic_operational);
    }

    #[test]
    fn zero_grid_intensity_zeroes_operational_carbon_only() {
        let ctx = NodeAccounting::paper_default(CarbonIntensity::from_g_per_kwh(0.0));
        let c = ctx.isolated(Spark);
        assert_eq!(c.static_operational, 0.0);
        assert_eq!(c.dynamic_operational, 0.0);
        assert!(c.embodied > 0.0);
    }

    #[test]
    fn higher_grid_intensity_scales_operational_linearly() {
        let low = NodeAccounting::paper_default(CarbonIntensity::from_g_per_kwh(100.0));
        let high = NodeAccounting::paper_default(CarbonIntensity::from_g_per_kwh(300.0));
        let cl = low.isolated(Faiss);
        let ch_ = high.isolated(Faiss);
        assert!((ch_.static_operational / cl.static_operational - 3.0).abs() < 1e-9);
        assert!((ch_.dynamic_operational / cl.dynamic_operational - 3.0).abs() < 1e-9);
        assert_eq!(cl.embodied, ch_.embodied);
    }
}
