//! Bubble-Up-style analytical interference model and the pairwise
//! colocation characterization it generates (paper Figure 2).
//!
//! Every workload has a **sensitivity** vector (how much contention on a
//! shared resource hurts it) and a **pressure** vector (how much
//! contention it creates) over three shared resources: last-level cache,
//! memory bandwidth, and scheduler/SMT contention. The runtime slowdown of
//! `i` colocated with `j` is `1 + sens(i)·pres(j)`.
//!
//! Anchors from the paper used for calibration:
//! * NBODY colocated with CH runs **87 %** longer, CH only **39 %** longer
//!   (`slowdown(NBODY|CH) = 1.87`, `slowdown(CH|NBODY) = 1.39`);
//! * CH is broadly aggressive, NBODY broadly sensitive;
//! * PostgreSQL's interference grows with client load (PG-100 > PG-50 >
//!   PG-10).

use serde::{Deserialize, Serialize};

use crate::catalog::{WorkloadKind, ALL_WORKLOADS};

/// Number of modelled shared resources.
pub const SHARED_RESOURCES: usize = 3;

/// Per-resource interference vector `[cache, memory bandwidth, sched]`.
pub type ResourceVector = [f64; SHARED_RESOURCES];

/// The analytical interference model.
///
/// # Example
///
/// ```
/// use fairco2_workloads::{InterferenceModel, WorkloadKind};
///
/// let model = InterferenceModel::paper_calibrated();
/// // The paper's anchor pair: NBODY suffers 87 % under CH, CH only 39 %.
/// let nbody = model.slowdown(WorkloadKind::Nbody, WorkloadKind::Ch);
/// let ch = model.slowdown(WorkloadKind::Ch, WorkloadKind::Nbody);
/// assert!((nbody - 1.87).abs() < 0.01);
/// assert!((ch - 1.39).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterferenceModel {
    sensitivity: Vec<ResourceVector>,
    pressure: Vec<ResourceVector>,
    /// Fraction of stall time during which dynamic power still burns
    /// (stalled cores clock-gate partially, so power drops below the
    /// isolated level while runtime stretches).
    stall_power_fraction: f64,
}

impl Default for InterferenceModel {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

impl InterferenceModel {
    /// The calibrated model reproducing the paper's Figure 2 anchors.
    pub fn paper_calibrated() -> Self {
        use WorkloadKind::*;
        let mut sensitivity = vec![[0.0; SHARED_RESOURCES]; ALL_WORKLOADS.len()];
        let mut pressure = vec![[0.0; SHARED_RESOURCES]; ALL_WORKLOADS.len()];
        let mut set = |w: WorkloadKind, s: ResourceVector, p: ResourceVector| {
            sensitivity[w.index()] = s;
            pressure[w.index()] = p;
        };
        //            sensitivity [$, bw, sched]   pressure [$, bw, sched]
        set(Ddup, [0.50, 0.60, 0.20], [0.40, 0.45, 0.15]);
        set(Bfs, [0.60, 0.65, 0.25], [0.35, 0.50, 0.15]);
        set(Msf, [0.55, 0.60, 0.30], [0.40, 0.45, 0.20]);
        set(Wc, [0.45, 0.50, 0.20], [0.30, 0.35, 0.10]);
        set(Sa, [0.60, 0.70, 0.25], [0.35, 0.40, 0.15]);
        set(Ch, [0.70, 0.75, 0.30], [0.55, 0.50, 0.20]);
        set(Nn, [0.55, 0.50, 0.25], [0.45, 0.40, 0.15]);
        set(Nbody, [0.80, 0.70, 0.40], [0.30, 0.20, 0.10]);
        set(Pg100, [0.50, 0.40, 0.45], [0.35, 0.30, 0.35]);
        set(Pg50, [0.40, 0.30, 0.35], [0.25, 0.20, 0.25]);
        set(Pg10, [0.25, 0.15, 0.20], [0.10, 0.08, 0.10]);
        set(H265, [0.45, 0.40, 0.30], [0.40, 0.35, 0.20]);
        set(Llama, [0.60, 0.70, 0.30], [0.45, 0.55, 0.15]);
        set(Faiss, [0.55, 0.65, 0.25], [0.40, 0.50, 0.15]);
        set(Spark, [0.50, 0.55, 0.35], [0.35, 0.40, 0.30]);
        Self {
            sensitivity,
            pressure,
            stall_power_fraction: 0.35,
        }
    }

    /// Sensitivity vector of `w`.
    pub fn sensitivity(&self, w: WorkloadKind) -> ResourceVector {
        self.sensitivity[w.index()]
    }

    /// Pressure vector of `w`.
    pub fn pressure(&self, w: WorkloadKind) -> ResourceVector {
        self.pressure[w.index()]
    }

    /// Runtime slowdown factor of `victim` when colocated with
    /// `aggressor` (≥ 1).
    pub fn slowdown(&self, victim: WorkloadKind, aggressor: WorkloadKind) -> f64 {
        let s = self.sensitivity[victim.index()];
        let p = self.pressure[aggressor.index()];
        1.0 + s.iter().zip(&p).map(|(a, b)| a * b).sum::<f64>()
    }

    /// Colocated runtime of `victim` in seconds.
    pub fn colocated_runtime(&self, victim: WorkloadKind, aggressor: WorkloadKind) -> f64 {
        victim.profile().runtime_s * self.slowdown(victim, aggressor)
    }

    /// Average dynamic power of `victim` under colocation, in watts.
    ///
    /// While stalled on contended resources a core burns only
    /// `stall_power_fraction` of its active power, so average power drops
    /// below the isolated level even though total energy rises with the
    /// longer runtime.
    pub fn colocated_power(&self, victim: WorkloadKind, aggressor: WorkloadKind) -> f64 {
        let slow = self.slowdown(victim, aggressor);
        let active_fraction = 1.0 / slow;
        let stall_fraction = 1.0 - active_fraction;
        victim.profile().dynamic_power_w
            * (active_fraction + self.stall_power_fraction * stall_fraction)
    }

    /// Dynamic energy of one colocated run of `victim`, in joules.
    pub fn colocated_energy_j(&self, victim: WorkloadKind, aggressor: WorkloadKind) -> f64 {
        self.colocated_power(victim, aggressor) * self.colocated_runtime(victim, aggressor)
    }

    /// Average CPU utilization the victim drives under colocation.
    /// Stalled threads still occupy their logical cores, so utilization
    /// stays at the isolated level for the (longer) colocated runtime —
    /// which is precisely why utilization-proportional attribution
    /// overcharges interference victims.
    pub fn colocated_utilization(&self, victim: WorkloadKind, _aggressor: WorkloadKind) -> f64 {
        victim.profile().cpu_utilization
    }

    /// The full pairwise characterization of Figure 2.
    pub fn colocation_matrix(&self) -> ColocationMatrix {
        let n = ALL_WORKLOADS.len();
        let mut runtime_factor = vec![vec![1.0; n]; n];
        let mut energy_factor = vec![vec![1.0; n]; n];
        for (vi, &victim) in ALL_WORKLOADS.iter().enumerate() {
            for (ai, &aggressor) in ALL_WORKLOADS.iter().enumerate() {
                if vi == ai {
                    continue;
                }
                runtime_factor[vi][ai] = self.slowdown(victim, aggressor);
                energy_factor[vi][ai] = self.colocated_energy_j(victim, aggressor)
                    / victim.profile().dynamic_energy_j();
            }
        }
        ColocationMatrix {
            runtime_factor,
            energy_factor,
        }
    }
}

/// Pairwise colocation characterization: entry `[victim][aggressor]` is
/// the victim's runtime (or dynamic-energy) relative to its isolated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColocationMatrix {
    /// Runtime stretch factors (≥ 1 off-diagonal, 1 on the diagonal).
    pub runtime_factor: Vec<Vec<f64>>,
    /// Dynamic-energy stretch factors.
    pub energy_factor: Vec<Vec<f64>>,
}

impl ColocationMatrix {
    /// Runtime factor for a (victim, aggressor) pair.
    pub fn runtime(&self, victim: WorkloadKind, aggressor: WorkloadKind) -> f64 {
        self.runtime_factor[victim.index()][aggressor.index()]
    }

    /// Dynamic-energy factor for a (victim, aggressor) pair.
    pub fn energy(&self, victim: WorkloadKind, aggressor: WorkloadKind) -> f64 {
        self.energy_factor[victim.index()][aggressor.index()]
    }

    /// Mean runtime slowdown inflicted by `aggressor` on all other
    /// workloads — the "pressure" ranking of Figure 2's discussion.
    pub fn mean_inflicted(&self, aggressor: WorkloadKind) -> f64 {
        let ai = aggressor.index();
        let n = self.runtime_factor.len();
        let sum: f64 = (0..n)
            .filter(|&vi| vi != ai)
            .map(|vi| self.runtime_factor[vi][ai])
            .sum();
        sum / (n - 1) as f64
    }

    /// Mean runtime slowdown suffered by `victim` across all aggressors.
    pub fn mean_suffered(&self, victim: WorkloadKind) -> f64 {
        let vi = victim.index();
        let n = self.runtime_factor.len();
        let sum: f64 = (0..n)
            .filter(|&ai| ai != vi)
            .map(|ai| self.runtime_factor[vi][ai])
            .sum();
        sum / (n - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use WorkloadKind::*;

    #[test]
    fn paper_anchor_nbody_ch() {
        let m = InterferenceModel::paper_calibrated();
        let nbody_slow = m.slowdown(Nbody, Ch);
        let ch_slow = m.slowdown(Ch, Nbody);
        assert!((nbody_slow - 1.87).abs() < 0.005, "NBODY|CH = {nbody_slow}");
        assert!((ch_slow - 1.39).abs() < 0.005, "CH|NBODY = {ch_slow}");
    }

    #[test]
    fn ch_is_the_heaviest_aggressor() {
        let matrix = InterferenceModel::paper_calibrated().colocation_matrix();
        let ch = matrix.mean_inflicted(Ch);
        for w in ALL_WORKLOADS {
            if w != Ch {
                assert!(ch >= matrix.mean_inflicted(w), "{w} inflicts more than CH");
            }
        }
    }

    #[test]
    fn nbody_is_the_most_sensitive_victim() {
        let matrix = InterferenceModel::paper_calibrated().colocation_matrix();
        let nbody = matrix.mean_suffered(Nbody);
        for w in ALL_WORKLOADS {
            if w != Nbody {
                assert!(nbody >= matrix.mean_suffered(w), "{w} suffers more");
            }
        }
    }

    #[test]
    fn postgres_interference_scales_with_load() {
        let m = InterferenceModel::paper_calibrated();
        for victim in [Ddup, Ch, Spark] {
            assert!(m.slowdown(victim, Pg100) > m.slowdown(victim, Pg50));
            assert!(m.slowdown(victim, Pg50) > m.slowdown(victim, Pg10));
        }
    }

    #[test]
    fn colocated_energy_exceeds_isolated_energy() {
        // Power drops but runtime stretches more, so energy rises.
        let m = InterferenceModel::paper_calibrated();
        for victim in ALL_WORKLOADS {
            for aggressor in ALL_WORKLOADS {
                if victim == aggressor {
                    continue;
                }
                let factor =
                    m.colocated_energy_j(victim, aggressor) / victim.profile().dynamic_energy_j();
                assert!(factor >= 1.0, "{victim}|{aggressor}: {factor}");
                assert!(factor < 2.0, "{victim}|{aggressor}: {factor}");
                assert!(m.colocated_power(victim, aggressor) <= victim.profile().dynamic_power_w);
            }
        }
    }

    #[test]
    fn interference_induced_runtime_misattribution_exceeds_30_percent() {
        // The paper's claim: ignoring interference can misattribute by
        // more than 30 % — runtime (and thus allocation-time attribution)
        // stretches by >30 % for the worst pairs.
        let matrix = InterferenceModel::paper_calibrated().colocation_matrix();
        let mut worst = 0.0f64;
        for v in ALL_WORKLOADS {
            for a in ALL_WORKLOADS {
                if a != v {
                    worst = worst.max(matrix.runtime(v, a));
                }
            }
        }
        assert!(worst > 1.30, "worst runtime factor {worst}");
    }

    #[test]
    fn matrix_diagonal_is_identity() {
        let matrix = InterferenceModel::paper_calibrated().colocation_matrix();
        for w in ALL_WORKLOADS {
            assert_eq!(matrix.runtime(w, w), 1.0);
            assert_eq!(matrix.energy(w, w), 1.0);
        }
    }
}
