//! The fifteen-workload evaluation suite (paper Section 6.2).

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// The workloads of the paper's evaluation suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// PBBS: remove duplicates from 2 billion random integers.
    Ddup,
    /// PBBS: breadth-first search on a 640 M-node directed graph.
    Bfs,
    /// PBBS: minimum spanning forest, 120 M nodes / 2.4 B edges.
    Msf,
    /// PBBS: word count over 500 B characters.
    Wc,
    /// PBBS: suffix array of a 500 B-character string.
    Sa,
    /// PBBS: convex hull of 1 B points in 2-D.
    Ch,
    /// PBBS: 10-nearest-neighbours for 50 M 3-D points.
    Nn,
    /// PBBS: n-body gravitational forces for 10 M 3-D points.
    Nbody,
    /// pgbench with 100 concurrent clients.
    Pg100,
    /// pgbench with 50 concurrent clients.
    Pg50,
    /// pgbench with 10 concurrent clients.
    Pg10,
    /// x265 encoding of a 2.6 GB 4K video.
    H265,
    /// Llama 3 8B CPU inference via llama.cpp.
    Llama,
    /// FAISS vector-similarity retrieval.
    Faiss,
    /// Apache Spark SQL over a TPC-DS-derived table.
    Spark,
}

/// All workloads, in the paper's presentation order.
pub const ALL_WORKLOADS: [WorkloadKind; 15] = [
    WorkloadKind::Ddup,
    WorkloadKind::Bfs,
    WorkloadKind::Msf,
    WorkloadKind::Wc,
    WorkloadKind::Sa,
    WorkloadKind::Ch,
    WorkloadKind::Nn,
    WorkloadKind::Nbody,
    WorkloadKind::Pg100,
    WorkloadKind::Pg50,
    WorkloadKind::Pg10,
    WorkloadKind::H265,
    WorkloadKind::Llama,
    WorkloadKind::Faiss,
    WorkloadKind::Spark,
];

impl WorkloadKind {
    /// Index of this workload in [`ALL_WORKLOADS`].
    pub fn index(self) -> usize {
        ALL_WORKLOADS
            .iter()
            .position(|&w| w == self)
            .expect("ALL_WORKLOADS is exhaustive")
    }

    /// Short display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Ddup => "DDUP",
            WorkloadKind::Bfs => "BFS",
            WorkloadKind::Msf => "MSF",
            WorkloadKind::Wc => "WC",
            WorkloadKind::Sa => "SA",
            WorkloadKind::Ch => "CH",
            WorkloadKind::Nn => "NN",
            WorkloadKind::Nbody => "NBODY",
            WorkloadKind::Pg100 => "PG-100",
            WorkloadKind::Pg50 => "PG-50",
            WorkloadKind::Pg10 => "PG-10",
            WorkloadKind::H265 => "H.265",
            WorkloadKind::Llama => "LLAMA",
            WorkloadKind::Faiss => "FAISS",
            WorkloadKind::Spark => "SPARK",
        }
    }

    /// The paper's description of the workload's input (Section 6.2).
    pub fn description(self) -> &'static str {
        match self {
            WorkloadKind::Ddup => "remove duplicates from 2 billion random integers",
            WorkloadKind::Bfs => "breadth-first search on a 640 million node directed graph",
            WorkloadKind::Msf => {
                "minimum spanning forest on 120 million nodes and 2.4 billion edges"
            }
            WorkloadKind::Wc => "word count over 500 billion characters",
            WorkloadKind::Sa => "suffix array of a 500 billion character string",
            WorkloadKind::Ch => "convex hull of 1 billion points in 2-D",
            WorkloadKind::Nn => "10 nearest neighbours for 50 million 3-D points",
            WorkloadKind::Nbody => "gravitational forces of 10 million 3-D points",
            WorkloadKind::Pg100 => "pgbench with 100 concurrent clients",
            WorkloadKind::Pg50 => "pgbench with 50 concurrent clients",
            WorkloadKind::Pg10 => "pgbench with 10 concurrent clients",
            WorkloadKind::H265 => "x265 encoding of a 2.6 GB 4K video",
            WorkloadKind::Llama => {
                "Llama 3 8B inference via llama.cpp (batch 1, 128-token prompt, 64-token output)"
            }
            WorkloadKind::Faiss => "FAISS retrieval over IVF and HNSW indices",
            WorkloadKind::Spark => "Spark SQL over a scaled TPC-DS STORE_SALES table",
        }
    }

    /// Isolated execution profile on a half-node allocation (48 logical
    /// cores, 96 GB — the Section 6.3 setup).
    ///
    /// Values are the synthetic substitute for the paper's Intel
    /// PCM/Docker telemetry: isolated runtime, average dynamic (above
    /// idle) power, average whole-node CPU utilization driven, and
    /// resident memory.
    pub fn profile(self) -> IsolatedProfile {
        // runtime (s), dynamic power (W), node CPU utilization, memory (GB)
        let (runtime_s, dynamic_power_w, cpu_utilization, memory_gb) = match self {
            WorkloadKind::Ddup => (620.0, 150.0, 0.48, 60.0),
            WorkloadKind::Bfs => (540.0, 140.0, 0.45, 80.0),
            WorkloadKind::Msf => (900.0, 155.0, 0.47, 90.0),
            WorkloadKind::Wc => (480.0, 130.0, 0.46, 70.0),
            WorkloadKind::Sa => (1100.0, 145.0, 0.44, 88.0),
            WorkloadKind::Ch => (700.0, 170.0, 0.50, 40.0),
            WorkloadKind::Nn => (650.0, 160.0, 0.49, 55.0),
            WorkloadKind::Nbody => (800.0, 175.0, 0.50, 20.0),
            WorkloadKind::Pg100 => (1200.0, 120.0, 0.40, 30.0),
            WorkloadKind::Pg50 => (1200.0, 90.0, 0.30, 24.0),
            WorkloadKind::Pg10 => (1200.0, 45.0, 0.15, 16.0),
            WorkloadKind::H265 => (1500.0, 165.0, 0.50, 10.0),
            WorkloadKind::Llama => (1000.0, 150.0, 0.48, 35.0),
            WorkloadKind::Faiss => (900.0, 140.0, 0.46, 78.0),
            WorkloadKind::Spark => (1300.0, 135.0, 0.42, 85.0),
        };
        IsolatedProfile {
            kind: self,
            runtime_s,
            dynamic_power_w,
            cpu_utilization,
            memory_gb,
            allocated_cores: 48,
            allocated_memory_gb: 96.0,
        }
    }
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown workload name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseWorkloadError(String);

impl fmt::Display for ParseWorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown workload name: {}", self.0)
    }
}

impl std::error::Error for ParseWorkloadError {}

impl FromStr for WorkloadKind {
    type Err = ParseWorkloadError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ALL_WORKLOADS
            .iter()
            .copied()
            .find(|w| w.name().eq_ignore_ascii_case(s))
            .ok_or_else(|| ParseWorkloadError(s.to_owned()))
    }
}

/// Telemetry of a workload running alone on its half-node allocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IsolatedProfile {
    /// Which workload this profile describes.
    pub kind: WorkloadKind,
    /// Wall-clock runtime in seconds when running in isolation.
    pub runtime_s: f64,
    /// Average dynamic (above-idle) power draw in watts.
    pub dynamic_power_w: f64,
    /// Average CPU utilization of the whole node in `[0, 1]`.
    pub cpu_utilization: f64,
    /// Resident memory in GB.
    pub memory_gb: f64,
    /// Allocated logical cores (half a 96-thread node).
    pub allocated_cores: u32,
    /// Allocated memory in GB (half of 192 GB).
    pub allocated_memory_gb: f64,
}

impl IsolatedProfile {
    /// Dynamic energy of one isolated run, in joules.
    pub fn dynamic_energy_j(&self) -> f64 {
        self.dynamic_power_w * self.runtime_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_is_exhaustive_and_indexed() {
        assert_eq!(ALL_WORKLOADS.len(), 15);
        for (k, w) in ALL_WORKLOADS.iter().enumerate() {
            assert_eq!(w.index(), k);
        }
    }

    #[test]
    fn every_workload_has_a_paper_description() {
        for w in ALL_WORKLOADS {
            assert!(!w.description().is_empty());
        }
        assert!(WorkloadKind::Ddup.description().contains("2 billion"));
        assert!(WorkloadKind::Llama.description().contains("Llama 3 8B"));
    }

    #[test]
    fn names_round_trip_through_parsing() {
        for w in ALL_WORKLOADS {
            let parsed: WorkloadKind = w.name().parse().unwrap();
            assert_eq!(parsed, w);
        }
        assert!("pg-100".parse::<WorkloadKind>().is_ok());
        assert!("NOPE".parse::<WorkloadKind>().is_err());
    }

    #[test]
    fn profiles_are_physically_plausible() {
        for w in ALL_WORKLOADS {
            let p = w.profile();
            assert!(p.runtime_s > 0.0, "{w}");
            assert!(p.dynamic_power_w > 0.0 && p.dynamic_power_w < 360.0, "{w}");
            assert!((0.0..=1.0).contains(&p.cpu_utilization), "{w}");
            assert!(p.memory_gb <= p.allocated_memory_gb, "{w}");
            assert_eq!(p.allocated_cores, 48);
        }
    }

    #[test]
    fn postgres_load_levels_order_power_and_utilization() {
        let p100 = WorkloadKind::Pg100.profile();
        let p50 = WorkloadKind::Pg50.profile();
        let p10 = WorkloadKind::Pg10.profile();
        assert!(p100.dynamic_power_w > p50.dynamic_power_w);
        assert!(p50.dynamic_power_w > p10.dynamic_power_w);
        assert!(p100.cpu_utilization > p10.cpu_utilization);
    }

    #[test]
    fn dynamic_energy_is_power_times_runtime() {
        let p = WorkloadKind::Ch.profile();
        assert_eq!(p.dynamic_energy_j(), 170.0 * 700.0);
    }
}
