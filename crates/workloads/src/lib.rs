//! Workload catalog, interference model, and colocation accounting.
//!
//! The paper characterizes fifteen workloads (eight PBBS kernels,
//! PostgreSQL at three load levels, H.265 encoding, Llama inference,
//! FAISS retrieval, and Apache Spark) on a two-socket Xeon server, running
//! every pairwise colocation to measure interference (its Figure 2). This
//! crate substitutes that hardware profiling with an analytical
//! Bubble-Up-style model:
//!
//! * every workload carries a *sensitivity* and a *pressure* vector over
//!   three shared resources (last-level cache, memory bandwidth,
//!   scheduling/SMT contention);
//! * the slowdown of `i` colocated with `j` is
//!   `1 + sens(i) · pres(j)` — large pressure hurts partners, large
//!   sensitivity means being hurt;
//! * the vectors are calibrated to the anchors the paper reports
//!   (NBODY+CH → 87 % / 39 % runtime increases; CH is a heavy aggressor,
//!   NBODY a sensitive victim; PostgreSQL's interference scales with its
//!   client load).
//!
//! On top of the model, [`node`] computes the carbon of isolated and
//! colocated node runs (embodied occupancy + static + dynamic energy),
//! which is exactly the input the attribution methods and the ground-truth
//! Shapley game consume, and [`history`] builds the sparse historical
//! α/β interference profiles of the paper's Section 5.2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod history;
pub mod interference;
pub mod node;

pub use catalog::{IsolatedProfile, WorkloadKind, ALL_WORKLOADS};
pub use interference::InterferenceModel;
pub use node::NodeAccounting;
