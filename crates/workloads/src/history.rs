//! Historical colocation profiles: the α/β statistics of Section 5.2.
//!
//! Fair-CO₂ adjusts attribution using each workload's *historically
//! observed* interference behaviour: `α` is the average effect it suffers
//! under colocation, `β` the average effect it inflicts on partners. In
//! production these come from telemetry of past colocations; here they are
//! estimated from a sampled subset of the pairwise characterization —
//! including the sparse-history regime (1 of 15 partners sampled) that the
//! paper's Figure 8(b,f) stresses.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::catalog::{WorkloadKind, ALL_WORKLOADS};
use crate::interference::InterferenceModel;

/// Historical interference profile of one workload.
///
/// Carries both the *ratio* statistics of the paper's Eqs. 8 and 10
/// (slowdown/energy-stretch factors α, β) and the *absolute* marginal
/// statistics (expected node occupancy and energies) that the
/// matching-game ground truth is built from — both estimable from the
/// same historical colocation telemetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterferenceProfile {
    /// Mean runtime slowdown *suffered* under colocation (`α_T ≥ 1`).
    pub alpha_runtime: f64,
    /// Mean runtime slowdown *inflicted* on partners (`β_T ≥ 1`).
    pub beta_runtime: f64,
    /// Mean dynamic-energy stretch suffered (`α_P ≥ 1`).
    pub alpha_energy: f64,
    /// Mean dynamic-energy stretch inflicted (`β_P ≥ 1`).
    pub beta_energy: f64,
    /// Mean node occupancy observed while this workload was resident
    /// under whole-node accounting:
    /// `E_j[max(T_i·s_{i|j}, T_j·s_{j|i})]`, in seconds.
    pub mean_occupancy_s: f64,
    /// Mean node-seconds of the pair under slot accounting:
    /// `E_j[(T_i·s_{i|j} + T_j·s_{j|i})/2]`, in seconds.
    pub mean_slot_s: f64,
    /// Mean dynamic energy of this workload's own colocated runs, in
    /// joules (`E_j[E_{i|j}]`).
    pub mean_own_energy_j: f64,
    /// Mean dynamic energy of this workload's partners while colocated
    /// with it, in joules (`E_j[E_{j|i}]`).
    pub mean_partner_energy_j: f64,
    /// Mean *extra* runtime inflicted on partners, in absolute seconds:
    /// `E_j[T_j·(s_{j|i} − 1)]`. Unlike the partner's base runtime (which
    /// is a property of the tenant population, not of this workload),
    /// this term isolates the interference this workload causes.
    pub mean_inflicted_extra_runtime_s: f64,
    /// Mean *extra* dynamic energy inflicted on partners, in joules:
    /// `E_j[E_{j|i} − E_{j,iso}]`.
    pub mean_inflicted_extra_energy_j: f64,
    /// Number of historical partners the estimate is conditioned on.
    pub samples: usize,
}

/// Builds the *full-history* profile of `w`: α/β averaged over all other
/// workloads in the suite.
pub fn full_profile(model: &InterferenceModel, w: WorkloadKind) -> InterferenceProfile {
    let partners: Vec<WorkloadKind> = ALL_WORKLOADS.iter().copied().filter(|&p| p != w).collect();
    profile_from_partners(model, w, &partners)
}

/// Builds a *sparse-history* profile of `w` conditioned on `samples`
/// uniformly drawn historical partners (without replacement, from the
/// 14 other suite members).
///
/// # Panics
///
/// Panics if `samples` is zero or exceeds the number of possible partners.
pub fn sampled_profile(
    model: &InterferenceModel,
    w: WorkloadKind,
    samples: usize,
    rng: &mut impl Rng,
) -> InterferenceProfile {
    let mut partners: Vec<WorkloadKind> =
        ALL_WORKLOADS.iter().copied().filter(|&p| p != w).collect();
    assert!(
        samples >= 1 && samples <= partners.len(),
        "samples must be in 1..={}",
        partners.len()
    );
    partners.shuffle(rng);
    partners.truncate(samples);
    profile_from_partners(model, w, &partners)
}

/// Builds a sparse-history profile of `w` whose historical partners are
/// drawn (with replacement) from a given *population* — e.g. the workload
/// mix of the cluster the history was recorded on. This mirrors
/// production telemetry: a workload's past colocations are draws from the
/// same tenant population it is being attributed against.
///
/// # Panics
///
/// Panics if `samples` is zero or `population` is empty.
pub fn sampled_profile_from_population(
    model: &InterferenceModel,
    w: WorkloadKind,
    population: &[WorkloadKind],
    samples: usize,
    rng: &mut impl Rng,
) -> InterferenceProfile {
    assert!(samples >= 1, "at least one historical sample is required");
    assert!(!population.is_empty(), "population must be non-empty");
    let partners: Vec<WorkloadKind> = (0..samples)
        .map(|_| population[rng.gen_range(0..population.len())])
        .collect();
    profile_from_partners(model, w, &partners)
}

fn profile_from_partners(
    model: &InterferenceModel,
    w: WorkloadKind,
    partners: &[WorkloadKind],
) -> InterferenceProfile {
    let n = partners.len() as f64;
    let iso_energy = w.profile().dynamic_energy_j();
    let mut alpha_runtime = 0.0;
    let mut beta_runtime = 0.0;
    let mut alpha_energy = 0.0;
    let mut beta_energy = 0.0;
    let mut occupancy = 0.0;
    let mut slot = 0.0;
    let mut own_energy = 0.0;
    let mut partner_energy = 0.0;
    let mut inflicted_rt = 0.0;
    let mut inflicted_energy = 0.0;
    for &p in partners {
        alpha_runtime += model.slowdown(w, p);
        beta_runtime += model.slowdown(p, w);
        alpha_energy += model.colocated_energy_j(w, p) / iso_energy;
        beta_energy += model.colocated_energy_j(p, w) / p.profile().dynamic_energy_j();
        let own_rt = model.colocated_runtime(w, p);
        let partner_rt = model.colocated_runtime(p, w);
        occupancy += own_rt.max(partner_rt);
        slot += (own_rt + partner_rt) / 2.0;
        own_energy += model.colocated_energy_j(w, p);
        partner_energy += model.colocated_energy_j(p, w);
        inflicted_rt += partner_rt - p.profile().runtime_s;
        inflicted_energy += model.colocated_energy_j(p, w) - p.profile().dynamic_energy_j();
    }
    InterferenceProfile {
        alpha_runtime: alpha_runtime / n,
        beta_runtime: beta_runtime / n,
        alpha_energy: alpha_energy / n,
        beta_energy: beta_energy / n,
        mean_occupancy_s: occupancy / n,
        mean_slot_s: slot / n,
        mean_own_energy_j: own_energy / n,
        mean_partner_energy_j: partner_energy / n,
        mean_inflicted_extra_runtime_s: inflicted_rt / n,
        mean_inflicted_extra_energy_j: inflicted_energy / n,
        samples: partners.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use WorkloadKind::*;

    #[test]
    fn full_profile_orders_known_workloads() {
        let m = InterferenceModel::paper_calibrated();
        let nbody = full_profile(&m, Nbody);
        let ch = full_profile(&m, Ch);
        let pg10 = full_profile(&m, Pg10);
        // NBODY suffers most; CH inflicts most; PG-10 is nearly inert.
        assert!(nbody.alpha_runtime > ch.alpha_runtime);
        assert!(ch.beta_runtime > nbody.beta_runtime);
        assert!(pg10.beta_runtime < 1.15);
        assert_eq!(nbody.samples, 14);
    }

    #[test]
    fn sampled_profile_converges_to_full_profile() {
        let m = InterferenceModel::paper_calibrated();
        let full = full_profile(&m, Spark);
        let mut rng = StdRng::seed_from_u64(4);
        let all = sampled_profile(&m, Spark, 14, &mut rng);
        assert!((all.alpha_runtime - full.alpha_runtime).abs() < 1e-12);
        assert!((all.beta_energy - full.beta_energy).abs() < 1e-12);
    }

    #[test]
    fn single_sample_is_still_informative() {
        // The paper's point: even one historical sample separates heavy
        // aggressors from inert workloads on average.
        let m = InterferenceModel::paper_calibrated();
        let mut rng = StdRng::seed_from_u64(7);
        let trials = 200;
        let mean_beta = |w: WorkloadKind, rng: &mut StdRng| {
            (0..trials)
                .map(|_| sampled_profile(&m, w, 1, rng).beta_runtime)
                .sum::<f64>()
                / trials as f64
        };
        let ch = mean_beta(Ch, &mut rng);
        let pg10 = mean_beta(Pg10, &mut rng);
        assert!(ch > pg10 + 0.2, "CH {ch} vs PG-10 {pg10}");
    }

    #[test]
    fn profiles_never_drop_below_one() {
        let m = InterferenceModel::paper_calibrated();
        let mut rng = StdRng::seed_from_u64(1);
        for w in ALL_WORKLOADS {
            for s in [1, 5, 14] {
                let p = sampled_profile(&m, w, s, &mut rng);
                assert!(p.alpha_runtime >= 1.0);
                assert!(p.beta_runtime >= 1.0);
                assert!(p.alpha_energy >= 1.0);
                assert!(p.beta_energy >= 1.0);
                assert_eq!(p.samples, s);
            }
        }
    }

    #[test]
    #[should_panic(expected = "samples must be in")]
    fn zero_samples_panics() {
        let m = InterferenceModel::paper_calibrated();
        let mut rng = StdRng::seed_from_u64(1);
        let _ = sampled_profile(&m, Ch, 0, &mut rng);
    }
}
