//! Property tests over the interference model and node accounting:
//! physical-bounds invariants that must hold for every workload pair and
//! every grid intensity.

use fairco2_carbon::units::CarbonIntensity;
use fairco2_workloads::history::{full_profile, sampled_profile_from_population};
use fairco2_workloads::node::OccupancyModel;
use fairco2_workloads::{InterferenceModel, NodeAccounting, WorkloadKind, ALL_WORKLOADS};
use proptest::prelude::*;

fn any_workload() -> impl Strategy<Value = WorkloadKind> {
    (0usize..ALL_WORKLOADS.len()).prop_map(|i| ALL_WORKLOADS[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn slowdowns_are_bounded_and_directional(a in any_workload(), b in any_workload()) {
        let m = InterferenceModel::paper_calibrated();
        let s = m.slowdown(a, b);
        prop_assert!(s >= 1.0, "{a}|{b}: {s}");
        prop_assert!(s <= 2.0, "{a}|{b}: {s}");
        // Colocated power never exceeds isolated power; colocated energy
        // never drops below isolated energy.
        prop_assert!(m.colocated_power(a, b) <= a.profile().dynamic_power_w + 1e-9);
        prop_assert!(m.colocated_energy_j(a, b) >= a.profile().dynamic_energy_j() - 1e-9);
    }

    #[test]
    fn pair_cost_is_symmetric_under_both_occupancy_models(
        a in any_workload(),
        b in any_workload(),
        ci in 0.0f64..1000.0,
    ) {
        for model in [OccupancyModel::SlotSeconds, OccupancyModel::WholeNodeMax] {
            let ctx = NodeAccounting::paper_default(CarbonIntensity::from_g_per_kwh(ci))
                .occupancy_model(model);
            let ab = ctx.pair(a, b).total();
            let ba = ctx.pair(b, a).total();
            prop_assert!((ab - ba).abs() < 1e-9 * ab.max(1.0));
        }
    }

    #[test]
    fn slot_accounting_never_exceeds_whole_node_accounting(
        a in any_workload(),
        b in any_workload(),
        ci in 0.0f64..1000.0,
    ) {
        let slot = NodeAccounting::paper_default(CarbonIntensity::from_g_per_kwh(ci));
        let max = NodeAccounting::paper_default(CarbonIntensity::from_g_per_kwh(ci))
            .occupancy_model(OccupancyModel::WholeNodeMax);
        // (x + y)/2 ≤ max(x, y), so slot fixed costs are a lower bound.
        prop_assert!(slot.pair(a, b).embodied <= max.pair(a, b).embodied + 1e-9);
        prop_assert!(
            slot.pair(a, b).static_operational <= max.pair(a, b).static_operational + 1e-9
        );
    }

    #[test]
    fn sampled_profiles_are_bounded_by_extremes(
        w in any_workload(),
        samples in 1usize..10,
        seed in 0u64..1000,
    ) {
        use rand::SeedableRng;
        let m = InterferenceModel::paper_calibrated();
        let pool: Vec<WorkloadKind> = ALL_WORKLOADS.iter().copied().filter(|&p| p != w).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let prof = sampled_profile_from_population(&m, w, &pool, samples, &mut rng);
        // Sampled statistics lie within the per-partner extremes.
        let alphas: Vec<f64> = pool.iter().map(|&p| m.slowdown(w, p)).collect();
        let lo = alphas.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = alphas.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(prof.alpha_runtime >= lo - 1e-12 && prof.alpha_runtime <= hi + 1e-12);
        prop_assert_eq!(prof.samples, samples);
    }
}

#[test]
fn full_profiles_are_the_mean_of_per_partner_statistics() {
    let m = InterferenceModel::paper_calibrated();
    for w in ALL_WORKLOADS {
        let prof = full_profile(&m, w);
        let partners: Vec<WorkloadKind> =
            ALL_WORKLOADS.iter().copied().filter(|&p| p != w).collect();
        let mean_alpha: f64 =
            partners.iter().map(|&p| m.slowdown(w, p)).sum::<f64>() / partners.len() as f64;
        assert!((prof.alpha_runtime - mean_alpha).abs() < 1e-12, "{w}");
        let mean_slot: f64 = partners
            .iter()
            .map(|&p| (m.colocated_runtime(w, p) + m.colocated_runtime(p, w)) / 2.0)
            .sum::<f64>()
            / partners.len() as f64;
        assert!((prof.mean_slot_s - mean_slot).abs() < 1e-9, "{w}");
    }
}
