//! **Sharded cluster simulation** — the Azure-scale execution path.
//!
//! One [`Simulator::run`] event loop over ~2M jobs keeps every running
//! job in a single queue: each event pays an `O(running)` completion
//! scan, and nothing parallelizes. This module shards the cluster by
//! *node range*: jobs are striped round-robin by stream position onto
//! `shards` independent sub-clusters, each simulated with its own event
//! queue (fanned across threads through `run_parallel`), and the shard
//! outcomes are merged in shard order:
//!
//! * **job records** keep their original stream ids; node ids are offset
//!   by the cumulative node counts of earlier shards, so every shard owns
//!   a disjoint node range in the merged outcome;
//! * **occupancy** is reconstructed by a k-way sweep over the shards'
//!   `(time, occupied)` sample timelines — the merged level at any time
//!   is the sum of the shards' piecewise-constant levels, which yields
//!   the cluster-wide `peak_nodes` and 5-minute `node_demand` series;
//! * **node-seconds** add across shards (each shard's sum is untouched),
//!   and the makespan folds exactly like the serial loop's.
//!
//! Determinism: the striping depends only on stream position and shard
//! count, every shard runs its own policy instance, and `run_parallel`
//! returns results in shard order — so the merged outcome is
//! **bit-identical at any thread count**, and a single shard reproduces
//! [`Simulator::run`] exactly (pinned against the serial reference loop
//! in `simulator`'s tests and by proptests across shard-size seams).

use fairco2_shapley::parallel::run_parallel;

use crate::policy::PlacementPolicy;
use crate::simulator::{build_demand, JobRecord, SimulationOutcome, Simulator};
use crate::workload::{Job, JobStream};

/// Runs `stream` on `shards` independent sub-clusters fanned over
/// `threads` workers and merges the outcomes (see the module docs for
/// the merge semantics).
///
/// `make_policy` builds one policy instance per shard (stateful policies
/// like `RandomFit` should derive their seed from the shard index so
/// shard outcomes stay deterministic).
///
/// `shards` is clamped to `[1, stream.len()]`; with one shard this is
/// exactly [`Simulator::run`].
pub fn run_sharded<F>(
    sim: &Simulator,
    stream: &JobStream,
    shards: usize,
    threads: usize,
    make_policy: F,
) -> SimulationOutcome
where
    F: Fn(usize) -> Box<dyn PlacementPolicy> + Sync,
{
    let shards = shards.clamp(1, stream.len());
    if shards == 1 {
        return sim.run(stream, make_policy(0).as_mut());
    }
    let subs = split_round_robin(stream, shards);
    let results = run_parallel(shards, threads, |s| {
        let mut policy = make_policy(s);
        sim.run_with_samples(&subs[s].0, policy.as_mut())
    });
    merge_shards(stream.len(), &subs, &results)
}

/// Stripes the stream round-robin by position into `shards` sub-streams
/// with locally renumbered job ids, returning each sub-stream with its
/// local-id → original-id map. Striping by position keeps every
/// sub-stream sorted by arrival.
pub(crate) fn split_round_robin(stream: &JobStream, shards: usize) -> Vec<(JobStream, Vec<usize>)> {
    let mut parts: Vec<(Vec<Job>, Vec<usize>)> = vec![(Vec::new(), Vec::new()); shards];
    for (pos, job) in stream.jobs().iter().enumerate() {
        let (jobs, map) = &mut parts[pos % shards];
        jobs.push(Job {
            id: jobs.len(),
            kind: job.kind,
            arrival_s: job.arrival_s,
        });
        map.push(job.id);
    }
    parts
        .into_iter()
        .map(|(jobs, map)| (JobStream::from_sorted(jobs), map))
        .collect()
}

/// Merges shard outcomes (in shard order) into one cluster-wide
/// [`SimulationOutcome`]; see the module docs for the semantics.
pub(crate) fn merge_shards(
    total_jobs: usize,
    subs: &[(JobStream, Vec<usize>)],
    results: &[(SimulationOutcome, Vec<(f64, usize)>)],
) -> SimulationOutcome {
    let mut records: Vec<Option<JobRecord>> = vec![None; total_jobs];
    let mut node_seconds = 0.0f64;
    let mut node_offset = 0usize;
    // (time, shard, occupied-level) across all shards.
    let mut events: Vec<(f64, usize, usize)> = Vec::new();
    for (s, ((_, map), (out, samples))) in subs.iter().zip(results).enumerate() {
        for rec in &out.jobs {
            let mut r = rec.clone();
            r.id = map[rec.id];
            r.node += node_offset;
            let slot = r.id;
            records[slot] = Some(r);
        }
        node_seconds += out.node_seconds;
        node_offset += out.jobs.iter().map(|j| j.node).max().map_or(0, |m| m + 1);
        events.extend(samples.iter().map(|&(t, level)| (t, s, level)));
    }
    // Sweep the union of sample times: each shard's level is piecewise
    // constant (carried forward), so the merged level at a time is the
    // sum of the shards' current levels. Integer occupancy sums exactly.
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut levels = vec![0usize; subs.len()];
    let mut merged: Vec<(f64, usize)> = Vec::new();
    let mut i = 0usize;
    while i < events.len() {
        let t = events[i].0;
        while i < events.len() && events[i].0 == t {
            levels[events[i].1] = events[i].2;
            i += 1;
        }
        merged.push((t, levels.iter().sum()));
    }

    let jobs: Vec<JobRecord> = records
        .into_iter()
        .map(|r| r.expect("every job completes"))
        .collect();
    let makespan_s = jobs.iter().map(|j| j.finish_s).fold(0.0, f64::max);
    let peak_nodes = merged.iter().map(|&(_, l)| l).max().unwrap_or(0);
    let node_demand = build_demand(&merged, makespan_s);
    SimulationOutcome {
        jobs,
        node_seconds,
        peak_nodes,
        makespan_s,
        node_demand,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{FirstFit, RandomFit};

    #[test]
    fn single_shard_is_exactly_the_serial_run() {
        let sim = Simulator::paper_default();
        let stream = JobStream::poisson(120, 50.0, 21);
        let serial = sim.run(&stream, &mut FirstFit);
        for threads in [1usize, 2, 8] {
            let sharded = run_sharded(&sim, &stream, 1, threads, |_| Box::new(FirstFit));
            assert_eq!(sharded, serial, "threads {threads}");
        }
    }

    #[test]
    fn sharded_outcome_is_thread_invariant() {
        let sim = Simulator::paper_default();
        let stream = JobStream::poisson(157, 40.0, 9);
        for shards in [2usize, 3, 5, 8] {
            let make = |s: usize| -> Box<dyn PlacementPolicy> {
                Box::new(RandomFit::seeded(1000 + s as u64))
            };
            let base = run_sharded(&sim, &stream, shards, 1, make);
            for threads in [2usize, 8] {
                assert_eq!(
                    run_sharded(&sim, &stream, shards, threads, make),
                    base,
                    "shards {shards} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn striping_covers_all_jobs_and_stays_sorted() {
        let stream = JobStream::poisson(101, 30.0, 4);
        let subs = split_round_robin(&stream, 7);
        let mut seen: Vec<usize> = subs.iter().flat_map(|(_, map)| map.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..101).collect::<Vec<_>>());
        for (sub, _) in &subs {
            assert!(sub
                .jobs()
                .windows(2)
                .all(|w| w[0].arrival_s <= w[1].arrival_s));
        }
    }

    #[test]
    fn shards_own_disjoint_node_ranges() {
        let sim = Simulator::paper_default();
        let stream = JobStream::poisson(90, 35.0, 2);
        let out = run_sharded(&sim, &stream, 4, 2, |_| Box::new(FirstFit));
        // All jobs present, each on some node; node-seconds and peak are
        // cluster-wide aggregates.
        assert_eq!(out.jobs.len(), 90);
        assert!(out.peak_nodes > 0);
        assert!(out.node_seconds > 0.0);
        assert!(out.node_demand.is_some());
        // The merged makespan is the slowest shard's.
        let serial = sim.run(&stream, &mut FirstFit);
        assert!(out.makespan_s >= serial.makespan_s * 0.5);
    }
}
