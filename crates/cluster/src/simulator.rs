//! The discrete-event simulator: jobs arrive, a policy places them onto
//! half-node slots, and execution progresses under the pairwise
//! interference model, with rates recomputed whenever a partner arrives
//! or departs.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

use serde::{Deserialize, Serialize};

use fairco2_trace::series::TimeSeries;
use fairco2_workloads::{InterferenceModel, NodeAccounting, WorkloadKind};

use crate::policy::{NodeView, PlacementPolicy};
use crate::workload::JobStream;

/// One finished job's telemetry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Job id (stream index).
    pub id: usize,
    /// Workload kind.
    pub kind: WorkloadKind,
    /// Arrival time (s).
    pub arrival_s: f64,
    /// Start time (s) — equals arrival (no queueing; the cluster grows).
    pub start_s: f64,
    /// Completion time (s).
    pub finish_s: f64,
    /// Dynamic energy consumed (J).
    pub energy_j: f64,
    /// Node the job ran on.
    pub node: usize,
    /// Time spent colocated (s).
    pub colocated_s: f64,
}

impl JobRecord {
    /// Observed wall-clock runtime (s).
    pub fn runtime_s(&self) -> f64 {
        self.finish_s - self.start_s
    }

    /// Observed slowdown vs the isolated profile.
    pub fn slowdown(&self) -> f64 {
        self.runtime_s() / self.kind.profile().runtime_s
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationOutcome {
    /// Per-job telemetry, in job-id order.
    pub jobs: Vec<JobRecord>,
    /// Total node-seconds of occupied nodes (≥ 1 resident).
    pub node_seconds: f64,
    /// Peak number of simultaneously occupied nodes.
    pub peak_nodes: usize,
    /// Makespan: the completion time of the last job (s).
    pub makespan_s: f64,
    /// Active-node count sampled every 5 minutes.
    pub node_demand: Option<TimeSeries>,
}

impl SimulationOutcome {
    /// Total dynamic energy across jobs (J).
    pub fn total_energy_j(&self) -> f64 {
        self.jobs.iter().map(|j| j.energy_j).sum()
    }

    /// Total cluster carbon at a grid intensity (gCO₂e), combining
    /// amortized embodied node-seconds, idle energy over node-seconds,
    /// and the jobs' dynamic energy.
    pub fn total_carbon_g(&self, grid_ci_g_per_kwh: f64) -> f64 {
        let ctx = Simulator::paper_default();
        let rates = ctx.accounting.server().embodied_rates();
        let embodied = rates.node_per_second.as_grams() * self.node_seconds;
        let idle_j = ctx.accounting.server().power.idle.as_watts() * self.node_seconds;
        let operational = (idle_j + self.total_energy_j()) / 3.6e6 * grid_ci_g_per_kwh;
        embodied + operational
    }

    /// Mean observed slowdown across jobs.
    pub fn mean_slowdown(&self) -> f64 {
        self.jobs.iter().map(JobRecord::slowdown).sum::<f64>() / self.jobs.len() as f64
    }
}

/// The simulator configuration.
#[derive(Debug, Clone)]
pub struct Simulator {
    accounting: NodeAccounting,
}

#[derive(Debug, Clone)]
struct RunningJob {
    id: usize,
    kind: WorkloadKind,
    /// Remaining work, in isolated-execution seconds.
    remaining_work: f64,
    node: usize,
    start_s: f64,
    energy_j: f64,
    colocated_s: f64,
}

impl Simulator {
    /// The paper's defaults: reference server and calibrated
    /// interference model (the grid CI is supplied at carbon-readout
    /// time, not during simulation).
    pub fn paper_default() -> Self {
        Self {
            accounting: NodeAccounting::paper_default(
                fairco2_carbon::units::CarbonIntensity::from_g_per_kwh(0.0),
            ),
        }
    }

    /// The interference model driving execution rates.
    pub fn interference(&self) -> &InterferenceModel {
        self.accounting.interference()
    }

    /// Runs the job stream under a placement policy.
    ///
    /// Execution model: a job's *work* equals its isolated runtime; while
    /// colocated with partner `p` it progresses at rate `1/s(kind|p)` and
    /// draws the colocated dynamic power, otherwise at rate 1 with the
    /// isolated power. Rates change instantaneously when partners arrive
    /// or depart.
    pub fn run(&self, stream: &JobStream, policy: &mut dyn PlacementPolicy) -> SimulationOutcome {
        self.run_with_samples(stream, policy).0
    }

    /// [`Simulator::run`], additionally returning the raw
    /// `(time, occupied)` samples the demand series is built from — the
    /// sharded runner merges these across shards to reconstruct the
    /// cluster-wide occupancy timeline.
    pub(crate) fn run_with_samples(
        &self,
        stream: &JobStream,
        policy: &mut dyn PlacementPolicy,
    ) -> (SimulationOutcome, Vec<(f64, usize)>) {
        let interference = self.accounting.interference();
        let mut running: Vec<RunningJob> = Vec::new();
        let mut node_residents: Vec<Vec<usize>> = Vec::new(); // node -> running indices
                                                              // Empty node ids, min-first: popping yields the lowest-index
                                                              // empty node, matching the linear `position(Vec::is_empty)` scan
                                                              // this list replaces. A node enters when its last resident
                                                              // leaves and exits when the fresh-placement path reuses it, so
                                                              // entries are unique.
        let mut free_nodes: BinaryHeap<Reverse<usize>> = BinaryHeap::new();
        // Nodes with exactly one resident, ascending: iterating this set
        // reproduces the `enumerate().filter(len == 1)` scan it replaces
        // (same nodes, same order) at O(open) instead of O(all nodes)
        // per arrival. Maintained on every 0↔1↔2 resident transition.
        let mut half_open: BTreeSet<usize> = BTreeSet::new();
        // Live count of nodes with ≥ 1 resident, updated on 0→1 and 1→0
        // transitions instead of rescanning every node per event.
        let mut occupied = 0usize;
        let mut records: Vec<Option<JobRecord>> = vec![None; stream.len()];
        let mut next_arrival = 0usize;
        let mut now = 0.0f64;
        let mut node_seconds = 0.0f64;
        let mut peak_nodes = 0usize;
        let mut samples: Vec<(f64, usize)> = Vec::new();

        let partner_of = |running: &[RunningJob],
                          residents: &[Vec<usize>],
                          idx: usize|
         -> Option<WorkloadKind> {
            let node = running[idx].node;
            residents[node]
                .iter()
                .find(|&&r| r != idx)
                .map(|&r| running[r].kind)
        };
        let rate_of = |interference: &InterferenceModel,
                       kind: WorkloadKind,
                       partner: Option<WorkloadKind>| match partner {
            Some(p) => 1.0 / interference.slowdown(kind, p),
            None => 1.0,
        };
        let power_of = |interference: &InterferenceModel,
                        kind: WorkloadKind,
                        partner: Option<WorkloadKind>| match partner {
            Some(p) => interference.colocated_power(kind, p),
            None => kind.profile().dynamic_power_w,
        };

        loop {
            // Next event: the earliest of the next arrival and the next
            // completion at current rates.
            let arrival_t = stream.jobs().get(next_arrival).map(|j| j.arrival_s);
            let completion = running
                .iter()
                .enumerate()
                .map(|(i, job)| {
                    let partner = partner_of(&running, &node_residents, i);
                    let rate = rate_of(interference, job.kind, partner);
                    (i, now + job.remaining_work / rate)
                })
                .min_by(|a, b| a.1.total_cmp(&b.1));

            let (event_t, completing) = match (arrival_t, &completion) {
                (Some(a), Some((i, c))) if *c <= a => (*c, Some(*i)),
                (Some(a), _) => (a, None),
                (None, Some((i, c))) => (*c, Some(*i)),
                (None, None) => break,
            };

            // Advance time: burn work and energy at current rates.
            let dt = event_t - now;
            if dt > 0.0 {
                node_seconds += occupied as f64 * dt;
                peak_nodes = peak_nodes.max(occupied);
                samples.push((now, occupied));
                for i in 0..running.len() {
                    let partner = partner_of(&running, &node_residents, i);
                    let rate = rate_of(interference, running[i].kind, partner);
                    let power = power_of(interference, running[i].kind, partner);
                    running[i].remaining_work -= dt * rate;
                    running[i].energy_j += power * dt;
                    if partner.is_some() {
                        running[i].colocated_s += dt;
                    }
                }
            }
            now = event_t;

            if let Some(idx) = completing {
                // Numerical slack: the completing job's work is done.
                running[idx].remaining_work = 0.0;
                let job = running.swap_remove(idx);
                node_residents[job.node].retain(|&r| r != idx);
                match node_residents[job.node].len() {
                    0 => {
                        half_open.remove(&job.node);
                        free_nodes.push(Reverse(job.node));
                        occupied -= 1;
                    }
                    _ => {
                        // 2 → 1 residents: the slot reopens. (Half-node
                        // slots cap residents at two.)
                        half_open.insert(job.node);
                    }
                }
                // swap_remove moved the previous last element into `idx`;
                // only that job's own node can hold a reference to its old
                // index, so the fixup is a single resident-list scan
                // instead of a walk over every node.
                let moved = running.len();
                if idx < moved {
                    let moved_node = running[idx].node;
                    for r in node_residents[moved_node].iter_mut() {
                        if *r == moved {
                            *r = idx;
                        }
                    }
                }
                records[job.id] = Some(JobRecord {
                    id: job.id,
                    kind: job.kind,
                    arrival_s: job.start_s,
                    start_s: job.start_s,
                    finish_s: now,
                    energy_j: job.energy_j,
                    node: job.node,
                    colocated_s: job.colocated_s,
                });
            } else {
                // Arrival: offer open slots to the policy.
                let job = stream.jobs()[next_arrival];
                next_arrival += 1;
                // `half_open` iterates ascending, matching the node order
                // of the full `enumerate().filter()` scan it replaces.
                let open: Vec<NodeView> = half_open
                    .iter()
                    .map(|&node| NodeView {
                        node,
                        resident: running[node_residents[node][0]].kind,
                    })
                    .collect();
                let node = match policy.place(job.kind, &open, interference) {
                    Some(n) if node_residents.get(n).is_some_and(|r| r.len() == 1) => n,
                    _ => {
                        // Fresh node (reuse the lowest-index empty one
                        // if available).
                        match free_nodes.pop() {
                            Some(Reverse(n)) => n,
                            None => {
                                node_residents.push(Vec::new());
                                node_residents.len() - 1
                            }
                        }
                    }
                };
                if node_residents[node].is_empty() {
                    occupied += 1;
                    half_open.insert(node);
                } else {
                    // Second resident: the slot closes.
                    half_open.remove(&node);
                }
                node_residents[node].push(running.len());
                running.push(RunningJob {
                    id: job.id,
                    kind: job.kind,
                    remaining_work: job.kind.profile().runtime_s,
                    node,
                    start_s: now,
                    energy_j: 0.0,
                    colocated_s: 0.0,
                });
            }
        }

        let jobs: Vec<JobRecord> = records
            .into_iter()
            .map(|r| r.expect("every job completes"))
            .collect();
        let makespan_s = jobs.iter().map(|j| j.finish_s).fold(0.0, f64::max);
        let node_demand = build_demand(&samples, makespan_s);
        (
            SimulationOutcome {
                jobs,
                node_seconds,
                peak_nodes,
                makespan_s,
                node_demand,
            },
            samples,
        )
    }
}

/// Active-node samples → a 5-minute step series.
pub(crate) fn build_demand(samples: &[(f64, usize)], makespan_s: f64) -> Option<TimeSeries> {
    let step = 300u32;
    let len = (makespan_s / f64::from(step)).ceil() as usize;
    if len == 0 || samples.is_empty() {
        return None;
    }
    let mut values = vec![0.0f64; len];
    // Piecewise-constant: carry the latest sample forward.
    let mut si = 0usize;
    let mut level = 0.0;
    for (k, v) in values.iter_mut().enumerate() {
        let t = k as f64 * f64::from(step);
        while si < samples.len() && samples[si].0 <= t {
            level = samples[si].1 as f64;
            si += 1;
        }
        *v = level;
    }
    TimeSeries::from_values(0, step, values).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{FirstFit, LeastInterference, RandomFit};
    use crate::workload::Job;
    use WorkloadKind::*;

    /// The pre-free-list event loop, retained verbatim as the reference:
    /// per-event `position(Vec::is_empty)` / `filter(!is_empty).count()`
    /// scans instead of the heap, live counter, and half-open set, and a
    /// whole-cluster moved-index fixup after every `swap_remove`. Used
    /// only to pin that the optimized [`Simulator::run`] leaves
    /// [`SimulationOutcome`] unchanged — and, via its raw samples, that
    /// the sharded runner's merge reproduces it per shard.
    fn run_reference(
        sim: &Simulator,
        stream: &JobStream,
        policy: &mut dyn PlacementPolicy,
    ) -> (SimulationOutcome, Vec<(f64, usize)>) {
        let interference = sim.accounting.interference();
        let mut running: Vec<RunningJob> = Vec::new();
        let mut node_residents: Vec<Vec<usize>> = Vec::new();
        let mut records: Vec<Option<JobRecord>> = vec![None; stream.len()];
        let mut next_arrival = 0usize;
        let mut now = 0.0f64;
        let mut node_seconds = 0.0f64;
        let mut peak_nodes = 0usize;
        let mut samples: Vec<(f64, usize)> = Vec::new();

        let partner_of = |running: &[RunningJob],
                          residents: &[Vec<usize>],
                          idx: usize|
         -> Option<WorkloadKind> {
            let node = running[idx].node;
            residents[node]
                .iter()
                .find(|&&r| r != idx)
                .map(|&r| running[r].kind)
        };
        let rate_of = |interference: &InterferenceModel,
                       kind: WorkloadKind,
                       partner: Option<WorkloadKind>| match partner {
            Some(p) => 1.0 / interference.slowdown(kind, p),
            None => 1.0,
        };
        let power_of = |interference: &InterferenceModel,
                        kind: WorkloadKind,
                        partner: Option<WorkloadKind>| match partner {
            Some(p) => interference.colocated_power(kind, p),
            None => kind.profile().dynamic_power_w,
        };

        loop {
            let arrival_t = stream.jobs().get(next_arrival).map(|j| j.arrival_s);
            let completion = running
                .iter()
                .enumerate()
                .map(|(i, job)| {
                    let partner = partner_of(&running, &node_residents, i);
                    let rate = rate_of(interference, job.kind, partner);
                    (i, now + job.remaining_work / rate)
                })
                .min_by(|a, b| a.1.total_cmp(&b.1));

            let (event_t, completing) = match (arrival_t, &completion) {
                (Some(a), Some((i, c))) if *c <= a => (*c, Some(*i)),
                (Some(a), _) => (a, None),
                (None, Some((i, c))) => (*c, Some(*i)),
                (None, None) => break,
            };

            let dt = event_t - now;
            if dt > 0.0 {
                let occupied = node_residents.iter().filter(|r| !r.is_empty()).count();
                node_seconds += occupied as f64 * dt;
                peak_nodes = peak_nodes.max(occupied);
                samples.push((now, occupied));
                for i in 0..running.len() {
                    let partner = partner_of(&running, &node_residents, i);
                    let rate = rate_of(interference, running[i].kind, partner);
                    let power = power_of(interference, running[i].kind, partner);
                    running[i].remaining_work -= dt * rate;
                    running[i].energy_j += power * dt;
                    if partner.is_some() {
                        running[i].colocated_s += dt;
                    }
                }
            }
            now = event_t;

            if let Some(idx) = completing {
                running[idx].remaining_work = 0.0;
                let job = running.swap_remove(idx);
                node_residents[job.node].retain(|&r| r != idx);
                let moved = running.len();
                for residents in node_residents.iter_mut() {
                    for r in residents.iter_mut() {
                        if *r == moved {
                            *r = idx;
                        }
                    }
                }
                records[job.id] = Some(JobRecord {
                    id: job.id,
                    kind: job.kind,
                    arrival_s: job.start_s,
                    start_s: job.start_s,
                    finish_s: now,
                    energy_j: job.energy_j,
                    node: job.node,
                    colocated_s: job.colocated_s,
                });
            } else {
                let job = stream.jobs()[next_arrival];
                next_arrival += 1;
                let open: Vec<NodeView> = node_residents
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.len() == 1)
                    .map(|(node, r)| NodeView {
                        node,
                        resident: running[r[0]].kind,
                    })
                    .collect();
                let node = match policy.place(job.kind, &open, interference) {
                    Some(n) if node_residents.get(n).is_some_and(|r| r.len() == 1) => n,
                    _ => match node_residents.iter().position(Vec::is_empty) {
                        Some(n) => n,
                        None => {
                            node_residents.push(Vec::new());
                            node_residents.len() - 1
                        }
                    },
                };
                node_residents[node].push(running.len());
                running.push(RunningJob {
                    id: job.id,
                    kind: job.kind,
                    remaining_work: job.kind.profile().runtime_s,
                    node,
                    start_s: now,
                    energy_j: 0.0,
                    colocated_s: 0.0,
                });
            }
        }

        let jobs: Vec<JobRecord> = records
            .into_iter()
            .map(|r| r.expect("every job completes"))
            .collect();
        let makespan_s = jobs.iter().map(|j| j.finish_s).fold(0.0, f64::max);
        let node_demand = build_demand(&samples, makespan_s);
        (
            SimulationOutcome {
                jobs,
                node_seconds,
                peak_nodes,
                makespan_s,
                node_demand,
            },
            samples,
        )
    }

    #[test]
    fn free_list_leaves_the_outcome_unchanged() {
        // The heap-backed free list and the live occupied counter must
        // reproduce the scan-based loop exactly — node assignments
        // included — on paper-default streams under every policy.
        let sim = Simulator::paper_default();
        let streams = [
            JobStream::poisson(200, 60.0, 42),
            JobStream::poisson(120, 30.0, 7),
        ];
        for stream in &streams {
            assert_eq!(
                sim.run(stream, &mut FirstFit),
                run_reference(&sim, stream, &mut FirstFit).0,
                "FirstFit"
            );
            assert_eq!(
                sim.run(stream, &mut LeastInterference::default()),
                run_reference(&sim, stream, &mut LeastInterference::default()).0,
                "LeastInterference"
            );
            assert_eq!(
                sim.run(stream, &mut RandomFit::seeded(11)),
                run_reference(&sim, stream, &mut RandomFit::seeded(11)).0,
                "RandomFit"
            );
        }
    }

    /// The sharded runner at 1/2/8 threads must reproduce, bit for bit,
    /// the merge of the *reference* event loop run serially over each
    /// shard's sub-stream — the strongest form of the sharding
    /// bit-identity discipline (job counts straddle shard seams).
    #[test]
    fn sharded_runner_matches_reference_per_shard_merge() {
        let sim = Simulator::paper_default();
        for count in [96usize, 97, 101] {
            let stream = JobStream::poisson(count, 40.0, 31);
            for shards in [2usize, 3, 5] {
                let subs = crate::sharded::split_round_robin(&stream, shards);
                let results: Vec<(SimulationOutcome, Vec<(f64, usize)>)> = subs
                    .iter()
                    .map(|(sub, _)| run_reference(&sim, sub, &mut FirstFit))
                    .collect();
                let expected = crate::sharded::merge_shards(stream.len(), &subs, &results);
                for threads in [1usize, 2, 8] {
                    let got = crate::sharded::run_sharded(&sim, &stream, shards, threads, |_| {
                        Box::new(FirstFit)
                    });
                    assert_eq!(
                        got, expected,
                        "count {count} shards {shards} threads {threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn isolated_job_finishes_at_its_profile_runtime() {
        let stream = JobStream::new(vec![Job {
            id: 0,
            kind: Wc,
            arrival_s: 0.0,
        }]);
        let out = Simulator::paper_default().run(&stream, &mut FirstFit);
        let job = &out.jobs[0];
        assert!((job.runtime_s() - Wc.profile().runtime_s).abs() < 1e-6);
        assert!((job.energy_j - Wc.profile().dynamic_energy_j()).abs() < 1e-3);
        assert_eq!(out.peak_nodes, 1);
        assert_eq!(job.colocated_s, 0.0);
    }

    #[test]
    fn fully_overlapping_pair_matches_the_static_model() {
        // Two jobs arriving together: the one finishing first runs its
        // entire life colocated, so its runtime matches the pairwise
        // colocated runtime exactly.
        let stream = JobStream::new(vec![
            Job {
                id: 0,
                kind: Nbody,
                arrival_s: 0.0,
            },
            Job {
                id: 1,
                kind: Ch,
                arrival_s: 0.0,
            },
        ]);
        let sim = Simulator::paper_default();
        let out = sim.run(&stream, &mut FirstFit);
        let ch = &out.jobs[1];
        let expected_ch = sim.interference().colocated_runtime(Ch, Nbody);
        assert!(
            (ch.runtime_s() - expected_ch).abs() < 1e-6,
            "CH ran {} expected {expected_ch}",
            ch.runtime_s()
        );
        // NBODY runs colocated until CH finishes, then speeds up: its
        // runtime lies strictly between colocated and isolated bounds.
        let nbody = &out.jobs[0];
        assert!(nbody.runtime_s() < sim.interference().colocated_runtime(Nbody, Ch));
        assert!(nbody.runtime_s() > Nbody.profile().runtime_s);
    }

    #[test]
    fn least_interference_beats_first_fit_on_slowdown() {
        let stream = JobStream::poisson(60, 90.0, 17);
        let sim = Simulator::paper_default();
        let ff = sim.run(&stream, &mut FirstFit);
        let li = sim.run(&stream, &mut LeastInterference::default());
        assert!(
            li.mean_slowdown() < ff.mean_slowdown(),
            "LI {} vs FF {}",
            li.mean_slowdown(),
            ff.mean_slowdown()
        );
    }

    #[test]
    fn random_fit_uses_more_nodes_than_first_fit() {
        let stream = JobStream::poisson(80, 60.0, 3);
        let sim = Simulator::paper_default();
        let ff = sim.run(&stream, &mut FirstFit);
        let rf = sim.run(&stream, &mut RandomFit::seeded(1));
        assert!(rf.node_seconds > ff.node_seconds);
    }

    #[test]
    fn all_jobs_complete_and_energy_is_positive() {
        let stream = JobStream::poisson(100, 45.0, 9);
        let out = Simulator::paper_default().run(&stream, &mut FirstFit);
        assert_eq!(out.jobs.len(), 100);
        for j in &out.jobs {
            assert!(j.finish_s > j.start_s, "job {} never ran", j.id);
            assert!(j.energy_j > 0.0);
            assert!(j.slowdown() >= 1.0 - 1e-9);
            assert!(j.slowdown() < 2.0);
        }
        assert!(out.total_carbon_g(250.0) > 0.0);
        assert!(out.node_demand.is_some());
    }

    #[test]
    fn carbon_scales_with_grid_intensity() {
        let stream = JobStream::poisson(20, 120.0, 2);
        let out = Simulator::paper_default().run(&stream, &mut FirstFit);
        let low = out.total_carbon_g(50.0);
        let high = out.total_carbon_g(500.0);
        assert!(high > low);
        // Embodied floor at CI = 0.
        assert!(out.total_carbon_g(0.0) > 0.0);
    }
}
