//! Placement policies: which half-node slot a new job takes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fairco2_workloads::{InterferenceModel, WorkloadKind};

/// A node's current residents, as seen by a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeView {
    /// Node index in the cluster.
    pub node: usize,
    /// The resident workload of the free-slot node (slots are half
    /// nodes, so a node offered to the policy has exactly one resident).
    pub resident: WorkloadKind,
}

/// Decides where an arriving job goes.
///
/// The simulator offers every node that currently has exactly one
/// resident; the policy picks one, or `None` to open a fresh node.
pub trait PlacementPolicy {
    /// Policy name (for experiment output).
    fn name(&self) -> &'static str;

    /// Chooses a node from `open_slots` for `arriving`, or `None` for a
    /// new node.
    fn place(
        &mut self,
        arriving: WorkloadKind,
        open_slots: &[NodeView],
        interference: &InterferenceModel,
    ) -> Option<usize>;
}

/// Always fills the lowest-indexed open slot; opens a node only when no
/// slot is free. Maximizes packing, ignores interference.
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstFit;

impl PlacementPolicy for FirstFit {
    fn name(&self) -> &'static str {
        "first-fit"
    }

    fn place(
        &mut self,
        _arriving: WorkloadKind,
        open_slots: &[NodeView],
        _interference: &InterferenceModel,
    ) -> Option<usize> {
        open_slots.iter().map(|s| s.node).min()
    }
}

/// Interference-aware: fills the open slot whose pairing minimizes the
/// combined slowdown (Bubble-Up-style), opening a new node if even the
/// best pairing exceeds a tolerance.
#[derive(Debug, Clone, Copy)]
pub struct LeastInterference {
    /// Maximum acceptable combined slowdown `s(a|b) + s(b|a)`; above it
    /// the job gets a fresh node.
    pub max_combined_slowdown: f64,
}

impl Default for LeastInterference {
    fn default() -> Self {
        Self {
            max_combined_slowdown: 3.0,
        }
    }
}

impl PlacementPolicy for LeastInterference {
    fn name(&self) -> &'static str {
        "least-interference"
    }

    fn place(
        &mut self,
        arriving: WorkloadKind,
        open_slots: &[NodeView],
        interference: &InterferenceModel,
    ) -> Option<usize> {
        open_slots
            .iter()
            .map(|s| {
                let combined = interference.slowdown(arriving, s.resident)
                    + interference.slowdown(s.resident, arriving);
                (s.node, combined)
            })
            .filter(|(_, c)| *c <= self.max_combined_slowdown)
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(node, _)| node)
    }
}

/// Uniformly random among open slots (plus a coin flip for opening a new
/// node when slots exist) — the "unlucky tenant" scheduler.
#[derive(Debug, Clone)]
pub struct RandomFit {
    rng: StdRng,
    /// Probability of opening a fresh node even when slots are free.
    pub fresh_node_probability: f64,
}

impl RandomFit {
    /// Creates the policy with a seed (deterministic per seed).
    pub fn seeded(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            fresh_node_probability: 0.2,
        }
    }
}

impl PlacementPolicy for RandomFit {
    fn name(&self) -> &'static str {
        "random-fit"
    }

    fn place(
        &mut self,
        _arriving: WorkloadKind,
        open_slots: &[NodeView],
        _interference: &InterferenceModel,
    ) -> Option<usize> {
        if open_slots.is_empty() || self.rng.gen::<f64>() < self.fresh_node_probability {
            None
        } else {
            Some(open_slots[self.rng.gen_range(0..open_slots.len())].node)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use WorkloadKind::*;

    fn slots() -> Vec<NodeView> {
        vec![
            NodeView {
                node: 3,
                resident: Ch,
            },
            NodeView {
                node: 1,
                resident: Pg10,
            },
        ]
    }

    #[test]
    fn first_fit_takes_lowest_node() {
        let m = InterferenceModel::paper_calibrated();
        assert_eq!(FirstFit.place(Nbody, &slots(), &m), Some(1));
        assert_eq!(FirstFit.place(Nbody, &[], &m), None);
    }

    #[test]
    fn least_interference_avoids_the_aggressor() {
        let m = InterferenceModel::paper_calibrated();
        // NBODY must prefer the inert PG-10 over CH.
        let choice = LeastInterference::default().place(Nbody, &slots(), &m);
        assert_eq!(choice, Some(1));
    }

    #[test]
    fn least_interference_opens_a_node_when_everything_is_toxic() {
        let m = InterferenceModel::paper_calibrated();
        let strict = LeastInterference {
            max_combined_slowdown: 2.0,
        };
        let only_ch = vec![NodeView {
            node: 0,
            resident: Ch,
        }];
        assert_eq!(strict.clone().place(Nbody, &only_ch, &m), None);
    }

    #[test]
    fn random_fit_is_deterministic_per_seed() {
        let m = InterferenceModel::paper_calibrated();
        let run = |seed| {
            let mut p = RandomFit::seeded(seed);
            (0..10)
                .map(|_| p.place(Spark, &slots(), &m))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
