//! Discrete-event cluster simulator for the Fair-CO₂ reproduction.
//!
//! The paper positions Fair-CO₂ as *scheduler-agnostic*: unlike fair
//! colocation schemes (Cooper) that constrain placement, Fair-CO₂ only
//! attributes — whatever the scheduler did. This crate provides the
//! substrate to demonstrate that claim: a trace-driven simulator where a
//! stream of jobs (drawn from the paper's 15-workload suite) is placed
//! onto half-node slots by a pluggable [`policy::PlacementPolicy`], runs
//! under the pairwise interference model (slowdowns recomputed as
//! partners come and go), and yields per-job telemetry plus cluster-level
//! demand and carbon.
//!
//! The `scheduler_study` experiment binary runs the same job stream under
//! three policies and shows that RUP attributions swing with placement
//! luck while Fair-CO₂'s historical attribution is placement-invariant.
//!
//! # Example
//!
//! ```
//! use fairco2_cluster::{workload::JobStream, policy::FirstFit, simulator::Simulator};
//!
//! let jobs = JobStream::poisson(40, 120.0, 7);
//! let outcome = Simulator::paper_default().run(&jobs, &mut FirstFit);
//! assert_eq!(outcome.jobs.len(), 40);
//! assert!(outcome.total_carbon_g(250.0) > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod policy;
pub mod sharded;
pub mod simulator;
pub mod workload;

pub use policy::PlacementPolicy;
pub use sharded::run_sharded;
pub use simulator::{SimulationOutcome, Simulator};
pub use workload::{Job, JobStream};
