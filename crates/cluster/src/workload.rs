//! Job streams: the simulator's input.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Exp};
use serde::{Deserialize, Serialize};

use fairco2_workloads::{WorkloadKind, ALL_WORKLOADS};

/// One batch job: a workload instance arriving at a point in time,
/// requesting half a node until its (interference-dependent) work is
/// done.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Stable identifier (index in the stream).
    pub id: usize,
    /// Which suite workload this job runs.
    pub kind: WorkloadKind,
    /// Arrival time in seconds.
    pub arrival_s: f64,
}

/// An ordered stream of jobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobStream {
    jobs: Vec<Job>,
}

impl JobStream {
    /// Builds a stream from explicit jobs (sorted by arrival).
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is empty or any arrival is negative/non-finite.
    pub fn new(mut jobs: Vec<Job>) -> Self {
        assert!(!jobs.is_empty(), "a job stream needs at least one job");
        assert!(
            jobs.iter()
                .all(|j| j.arrival_s.is_finite() && j.arrival_s >= 0.0),
            "arrivals must be finite and non-negative"
        );
        jobs.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));
        Self { jobs }
    }

    /// Builds a stream from jobs already sorted by arrival, skipping the
    /// `O(n log n)` re-sort — the Azure-scale path emits millions of jobs
    /// in arrival order by construction.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is empty, any arrival is negative/non-finite, or
    /// the arrivals are not non-decreasing.
    pub fn from_sorted(jobs: Vec<Job>) -> Self {
        assert!(!jobs.is_empty(), "a job stream needs at least one job");
        assert!(
            jobs.iter()
                .all(|j| j.arrival_s.is_finite() && j.arrival_s >= 0.0),
            "arrivals must be finite and non-negative"
        );
        assert!(
            jobs.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s),
            "jobs must be sorted by arrival"
        );
        Self { jobs }
    }

    /// A Poisson arrival stream: `count` jobs with exponential
    /// inter-arrival times of mean `mean_interarrival_s`, kinds drawn
    /// uniformly from the suite. Deterministic per seed.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` or the mean inter-arrival is not positive.
    pub fn poisson(count: usize, mean_interarrival_s: f64, seed: u64) -> Self {
        assert!(count > 0, "need at least one job");
        assert!(
            mean_interarrival_s > 0.0,
            "mean inter-arrival must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let exp = Exp::new(1.0 / mean_interarrival_s).expect("positive rate");
        let mut t = 0.0f64;
        let jobs = (0..count)
            .map(|id| {
                t += exp.sample(&mut rng);
                Job {
                    id,
                    kind: ALL_WORKLOADS[rng.gen_range(0..ALL_WORKLOADS.len())],
                    arrival_s: t,
                }
            })
            .collect();
        Self { jobs }
    }

    /// The jobs, sorted by arrival time.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the stream is empty (construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_stream_is_sorted_and_deterministic() {
        let a = JobStream::poisson(50, 60.0, 3);
        let b = JobStream::poisson(50, 60.0, 3);
        assert_eq!(a, b);
        assert!(a
            .jobs()
            .windows(2)
            .all(|w| w[0].arrival_s <= w[1].arrival_s));
        assert_eq!(a.len(), 50);
    }

    #[test]
    fn explicit_streams_are_sorted_on_construction() {
        let s = JobStream::new(vec![
            Job {
                id: 0,
                kind: WorkloadKind::Ch,
                arrival_s: 100.0,
            },
            Job {
                id: 1,
                kind: WorkloadKind::Wc,
                arrival_s: 5.0,
            },
        ]);
        assert_eq!(s.jobs()[0].id, 1);
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn empty_stream_panics() {
        let _ = JobStream::new(vec![]);
    }
}
