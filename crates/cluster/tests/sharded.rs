//! Property tests: the sharded runner is bit-identical to the serial
//! path — one shard reproduces `Simulator::run` exactly, and any shard
//! count yields the same merged outcome at 1, 2, and 8 threads, with job
//! counts deliberately straddling shard-size seams.

use fairco2_cluster::policy::{FirstFit, LeastInterference, PlacementPolicy, RandomFit};
use fairco2_cluster::sharded::run_sharded;
use fairco2_cluster::workload::Job;
use fairco2_cluster::{JobStream, Simulator};
use fairco2_workloads::ALL_WORKLOADS;
use proptest::prelude::*;

fn stream_strategy() -> impl Strategy<Value = JobStream> {
    prop::collection::vec((0usize..ALL_WORKLOADS.len(), 0.0f64..50_000.0), 1..64).prop_map(|raw| {
        JobStream::new(
            raw.into_iter()
                .enumerate()
                .map(|(id, (kind, arrival_s))| Job {
                    id,
                    kind: ALL_WORKLOADS[kind],
                    arrival_s,
                })
                .collect(),
        )
    })
}

fn make_policy(which: u8) -> impl Fn(usize) -> Box<dyn PlacementPolicy> + Sync {
    move |shard: usize| -> Box<dyn PlacementPolicy> {
        match which {
            0 => Box::new(FirstFit),
            1 => Box::new(LeastInterference::default()),
            _ => Box::new(RandomFit::seeded(31 + shard as u64)),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn one_shard_reproduces_the_serial_run(
        stream in stream_strategy(),
        which in 0u8..3,
    ) {
        let sim = Simulator::paper_default();
        let make = make_policy(which);
        let serial = sim.run(&stream, make(0).as_mut());
        for threads in [1usize, 2, 8] {
            prop_assert_eq!(
                &run_sharded(&sim, &stream, 1, threads, &make),
                &serial,
                "threads {}", threads
            );
        }
    }

    #[test]
    fn sharded_outcome_is_thread_and_seam_invariant(
        stream in stream_strategy(),
        shards in 1usize..9,
        which in 0u8..3,
    ) {
        // `shards` ranges past the job count (it is clamped inside), so
        // cases cover under-, exactly-, and over-sharded seams.
        let sim = Simulator::paper_default();
        let make = make_policy(which);
        let base = run_sharded(&sim, &stream, shards, 1, &make);
        prop_assert_eq!(base.jobs.len(), stream.len());
        for threads in [2usize, 8] {
            prop_assert_eq!(
                &run_sharded(&sim, &stream, shards, threads, &make),
                &base,
                "shards {} threads {}", shards, threads
            );
        }
    }
}
