//! Property tests: simulator invariants that must hold for any job
//! stream and any placement policy.

use fairco2_cluster::policy::{FirstFit, LeastInterference, PlacementPolicy, RandomFit};
use fairco2_cluster::workload::Job;
use fairco2_cluster::{JobStream, Simulator};
use fairco2_workloads::ALL_WORKLOADS;
use proptest::prelude::*;

fn stream_strategy() -> impl Strategy<Value = JobStream> {
    prop::collection::vec((0usize..ALL_WORKLOADS.len(), 0.0f64..50_000.0), 1..40).prop_map(|raw| {
        JobStream::new(
            raw.into_iter()
                .enumerate()
                .map(|(id, (kind, arrival_s))| Job {
                    id,
                    kind: ALL_WORKLOADS[kind],
                    arrival_s,
                })
                .collect(),
        )
    })
}

fn policies() -> Vec<Box<dyn PlacementPolicy>> {
    vec![
        Box::new(FirstFit),
        Box::new(LeastInterference::default()),
        Box::new(RandomFit::seeded(7)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_job_completes_within_interference_bounds(stream in stream_strategy()) {
        let sim = Simulator::paper_default();
        for mut policy in policies() {
            let out = sim.run(&stream, policy.as_mut());
            prop_assert_eq!(out.jobs.len(), stream.len());
            for job in &out.jobs {
                // A job can never run faster than its isolated profile,
                // nor slower than its worst pairwise slowdown.
                let slow = job.slowdown();
                prop_assert!(slow >= 1.0 - 1e-9, "{}: {slow}", policy.name());
                prop_assert!(slow < 1.95, "{}: {slow}", policy.name());
                // Colocation only ever costs energy, never saves it.
                prop_assert!(
                    job.energy_j >= job.kind.profile().dynamic_energy_j() - 1e-6,
                    "{}: job {} energy {}",
                    policy.name(),
                    job.id,
                    job.energy_j
                );
            }
        }
    }

    #[test]
    fn node_seconds_are_bounded_by_runtimes(stream in stream_strategy()) {
        let sim = Simulator::paper_default();
        for mut policy in policies() {
            let out = sim.run(&stream, policy.as_mut());
            let total_runtime: f64 = out.jobs.iter().map(|j| j.runtime_s()).sum();
            // A node hosts one or two jobs, so occupied node-time lies
            // between half the summed runtimes and their full sum.
            prop_assert!(out.node_seconds <= total_runtime + 1e-6);
            prop_assert!(out.node_seconds >= total_runtime / 2.0 - 1e-6);
            prop_assert!(out.peak_nodes >= 1);
            prop_assert!(out.peak_nodes <= stream.len());
        }
    }

    #[test]
    fn makespan_covers_all_finish_times(stream in stream_strategy()) {
        let sim = Simulator::paper_default();
        let out = sim.run(&stream, &mut FirstFit);
        for job in &out.jobs {
            prop_assert!(job.finish_s <= out.makespan_s + 1e-9);
            prop_assert!(job.start_s >= 0.0);
        }
    }
}
