//! Small statistics helpers shared by the evaluation harness.
//!
//! These are deliberately simple, dependency-free implementations: the
//! Monte Carlo evaluation only needs means, quantiles, and the forecast
//! error metrics the paper reports (MAPE, worst-case absolute percentage
//! error).

/// Arithmetic mean. Returns `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Population standard deviation. Returns `None` for an empty slice.
pub fn std_dev(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    Some(var.sqrt())
}

/// Linear-interpolation quantile (`q` in `[0, 1]`). Returns `None` for an
/// empty slice or `q` outside the unit interval.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median, i.e. the 0.5 quantile.
pub fn median(values: &[f64]) -> Option<f64> {
    quantile(values, 0.5)
}

/// Maximum value. Returns `None` for an empty slice.
pub fn max(values: &[f64]) -> Option<f64> {
    values.iter().copied().reduce(f64::max)
}

/// Mean Absolute Percentage Error between `actual` and `predicted`, in
/// percent. Samples whose actual value is zero are skipped (the standard
/// MAPE convention). Returns `None` if the slices differ in length or no
/// valid sample remains.
pub fn mape(actual: &[f64], predicted: &[f64]) -> Option<f64> {
    if actual.len() != predicted.len() {
        return None;
    }
    let mut sum = 0.0;
    let mut n = 0usize;
    for (&a, &p) in actual.iter().zip(predicted) {
        if a != 0.0 {
            sum += ((a - p) / a).abs();
            n += 1;
        }
    }
    if n == 0 {
        None
    } else {
        Some(100.0 * sum / n as f64)
    }
}

/// Worst-case absolute percentage error, in percent. Same conventions as
/// [`mape`].
pub fn worst_ape(actual: &[f64], predicted: &[f64]) -> Option<f64> {
    if actual.len() != predicted.len() {
        return None;
    }
    actual
        .iter()
        .zip(predicted)
        .filter(|(&a, _)| a != 0.0)
        .map(|(&a, &p)| 100.0 * ((a - p) / a).abs())
        .reduce(f64::max)
}

/// A streaming summary of scenario-level deviations: count, mean, and the
/// quantiles the paper's box plots show.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    values: Vec<f64>,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no observation was added yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Mean of the observations, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        mean(&self.values).unwrap_or(0.0)
    }

    /// Quantile of the observations, or 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        quantile(&self.values, q).unwrap_or(0.0)
    }

    /// The raw observations.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        self.values.extend(iter);
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Self {
            values: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(std_dev(&[1.0, 1.0, 1.0]), Some(0.0));
        assert!((std_dev(&[0.0, 2.0]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(4.0));
        assert_eq!(median(&v), Some(2.5));
        assert_eq!(quantile(&v, 1.5), None);
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn mape_skips_zero_actuals() {
        let a = [100.0, 0.0, 200.0];
        let p = [110.0, 5.0, 180.0];
        let m = mape(&a, &p).unwrap();
        assert!((m - 10.0).abs() < 1e-9); // (10% + 10%) / 2
        assert_eq!(worst_ape(&a, &p), Some(10.0));
        assert_eq!(mape(&a, &p[..2]), None);
        assert_eq!(mape(&[0.0], &[1.0]), None);
    }

    #[test]
    fn summary_collects() {
        let s: Summary = [1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(s.len(), 3);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.quantile(1.0), 3.0);
        assert!(!s.is_empty());
        assert!(Summary::new().is_empty());
    }
}
