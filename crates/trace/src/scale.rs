//! **Azure-scale streaming VM generation** — the ~2M-VM population path.
//!
//! [`crate::vms::VmPopulationBuilder`] drives one sequential RNG through
//! the whole horizon, so generation is inherently serial and the
//! population must be materialized before anything can consume it. This
//! module re-keys the same arrival model (diurnal inhomogeneous Poisson
//! arrivals, log-normal lifetimes, power-of-two core reservations) so
//! every minute bucket owns an independent RNG seeded by a splitmix64
//! hash of `(seed, bucket)`:
//!
//! * **chunk- and thread-invariant** — a bucket's VMs depend only on
//!   `(seed, bucket)`, so any partition of the bucket range into chunks,
//!   batches, or threads yields bit-identical events;
//! * **streaming** — consumers visit VMs with [`ScaleVmConfig::for_each_vm_in`]
//!   without ever materializing the population, so peak RSS is bounded by
//!   the consumer's own state (the study bins lean on this);
//! * **exact aggregation** — core counts are small powers of two, so the
//!   difference-array demand sweep sums dyadic rationals exactly and
//!   [`ScaleVmConfig::demand_series`] is bitwise identical at any thread
//!   count (pinned in tests).
//!
//! Large arrival rates are thinned into one-second sub-buckets
//! (`Poisson(λ) = Σ₆₀ Poisson(λ/60)`), which keeps Knuth's product-method
//! sampler in its exact small-mean regime even at 2M VMs per fortnight
//! and makes the emitted stream non-decreasing in start time.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal};

use crate::series::TimeSeries;
use crate::vms::{diurnal_rate_table, poisson_knuth, VmEvent, VmPopulation};

/// Salt folded into the seed for the per-VM tag stream, keeping tags
/// decorrelated from the generation draws.
const TAG_STREAM: u64 = 0x7A67_5F73_7472_6561;

/// splitmix64-style finalizer: hashes `(seed, lane)` to an independent
/// stream seed. Adjacent lanes land in unrelated states, so per-bucket
/// `StdRng`s are effectively independent.
fn lane_seed(seed: u64, lane: u64) -> u64 {
    let mut z = seed ^ lane.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Configuration for the chunked, deterministic Azure-scale generator.
///
/// Field semantics mirror [`crate::vms::VmPopulationBuilder`]; the
/// defaults describe a fortnight at roughly 2M VMs.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleVmConfig {
    /// Horizon in days.
    pub horizon_days: u32,
    /// Mean short-VM arrival rate per hour, before diurnal modulation.
    pub vms_per_hour: f64,
    /// Horizon-spanning long-running VMs.
    pub long_vm_count: usize,
    /// Median short-VM lifetime (seconds).
    pub lifetime_median_s: f64,
    /// Log-normal sigma of short-VM lifetimes.
    pub lifetime_sigma: f64,
    /// Relative amplitude of the diurnal arrival modulation.
    pub diurnal_amplitude: f64,
    /// Cores drawn uniformly per VM (powers of two keep demand sums exact).
    pub core_choices: Vec<f64>,
    /// Base RNG seed; every bucket derives its own stream from it.
    pub seed: u64,
}

impl Default for ScaleVmConfig {
    fn default() -> Self {
        Self::for_total_vms(2_000_000, 14)
    }
}

impl ScaleVmConfig {
    /// A config whose *expected* short-VM count over `days` is `total`
    /// (the diurnal cosine integrates to zero over each day).
    pub fn for_total_vms(total: u64, days: u32) -> Self {
        assert!(days > 0, "horizon must cover at least a day");
        Self {
            horizon_days: days,
            vms_per_hour: total as f64 / (24.0 * f64::from(days)),
            long_vm_count: 400,
            lifetime_median_s: 600.0,
            lifetime_sigma: 1.2,
            diurnal_amplitude: 0.5,
            core_choices: vec![2.0, 4.0, 8.0, 16.0],
            seed: 0x0005_EED5_CA1E,
        }
    }

    /// Horizon in seconds.
    pub fn horizon_s(&self) -> i64 {
        i64::from(self.horizon_days) * 86_400
    }

    /// Number of one-minute arrival buckets in the horizon.
    pub fn buckets(&self) -> u64 {
        (self.horizon_s() / 60) as u64
    }

    /// The long-running VMs (deterministic in the seed alone).
    pub fn long_vms(&self) -> Vec<VmEvent> {
        let horizon_s = self.horizon_s();
        let mut rng = StdRng::seed_from_u64(lane_seed(self.seed, u64::MAX));
        (0..self.long_vm_count)
            .map(|_| VmEvent {
                start: 0,
                end: horizon_s,
                cores: self.core_choices[rng.gen_range(0..self.core_choices.len())],
            })
            .collect()
    }

    /// Streams every short VM whose arrival bucket lies in
    /// `[bucket_lo, bucket_hi)` to `visit(bucket, k, vm)`, where `k`
    /// numbers the VMs within their bucket.
    ///
    /// The VMs of a bucket depend only on `(seed, bucket)`, so any
    /// chunking of the bucket range — batches, shards, threads — streams
    /// bit-identical events, and within the full range events arrive in
    /// non-decreasing start order.
    pub fn for_each_vm_in(
        &self,
        bucket_lo: u64,
        bucket_hi: u64,
        mut visit: impl FnMut(u64, u32, VmEvent),
    ) {
        let horizon_s = self.horizon_s();
        let bucket_hi = bucket_hi.min(self.buckets());
        let rate_table = diurnal_rate_table(self.vms_per_hour, self.diurnal_amplitude);
        let lifetime = LogNormal::new(self.lifetime_median_s.ln(), self.lifetime_sigma)
            .expect("finite lognormal parameters");
        for bucket in bucket_lo..bucket_hi {
            let mut rng = StdRng::seed_from_u64(lane_seed(self.seed, bucket));
            let t = bucket as i64 * 60;
            // Thin the minute rate into 60 one-second sub-buckets: the sum
            // of independent Poisson(λ/60) draws is exactly Poisson(λ),
            // and Knuth's sampler stays in its small-mean regime at any
            // fleet size. Arrivals inherit their sub-bucket second, so the
            // stream is already ordered by start time.
            let rate_per_s = rate_table[(bucket % 1440) as usize] / 60.0;
            let mut k = 0u32;
            for second in 0..60i64 {
                let arrivals = poisson_knuth(&mut rng, rate_per_s);
                for _ in 0..arrivals {
                    let start = t + second;
                    let life = lifetime.sample(&mut rng).clamp(60.0, 6.0 * 3600.0);
                    let cores = self.core_choices[rng.gen_range(0..self.core_choices.len())];
                    visit(
                        bucket,
                        k,
                        VmEvent {
                            start,
                            end: (start + life as i64).min(horizon_s),
                            cores,
                        },
                    );
                    k += 1;
                }
            }
        }
    }

    /// A deterministic 64-bit tag for the `k`-th VM of `bucket` —
    /// independent of the generation draws, stable across chunkings. The
    /// study bins hash it into tenant / home-region / deferrability
    /// assignments.
    pub fn vm_tag(&self, bucket: u64, k: u32) -> u64 {
        lane_seed(self.seed ^ TAG_STREAM, (bucket << 24) ^ u64::from(k))
    }

    /// Number of short VMs in the horizon (streamed, thread-parallel).
    pub fn count_vms(&self, threads: usize) -> u64 {
        self.map_bucket_chunks(threads, |lo, hi| {
            let mut n = 0u64;
            self.for_each_vm_in(lo, hi, |_, _, _| n += 1);
            n
        })
        .into_iter()
        .sum()
    }

    /// Materializes the full population (long VMs first, then short VMs
    /// in bucket order), generating bucket chunks on `threads` workers.
    ///
    /// The result is identical at any thread count: chunk outputs are
    /// concatenated in bucket order regardless of which worker produced
    /// them. Start times are non-decreasing by construction.
    pub fn collect_events(&self, threads: usize) -> VmPopulation {
        let mut vms = self.long_vms();
        let chunks = self.map_bucket_chunks(threads, |lo, hi| {
            let mut out = Vec::new();
            self.for_each_vm_in(lo, hi, |_, _, vm| out.push(vm));
            out
        });
        vms.reserve(chunks.iter().map(Vec::len).sum());
        for chunk in chunks {
            vms.extend_from_slice(&chunk);
        }
        VmPopulation::from_events(vms, self.horizon_s())
    }

    /// Aggregate core demand at `step` seconds, built as a streamed
    /// `O(V + T)` difference-array sweep on `threads` workers — no per-VM
    /// storage, peak transient state `O(threads · T)`.
    ///
    /// Each worker accumulates `±cores` deltas for its bucket chunk into
    /// a private array; the arrays are merged elementwise and prefix-
    /// summed. Core counts are small powers of two, so every sum is exact
    /// dyadic arithmetic and the series is bit-identical at any thread
    /// count and to [`VmPopulation::demand_series`] on the collected
    /// population (both pinned in tests).
    ///
    /// # Panics
    ///
    /// Panics if `step == 0`.
    pub fn demand_series(&self, step: u32, threads: usize) -> TimeSeries {
        assert!(step > 0, "sampling step must be positive");
        let len = (self.horizon_s() / i64::from(step)) as usize;
        let mut delta = vec![0.0f64; len + 1];
        for vm in self.long_vms() {
            scatter_vm(&mut delta, &vm, step, len);
        }
        let partials = self.map_bucket_chunks(threads, |lo, hi| {
            let mut local = vec![0.0f64; len + 1];
            self.for_each_vm_in(lo, hi, |_, _, vm| scatter_vm(&mut local, &vm, step, len));
            local
        });
        for local in partials {
            for (d, l) in delta.iter_mut().zip(&local) {
                *d += l;
            }
        }
        let mut level = 0.0;
        let values: Vec<f64> = delta[..len]
            .iter()
            .map(|d| {
                level += d;
                level
            })
            .collect();
        TimeSeries::from_values(0, step, values).expect("horizon ≥ one bucket")
    }

    /// Splits the bucket range into `threads` contiguous chunks and maps
    /// `work(lo, hi)` over them on scoped threads, returning results in
    /// chunk order (so callers see a thread-count-independent layout).
    ///
    /// Local to this crate: `fairco2-shapley`'s `run_parallel` lives
    /// downstream of `fairco2-trace` in the dependency graph.
    fn map_bucket_chunks<T: Send>(
        &self,
        threads: usize,
        work: impl Fn(u64, u64) -> T + Sync,
    ) -> Vec<T> {
        let buckets = self.buckets();
        let threads = threads.max(1).min(buckets.max(1) as usize);
        let chunk = buckets.div_ceil(threads as u64).max(1);
        let ranges: Vec<(u64, u64)> = (0..threads as u64)
            .map(|w| (w * chunk, ((w + 1) * chunk).min(buckets)))
            .collect();
        if threads == 1 {
            return ranges.into_iter().map(|(lo, hi)| work(lo, hi)).collect();
        }
        let mut slots: Vec<Option<T>> = ranges.iter().map(|_| None).collect();
        std::thread::scope(|scope| {
            let work = &work;
            let mut handles = Vec::with_capacity(threads);
            for (slot, &(lo, hi)) in slots.iter_mut().zip(&ranges) {
                handles.push(scope.spawn(move || *slot = Some(work(lo, hi))));
            }
            let panicked: Vec<bool> = handles.into_iter().map(|h| h.join().is_err()).collect();
            assert!(!panicked.contains(&true), "generation worker panicked");
        });
        slots
            .into_iter()
            .map(|s| s.expect("every chunk slot is filled"))
            .collect()
    }
}

/// Adds one VM's `±cores` contribution to a difference array.
fn scatter_vm(delta: &mut [f64], vm: &VmEvent, step: u32, len: usize) {
    let s = (vm.start / i64::from(step)) as usize;
    let e = ((vm.end + i64::from(step) - 1) / i64::from(step)) as usize;
    delta[s.min(len)] += vm.cores;
    delta[e.min(len)] -= vm.cores;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ScaleVmConfig {
        let mut cfg = ScaleVmConfig::for_total_vms(6_000, 2);
        cfg.long_vm_count = 8;
        cfg.seed = 42;
        cfg
    }

    #[test]
    fn generation_is_chunk_invariant() {
        let cfg = small();
        let mut whole = Vec::new();
        cfg.for_each_vm_in(0, cfg.buckets(), |b, k, vm| whole.push((b, k, vm)));
        let mut chunked = Vec::new();
        let mut lo = 0u64;
        for width in [1u64, 7, 60, 311, 1000].iter().cycle() {
            if lo >= cfg.buckets() {
                break;
            }
            let hi = (lo + width).min(cfg.buckets());
            cfg.for_each_vm_in(lo, hi, |b, k, vm| chunked.push((b, k, vm)));
            lo = hi;
        }
        assert_eq!(whole, chunked);
    }

    #[test]
    fn collected_events_are_thread_invariant_and_sorted() {
        let cfg = small();
        let one = cfg.collect_events(1);
        for threads in [2usize, 3, 8] {
            assert_eq!(one, cfg.collect_events(threads), "threads {threads}");
        }
        assert!(one.vms().windows(2).all(|w| w[0].start <= w[1].start));
        assert_eq!(
            one.vms().len() as u64,
            cfg.long_vm_count as u64 + cfg.count_vms(3)
        );
    }

    #[test]
    fn streamed_demand_matches_collected_population_bitwise() {
        let cfg = small();
        let collected = cfg.collect_events(1).demand_series(300);
        for threads in [1usize, 2, 5] {
            let streamed = cfg.demand_series(300, threads);
            assert_eq!(streamed.len(), collected.len());
            for (k, (a, b)) in streamed.values().iter().zip(collected.values()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "threads {threads} bucket {k}");
            }
        }
    }

    #[test]
    fn expected_total_is_roughly_met() {
        let cfg = small();
        let n = cfg.count_vms(2);
        assert!(
            (n as f64) > 5_000.0 && (n as f64) < 7_000.0,
            "generated {n} VMs"
        );
    }

    #[test]
    fn tags_are_deterministic_and_spread() {
        let cfg = small();
        assert_eq!(cfg.vm_tag(17, 3), cfg.vm_tag(17, 3));
        assert_ne!(cfg.vm_tag(17, 3), cfg.vm_tag(17, 4));
        assert_ne!(cfg.vm_tag(17, 3), cfg.vm_tag(18, 3));
        // Tags are independent of the generation stream.
        let mut other = cfg.clone();
        other.vms_per_hour *= 2.0;
        assert_eq!(cfg.vm_tag(5, 0), other.vm_tag(5, 0));
    }
}
