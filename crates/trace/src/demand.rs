//! Synthetic data-center demand traces.
//!
//! The paper drives Temporal Shapley and its forecasting study with the
//! Azure 2017 VM trace (30 days of aggregate CPU-core demand at 5-minute
//! resolution, ~2 million VMs). That trace is not redistributable, so this
//! module generates a statistically equivalent substitute: a strong diurnal
//! cycle, a weekday/weekend effect, a mild linear trend, and autocorrelated
//! noise. These are exactly the features the paper's methods exploit
//! (peak-driven provisioning, periodic forecastability).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

use crate::series::TimeSeries;

const SECS_PER_DAY: i64 = 86_400;

/// A synthetic Azure-2017-like aggregate CPU-core demand trace.
///
/// # Example
///
/// ```
/// use fairco2_trace::AzureLikeTrace;
///
/// let trace = AzureLikeTrace::builder().days(7).seed(42).build();
/// assert_eq!(trace.series().len(), 7 * 288); // 5-minute samples
/// ```
#[derive(Debug, Clone)]
pub struct AzureLikeTrace {
    series: TimeSeries,
}

impl AzureLikeTrace {
    /// Starts building a trace with the default (paper-like) parameters.
    pub fn builder() -> AzureLikeTraceBuilder {
        AzureLikeTraceBuilder::default()
    }

    /// The generated demand series, in CPU cores.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// Consumes the trace, returning the demand series.
    pub fn into_series(self) -> TimeSeries {
        self.series
    }
}

/// Builder for [`AzureLikeTrace`].
///
/// Defaults reproduce the paper's setting: 30 days at 5-minute resolution,
/// a fleet-scale base demand with ±25 % diurnal swing, a weekend dip, a
/// slight upward trend, and AR(1) noise.
#[derive(Debug, Clone)]
pub struct AzureLikeTraceBuilder {
    days: u32,
    step_seconds: u32,
    base_cores: f64,
    diurnal_amplitude: f64,
    weekend_factor: f64,
    trend_per_day: f64,
    noise_sigma: f64,
    noise_phi: f64,
    seed: u64,
}

impl Default for AzureLikeTraceBuilder {
    fn default() -> Self {
        Self {
            days: 30,
            step_seconds: 300,
            base_cores: 1_000_000.0,
            diurnal_amplitude: 0.25,
            weekend_factor: 0.85,
            trend_per_day: 0.002,
            noise_sigma: 0.015,
            noise_phi: 0.9,
            seed: 0x00FA_1C02,
        }
    }
}

impl AzureLikeTraceBuilder {
    /// Sets the trace length in days.
    pub fn days(&mut self, days: u32) -> &mut Self {
        self.days = days;
        self
    }

    /// Sets the sampling step in seconds (default 300 s = 5 minutes).
    pub fn step_seconds(&mut self, step: u32) -> &mut Self {
        self.step_seconds = step;
        self
    }

    /// Sets the mean demand level in CPU cores.
    pub fn base_cores(&mut self, cores: f64) -> &mut Self {
        self.base_cores = cores;
        self
    }

    /// Sets the relative amplitude of the daily cycle (0.25 = ±25 %).
    pub fn diurnal_amplitude(&mut self, amplitude: f64) -> &mut Self {
        self.diurnal_amplitude = amplitude;
        self
    }

    /// Sets the multiplicative weekend demand factor (< 1 dips weekends).
    pub fn weekend_factor(&mut self, factor: f64) -> &mut Self {
        self.weekend_factor = factor;
        self
    }

    /// Sets the relative linear growth in demand per day.
    pub fn trend_per_day(&mut self, trend: f64) -> &mut Self {
        self.trend_per_day = trend;
        self
    }

    /// Sets the standard deviation of the relative AR(1) noise.
    pub fn noise_sigma(&mut self, sigma: f64) -> &mut Self {
        self.noise_sigma = sigma;
        self
    }

    /// Sets the AR(1) autocorrelation coefficient of the noise in `[0, 1)`.
    pub fn noise_phi(&mut self, phi: f64) -> &mut Self {
        self.noise_phi = phi;
        self
    }

    /// Sets the RNG seed; a given seed always yields the same trace.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Generates the trace.
    ///
    /// # Panics
    ///
    /// Panics if `days == 0` or `step_seconds == 0`, which would describe
    /// an empty trace.
    pub fn build(&self) -> AzureLikeTrace {
        assert!(self.days > 0, "trace must cover at least one day");
        assert!(self.step_seconds > 0, "sampling step must be positive");
        let len =
            (u64::from(self.days) * SECS_PER_DAY as u64 / u64::from(self.step_seconds)) as usize;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let normal = Normal::new(0.0, self.noise_sigma).expect("sigma is finite");
        let mut ar = 0.0f64;
        let mut values = Vec::with_capacity(len);
        for k in 0..len {
            let t = k as i64 * i64::from(self.step_seconds);
            let day = t as f64 / SECS_PER_DAY as f64;
            let hour_angle = 2.0 * std::f64::consts::PI * (day.fract() - 0.75);
            // Peak in the (UTC) evening: cos centred at 18:00.
            let diurnal = 1.0 + self.diurnal_amplitude * hour_angle.cos();
            let weekday = (t / SECS_PER_DAY) % 7;
            let weekly = if weekday >= 5 {
                self.weekend_factor
            } else {
                1.0
            };
            let trend = 1.0 + self.trend_per_day * day;
            let eps: f64 = normal.sample(&mut rng);
            ar = self.noise_phi * ar + eps;
            let v = self.base_cores * diurnal * weekly * trend * (1.0 + ar);
            values.push(v.max(0.0));
        }
        let series =
            TimeSeries::from_values(0, self.step_seconds, values).expect("len > 0 checked above");
        AzureLikeTrace { series }
    }
}

/// Generates a small randomized stepwise demand curve, used by tests and
/// the Figure 1 reproduction (three different demand curves sharing the
/// same peak and therefore the same minimum required capacity).
pub fn stepwise_demand(
    rng: &mut impl Rng,
    steps: usize,
    peak: f64,
    start: i64,
    step_seconds: u32,
) -> TimeSeries {
    assert!(steps > 0, "demand curve needs at least one step");
    assert!(peak > 0.0, "peak must be positive");
    let peak_at = rng.gen_range(0..steps);
    let values: Vec<f64> = (0..steps)
        .map(|k| {
            if k == peak_at {
                peak
            } else {
                peak * rng.gen_range(0.2..0.95)
            }
        })
        .collect();
    TimeSeries::from_values(start, step_seconds, values).expect("steps > 0")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_trace_has_expected_shape() {
        let trace = AzureLikeTrace::builder().seed(1).build();
        let s = trace.series();
        assert_eq!(s.len(), 30 * 288);
        assert_eq!(s.step(), 300);
        // Peak must exceed mean (diurnal swing) but not absurdly.
        let ratio = s.peak() / s.mean();
        assert!(ratio > 1.1 && ratio < 2.0, "peak/mean ratio {ratio}");
        assert!(s.min() > 0.0);
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let a = AzureLikeTrace::builder().seed(9).build();
        let b = AzureLikeTrace::builder().seed(9).build();
        assert_eq!(a.series(), b.series());
        let c = AzureLikeTrace::builder().seed(10).build();
        assert_ne!(a.series(), c.series());
    }

    #[test]
    fn weekend_days_dip_below_weekdays() {
        let trace = AzureLikeTrace::builder()
            .days(14)
            .noise_sigma(0.0)
            .trend_per_day(0.0)
            .build();
        let s = trace.series();
        let day = |d: i64| {
            s.window(d * SECS_PER_DAY, (d + 1) * SECS_PER_DAY)
                .unwrap()
                .mean()
        };
        // Days 5 and 6 of each week are weekends in the generator.
        assert!(day(5) < day(4));
        assert!(day(6) < day(0));
    }

    #[test]
    fn diurnal_cycle_peaks_in_evening() {
        let trace = AzureLikeTrace::builder()
            .days(1)
            .noise_sigma(0.0)
            .trend_per_day(0.0)
            .build();
        let s = trace.series();
        let peak_idx = s
            .values()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let peak_hour = peak_idx as f64 * 300.0 / 3600.0;
        assert!((17.0..19.5).contains(&peak_hour), "peak at {peak_hour}h");
    }

    #[test]
    fn stepwise_demand_hits_requested_peak() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = stepwise_demand(&mut rng, 8, 96.0, 0, 3600);
        assert_eq!(s.len(), 8);
        assert!((s.peak() - 96.0).abs() < 1e-12);
        assert!(s.min() >= 0.2 * 96.0 * 0.999);
    }
}
