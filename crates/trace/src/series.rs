//! Uniformly sampled time series and the operations Temporal Shapley needs.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Error returned by [`TimeSeries`] constructors and combinators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeriesError {
    /// The series would contain no samples.
    Empty,
    /// The sampling step was zero seconds.
    ZeroStep,
    /// A sample was NaN or infinite.
    NonFinite {
        /// Index of the first offending sample.
        index: usize,
    },
    /// Two series were combined whose sampling grids do not match.
    GridMismatch {
        /// Step of the left operand in seconds.
        left_step: u32,
        /// Step of the right operand in seconds.
        right_step: u32,
    },
    /// A window or split did not intersect the series.
    OutOfRange,
}

impl fmt::Display for SeriesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeriesError::Empty => write!(f, "time series must contain at least one sample"),
            SeriesError::ZeroStep => write!(f, "sampling step must be at least one second"),
            SeriesError::NonFinite { index } => {
                write!(f, "sample {index} is NaN or infinite")
            }
            SeriesError::GridMismatch {
                left_step,
                right_step,
            } => write!(
                f,
                "sampling grids do not match ({left_step} s vs {right_step} s)"
            ),
            SeriesError::OutOfRange => write!(f, "requested window lies outside the series"),
        }
    }
}

impl std::error::Error for SeriesError {}

/// A uniformly sampled time series.
///
/// Samples are interpreted as *left-aligned step functions*: sample `k`
/// holds over `[start + k·step, start + (k+1)·step)`. This matches how the
/// paper treats 5-minute demand readings — a level that persists for the
/// whole interval — and makes [`integral`](TimeSeries::integral) exact for
/// such signals.
///
/// # Example
///
/// ```
/// use fairco2_trace::TimeSeries;
///
/// let s = TimeSeries::from_values(0, 300, vec![1.0, 4.0, 2.0])?;
/// assert_eq!(s.peak(), 4.0);
/// assert_eq!(s.integral(), (1.0 + 4.0 + 2.0) * 300.0);
/// # Ok::<(), fairco2_trace::series::SeriesError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    start: i64,
    step: u32,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series starting at UNIX second `start` with `step`-second
    /// sampling and the given sample values.
    ///
    /// # Errors
    ///
    /// Returns [`SeriesError::Empty`] if `values` is empty,
    /// [`SeriesError::ZeroStep`] if `step == 0`, and
    /// [`SeriesError::NonFinite`] if any sample is NaN or infinite.
    pub fn from_values(start: i64, step: u32, values: Vec<f64>) -> Result<Self, SeriesError> {
        if step == 0 {
            return Err(SeriesError::ZeroStep);
        }
        if values.is_empty() {
            return Err(SeriesError::Empty);
        }
        if let Some(index) = values.iter().position(|v| !v.is_finite()) {
            return Err(SeriesError::NonFinite { index });
        }
        Ok(Self {
            start,
            step,
            values,
        })
    }

    /// Creates a series by evaluating `f` at every sample timestamp.
    ///
    /// # Errors
    ///
    /// Returns [`SeriesError::Empty`] if `len == 0` and
    /// [`SeriesError::ZeroStep`] if `step == 0`.
    pub fn from_fn(
        start: i64,
        step: u32,
        len: usize,
        mut f: impl FnMut(i64) -> f64,
    ) -> Result<Self, SeriesError> {
        if step == 0 {
            return Err(SeriesError::ZeroStep);
        }
        if len == 0 {
            return Err(SeriesError::Empty);
        }
        let values = (0..len)
            .map(|k| f(start + k as i64 * i64::from(step)))
            .collect();
        Self::from_values(start, step, values)
    }

    /// Creates a constant series.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TimeSeries::from_fn`].
    pub fn constant(start: i64, step: u32, len: usize, value: f64) -> Result<Self, SeriesError> {
        Self::from_fn(start, step, len, |_| value)
    }

    /// First sample timestamp (UNIX seconds).
    pub fn start(&self) -> i64 {
        self.start
    }

    /// Sampling step in seconds.
    pub fn step(&self) -> u32 {
        self.step
    }

    /// One past the covered interval: `start + len·step`.
    pub fn end(&self) -> i64 {
        self.start + self.values.len() as i64 * i64::from(self.step)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series holds no samples. Construction forbids this, so
    /// it only returns `true` for series obtained through deserialization
    /// of corrupt data.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total covered duration in seconds.
    pub fn duration(&self) -> f64 {
        self.values.len() as f64 * f64::from(self.step)
    }

    /// Sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Consumes the series, returning its sample values.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// The value holding at time `t`, or `None` outside the series.
    pub fn value_at(&self, t: i64) -> Option<f64> {
        if t < self.start || t >= self.end() {
            return None;
        }
        let idx = (t - self.start) / i64::from(self.step);
        self.values.get(idx as usize).copied()
    }

    /// Iterates over `(timestamp, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (i64, f64)> + '_ {
        let start = self.start;
        let step = i64::from(self.step);
        self.values
            .iter()
            .enumerate()
            .map(move |(k, &v)| (start + k as i64 * step, v))
    }

    /// Maximum sample value (the *peak demand* of the paper's Eq. 2).
    pub fn peak(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum sample value.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Mean sample value.
    pub fn mean(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Integral over time: `Σ value·step`, in value·seconds.
    ///
    /// For a demand trace in cores this is the total *resource-time*
    /// (core-seconds) — the `qᵢ` of the paper's Eq. 5.
    pub fn integral(&self) -> f64 {
        self.values.iter().sum::<f64>() * f64::from(self.step)
    }

    /// Restricts the series to `[t0, t1)` (timestamps clamped to the grid).
    ///
    /// # Errors
    ///
    /// Returns [`SeriesError::OutOfRange`] if the window does not contain
    /// at least one full sample.
    pub fn window(&self, t0: i64, t1: i64) -> Result<Self, SeriesError> {
        let step = i64::from(self.step);
        let lo = ((t0 - self.start).max(0) + step - 1) / step; // first sample fully inside
        let hi = ((t1 - self.start) / step).min(self.values.len() as i64);
        if lo >= hi {
            return Err(SeriesError::OutOfRange);
        }
        Ok(Self {
            start: self.start + lo * step,
            step: self.step,
            values: self.values[lo as usize..hi as usize].to_vec(),
        })
    }

    /// Splits the series into `parts` contiguous chunks of near-equal
    /// length (earlier chunks get the remainder, so lengths differ by at
    /// most one). Used by the hierarchical Temporal Shapley attribution to
    /// successively divide 30 days → 3 days → 8 hours → ….
    ///
    /// # Errors
    ///
    /// Returns [`SeriesError::OutOfRange`] if `parts` is zero or exceeds
    /// the number of samples.
    pub fn split(&self, parts: usize) -> Result<Vec<Self>, SeriesError> {
        if parts == 0 || parts > self.values.len() {
            return Err(SeriesError::OutOfRange);
        }
        let base = self.values.len() / parts;
        let extra = self.values.len() % parts;
        let mut out = Vec::with_capacity(parts);
        let mut idx = 0usize;
        for k in 0..parts {
            let len = base + usize::from(k < extra);
            let start = self.start + idx as i64 * i64::from(self.step);
            out.push(Self {
                start,
                step: self.step,
                values: self.values[idx..idx + len].to_vec(),
            });
            idx += len;
        }
        Ok(out)
    }

    /// Downsamples by an integer `factor`, each coarse sample being the
    /// **mean** of the fine samples it covers (integral-preserving; a
    /// trailing partial bucket keeps the mean of its members).
    ///
    /// # Errors
    ///
    /// Returns [`SeriesError::ZeroStep`] if `factor == 0`.
    pub fn downsample_mean(&self, factor: usize) -> Result<Self, SeriesError> {
        self.downsample_with(factor, |chunk| {
            chunk.iter().sum::<f64>() / chunk.len() as f64
        })
    }

    /// Downsamples by an integer `factor`, each coarse sample being the
    /// **max** of the fine samples it covers (peak-preserving).
    ///
    /// # Errors
    ///
    /// Returns [`SeriesError::ZeroStep`] if `factor == 0`.
    pub fn downsample_max(&self, factor: usize) -> Result<Self, SeriesError> {
        self.downsample_with(factor, |chunk| {
            chunk.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        })
    }

    fn downsample_with(
        &self,
        factor: usize,
        agg: impl FnMut(&[f64]) -> f64,
    ) -> Result<Self, SeriesError> {
        if factor == 0 {
            return Err(SeriesError::ZeroStep);
        }
        let values: Vec<f64> = self.values.chunks(factor).map(agg).collect();
        Ok(Self {
            start: self.start,
            step: self.step * factor as u32,
            values,
        })
    }

    /// Adds another series sample-wise.
    ///
    /// # Errors
    ///
    /// Returns [`SeriesError::GridMismatch`] if steps differ, or
    /// [`SeriesError::OutOfRange`] if start/length differ.
    pub fn checked_add(&self, other: &Self) -> Result<Self, SeriesError> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Subtracts another series sample-wise.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TimeSeries::checked_add`].
    pub fn checked_sub(&self, other: &Self) -> Result<Self, SeriesError> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Combines two grid-aligned series sample-wise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`SeriesError::GridMismatch`] if steps differ, or
    /// [`SeriesError::OutOfRange`] if start/length differ.
    pub fn zip_with(
        &self,
        other: &Self,
        mut f: impl FnMut(f64, f64) -> f64,
    ) -> Result<Self, SeriesError> {
        if self.step != other.step {
            return Err(SeriesError::GridMismatch {
                left_step: self.step,
                right_step: other.step,
            });
        }
        if self.start != other.start || self.values.len() != other.values.len() {
            return Err(SeriesError::OutOfRange);
        }
        let values = self
            .values
            .iter()
            .zip(&other.values)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Self {
            start: self.start,
            step: self.step,
            values,
        })
    }

    /// Returns a copy with every sample multiplied by `factor`.
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            start: self.start,
            step: self.step,
            values: self.values.iter().map(|v| v * factor).collect(),
        }
    }

    /// Returns a copy with `f` applied to every sample.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> Self {
        Self {
            start: self.start,
            step: self.step,
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values: &[f64]) -> TimeSeries {
        TimeSeries::from_values(0, 300, values.to_vec()).unwrap()
    }

    #[test]
    fn construction_rejects_empty_and_zero_step() {
        assert_eq!(
            TimeSeries::from_values(0, 300, vec![]),
            Err(SeriesError::Empty)
        );
        assert_eq!(
            TimeSeries::from_values(0, 0, vec![1.0]),
            Err(SeriesError::ZeroStep)
        );
    }

    #[test]
    fn construction_rejects_non_finite_samples() {
        assert_eq!(
            TimeSeries::from_values(0, 300, vec![1.0, f64::NAN]),
            Err(SeriesError::NonFinite { index: 1 })
        );
        assert_eq!(
            TimeSeries::from_fn(0, 300, 2, |t| if t == 0 { f64::INFINITY } else { 1.0 }),
            Err(SeriesError::NonFinite { index: 0 })
        );
    }

    #[test]
    fn basic_statistics() {
        let s = series(&[1.0, 4.0, 2.0, 3.0]);
        assert_eq!(s.peak(), 4.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.integral(), 10.0 * 300.0);
        assert_eq!(s.duration(), 1200.0);
        assert_eq!(s.end(), 1200);
    }

    #[test]
    fn value_at_respects_step_boundaries() {
        let s = series(&[1.0, 4.0]);
        assert_eq!(s.value_at(0), Some(1.0));
        assert_eq!(s.value_at(299), Some(1.0));
        assert_eq!(s.value_at(300), Some(4.0));
        assert_eq!(s.value_at(600), None);
        assert_eq!(s.value_at(-1), None);
    }

    #[test]
    fn window_extracts_aligned_samples() {
        let s = series(&[1.0, 2.0, 3.0, 4.0]);
        let w = s.window(300, 900).unwrap();
        assert_eq!(w.values(), &[2.0, 3.0]);
        assert_eq!(w.start(), 300);
        assert!(s.window(1200, 1500).is_err());
    }

    #[test]
    fn split_covers_all_samples_without_overlap() {
        let s = series(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        let parts = s.split(3).unwrap();
        assert_eq!(parts.len(), 3);
        let total: usize = parts.iter().map(TimeSeries::len).sum();
        assert_eq!(total, 7);
        assert_eq!(parts[0].len(), 3); // remainder goes to the front
        assert_eq!(parts[0].start(), 0);
        assert_eq!(parts[1].start(), parts[0].end());
        assert_eq!(parts[2].start(), parts[1].end());
        assert!(s.split(0).is_err());
        assert!(s.split(8).is_err());
    }

    #[test]
    fn downsample_mean_preserves_integral() {
        let s = series(&[1.0, 3.0, 5.0, 7.0]);
        let d = s.downsample_mean(2).unwrap();
        assert_eq!(d.values(), &[2.0, 6.0]);
        assert_eq!(d.step(), 600);
        assert!((d.integral() - s.integral()).abs() < 1e-9);
    }

    #[test]
    fn downsample_max_preserves_peak() {
        let s = series(&[1.0, 3.0, 5.0, 2.0]);
        let d = s.downsample_max(2).unwrap();
        assert_eq!(d.values(), &[3.0, 5.0]);
        assert_eq!(d.peak(), s.peak());
    }

    #[test]
    fn zip_with_detects_mismatch() {
        let a = series(&[1.0, 2.0]);
        let b = TimeSeries::from_values(0, 600, vec![1.0, 2.0]).unwrap();
        assert!(matches!(
            a.checked_add(&b),
            Err(SeriesError::GridMismatch { .. })
        ));
        let c = TimeSeries::from_values(300, 300, vec![1.0, 2.0]).unwrap();
        assert_eq!(a.checked_add(&c), Err(SeriesError::OutOfRange));
        let sum = a.checked_add(&series(&[10.0, 20.0])).unwrap();
        assert_eq!(sum.values(), &[11.0, 22.0]);
    }

    #[test]
    fn scaled_and_map() {
        let s = series(&[1.0, 2.0]);
        assert_eq!(s.scaled(3.0).values(), &[3.0, 6.0]);
        assert_eq!(s.map(|v| v * v).values(), &[1.0, 4.0]);
    }
}
