//! Grid carbon-intensity traces.
//!
//! The paper's case study (Section 8) reacts to the real hourly carbon
//! intensity of the California (CAISO) grid and contrasts it with Sweden's
//! very low-carbon grid. Those datasets are licensed, so this module
//! synthesizes the two regimes:
//!
//! * [`GridIntensityTrace::caiso_like`] — a "duck curve": solar pushes
//!   intensity down towards midday, with a steep evening ramp; weekday
//!   variation and mild noise.
//! * [`GridIntensityTrace::sweden_like`] — a nearly flat, very low
//!   intensity (hydro/nuclear dominated).
//!
//! Intensities are in gCO₂e/kWh as in the paper's figures.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use crate::series::TimeSeries;

/// Joules per kilowatt-hour.
pub const JOULES_PER_KWH: f64 = 3.6e6;

/// A grid carbon-intensity time series in gCO₂e/kWh.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridIntensityTrace {
    series: TimeSeries,
}

impl GridIntensityTrace {
    /// Wraps an existing series, interpreting its values as gCO₂e/kWh.
    ///
    /// # Panics
    ///
    /// Panics if any sample is negative — a negative carbon intensity is
    /// physically meaningless.
    pub fn from_series(series: TimeSeries) -> Self {
        assert!(
            series.values().iter().all(|&v| v >= 0.0),
            "carbon intensity must be non-negative"
        );
        Self { series }
    }

    /// A constant-intensity trace, useful for sweeps over grid CI.
    ///
    /// # Panics
    ///
    /// Panics if `gco2e_per_kwh` is negative, `days == 0`, or
    /// `step_seconds == 0`.
    pub fn constant(gco2e_per_kwh: f64, days: u32, step_seconds: u32) -> Self {
        assert!(
            gco2e_per_kwh >= 0.0,
            "carbon intensity must be non-negative"
        );
        let len = (u64::from(days) * 86_400 / u64::from(step_seconds)) as usize;
        let series = TimeSeries::constant(0, step_seconds, len, gco2e_per_kwh)
            .expect("days and step validated by caller");
        Self { series }
    }

    /// A CAISO-like duck-curve trace: midday solar dip (down to roughly
    /// a quarter of the evening peak), a steep evening ramp, and
    /// day-to-day noise. Mean intensity ≈ 240 gCO₂e/kWh, evening peaks ≈
    /// 340, midday troughs ≈ 80 — swinging across the ~90–150 gCO₂e/kWh
    /// IVF↔HNSW crossover band every day, as the real 2023 CAISO trace
    /// does around the paper's reported crossover.
    ///
    /// # Panics
    ///
    /// Panics if `days == 0` or `step_seconds == 0`.
    pub fn caiso_like(days: u32, step_seconds: u32, seed: u64) -> Self {
        assert!(days > 0 && step_seconds > 0, "trace must be non-empty");
        let len = (u64::from(days) * 86_400 / u64::from(step_seconds)) as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let noise = Normal::new(0.0, 12.0).expect("finite sigma");
        let series = TimeSeries::from_fn(0, step_seconds, len, |t| {
            let hour = (t % 86_400) as f64 / 3600.0;
            // Duck curve: high overnight baseline, solar dip centred at
            // 12:30, sharp evening ramp peaking around 19:30.
            let solar = gaussian_bump(hour, 12.5, 3.2);
            let evening = gaussian_bump(hour, 19.5, 1.8);
            let base = 270.0 - 195.0 * solar + 115.0 * evening;
            (base + noise.sample(&mut rng)).max(30.0)
        })
        .expect("len > 0 by assertion");
        Self { series }
    }

    /// A Sweden-like trace: flat and very low (hydro/nuclear), around
    /// 25 gCO₂e/kWh with slight daily modulation.
    ///
    /// # Panics
    ///
    /// Panics if `days == 0` or `step_seconds == 0`.
    pub fn sweden_like(days: u32, step_seconds: u32, seed: u64) -> Self {
        assert!(days > 0 && step_seconds > 0, "trace must be non-empty");
        let len = (u64::from(days) * 86_400 / u64::from(step_seconds)) as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let noise = Normal::new(0.0, 1.5).expect("finite sigma");
        let series = TimeSeries::from_fn(0, step_seconds, len, |t| {
            let hour = (t % 86_400) as f64 / 3600.0;
            let daily = 1.0 + 0.08 * ((hour - 18.0) / 24.0 * std::f64::consts::TAU).cos();
            (25.0 * daily + noise.sample(&mut rng)).max(5.0)
        })
        .expect("len > 0 by assertion");
        Self { series }
    }

    /// A coal-heavy trace: high and nearly flat (thermal baseload) around
    /// 650 gCO₂e/kWh, with a mild demand-following evening bulge.
    ///
    /// # Panics
    ///
    /// Panics if `days == 0` or `step_seconds == 0`.
    pub fn coal_like(days: u32, step_seconds: u32, seed: u64) -> Self {
        assert!(days > 0 && step_seconds > 0, "trace must be non-empty");
        let len = (u64::from(days) * 86_400 / u64::from(step_seconds)) as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let noise = Normal::new(0.0, 8.0).expect("finite sigma");
        let series = TimeSeries::from_fn(0, step_seconds, len, |t| {
            let hour = (t % 86_400) as f64 / 3600.0;
            let evening = gaussian_bump(hour, 19.0, 3.0);
            (630.0 + 40.0 * evening + noise.sample(&mut rng)).max(400.0)
        })
        .expect("len > 0 by assertion");
        Self { series }
    }

    /// A wind-heavy trace: low mean (~120 gCO₂e/kWh) with large
    /// multi-hour swings as wind output comes and goes — clean troughs
    /// near 30 and calm-spell peaks near 300, uncorrelated with the hour
    /// of day (unlike the solar duck curve).
    ///
    /// # Panics
    ///
    /// Panics if `days == 0` or `step_seconds == 0`.
    pub fn wind_heavy(days: u32, step_seconds: u32, seed: u64) -> Self {
        assert!(days > 0 && step_seconds > 0, "trace must be non-empty");
        let len = (u64::from(days) * 86_400 / u64::from(step_seconds)) as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let noise = Normal::new(0.0, 10.0).expect("finite sigma");
        let series = TimeSeries::from_fn(0, step_seconds, len, |t| {
            // Wind fronts: a slow pseudo-random oscillation built from
            // incommensurate sinusoids (period ~31 h and ~9 h), phase-
            // shifted by the seed so regions decorrelate.
            let h = t as f64 / 3600.0 + (seed % 97) as f64;
            let front = 0.6 * (h / 31.0 * std::f64::consts::TAU).sin()
                + 0.4 * (h / 9.0 * std::f64::consts::TAU).sin();
            let base = 150.0 - 120.0 * front;
            (base + noise.sample(&mut rng)).max(15.0)
        })
        .expect("len > 0 by assertion");
        Self { series }
    }

    /// The underlying series (gCO₂e/kWh).
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// Intensity at time `t` in gCO₂e/kWh, or `None` outside the trace.
    pub fn at(&self, t: i64) -> Option<f64> {
        self.series.value_at(t)
    }

    /// Intensity at time `t` converted to gCO₂e per joule.
    pub fn at_per_joule(&self, t: i64) -> Option<f64> {
        self.at(t).map(|v| v / JOULES_PER_KWH)
    }

    /// Mean intensity over the trace in gCO₂e/kWh.
    pub fn mean(&self) -> f64 {
        self.series.mean()
    }
}

/// An un-normalized Gaussian bump `exp(-(x-mu)²/(2σ²))` on the hour axis,
/// wrapped over the 24-hour day.
fn gaussian_bump(hour: f64, mu: f64, sigma: f64) -> f64 {
    let mut d = (hour - mu).abs();
    if d > 12.0 {
        d = 24.0 - d;
    }
    (-d * d / (2.0 * sigma * sigma)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caiso_has_midday_dip_and_evening_peak() {
        let g = GridIntensityTrace::caiso_like(7, 3600, 1);
        let hour_mean = |h: i64| {
            let mut sum = 0.0;
            for d in 0..7 {
                sum += g.at(d * 86_400 + h * 3600).unwrap();
            }
            sum / 7.0
        };
        let midday = hour_mean(12);
        let evening = hour_mean(19);
        let night = hour_mean(3);
        assert!(midday < night, "midday {midday} night {night}");
        assert!(evening > night, "evening {evening} night {night}");
        assert!(evening / midday > 2.0, "duck ratio {}", evening / midday);
    }

    #[test]
    fn sweden_is_flat_and_low() {
        let g = GridIntensityTrace::sweden_like(7, 3600, 1);
        assert!(g.mean() < 40.0);
        let spread = g.series().peak() - g.series().min();
        assert!(spread < 15.0, "spread {spread}");
    }

    #[test]
    fn coal_is_high_and_flat_wind_is_low_and_swingy() {
        let coal = GridIntensityTrace::coal_like(7, 3600, 2);
        assert!(coal.mean() > 550.0, "coal mean {}", coal.mean());
        let wind = GridIntensityTrace::wind_heavy(7, 3600, 3);
        assert!(wind.mean() < 250.0, "wind mean {}", wind.mean());
        let swing = wind.series().peak() - wind.series().min();
        assert!(swing > 150.0, "wind swing {swing}");
        // Different seeds decorrelate the wind fronts.
        let other = GridIntensityTrace::wind_heavy(7, 3600, 11);
        assert_ne!(wind.series().values(), other.series().values());
    }

    #[test]
    fn per_joule_conversion() {
        let g = GridIntensityTrace::constant(360.0, 1, 3600);
        let per_j = g.at_per_joule(0).unwrap();
        assert!((per_j - 0.0001).abs() < 1e-12); // 360 g/kWh = 1e-4 g/J
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_intensity_is_rejected() {
        let s = TimeSeries::from_values(0, 60, vec![-1.0]).unwrap();
        let _ = GridIntensityTrace::from_series(s);
    }
}
