//! Time-series substrate for the Fair-CO₂ reproduction.
//!
//! The attribution framework consumes two kinds of time series:
//!
//! * **resource demand traces** — aggregate data-center demand for a
//!   resource (e.g. CPU cores) over time, at a fixed sampling step; the
//!   paper uses the Azure 2017 VM trace, which we substitute with the
//!   statistically equivalent synthetic generator in [`demand`], and
//! * **grid carbon-intensity traces** — gCO₂e/kWh of the power grid over
//!   time; the paper uses Electricity Maps data for California and Sweden,
//!   substituted by the generators in [`grid`].
//!
//! The core type is [`TimeSeries`], a uniformly sampled series with the
//! peak / integral / resampling operations that Temporal Shapley attribution
//! is built on.
//!
//! # Example
//!
//! ```
//! use fairco2_trace::{TimeSeries, demand::AzureLikeTrace};
//!
//! let trace = AzureLikeTrace::builder()
//!     .days(30)
//!     .step_seconds(300)
//!     .seed(7)
//!     .build();
//! let demand: &TimeSeries = trace.series();
//! assert!(demand.peak() > demand.mean());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod demand;
pub mod grid;
pub mod scale;
pub mod series;
pub mod stats;
pub mod vms;

pub use demand::AzureLikeTrace;
pub use grid::GridIntensityTrace;
pub use series::TimeSeries;
