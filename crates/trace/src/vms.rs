//! A VM-population substrate: individual VM lifetimes that aggregate to
//! a fleet demand curve.
//!
//! Hadary et al. (Protean, OSDI '20) — cited by the paper when analyzing
//! Temporal Shapley's limits — observe that *most VMs live only minutes*
//! while a long tail runs almost indefinitely. This module generates such
//! populations: short-lived VMs arrive with a diurnal rate, long-running
//! VMs persist for the whole horizon, and the aggregate core demand is
//! exactly the sum of the live VMs. The unit-resource-time study
//! (`fairco2-shapley`'s `temporal::unit_time`) and the VM-replay example
//! are built on it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

use crate::series::TimeSeries;

/// One virtual machine: a core reservation over `[start, end)` seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmEvent {
    /// Creation time (UNIX seconds).
    pub start: i64,
    /// Deletion time (UNIX seconds, exclusive).
    pub end: i64,
    /// Reserved cores.
    pub cores: f64,
}

impl VmEvent {
    /// Lifetime in seconds.
    pub fn lifetime_s(&self) -> f64 {
        (self.end - self.start) as f64
    }

    /// Core-seconds reserved.
    pub fn core_seconds(&self) -> f64 {
        self.cores * self.lifetime_s()
    }
}

/// Builder for a synthetic VM population.
#[derive(Debug, Clone)]
pub struct VmPopulationBuilder {
    horizon_days: u32,
    short_vms_per_hour: f64,
    short_lifetime_median_s: f64,
    short_lifetime_sigma: f64,
    long_vm_count: usize,
    core_choices: Vec<f64>,
    diurnal_amplitude: f64,
    seed: u64,
}

impl Default for VmPopulationBuilder {
    fn default() -> Self {
        Self {
            horizon_days: 3,
            short_vms_per_hour: 120.0,
            short_lifetime_median_s: 600.0, // most VMs live ~10 minutes
            short_lifetime_sigma: 1.2,
            long_vm_count: 40,
            core_choices: vec![2.0, 4.0, 8.0, 16.0],
            diurnal_amplitude: 0.5,
            seed: 0x5EED,
        }
    }
}

impl VmPopulationBuilder {
    /// Sets the horizon in days.
    pub fn horizon_days(&mut self, days: u32) -> &mut Self {
        self.horizon_days = days;
        self
    }

    /// Sets the mean arrival rate of short-lived VMs (per hour, before
    /// diurnal modulation).
    pub fn short_vms_per_hour(&mut self, rate: f64) -> &mut Self {
        self.short_vms_per_hour = rate;
        self
    }

    /// Sets the median lifetime of short-lived VMs in seconds.
    pub fn short_lifetime_median_s(&mut self, median: f64) -> &mut Self {
        self.short_lifetime_median_s = median;
        self
    }

    /// Sets the number of horizon-spanning, long-running VMs.
    pub fn long_vm_count(&mut self, count: usize) -> &mut Self {
        self.long_vm_count = count;
        self
    }

    /// Sets the relative amplitude of the diurnal arrival modulation.
    pub fn diurnal_amplitude(&mut self, amplitude: f64) -> &mut Self {
        self.diurnal_amplitude = amplitude;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Generates the population.
    ///
    /// # Panics
    ///
    /// Panics if the horizon is zero days.
    pub fn build(&self) -> VmPopulation {
        assert!(self.horizon_days > 0, "horizon must cover at least a day");
        let horizon_s = i64::from(self.horizon_days) * 86_400;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let lifetime = LogNormal::new(self.short_lifetime_median_s.ln(), self.short_lifetime_sigma)
            .expect("finite lognormal parameters");

        // The diurnal rate repeats every day and the arrival buckets are
        // minutes, so there are only 1440 distinct per-bucket rates —
        // hoisted out of the sweep (they cost a cosine each) instead of
        // recomputed for every bucket of every day. Pure arithmetic, no
        // RNG: the draw sequence is identical to the unhoisted loop.
        let rate_table = diurnal_rate_table(self.short_vms_per_hour, self.diurnal_amplitude);
        // One up-front reservation sized at the expected population (the
        // diurnal cosine integrates to zero over a day) keeps 2M-event
        // builds from paying repeated growth copies.
        let expected_short =
            (self.short_vms_per_hour * 24.0 * f64::from(self.horizon_days)).ceil() as usize;
        let mut vms = Vec::with_capacity(self.long_vm_count + expected_short + expected_short / 8);
        // Long-running VMs span the horizon (Hadary's "survive almost
        // indefinitely" tail).
        for _ in 0..self.long_vm_count {
            let cores = self.core_choices[rng.gen_range(0..self.core_choices.len())];
            vms.push(VmEvent {
                start: 0,
                end: horizon_s,
                cores,
            });
        }
        // Short-lived VMs arrive as an inhomogeneous Poisson process with
        // a diurnal rate (peaking in the evening like the demand trace).
        let step = 60i64; // one-minute arrival buckets
        let mut t = 0i64;
        while t < horizon_s {
            let rate_per_min = rate_table[((t % 86_400) / step) as usize];
            let arrivals = poisson_knuth(&mut rng, rate_per_min);
            for _ in 0..arrivals {
                let start = t + rng.gen_range(0..step);
                let life = lifetime.sample(&mut rng).clamp(60.0, 6.0 * 3600.0);
                let cores = self.core_choices[rng.gen_range(0..self.core_choices.len())];
                vms.push(VmEvent {
                    start,
                    end: (start + life as i64).min(horizon_s),
                    cores,
                });
            }
            t += step;
        }
        VmPopulation { vms, horizon_s }
    }
}

/// Per-minute arrival rates over one day: the evening-peaking cosine the
/// builder (and the streaming generator in [`crate::scale`]) modulates
/// arrivals with, evaluated once per distinct minute-of-day.
pub(crate) fn diurnal_rate_table(vms_per_hour: f64, amplitude: f64) -> Vec<f64> {
    (0..1440)
        .map(|minute| {
            let hour = (minute * 60) as f64 / 3600.0;
            let phase = (hour - 18.0) / 24.0 * std::f64::consts::TAU;
            (vms_per_hour / 60.0 * (1.0 + amplitude * phase.cos())).max(0.0)
        })
        .collect()
}

/// Small-mean Poisson sampler (Knuth's product method) — arrival rates
/// per bucket are ≪ 30, where this is both exact and fast. (The streaming
/// generator in [`crate::scale`] thins larger rates into sub-buckets so
/// every draw stays in that regime.)
pub(crate) fn poisson_knuth(rng: &mut impl Rng, mean: f64) -> u32 {
    let l = (-mean).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // unreachable for sane rates; guards infinite loops
        }
    }
}

/// A generated VM population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmPopulation {
    vms: Vec<VmEvent>,
    horizon_s: i64,
}

impl VmPopulation {
    /// Starts building a population.
    pub fn builder() -> VmPopulationBuilder {
        VmPopulationBuilder::default()
    }

    /// Wraps externally generated events (e.g. the chunked streaming
    /// generator in [`crate::scale`]) as a population.
    ///
    /// # Panics
    ///
    /// Panics if the horizon is not positive.
    pub fn from_events(vms: Vec<VmEvent>, horizon_s: i64) -> Self {
        assert!(horizon_s > 0, "horizon must be positive");
        Self { vms, horizon_s }
    }

    /// Sorts the events by start time (then end, then cores) and returns
    /// the population.
    ///
    /// The comparator works on the precomputed integer start times stored
    /// in each event — no per-comparison key derivation — and uses
    /// `sort_unstable_by` (events are `Copy`; stability is irrelevant once
    /// the full key breaks ties deterministically).
    pub fn sorted_by_start(mut self) -> Self {
        self.vms.sort_unstable_by(|a, b| {
            (a.start, a.end, a.cores)
                .partial_cmp(&(b.start, b.end, b.cores))
                .expect("core counts are finite")
        });
        self
    }

    /// The individual VMs.
    pub fn vms(&self) -> &[VmEvent] {
        &self.vms
    }

    /// Horizon covered, in seconds.
    pub fn horizon_s(&self) -> i64 {
        self.horizon_s
    }

    /// VMs whose lifetime is below `threshold_s`.
    pub fn short_lived(&self, threshold_s: f64) -> impl Iterator<Item = &VmEvent> {
        self.vms
            .iter()
            .filter(move |v| v.lifetime_s() < threshold_s)
    }

    /// Aggregate core demand sampled at `step` seconds — by construction
    /// the exact sum of live reservations in each bucket (sampled at the
    /// bucket start).
    ///
    /// Runs as an `O(V + T)` difference-array event sweep: each VM
    /// contributes `+cores` at its first bucket and `−cores` past its
    /// last, and one prefix pass recovers the per-bucket level. Core
    /// counts are small powers of two, so the sweep's sums are exact and
    /// agree bit-for-bit with a naive `O(V · lifetime)` per-VM
    /// bucket-overlap accumulation (pinned in this module's tests).
    ///
    /// # Panics
    ///
    /// Panics if `step == 0`.
    pub fn demand_series(&self, step: u32) -> TimeSeries {
        assert!(step > 0, "sampling step must be positive");
        let len = (self.horizon_s / i64::from(step)) as usize;
        // Sweep-line: +cores at start, −cores at end, then prefix-sum.
        let mut delta = vec![0.0f64; len + 1];
        for vm in &self.vms {
            let s = (vm.start / i64::from(step)) as usize;
            let e = ((vm.end + i64::from(step) - 1) / i64::from(step)) as usize;
            delta[s.min(len)] += vm.cores;
            delta[e.min(len)] -= vm.cores;
        }
        let mut level = 0.0;
        let values: Vec<f64> = delta[..len]
            .iter()
            .map(|d| {
                level += d;
                level
            })
            .collect();
        TimeSeries::from_values(0, step, values).expect("horizon ≥ one bucket")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn population() -> VmPopulation {
        VmPopulation::builder().seed(1).build()
    }

    #[test]
    fn most_vms_are_short_lived() {
        let pop = population();
        let short = pop.short_lived(3600.0).count();
        let total = pop.vms().len();
        assert!(
            short as f64 > 0.6 * total as f64,
            "only {short} of {total} short"
        );
        // ...but long-running VMs dominate core-seconds (the long tail).
        let long_cs: f64 = pop
            .vms()
            .iter()
            .filter(|v| v.lifetime_s() >= 86_400.0)
            .map(VmEvent::core_seconds)
            .sum();
        let total_cs: f64 = pop.vms().iter().map(VmEvent::core_seconds).sum();
        assert!(
            long_cs / total_cs > 0.3,
            "long share {}",
            long_cs / total_cs
        );
    }

    /// The pre-sweep reference: walk every VM and add its cores to every
    /// bucket it overlaps — `O(V · lifetime)`. Retained test-only to pin
    /// the `O(V + T)` difference-array sweep.
    fn naive_demand_series(pop: &VmPopulation, step: u32) -> TimeSeries {
        let len = (pop.horizon_s() / i64::from(step)) as usize;
        let mut values = vec![0.0f64; len];
        for vm in pop.vms() {
            let first = (vm.start / i64::from(step)) as usize;
            let last = ((vm.end + i64::from(step) - 1) / i64::from(step)) as usize;
            for bucket in values.iter_mut().take(last.min(len)).skip(first.min(len)) {
                *bucket += vm.cores;
            }
        }
        TimeSeries::from_values(0, step, values).expect("horizon ≥ one bucket")
    }

    #[test]
    fn sweep_matches_naive_bucket_overlap_on_default_population() {
        // Core counts are powers of two, so both accumulation orders are
        // exact integer arithmetic: the pin is bit-for-bit over every
        // bucket of the seeded default population.
        let pop = population();
        for step in [300u32, 3_600] {
            let sweep = pop.demand_series(step);
            let naive = naive_demand_series(&pop, step);
            assert_eq!(sweep.len(), naive.len());
            for (k, (a, b)) in sweep.values().iter().zip(naive.values()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "step {step} bucket {k}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn demand_series_matches_manual_count() {
        let pop = population();
        let series = pop.demand_series(300);
        // Check one bucket against a direct count.
        let t = 36_000i64;
        let expected: f64 = pop
            .vms()
            .iter()
            .filter(|v| {
                let bucket_start = t;
                let bucket_end = t + 300;
                v.start < bucket_end && v.end > bucket_start
            })
            .map(|v| v.cores)
            .sum();
        let got = series.value_at(t).unwrap();
        // The sweep counts a VM for any bucket it overlaps, so the values
        // agree exactly.
        assert!(
            (got - expected).abs() < 1e-9,
            "got {got} expected {expected}"
        );
    }

    #[test]
    fn arrival_rate_is_diurnal() {
        let pop = VmPopulation::builder().seed(7).horizon_days(4).build();
        let mut evening = 0usize;
        let mut morning = 0usize;
        for vm in pop.short_lived(6.0 * 3600.0) {
            let hour = (vm.start % 86_400) / 3600;
            if (17..21).contains(&hour) {
                evening += 1;
            }
            if (5..9).contains(&hour) {
                morning += 1;
            }
        }
        assert!(
            evening as f64 > 1.3 * morning as f64,
            "evening {evening} morning {morning}"
        );
    }

    /// The pre-hoist `build` body, retained verbatim: per-bucket cosine
    /// rate evaluation and an unreserved output vector. Pins that the
    /// rate-table hoist and capacity reservation leave the generated
    /// population bit-identical (the RNG draw sequence is untouched).
    fn reference_build(b: &VmPopulationBuilder) -> VmPopulation {
        assert!(b.horizon_days > 0, "horizon must cover at least a day");
        let horizon_s = i64::from(b.horizon_days) * 86_400;
        let mut rng = StdRng::seed_from_u64(b.seed);
        let lifetime = LogNormal::new(b.short_lifetime_median_s.ln(), b.short_lifetime_sigma)
            .expect("finite lognormal parameters");

        let mut vms = Vec::new();
        for _ in 0..b.long_vm_count {
            let cores = b.core_choices[rng.gen_range(0..b.core_choices.len())];
            vms.push(VmEvent {
                start: 0,
                end: horizon_s,
                cores,
            });
        }
        let step = 60i64;
        let mut t = 0i64;
        while t < horizon_s {
            let hour = (t % 86_400) as f64 / 3600.0;
            let phase = (hour - 18.0) / 24.0 * std::f64::consts::TAU;
            let rate_per_min =
                b.short_vms_per_hour / 60.0 * (1.0 + b.diurnal_amplitude * phase.cos());
            let arrivals = poisson_knuth(&mut rng, rate_per_min.max(0.0));
            for _ in 0..arrivals {
                let start = t + rng.gen_range(0..step);
                let life = lifetime.sample(&mut rng).clamp(60.0, 6.0 * 3600.0);
                let cores = b.core_choices[rng.gen_range(0..b.core_choices.len())];
                vms.push(VmEvent {
                    start,
                    end: (start + life as i64).min(horizon_s),
                    cores,
                });
            }
            t += step;
        }
        VmPopulation { vms, horizon_s }
    }

    #[test]
    fn hoisted_build_matches_the_reference_path() {
        for seed in [0u64, 1, 0x5EED, 99] {
            let mut builder = VmPopulation::builder();
            builder.seed(seed).horizon_days(2);
            assert_eq!(builder.build(), reference_build(&builder), "seed {seed}");
        }
        // Off-default rate/amplitude exercise the whole rate table.
        let mut builder = VmPopulation::builder();
        builder
            .seed(11)
            .short_vms_per_hour(37.5)
            .diurnal_amplitude(0.9);
        assert_eq!(builder.build(), reference_build(&builder));
    }

    #[test]
    fn sorted_by_start_orders_events_and_keeps_the_multiset() {
        let pop = population();
        let sorted = pop.clone().sorted_by_start();
        assert!(sorted.vms().windows(2).all(|w| w[0].start <= w[1].start));
        let mut a = pop.vms().to_vec();
        let mut b = sorted.vms().to_vec();
        let key = |v: &VmEvent| (v.start, v.end, v.cores.to_bits());
        a.sort_unstable_by_key(key);
        b.sort_unstable_by_key(key);
        assert_eq!(a, b);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = VmPopulation::builder().seed(3).build();
        let b = VmPopulation::builder().seed(3).build();
        assert_eq!(a, b);
    }

    #[test]
    fn long_vms_span_the_horizon() {
        let pop = population();
        let spanning = pop
            .vms()
            .iter()
            .filter(|v| v.start == 0 && v.end == pop.horizon_s())
            .count();
        assert_eq!(spanning, 40);
    }
}
