//! Minimal CSV persistence for time series.
//!
//! The experiment binaries write every reproduced figure's series to disk;
//! this module provides the tiny `(timestamp,value)` format they use, and a
//! reader so external traces (e.g. a real Azure export) can be dropped in.

use std::fmt;
use std::io::{BufRead, Write};

use crate::series::{SeriesError, TimeSeries};

/// Error produced while reading a time-series CSV.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A row could not be parsed; carries the 1-based line number.
    Parse(usize),
    /// Rows were not uniformly spaced in time.
    IrregularStep {
        /// 1-based line number of the offending row.
        line: usize,
    },
    /// The rows did not form a valid series.
    Series(SeriesError),
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "i/o error: {e}"),
            CsvError::Parse(line) => write!(f, "malformed row at line {line}"),
            CsvError::IrregularStep { line } => {
                write!(f, "irregular timestamp spacing at line {line}")
            }
            CsvError::Series(e) => write!(f, "invalid series: {e}"),
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            CsvError::Series(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Writes a series as `timestamp,value` rows with a header line.
///
/// # Errors
///
/// Propagates any I/O error from `w`.
pub fn write_series(w: &mut impl Write, series: &TimeSeries) -> std::io::Result<()> {
    writeln!(w, "timestamp,value")?;
    for (t, v) in series.iter() {
        writeln!(w, "{t},{v}")?;
    }
    Ok(())
}

/// Reads a series from `timestamp,value` rows (a non-numeric header line is
/// skipped). Timestamps must be uniformly spaced.
///
/// # Errors
///
/// Returns [`CsvError::Parse`] for malformed rows,
/// [`CsvError::IrregularStep`] when spacing varies, and
/// [`CsvError::Series`] when the rows form no valid series (e.g. empty).
pub fn read_series(r: impl BufRead) -> Result<TimeSeries, CsvError> {
    let mut timestamps: Vec<i64> = Vec::new();
    let mut values: Vec<f64> = Vec::new();
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let mut parts = trimmed.split(',');
        let (Some(ts), Some(val)) = (parts.next(), parts.next()) else {
            return Err(CsvError::Parse(idx + 1));
        };
        match (ts.trim().parse::<i64>(), val.trim().parse::<f64>()) {
            (Ok(t), Ok(v)) => {
                timestamps.push(t);
                values.push(v);
            }
            _ if idx == 0 => continue, // header
            _ => return Err(CsvError::Parse(idx + 1)),
        }
    }
    let step = match timestamps.len() {
        0 => return Err(CsvError::Series(SeriesError::Empty)),
        1 => 1,
        _ => {
            let step = timestamps[1] - timestamps[0];
            if step <= 0 || step > i64::from(u32::MAX) {
                return Err(CsvError::IrregularStep { line: 2 });
            }
            for (k, pair) in timestamps.windows(2).enumerate() {
                if pair[1] - pair[0] != step {
                    return Err(CsvError::IrregularStep { line: k + 3 });
                }
            }
            step
        }
    };
    TimeSeries::from_values(timestamps[0], step as u32, values).map_err(CsvError::Series)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let s = TimeSeries::from_values(100, 300, vec![1.5, 2.5, 3.5]).unwrap();
        let mut buf = Vec::new();
        write_series(&mut buf, &s).unwrap();
        let parsed = read_series(buf.as_slice()).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn header_is_optional() {
        let parsed = read_series("0,1.0\n300,2.0\n".as_bytes()).unwrap();
        assert_eq!(parsed.values(), &[1.0, 2.0]);
    }

    #[test]
    fn irregular_step_is_rejected() {
        let err = read_series("timestamp,value\n0,1.0\n300,2.0\n700,3.0\n".as_bytes());
        assert!(matches!(err, Err(CsvError::IrregularStep { line: 4 })));
    }

    #[test]
    fn malformed_row_is_rejected() {
        let err = read_series("timestamp,value\n0,1.0\nnot-a-row\n".as_bytes());
        assert!(matches!(err, Err(CsvError::Parse(3))));
        let err = read_series("timestamp,value\n0\n".as_bytes());
        assert!(matches!(err, Err(CsvError::Parse(2))));
    }

    #[test]
    fn empty_input_is_rejected() {
        let err = read_series("timestamp,value\n".as_bytes());
        assert!(matches!(err, Err(CsvError::Series(SeriesError::Empty))));
    }
}
