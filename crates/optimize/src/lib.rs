//! Carbon-aware workload configuration optimization (paper Section 8).
//!
//! Given a fair carbon price for resources — Fair-CO₂'s embodied intensity
//! signal plus the grid's operational intensity — users can re-configure
//! workloads to cut their footprint. This crate models the paper's three
//! case studies:
//!
//! * [`scaling`] — parametric performance/power models for the PBBS
//!   kernels and Spark: Amdahl-style sublinear core scaling, SMT energy
//!   efficiency, whole-node static power, and (for WC, NBODY, SPARK)
//!   memory-for-runtime trading.
//! * [`sweep`] — configuration sweeps over cores × memory and the
//!   energy-/embodied-/carbon-optimal frontiers of Figure 10.
//! * [`faiss`] — the FAISS vector-retrieval serving model with IVF and
//!   HNSW indices (Figure 12's carbon–latency Pareto fronts; the
//!   IVF↔HNSW crossover near 90 gCO₂e/kWh).
//! * [`dynamic`] — the week-long dynamic reconfiguration case study of
//!   Figure 13: a latency-constrained FAISS service tracks the live grid
//!   and embodied intensity signals and switches configuration (and
//!   index) to minimize carbon.
//! * [`spatial`] — spatio-temporal shifting: deferrable batch jobs pick
//!   the `(region, start time)` minimizing grid + embodied carbon, the
//!   optimization the paper's introduction motivates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynamic;
pub mod faiss;
pub mod scaling;
pub mod spatial;
pub mod sweep;

pub use faiss::{FaissConfig, FaissModel, IndexKind};
pub use scaling::{ConfigCost, ResourcePricing, ScalingModel};
pub use sweep::{sweep_configurations, SweepOutcome};
