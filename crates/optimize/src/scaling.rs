//! Parametric performance/power/carbon models for batch workloads.

use serde::{Deserialize, Serialize};

use fairco2_carbon::ServerSpec;
use fairco2_workloads::WorkloadKind;

/// Carbon prices for the resources a configuration consumes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourcePricing {
    /// Embodied gCO₂e per logical-core-second.
    pub embodied_per_core_s: f64,
    /// Embodied gCO₂e per memory-GB-second.
    pub embodied_per_gb_s: f64,
    /// Grid carbon intensity in gCO₂e/kWh.
    pub grid_ci: f64,
    /// Node static (idle) power in watts, charged for the whole run.
    pub static_power_w: f64,
}

impl ResourcePricing {
    /// Prices derived from the reference server's amortized embodied rates
    /// (logical cores = 2 × physical, so the per-core rate halves) at the
    /// given grid intensity.
    pub fn from_server(server: &ServerSpec, grid_ci: f64) -> Self {
        let rates = server.embodied_rates();
        Self {
            embodied_per_core_s: rates.cpu_per_core_second.as_grams() / 2.0,
            embodied_per_gb_s: rates.dram_per_gb_second.as_grams(),
            grid_ci,
            static_power_w: server.power.idle.as_watts(),
        }
    }

    /// The paper's reference pricing at a given grid intensity.
    pub fn paper_default(grid_ci: f64) -> Self {
        Self::from_server(&ServerSpec::xeon_6240r(), grid_ci)
    }

    /// Converts joules to gCO₂e at the configured grid intensity.
    pub fn operational_g(&self, joules: f64) -> f64 {
        joules / 3.6e6 * self.grid_ci
    }
}

/// Cost breakdown of one workload configuration (one batch run).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfigCost {
    /// Logical cores used.
    pub cores: u32,
    /// Memory allocation in GB.
    pub memory_gb: f64,
    /// Wall-clock runtime in seconds.
    pub runtime_s: f64,
    /// Dynamic energy in joules.
    pub dynamic_energy_j: f64,
    /// Static energy in joules (whole node while running).
    pub static_energy_j: f64,
    /// Embodied carbon in gCO₂e (cores + memory, amortized).
    pub embodied_g: f64,
    /// Operational carbon in gCO₂e at the priced grid intensity.
    pub operational_g: f64,
}

impl ConfigCost {
    /// Total carbon footprint of the run in gCO₂e.
    pub fn total_g(&self) -> f64 {
        self.embodied_g + self.operational_g
    }

    /// Total energy in joules.
    pub fn energy_j(&self) -> f64 {
        self.dynamic_energy_j + self.static_energy_j
    }
}

/// An Amdahl-style scaling model with SMT power efficiency and optional
/// memory-for-runtime trading.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingModel {
    /// Workload name.
    pub name: String,
    /// Single-core runtime in seconds.
    pub t1_s: f64,
    /// Serial (non-parallelizable) fraction of the work.
    pub serial_fraction: f64,
    /// Parallel-scaling exponent γ (`runtime ∝ 1/cores^γ`, γ < 1 is
    /// sublinear).
    pub scaling_exponent: f64,
    /// Working-set size in GB.
    pub working_set_gb: f64,
    /// Whether the workload can trade memory for runtime (WC, NBODY,
    /// SPARK in the paper).
    pub memory_flexible: bool,
    /// Slowdown factor per unit of working-set shortfall.
    pub memory_penalty: f64,
    /// Dynamic power per active logical core in watts.
    pub power_per_core_w: f64,
    /// Relative per-core energy-efficiency gain at full SMT occupancy
    /// (the paper's observed J/%-s reduction with more cores).
    pub smt_efficiency_gain: f64,
}

impl ScalingModel {
    /// A calibrated model for one of the paper's batch workloads
    /// (the eight PBBS kernels and Spark; other suite members are served
    /// by [`crate::faiss`] or have no sweep in the paper).
    ///
    /// # Panics
    ///
    /// Panics when asked for a workload the paper does not sweep
    /// (PostgreSQL, H.265, Llama, FAISS).
    pub fn for_workload(kind: WorkloadKind) -> Self {
        use WorkloadKind::*;
        // (serial, γ, flexible, memory_penalty, p/core)
        let (serial, gamma, flexible, penalty, p_core) = match kind {
            Ddup => (0.04, 0.88, false, 0.0, 3.4),
            Bfs => (0.06, 0.82, false, 0.0, 3.2),
            Msf => (0.05, 0.84, false, 0.0, 3.4),
            Wc => (0.03, 0.90, true, 2.0, 3.0),
            Sa => (0.07, 0.80, false, 0.0, 3.3),
            Ch => (0.04, 0.86, false, 0.0, 3.8),
            Nn => (0.05, 0.85, false, 0.0, 3.6),
            Nbody => (0.02, 0.92, true, 1.5, 3.9),
            Spark => (0.10, 0.75, true, 2.5, 3.1),
            other => panic!("no sweep model for {other}"),
        };
        let profile = kind.profile();
        // Calibrate t1 so the model reproduces the isolated profile's
        // runtime at the half-node allocation (48 logical cores).
        let shape_at_48 = serial + (1.0 - serial) / 48f64.powf(gamma);
        Self {
            name: kind.name().to_owned(),
            t1_s: profile.runtime_s / shape_at_48,
            serial_fraction: serial,
            scaling_exponent: gamma,
            working_set_gb: profile.memory_gb,
            memory_flexible: flexible,
            memory_penalty: penalty,
            power_per_core_w: p_core,
            smt_efficiency_gain: 0.25,
        }
    }

    /// The workloads the paper sweeps in Figure 10.
    pub fn sweep_suite() -> Vec<Self> {
        use WorkloadKind::*;
        [Ddup, Bfs, Msf, Wc, Sa, Ch, Nn, Nbody, Spark]
            .into_iter()
            .map(Self::for_workload)
            .collect()
    }

    /// Runtime at a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0` or `memory_gb <= 0`.
    pub fn runtime_s(&self, cores: u32, memory_gb: f64) -> f64 {
        assert!(cores > 0, "at least one core is required");
        assert!(memory_gb > 0.0, "memory allocation must be positive");
        let parallel = self.serial_fraction
            + (1.0 - self.serial_fraction) / f64::from(cores).powf(self.scaling_exponent);
        let mem = if self.memory_flexible {
            1.0 + self.memory_penalty * (self.working_set_gb / memory_gb - 1.0).max(0.0)
        } else {
            // Inflexible workloads simply need their working set.
            1.0
        };
        self.t1_s * parallel * mem
    }

    /// Effective memory demand of a configuration: flexible workloads can
    /// run below their working set, inflexible ones always hold it.
    pub fn memory_demand_gb(&self, memory_gb: f64) -> f64 {
        if self.memory_flexible {
            memory_gb.min(self.working_set_gb * 1.25)
        } else {
            self.working_set_gb.max(memory_gb)
        }
    }

    /// Average dynamic power at a core count, in watts. Per-core power
    /// falls as SMT packs more threads per physical core.
    pub fn dynamic_power_w(&self, cores: u32) -> f64 {
        let occupancy = f64::from(cores) / 96.0;
        f64::from(cores) * self.power_per_core_w * (1.0 - self.smt_efficiency_gain * occupancy)
    }

    /// Full cost breakdown of a configuration under a pricing.
    pub fn cost(&self, cores: u32, memory_gb: f64, pricing: &ResourcePricing) -> ConfigCost {
        let runtime_s = self.runtime_s(cores, memory_gb);
        let mem = self.memory_demand_gb(memory_gb);
        let dynamic_energy_j = self.dynamic_power_w(cores) * runtime_s;
        let static_energy_j = pricing.static_power_w * runtime_s;
        let embodied_g = runtime_s
            * (f64::from(cores) * pricing.embodied_per_core_s + mem * pricing.embodied_per_gb_s);
        let operational_g = pricing.operational_g(dynamic_energy_j + static_energy_j);
        ConfigCost {
            cores,
            memory_gb: mem,
            runtime_s,
            dynamic_energy_j,
            static_energy_j,
            embodied_g,
            operational_g,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use WorkloadKind::*;

    #[test]
    fn runtime_matches_profile_at_half_node() {
        for kind in [Ddup, Ch, Nbody, Spark] {
            let m = ScalingModel::for_workload(kind);
            let rt = m.runtime_s(48, 96.0);
            assert!((rt - kind.profile().runtime_s).abs() < 1e-6, "{kind}: {rt}");
        }
    }

    #[test]
    fn more_cores_reduce_runtime_sublinearly() {
        let m = ScalingModel::for_workload(Ch);
        let t8 = m.runtime_s(8, 96.0);
        let t96 = m.runtime_s(96, 96.0);
        assert!(t96 < t8);
        // Sublinear: 12× the cores buys less than 12× the speed.
        assert!(t8 / t96 < 12.0);
    }

    #[test]
    fn memory_trading_only_for_flexible_workloads() {
        let wc = ScalingModel::for_workload(Wc);
        assert!(wc.runtime_s(48, 16.0) > wc.runtime_s(48, 96.0));
        let ch = ScalingModel::for_workload(Ch);
        assert_eq!(ch.runtime_s(48, 16.0), ch.runtime_s(48, 96.0));
        assert_eq!(ch.memory_demand_gb(8.0), ch.working_set_gb);
    }

    #[test]
    fn smt_reduces_energy_per_core() {
        let m = ScalingModel::for_workload(Nbody);
        let per_core_8 = m.dynamic_power_w(8) / 8.0;
        let per_core_96 = m.dynamic_power_w(96) / 96.0;
        assert!(per_core_96 < per_core_8);
    }

    #[test]
    fn operational_carbon_falls_with_more_cores() {
        // Static energy dominates; faster runs burn less of it.
        let m = ScalingModel::for_workload(Sa);
        let pricing = ResourcePricing::paper_default(300.0);
        let slow = m.cost(8, 96.0, &pricing);
        let fast = m.cost(96, 96.0, &pricing);
        assert!(fast.operational_g < slow.operational_g);
        // Embodied goes the other way: more core-seconds reserved.
        assert!(fast.embodied_g > slow.embodied_g);
    }

    #[test]
    fn zero_grid_intensity_leaves_only_embodied() {
        let m = ScalingModel::for_workload(Bfs);
        let pricing = ResourcePricing::paper_default(0.0);
        let c = m.cost(48, 96.0, &pricing);
        assert_eq!(c.operational_g, 0.0);
        assert!(c.embodied_g > 0.0);
        assert!((c.total_g() - c.embodied_g).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no sweep model")]
    fn non_swept_workloads_panic() {
        let _ = ScalingModel::for_workload(Llama);
    }
}
