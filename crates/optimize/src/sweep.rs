//! Configuration sweeps and the Figure 10 optima.

use serde::{Deserialize, Serialize};

use crate::scaling::{ConfigCost, ResourcePricing, ScalingModel};

/// Core counts swept (8–96 in steps of 8, as in the paper).
pub fn core_grid() -> Vec<u32> {
    (1..=12).map(|k| k * 8).collect()
}

/// Memory allocations swept (8–192 GB).
pub fn memory_grid() -> Vec<f64> {
    vec![8.0, 16.0, 32.0, 48.0, 64.0, 96.0, 128.0, 160.0, 192.0]
}

/// The four named optima of Figure 10, for one workload at one grid CI.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepOutcome {
    /// Fastest configuration (the paper's normalization baseline).
    pub performance_optimal: ConfigCost,
    /// Minimum total-energy configuration.
    pub energy_optimal: ConfigCost,
    /// Minimum embodied-carbon configuration.
    pub embodied_optimal: ConfigCost,
    /// Minimum total-carbon configuration at the priced grid CI.
    pub carbon_optimal: ConfigCost,
}

impl SweepOutcome {
    /// Carbon saving of the carbon-optimal configuration relative to the
    /// performance-optimal one, as a fraction in `[0, 1)`.
    pub fn carbon_saving(&self) -> f64 {
        1.0 - self.carbon_optimal.total_g() / self.performance_optimal.total_g()
    }
}

/// Sweeps all configurations of `model` under `pricing` and extracts the
/// four optima.
pub fn sweep_configurations(model: &ScalingModel, pricing: &ResourcePricing) -> SweepOutcome {
    let mut all: Vec<ConfigCost> = Vec::new();
    for &cores in &core_grid() {
        for &mem in &memory_grid() {
            // Inflexible workloads cannot run below their working set.
            if !model.memory_flexible && mem < model.working_set_gb {
                continue;
            }
            all.push(model.cost(cores, mem, pricing));
        }
    }
    let pick = |key: fn(&ConfigCost) -> f64| -> ConfigCost {
        *all.iter()
            .min_by(|a, b| key(a).total_cmp(&key(b)))
            .expect("grid is non-empty")
    };
    SweepOutcome {
        performance_optimal: pick(|c| c.runtime_s),
        energy_optimal: pick(ConfigCost::energy_j),
        embodied_optimal: pick(|c| c.embodied_g),
        carbon_optimal: pick(ConfigCost::total_g),
    }
}

/// The runtime–carbon Pareto front of a batch workload's configuration
/// space: configurations not dominated in both runtime and total carbon,
/// sorted fastest-first. The gap between its endpoints is the
/// performance-for-carbon trade the paper's Section 8 sweeps expose.
pub fn pareto_front(model: &ScalingModel, pricing: &ResourcePricing) -> Vec<ConfigCost> {
    let mut all: Vec<ConfigCost> = Vec::new();
    for &cores in &core_grid() {
        for &mem in &memory_grid() {
            if !model.memory_flexible && mem < model.working_set_gb {
                continue;
            }
            all.push(model.cost(cores, mem, pricing));
        }
    }
    all.sort_by(|a, b| a.runtime_s.total_cmp(&b.runtime_s));
    let mut front: Vec<ConfigCost> = Vec::new();
    let mut best = f64::INFINITY;
    for c in all {
        if c.total_g() < best {
            best = c.total_g();
            front.push(c);
        }
    }
    front
}

/// Sweeps one workload across a range of grid intensities, returning
/// `(grid_ci, outcome)` rows — one Figure 10 panel.
pub fn sweep_over_grid_ci(model: &ScalingModel, grid_cis: &[f64]) -> Vec<(f64, SweepOutcome)> {
    grid_cis
        .iter()
        .map(|&ci| {
            let pricing = ResourcePricing::paper_default(ci);
            (ci, sweep_configurations(model, &pricing))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairco2_workloads::WorkloadKind::*;

    #[test]
    fn performance_optimal_uses_all_cores() {
        let m = ScalingModel::for_workload(Ch);
        let out = sweep_configurations(&m, &ResourcePricing::paper_default(200.0));
        assert_eq!(out.performance_optimal.cores, 96);
    }

    #[test]
    fn carbon_optimal_core_count_rises_with_grid_ci() {
        // The paper's observation: higher grid CI → operational dominates
        // → faster (more-core) configs become carbon-optimal.
        let m = ScalingModel::for_workload(Sa);
        let low = sweep_configurations(&m, &ResourcePricing::paper_default(5.0));
        let high = sweep_configurations(&m, &ResourcePricing::paper_default(700.0));
        assert!(
            high.carbon_optimal.cores > low.carbon_optimal.cores,
            "low {} high {}",
            low.carbon_optimal.cores,
            high.carbon_optimal.cores
        );
    }

    #[test]
    fn energy_and_embodied_optima_are_ci_invariant() {
        let m = ScalingModel::for_workload(Msf);
        let a = sweep_configurations(&m, &ResourcePricing::paper_default(10.0));
        let b = sweep_configurations(&m, &ResourcePricing::paper_default(900.0));
        assert_eq!(a.energy_optimal.cores, b.energy_optimal.cores);
        assert_eq!(a.embodied_optimal.cores, b.embodied_optimal.cores);
        assert_eq!(a.embodied_optimal.memory_gb, b.embodied_optimal.memory_gb);
    }

    #[test]
    fn substantial_savings_at_low_grid_ci() {
        // Figure 10's headline: up to ~65 % carbon savings vs the
        // performance-optimal configuration.
        let mut best = 0.0f64;
        for m in ScalingModel::sweep_suite() {
            let out = sweep_configurations(&m, &ResourcePricing::paper_default(5.0));
            best = best.max(out.carbon_saving());
        }
        assert!(best > 0.35, "best saving {best:.2}");
        assert!(best < 0.9, "best saving {best:.2} suspiciously large");
    }

    #[test]
    fn memory_flexible_workloads_shrink_memory_at_low_ci() {
        let m = ScalingModel::for_workload(Wc);
        let out = sweep_configurations(&m, &ResourcePricing::paper_default(0.0));
        assert!(
            out.carbon_optimal.memory_gb < 96.0,
            "carbon-optimal memory {}",
            out.carbon_optimal.memory_gb
        );
    }

    #[test]
    fn pareto_front_trades_runtime_for_carbon() {
        let m = ScalingModel::for_workload(Nn);
        let front = pareto_front(&m, &ResourcePricing::paper_default(100.0));
        assert!(front.len() >= 2, "front too small: {}", front.len());
        for pair in front.windows(2) {
            assert!(pair[1].runtime_s > pair[0].runtime_s);
            assert!(pair[1].total_g() < pair[0].total_g());
        }
        // The fastest point is the performance optimum (96 cores).
        assert_eq!(front[0].cores, 96);
    }

    #[test]
    fn grid_ci_sweep_is_monotone_in_total_carbon() {
        let m = ScalingModel::for_workload(Spark);
        let rows = sweep_over_grid_ci(&m, &[0.0, 100.0, 400.0, 800.0]);
        for pair in rows.windows(2) {
            assert!(
                pair[1].1.carbon_optimal.total_g() >= pair[0].1.carbon_optimal.total_g(),
                "carbon must not fall as CI rises"
            );
        }
    }
}
