//! FAISS vector-retrieval serving model: IVF vs HNSW (Figures 12–13).
//!
//! The paper characterizes two index types on the 96-thread node:
//!
//! * **IVF** — 77.7 GB index, scales to all 96 cores, higher power;
//!   fastest for small batches.
//! * **HNSW** — 180.8 GB index, core scaling saturates at 88 threads,
//!   lower power; its larger memory footprint gives it a higher
//!   embodied-to-operational carbon ratio.
//!
//! Consequently the carbon-optimal index flips from IVF (embodied-
//! dominated, low grid CI) to HNSW (operational-dominated, high grid CI)
//! — the paper locates the flip near 90 gCO₂e/kWh.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::scaling::ResourcePricing;

/// FAISS index algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IndexKind {
    /// Inverted-file index with scalar quantization.
    Ivf,
    /// Hierarchical navigable small-world graph.
    Hnsw,
}

impl fmt::Display for IndexKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexKind::Ivf => write!(f, "IVF"),
            IndexKind::Hnsw => write!(f, "HNSW"),
        }
    }
}

/// A serving configuration: index, core allocation, and query batch size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaissConfig {
    /// Index algorithm.
    pub index: IndexKind,
    /// Logical cores allocated.
    pub cores: u32,
    /// Queries per batch.
    pub batch: u32,
}

/// A configuration's serving characteristics and carbon cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServingPoint {
    /// The configuration.
    pub config: FaissConfig,
    /// Tail (batch-completion) latency in seconds.
    pub tail_latency_s: f64,
    /// Sustained throughput in queries per second.
    pub throughput_qps: f64,
    /// Carbon per 1000 queries in gCO₂e at the priced grid intensity.
    pub carbon_per_kquery_g: f64,
    /// Embodied share of that carbon (gCO₂e per 1000 queries).
    pub embodied_per_kquery_g: f64,
}

/// The calibrated serving model.
///
/// IVF amortizes the inverted-list scan across a batch (sublinear batch
/// latency, strong core scaling); HNSW traverses the graph per query
/// (linear batch latency with a fixed setup overhead, core scaling
/// saturating at 88 threads, lower power). The default constants are
/// calibrated so that, at the paper's 2-second tail-latency target, HNSW
/// sustains ≈ 0.83× IVF's throughput at ≈ 0.76× its power — which places
/// the carbon crossover near the paper's ≈ 90 gCO₂e/kWh.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaissModel {
    /// IVF latency coefficient.
    pub ivf_latency_coeff: f64,
    /// HNSW per-query latency coefficient.
    pub hnsw_latency_coeff: f64,
    /// HNSW fixed batch-setup latency in seconds.
    pub hnsw_base_latency_s: f64,
    /// IVF dynamic power per core (W).
    pub ivf_power_per_core_w: f64,
    /// HNSW dynamic power per core (W).
    pub hnsw_power_per_core_w: f64,
}

impl Default for FaissModel {
    fn default() -> Self {
        Self {
            ivf_latency_coeff: 0.35,
            hnsw_latency_coeff: 0.0563,
            hnsw_base_latency_s: 0.15,
            ivf_power_per_core_w: 3.9,
            hnsw_power_per_core_w: 2.6,
        }
    }
}

impl FaissModel {
    /// Index memory footprint in GB (the paper's measured sizes).
    pub fn memory_gb(index: IndexKind) -> f64 {
        match index {
            IndexKind::Ivf => 77.7,
            IndexKind::Hnsw => 180.8,
        }
    }

    /// Cores the index can actually exploit (HNSW saturates at 88).
    pub fn effective_cores(index: IndexKind, cores: u32) -> u32 {
        match index {
            IndexKind::Ivf => cores,
            IndexKind::Hnsw => cores.min(88),
        }
    }

    /// Tail latency of one batch in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0` or `batch == 0`.
    pub fn tail_latency_s(&self, config: FaissConfig) -> f64 {
        assert!(config.cores > 0 && config.batch > 0, "degenerate config");
        let c = f64::from(Self::effective_cores(config.index, config.cores));
        let b = f64::from(config.batch);
        match config.index {
            IndexKind::Ivf => self.ivf_latency_coeff * b.powf(0.85) / c.powf(0.90),
            IndexKind::Hnsw => {
                self.hnsw_base_latency_s + self.hnsw_latency_coeff * b / c.powf(0.70)
            }
        }
    }

    /// Dynamic power draw in watts.
    pub fn dynamic_power_w(&self, config: FaissConfig) -> f64 {
        let c = f64::from(Self::effective_cores(config.index, config.cores));
        match config.index {
            IndexKind::Ivf => self.ivf_power_per_core_w * c,
            IndexKind::Hnsw => self.hnsw_power_per_core_w * c,
        }
    }

    /// Full serving point under a pricing.
    pub fn evaluate(&self, config: FaissConfig, pricing: &ResourcePricing) -> ServingPoint {
        let latency = self.tail_latency_s(config);
        let throughput = f64::from(config.batch) / latency;
        // Carbon rate of the dedicated serving node, g/s.
        let embodied_rate = f64::from(config.cores) * pricing.embodied_per_core_s
            + Self::memory_gb(config.index) * pricing.embodied_per_gb_s;
        let power_w = self.dynamic_power_w(config) + pricing.static_power_w;
        let operational_rate = pricing.operational_g(power_w);
        ServingPoint {
            config,
            tail_latency_s: latency,
            throughput_qps: throughput,
            carbon_per_kquery_g: 1000.0 * (embodied_rate + operational_rate) / throughput,
            embodied_per_kquery_g: 1000.0 * embodied_rate / throughput,
        }
    }

    /// Evaluates the full configuration grid (cores 8–96 step 8, batch 8–
    /// 1024 doubling, both indices).
    pub fn sweep(&self, pricing: &ResourcePricing) -> Vec<ServingPoint> {
        let mut out = Vec::new();
        for index in [IndexKind::Ivf, IndexKind::Hnsw] {
            for k in 1..=12 {
                for p in 3..=10 {
                    let config = FaissConfig {
                        index,
                        cores: k * 8,
                        batch: 1 << p,
                    };
                    out.push(self.evaluate(config, pricing));
                }
            }
        }
        out
    }

    /// Pareto front over (tail latency, carbon per kilo-query): points not
    /// dominated by any other, sorted by latency.
    pub fn pareto_front(&self, pricing: &ResourcePricing) -> Vec<ServingPoint> {
        let mut points = self.sweep(pricing);
        points.sort_by(|a, b| a.tail_latency_s.total_cmp(&b.tail_latency_s));
        let mut front: Vec<ServingPoint> = Vec::new();
        let mut best_carbon = f64::INFINITY;
        for p in points {
            if p.carbon_per_kquery_g < best_carbon {
                best_carbon = p.carbon_per_kquery_g;
                front.push(p);
            }
        }
        front
    }

    /// Minimum-carbon configuration meeting a tail-latency target, or
    /// `None` if no configuration meets it.
    pub fn best_under_latency(
        &self,
        pricing: &ResourcePricing,
        latency_target_s: f64,
    ) -> Option<ServingPoint> {
        self.sweep(pricing)
            .into_iter()
            .filter(|p| p.tail_latency_s <= latency_target_s)
            .min_by(|a, b| a.carbon_per_kquery_g.total_cmp(&b.carbon_per_kquery_g))
    }

    /// Latency-optimal configuration (the performance baseline of the
    /// dynamic case study).
    pub fn latency_optimal(&self, pricing: &ResourcePricing) -> ServingPoint {
        self.sweep(pricing)
            .into_iter()
            .min_by(|a, b| a.tail_latency_s.total_cmp(&b.tail_latency_s))
            .expect("sweep grid is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> FaissModel {
        FaissModel::default()
    }

    #[test]
    fn ivf_is_faster_at_small_batches() {
        let m = model();
        for cores in [32, 64, 96] {
            let ivf = m.tail_latency_s(FaissConfig {
                index: IndexKind::Ivf,
                cores,
                batch: 8,
            });
            let hnsw = m.tail_latency_s(FaissConfig {
                index: IndexKind::Hnsw,
                cores,
                batch: 8,
            });
            assert!(ivf < hnsw, "cores {cores}: IVF {ivf} HNSW {hnsw}");
        }
    }

    #[test]
    fn hnsw_core_scaling_saturates_at_88() {
        let m = model();
        let at_88 = m.tail_latency_s(FaissConfig {
            index: IndexKind::Hnsw,
            cores: 88,
            batch: 128,
        });
        let at_96 = m.tail_latency_s(FaissConfig {
            index: IndexKind::Hnsw,
            cores: 96,
            batch: 128,
        });
        assert_eq!(at_88, at_96);
        let ivf_88 = m.tail_latency_s(FaissConfig {
            index: IndexKind::Ivf,
            cores: 88,
            batch: 128,
        });
        let ivf_96 = m.tail_latency_s(FaissConfig {
            index: IndexKind::Ivf,
            cores: 96,
            batch: 128,
        });
        assert!(ivf_96 < ivf_88);
    }

    #[test]
    fn optimal_index_flips_from_ivf_to_hnsw_with_grid_ci() {
        let m = model();
        let target = 2.0;
        let low = m
            .best_under_latency(&ResourcePricing::paper_default(5.0), target)
            .unwrap();
        let high = m
            .best_under_latency(&ResourcePricing::paper_default(500.0), target)
            .unwrap();
        assert_eq!(low.config.index, IndexKind::Ivf, "low CI picks {low:?}");
        assert_eq!(high.config.index, IndexKind::Hnsw, "high CI picks {high:?}");
    }

    #[test]
    fn crossover_lies_in_a_plausible_band() {
        // The paper reports ≈ 90 gCO₂e/kWh; our synthetic substrate should
        // land in the same order of magnitude.
        let m = model();
        let target = 2.0;
        let mut crossover = None;
        for ci in 1..=300 {
            let best = m
                .best_under_latency(&ResourcePricing::paper_default(f64::from(ci)), target)
                .unwrap();
            if best.config.index == IndexKind::Hnsw {
                crossover = Some(ci);
                break;
            }
        }
        let ci = crossover.expect("HNSW must win somewhere below 300");
        assert!((10..=250).contains(&ci), "crossover at {ci}");
    }

    #[test]
    fn pareto_front_is_monotone() {
        let m = model();
        let front = m.pareto_front(&ResourcePricing::paper_default(250.0));
        assert!(front.len() >= 3);
        for pair in front.windows(2) {
            assert!(pair[1].tail_latency_s > pair[0].tail_latency_s);
            assert!(pair[1].carbon_per_kquery_g < pair[0].carbon_per_kquery_g);
        }
    }

    #[test]
    fn hnsw_has_higher_embodied_share() {
        let m = model();
        let pricing = ResourcePricing::paper_default(100.0);
        let cfg = |index| FaissConfig {
            index,
            cores: 88,
            batch: 256,
        };
        let ivf = m.evaluate(cfg(IndexKind::Ivf), &pricing);
        let hnsw = m.evaluate(cfg(IndexKind::Hnsw), &pricing);
        let share = |p: &ServingPoint| p.embodied_per_kquery_g / p.carbon_per_kquery_g;
        assert!(share(&hnsw) > share(&ivf));
    }

    #[test]
    fn latency_optimal_is_small_batch_many_cores() {
        let m = model();
        let p = m.latency_optimal(&ResourcePricing::paper_default(250.0));
        assert_eq!(p.config.batch, 8);
        assert_eq!(p.config.cores, 96);
    }
}
