//! Spatio-temporal workload shifting.
//!
//! The paper's introduction motivates fine-grained attribution with
//! "per-workload spatio-temporal shifting" toward renewable energy
//! (Carbon Explorer, Zero-Carbon Cloud, "Let's wait awhile"). With
//! Fair-CO₂'s signals the optimization is well-posed in *both* carbon
//! terms: each candidate region carries a grid-CI trace (operational) and
//! an embodied-intensity signal (capacity pressure), and a deferrable
//! batch job picks the `(region, start time)` minimizing its total
//! footprint subject to a deadline.

use serde::{Deserialize, Serialize};

use fairco2_trace::{GridIntensityTrace, TimeSeries};

use crate::scaling::ResourcePricing;

/// A candidate region: its grid and its (fleet) embodied intensity.
#[derive(Debug, Clone)]
pub struct Region {
    /// Display name, e.g. `"us-west (CAISO-like)"`.
    pub name: String,
    /// Grid carbon intensity trace.
    pub grid: GridIntensityTrace,
    /// Fair-CO₂ embodied intensity signal, normalized or absolute; only
    /// its *relative* level modulates the embodied price.
    pub embodied_signal: TimeSeries,
}

/// A deferrable batch job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchJob {
    /// Runtime in seconds (assumed region-independent).
    pub runtime_s: f64,
    /// Average dynamic power in watts.
    pub dynamic_power_w: f64,
    /// Logical cores reserved.
    pub cores: f64,
    /// Memory reserved in GB.
    pub memory_gb: f64,
    /// Earliest allowed start (UNIX seconds).
    pub earliest: i64,
    /// Latest allowed *completion* (UNIX seconds).
    pub deadline: i64,
}

/// A chosen placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Region name.
    pub region: String,
    /// Start time (UNIX seconds).
    pub start: i64,
    /// Total job carbon at this placement (gCO₂e).
    pub carbon_g: f64,
    /// Operational part (gCO₂e).
    pub operational_g: f64,
    /// Embodied part (gCO₂e).
    pub embodied_g: f64,
}

/// Carbon of running `job` in `region` starting at `start` (gCO₂e), or
/// `None` if the run does not fit inside the region's traces or the
/// job's window.
pub fn job_carbon(
    region: &Region,
    job: &BatchJob,
    start: i64,
    pricing: &ResourcePricing,
) -> Option<Placement> {
    let end = start + job.runtime_s as i64;
    if start < job.earliest || end > job.deadline {
        return None;
    }
    let grid = region.grid.series();
    if start < grid.start() || end > grid.end() {
        return None;
    }
    let signal_mean = region.embodied_signal.mean();
    let step = f64::from(grid.step());
    let mut operational = 0.0;
    let mut embodied = 0.0;
    let mut t = start;
    while t < end {
        let dt = step.min((end - t) as f64);
        let ci = grid.value_at(t)?;
        let scale = region.embodied_signal.value_at(t).unwrap_or(signal_mean) / signal_mean;
        // Dynamic + the job's share of static power (whole node while
        // running, consistent with the sweep models).
        let power_w = job.dynamic_power_w + pricing.static_power_w;
        operational += power_w * dt / 3.6e6 * ci;
        embodied += dt
            * scale
            * (job.cores * pricing.embodied_per_core_s + job.memory_gb * pricing.embodied_per_gb_s);
        t += step as i64;
    }
    Some(Placement {
        region: region.name.clone(),
        start,
        carbon_g: operational + embodied,
        operational_g: operational,
        embodied_g: embodied,
    })
}

/// Scans all `(region, start)` candidates on the trace grid and returns
/// the minimum-carbon placement, or `None` if no feasible slot exists.
///
/// # Example
///
/// ```
/// use fairco2_optimize::scaling::ResourcePricing;
/// use fairco2_optimize::spatial::{best_placement, BatchJob, Region};
/// use fairco2_trace::{GridIntensityTrace, TimeSeries};
///
/// let regions = vec![Region {
///     name: "california".into(),
///     grid: GridIntensityTrace::caiso_like(1, 3600, 1),
///     embodied_signal: TimeSeries::constant(0, 3600, 24, 1.0)?,
/// }];
/// let job = BatchJob {
///     runtime_s: 7200.0,
///     dynamic_power_w: 200.0,
///     cores: 48.0,
///     memory_gb: 96.0,
///     earliest: 0,
///     deadline: 86_400,
/// };
/// let p = best_placement(&regions, &job, &ResourcePricing::paper_default(0.0)).unwrap();
/// // A deferrable job lands in the solar trough, not at midnight.
/// let start_hour = (p.start % 86_400) / 3600;
/// assert!((9..=15).contains(&start_hour));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn best_placement(
    regions: &[Region],
    job: &BatchJob,
    pricing: &ResourcePricing,
) -> Option<Placement> {
    let mut best: Option<Placement> = None;
    for region in regions {
        let grid = region.grid.series();
        let step = i64::from(grid.step());
        let mut start = job.earliest.max(grid.start());
        while start + job.runtime_s as i64 <= job.deadline.min(grid.end()) {
            if let Some(p) = job_carbon(region, job, start, pricing) {
                if best.as_ref().is_none_or(|b| p.carbon_g < b.carbon_g) {
                    best = Some(p);
                }
            }
            start += step;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairco2_trace::TimeSeries;

    fn flat_signal(days: u32) -> TimeSeries {
        TimeSeries::constant(0, 3600, (days * 24) as usize, 1.0).unwrap()
    }

    fn regions() -> Vec<Region> {
        vec![
            Region {
                name: "california".into(),
                grid: GridIntensityTrace::caiso_like(2, 3600, 1),
                embodied_signal: flat_signal(2),
            },
            Region {
                name: "sweden".into(),
                grid: GridIntensityTrace::sweden_like(2, 3600, 1),
                embodied_signal: flat_signal(2),
            },
        ]
    }

    fn job() -> BatchJob {
        BatchJob {
            runtime_s: 2.0 * 3600.0,
            dynamic_power_w: 200.0,
            cores: 48.0,
            memory_gb: 96.0,
            earliest: 0,
            deadline: 2 * 86_400,
        }
    }

    #[test]
    fn shifts_to_the_cleanest_region() {
        let p = best_placement(&regions(), &job(), &ResourcePricing::paper_default(0.0));
        let p = p.unwrap();
        // With flat embodied signals the cleanest grid wins.
        assert_eq!(p.region, "sweden");
    }

    #[test]
    fn shifts_to_midday_within_a_duck_curve_region() {
        let only_california = vec![regions().remove(0)];
        let p = best_placement(
            &only_california,
            &job(),
            &ResourcePricing::paper_default(0.0),
        )
        .unwrap();
        let start_hour = (p.start % 86_400) / 3600;
        assert!(
            (9..=14).contains(&start_hour),
            "started at hour {start_hour}, expected the solar trough"
        );
    }

    #[test]
    fn embodied_signal_steers_placement_at_zero_grid_difference() {
        // Two identical grids; one region's capacity is under pressure
        // (embodied signal 3×) in the first day.
        let grid = GridIntensityTrace::constant(100.0, 2, 3600);
        let mut pressured = flat_signal(2).into_values();
        for v in pressured.iter_mut().take(24) {
            *v = 3.0;
        }
        let regions = vec![
            Region {
                name: "pressured".into(),
                grid: grid.clone(),
                embodied_signal: TimeSeries::from_values(0, 3600, pressured).unwrap(),
            },
            Region {
                name: "calm".into(),
                grid,
                embodied_signal: flat_signal(2),
            },
        ];
        let mut tight = job();
        tight.deadline = 20 * 3600; // must run during the pressured day
        let p = best_placement(&regions, &tight, &ResourcePricing::paper_default(100.0)).unwrap();
        assert_eq!(p.region, "calm");
    }

    #[test]
    fn deadline_is_respected() {
        let mut j = job();
        j.earliest = 3_600;
        j.deadline = 4 * 3600; // barely fits
        let p = best_placement(&regions(), &j, &ResourcePricing::paper_default(100.0)).unwrap();
        assert!(p.start >= j.earliest);
        assert!(p.start + j.runtime_s as i64 <= j.deadline);
        // Impossible window → no placement.
        j.deadline = j.earliest + 100;
        assert!(best_placement(&regions(), &j, &ResourcePricing::paper_default(100.0)).is_none());
    }

    #[test]
    fn placement_carbon_decomposes() {
        let p = best_placement(&regions(), &job(), &ResourcePricing::paper_default(250.0)).unwrap();
        assert!((p.operational_g + p.embodied_g - p.carbon_g).abs() < 1e-9);
        assert!(p.operational_g > 0.0 && p.embodied_g > 0.0);
    }
}
