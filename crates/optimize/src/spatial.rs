//! Spatio-temporal workload shifting.
//!
//! The paper's introduction motivates fine-grained attribution with
//! "per-workload spatio-temporal shifting" toward renewable energy
//! (Carbon Explorer, Zero-Carbon Cloud, "Let's wait awhile"). With
//! Fair-CO₂'s signals the optimization is well-posed in *both* carbon
//! terms: each candidate region carries a grid-CI trace (operational) and
//! an embodied-intensity signal (capacity pressure), and a deferrable
//! batch job picks the `(region, start time)` minimizing its total
//! footprint subject to a deadline.

use serde::{Deserialize, Serialize};

use fairco2_trace::{GridIntensityTrace, TimeSeries};

use crate::scaling::ResourcePricing;

/// A candidate region: its grid and its (fleet) embodied intensity.
#[derive(Debug, Clone)]
pub struct Region {
    /// Display name, e.g. `"us-west (CAISO-like)"`.
    pub name: String,
    /// Grid carbon intensity trace.
    pub grid: GridIntensityTrace,
    /// Fair-CO₂ embodied intensity signal, normalized or absolute; only
    /// its *relative* level modulates the embodied price.
    pub embodied_signal: TimeSeries,
}

/// A deferrable batch job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchJob {
    /// Runtime in seconds (assumed region-independent).
    pub runtime_s: f64,
    /// Average dynamic power in watts.
    pub dynamic_power_w: f64,
    /// Logical cores reserved.
    pub cores: f64,
    /// Memory reserved in GB.
    pub memory_gb: f64,
    /// Earliest allowed start (UNIX seconds).
    pub earliest: i64,
    /// Latest allowed *completion* (UNIX seconds).
    pub deadline: i64,
}

/// A chosen placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Region name.
    pub region: String,
    /// Start time (UNIX seconds).
    pub start: i64,
    /// Total job carbon at this placement (gCO₂e).
    pub carbon_g: f64,
    /// Operational part (gCO₂e).
    pub operational_g: f64,
    /// Embodied part (gCO₂e).
    pub embodied_g: f64,
}

/// Carbon of running `job` in `region` starting at `start` (gCO₂e), or
/// `None` if the run does not fit inside the region's traces or the
/// job's window.
pub fn job_carbon(
    region: &Region,
    job: &BatchJob,
    start: i64,
    pricing: &ResourcePricing,
) -> Option<Placement> {
    let end = start + job.runtime_s as i64;
    if start < job.earliest || end > job.deadline {
        return None;
    }
    let grid = region.grid.series();
    if start < grid.start() || end > grid.end() {
        return None;
    }
    let signal_mean = region.embodied_signal.mean();
    let step = f64::from(grid.step());
    let mut operational = 0.0;
    let mut embodied = 0.0;
    let mut t = start;
    while t < end {
        let dt = step.min((end - t) as f64);
        let ci = grid.value_at(t)?;
        let scale = region.embodied_signal.value_at(t).unwrap_or(signal_mean) / signal_mean;
        // Dynamic + the job's share of static power (whole node while
        // running, consistent with the sweep models).
        let power_w = job.dynamic_power_w + pricing.static_power_w;
        operational += power_w * dt / 3.6e6 * ci;
        embodied += dt
            * scale
            * (job.cores * pricing.embodied_per_core_s + job.memory_gb * pricing.embodied_per_gb_s);
        t += step as i64;
    }
    Some(Placement {
        region: region.name.clone(),
        start,
        carbon_g: operational + embodied,
        operational_g: operational,
        embodied_g: embodied,
    })
}

/// Scans all `(region, start)` candidates on the trace grid and returns
/// the minimum-carbon placement, or `None` if no feasible slot exists.
///
/// # Example
///
/// ```
/// use fairco2_optimize::scaling::ResourcePricing;
/// use fairco2_optimize::spatial::{best_placement, BatchJob, Region};
/// use fairco2_trace::{GridIntensityTrace, TimeSeries};
///
/// let regions = vec![Region {
///     name: "california".into(),
///     grid: GridIntensityTrace::caiso_like(1, 3600, 1),
///     embodied_signal: TimeSeries::constant(0, 3600, 24, 1.0)?,
/// }];
/// let job = BatchJob {
///     runtime_s: 7200.0,
///     dynamic_power_w: 200.0,
///     cores: 48.0,
///     memory_gb: 96.0,
///     earliest: 0,
///     deadline: 86_400,
/// };
/// let p = best_placement(&regions, &job, &ResourcePricing::paper_default(0.0)).unwrap();
/// // A deferrable job lands in the solar trough, not at midnight.
/// let start_hour = (p.start % 86_400) / 3600;
/// assert!((9..=15).contains(&start_hour));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn best_placement(
    regions: &[Region],
    job: &BatchJob,
    pricing: &ResourcePricing,
) -> Option<Placement> {
    let mut best: Option<Placement> = None;
    for region in regions {
        let grid = region.grid.series();
        let step = i64::from(grid.step());
        let mut start = job.earliest.max(grid.start());
        while start + job.runtime_s as i64 <= job.deadline.min(grid.end()) {
            if let Some(p) = job_carbon(region, job, start, pricing) {
                if best.as_ref().is_none_or(|b| p.carbon_g < b.carbon_g) {
                    best = Some(p);
                }
            }
            start += step;
        }
    }
    best
}

/// Carbon cost of moving a job's input data out of its home region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationCost {
    /// Data that must cross regions (GB).
    pub data_gb: f64,
    /// Transfer footprint per GB moved (gCO₂e/GB) — network energy and
    /// switching gear amortization.
    pub g_per_gb: f64,
}

impl MigrationCost {
    /// Total transfer carbon (gCO₂e).
    pub fn carbon_g(&self) -> f64 {
        self.data_gb * self.g_per_gb
    }
}

/// Precomputed per-region carbon prefix sums over each region's grid
/// buckets, making every `(region, start)` window integral an O(1)
/// query (the `IntensityIndex` idea applied to placement search).
///
/// [`job_carbon`] walks the run window bucket by bucket for *every*
/// candidate start, so [`best_placement`] over R regions × J jobs costs
/// `O(R · J · K · W)` bucket reads (K candidate starts, W window
/// buckets). The index folds the window walk into two prefix lookups, so
/// the same search is `O(R · J · K)` O(1) queries after an `O(R · T)`
/// build shared across all jobs.
///
/// **Bit-identity:** prefix sums reassociate the additions, so the fast
/// scan is used only to *rank* candidates; every candidate within a
/// `1e-9` relative band of the scanned minimum (reassociation error is
/// orders of magnitude below that) is re-evaluated with the exact
/// [`job_carbon`] loop, and the winner is chosen by the same
/// first-strict-minimum rule over the same iteration order. The returned
/// [`Placement`] is therefore bit-identical to [`best_placement`]
/// (pinned in tests). Candidate starts that don't fall on a region's
/// bucket lattice fall back to the exact scan for that region.
#[derive(Debug, Clone)]
pub struct PlacementIndex<'a> {
    regions: &'a [Region],
    per_region: Vec<RegionIndex>,
}

/// Prefix sums for one region, on its grid's bucket lattice.
#[derive(Debug, Clone)]
struct RegionIndex {
    /// Grid CI per bucket (gCO₂e/kWh).
    ci: Vec<f64>,
    /// Prefix sums of `ci` (`len + 1` entries).
    ci_prefix: Vec<f64>,
    /// Embodied scale (signal / mean) sampled at each bucket start.
    scale: Vec<f64>,
    /// Prefix sums of `scale` (`len + 1` entries).
    scale_prefix: Vec<f64>,
}

impl<'a> PlacementIndex<'a> {
    /// Builds the index: one pass over each region's traces.
    pub fn new(regions: &'a [Region]) -> Self {
        let per_region = regions
            .iter()
            .map(|region| {
                let grid = region.grid.series();
                let mean = region.embodied_signal.mean();
                let step = i64::from(grid.step());
                let ci: Vec<f64> = grid.values().to_vec();
                let scale: Vec<f64> = (0..ci.len())
                    .map(|k| {
                        let t = grid.start() + k as i64 * step;
                        region.embodied_signal.value_at(t).unwrap_or(mean) / mean
                    })
                    .collect();
                let prefix = |v: &[f64]| {
                    let mut p = Vec::with_capacity(v.len() + 1);
                    let mut acc = 0.0f64;
                    p.push(0.0);
                    for &x in v {
                        acc += x;
                        p.push(acc);
                    }
                    p
                };
                RegionIndex {
                    ci_prefix: prefix(&ci),
                    scale_prefix: prefix(&scale),
                    ci,
                    scale,
                }
            })
            .collect();
        Self {
            regions,
            per_region,
        }
    }

    /// The regions the index was built over.
    pub fn regions(&self) -> &'a [Region] {
        self.regions
    }

    /// O(1) approximate carbon of `(region ri, start)` — same quadrature
    /// as [`job_carbon`], evaluated through the prefix sums. `None`
    /// mirrors [`job_carbon`]'s feasibility checks.
    fn approx_carbon(
        &self,
        ri: usize,
        job: &BatchJob,
        start: i64,
        pricing: &ResourcePricing,
    ) -> Option<f64> {
        let region = &self.regions[ri];
        let idx = &self.per_region[ri];
        let grid = region.grid.series();
        let step = i64::from(grid.step());
        let end = start + job.runtime_s as i64;
        if start < job.earliest || end > job.deadline || start < grid.start() || end > grid.end() {
            return None;
        }
        let b0 = ((start - grid.start()) / step) as usize;
        let run = end - start;
        let full = (run / step) as usize;
        let rem = (run % step) as f64;
        let mut ci_sum = f64::from(grid.step()) * (idx.ci_prefix[b0 + full] - idx.ci_prefix[b0]);
        let mut sc_sum =
            f64::from(grid.step()) * (idx.scale_prefix[b0 + full] - idx.scale_prefix[b0]);
        if rem > 0.0 {
            ci_sum += rem * idx.ci[b0 + full];
            sc_sum += rem * idx.scale[b0 + full];
        }
        let power_w = job.dynamic_power_w + pricing.static_power_w;
        let operational = power_w / 3.6e6 * ci_sum;
        let embodied = sc_sum
            * (job.cores * pricing.embodied_per_core_s + job.memory_gb * pricing.embodied_per_gb_s);
        Some(operational + embodied)
    }

    /// The best placement inside one region, bit-identical to scanning
    /// that region with [`job_carbon`].
    fn best_in_region(
        &self,
        ri: usize,
        job: &BatchJob,
        pricing: &ResourcePricing,
    ) -> Option<Placement> {
        let region = &self.regions[ri];
        let grid = region.grid.series();
        let step = i64::from(grid.step());
        let first = job.earliest.max(grid.start());
        if (first - grid.start()) % step != 0 {
            // Off-lattice candidates: the prefix arrays don't apply;
            // fall back to the exact scan.
            return best_placement(&self.regions[ri..=ri], job, pricing);
        }
        // Pass 1: rank candidates through the O(1) prefix queries.
        let mut best_approx = f64::INFINITY;
        let mut start = first;
        while start + job.runtime_s as i64 <= job.deadline.min(grid.end()) {
            if let Some(c) = self.approx_carbon(ri, job, start, pricing) {
                if c < best_approx {
                    best_approx = c;
                }
            }
            start += step;
        }
        if best_approx.is_infinite() {
            return None;
        }
        // Pass 2: exact re-evaluation of every candidate within the
        // reassociation band, first-strict-minimum in scan order — the
        // same rule and order the exact scan applies globally.
        let band = best_approx + best_approx.abs() * 1e-9;
        let mut best: Option<Placement> = None;
        let mut start = first;
        while start + job.runtime_s as i64 <= job.deadline.min(grid.end()) {
            if self
                .approx_carbon(ri, job, start, pricing)
                .is_some_and(|c| c <= band)
            {
                if let Some(p) = job_carbon(region, job, start, pricing) {
                    if best.as_ref().is_none_or(|b| p.carbon_g < b.carbon_g) {
                        best = Some(p);
                    }
                }
            }
            start += step;
        }
        best
    }

    /// Index-accelerated [`best_placement`]: same argument order, same
    /// result, O(1) per candidate.
    pub fn best_placement(&self, job: &BatchJob, pricing: &ResourcePricing) -> Option<Placement> {
        let mut best: Option<Placement> = None;
        for ri in 0..self.regions.len() {
            if let Some(p) = self.best_in_region(ri, job, pricing) {
                if best.as_ref().is_none_or(|b| p.carbon_g < b.carbon_g) {
                    best = Some(p);
                }
            }
        }
        best
    }

    /// Migration-cost-aware placement: candidates outside `home` carry
    /// the transfer carbon of `migration` (folded into the returned
    /// placement's `operational_g` and `carbon_g`), so a cleaner grid
    /// must beat the cost of moving the data before the job leaves home.
    pub fn best_placement_migrating(
        &self,
        job: &BatchJob,
        home: usize,
        migration: MigrationCost,
        pricing: &ResourcePricing,
    ) -> Option<Placement> {
        let mut best: Option<Placement> = None;
        for ri in 0..self.regions.len() {
            if let Some(mut p) = self.best_in_region(ri, job, pricing) {
                if ri != home {
                    let penalty = migration.carbon_g();
                    p.operational_g += penalty;
                    p.carbon_g += penalty;
                }
                if best.as_ref().is_none_or(|b| p.carbon_g < b.carbon_g) {
                    best = Some(p);
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairco2_trace::TimeSeries;

    fn flat_signal(days: u32) -> TimeSeries {
        TimeSeries::constant(0, 3600, (days * 24) as usize, 1.0).unwrap()
    }

    fn regions() -> Vec<Region> {
        vec![
            Region {
                name: "california".into(),
                grid: GridIntensityTrace::caiso_like(2, 3600, 1),
                embodied_signal: flat_signal(2),
            },
            Region {
                name: "sweden".into(),
                grid: GridIntensityTrace::sweden_like(2, 3600, 1),
                embodied_signal: flat_signal(2),
            },
        ]
    }

    fn job() -> BatchJob {
        BatchJob {
            runtime_s: 2.0 * 3600.0,
            dynamic_power_w: 200.0,
            cores: 48.0,
            memory_gb: 96.0,
            earliest: 0,
            deadline: 2 * 86_400,
        }
    }

    #[test]
    fn shifts_to_the_cleanest_region() {
        let p = best_placement(&regions(), &job(), &ResourcePricing::paper_default(0.0));
        let p = p.unwrap();
        // With flat embodied signals the cleanest grid wins.
        assert_eq!(p.region, "sweden");
    }

    #[test]
    fn shifts_to_midday_within_a_duck_curve_region() {
        let only_california = vec![regions().remove(0)];
        let p = best_placement(
            &only_california,
            &job(),
            &ResourcePricing::paper_default(0.0),
        )
        .unwrap();
        let start_hour = (p.start % 86_400) / 3600;
        assert!(
            (9..=14).contains(&start_hour),
            "started at hour {start_hour}, expected the solar trough"
        );
    }

    #[test]
    fn embodied_signal_steers_placement_at_zero_grid_difference() {
        // Two identical grids; one region's capacity is under pressure
        // (embodied signal 3×) in the first day.
        let grid = GridIntensityTrace::constant(100.0, 2, 3600);
        let mut pressured = flat_signal(2).into_values();
        for v in pressured.iter_mut().take(24) {
            *v = 3.0;
        }
        let regions = vec![
            Region {
                name: "pressured".into(),
                grid: grid.clone(),
                embodied_signal: TimeSeries::from_values(0, 3600, pressured).unwrap(),
            },
            Region {
                name: "calm".into(),
                grid,
                embodied_signal: flat_signal(2),
            },
        ];
        let mut tight = job();
        tight.deadline = 20 * 3600; // must run during the pressured day
        let p = best_placement(&regions, &tight, &ResourcePricing::paper_default(100.0)).unwrap();
        assert_eq!(p.region, "calm");
    }

    #[test]
    fn deadline_is_respected() {
        let mut j = job();
        j.earliest = 3_600;
        j.deadline = 4 * 3600; // barely fits
        let p = best_placement(&regions(), &j, &ResourcePricing::paper_default(100.0)).unwrap();
        assert!(p.start >= j.earliest);
        assert!(p.start + j.runtime_s as i64 <= j.deadline);
        // Impossible window → no placement.
        j.deadline = j.earliest + 100;
        assert!(best_placement(&regions(), &j, &ResourcePricing::paper_default(100.0)).is_none());
    }

    /// The index-accelerated search must return the *bit-identical*
    /// placement of the exact scan across aligned and off-lattice
    /// windows, odd runtimes (partial last buckets), and tight or
    /// infeasible deadlines.
    #[test]
    fn indexed_placement_matches_the_exact_scan_bitwise() {
        let regions = regions();
        let index = PlacementIndex::new(&regions);
        for pricing_ci in [0.0, 100.0, 250.0] {
            let pricing = ResourcePricing::paper_default(pricing_ci);
            for earliest in [0i64, 3_600, 5_000 /* off-lattice */, 86_400] {
                for runtime in [1_800.0f64, 3_600.0, 2.5 * 3_600.0, 7_777.0] {
                    for slack in [0i64, 4, 12, 30] {
                        let job = BatchJob {
                            runtime_s: runtime,
                            dynamic_power_w: 200.0,
                            cores: 48.0,
                            memory_gb: 96.0,
                            earliest,
                            deadline: earliest + runtime as i64 + slack * 3_600,
                        };
                        let exact = best_placement(&regions, &job, &pricing);
                        let fast = index.best_placement(&job, &pricing);
                        match (&exact, &fast) {
                            (None, None) => {}
                            (Some(a), Some(b)) => {
                                assert_eq!(a.region, b.region, "job {job:?}");
                                assert_eq!(a.start, b.start, "job {job:?}");
                                assert_eq!(
                                    a.carbon_g.to_bits(),
                                    b.carbon_g.to_bits(),
                                    "job {job:?}"
                                );
                                assert_eq!(a.operational_g.to_bits(), b.operational_g.to_bits());
                                assert_eq!(a.embodied_g.to_bits(), b.embodied_g.to_bits());
                            }
                            _ => panic!("feasibility disagrees for {job:?}: {exact:?} vs {fast:?}"),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn migration_cost_keeps_marginal_moves_at_home() {
        let regions = regions();
        let index = PlacementIndex::new(&regions);
        let pricing = ResourcePricing::paper_default(0.0);
        let home = 0usize; // california
        let j = job();
        let free_move = index
            .best_placement_migrating(
                &j,
                home,
                MigrationCost {
                    data_gb: 0.0,
                    g_per_gb: 52.0,
                },
                &pricing,
            )
            .unwrap();
        assert_eq!(
            free_move.region, "sweden",
            "free migration chases the clean grid"
        );
        let costly = index
            .best_placement_migrating(
                &j,
                home,
                MigrationCost {
                    data_gb: 100_000.0,
                    g_per_gb: 52.0,
                },
                &pricing,
            )
            .unwrap();
        assert_eq!(
            costly.region, "california",
            "prohibitive migration stays home"
        );
        // The penalty is folded into the totals.
        let sweden_best = index.best_placement(&j, &pricing).unwrap();
        let small = index
            .best_placement_migrating(
                &j,
                home,
                MigrationCost {
                    data_gb: 10.0,
                    g_per_gb: 1.0,
                },
                &pricing,
            )
            .unwrap();
        assert!((small.carbon_g - (sweden_best.carbon_g + 10.0)).abs() < 1e-9);
        assert!((small.operational_g + small.embodied_g - small.carbon_g).abs() < 1e-9);
    }

    #[test]
    fn placement_carbon_decomposes() {
        let p = best_placement(&regions(), &job(), &ResourcePricing::paper_default(250.0)).unwrap();
        assert!((p.operational_g + p.embodied_g - p.carbon_g).abs() < 1e-9);
        assert!(p.operational_g > 0.0 && p.embodied_g > 0.0);
    }
}
