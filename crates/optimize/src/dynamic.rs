//! The week-long dynamic reconfiguration case study (paper Figure 13).
//!
//! A FAISS retrieval service with a 2-second tail-latency target (the
//! MLPerf LLM serving target the paper adopts) re-optimizes its
//! configuration every interval in response to
//!
//! * the **grid carbon intensity** (California duck curve), and
//! * Fair-CO₂'s **embodied carbon intensity signal** (from the
//!   Azure-like demand trace via Temporal Shapley),
//!
//! switching core allocation, batch size, and even index algorithm
//! (IVF ↔ HNSW). The paper reports 38.4 % carbon savings over one week
//! against the performance-optimal configuration.

use serde::{Deserialize, Serialize};

use fairco2_trace::{GridIntensityTrace, TimeSeries};

use crate::faiss::{FaissConfig, FaissModel, ServingPoint};
use crate::scaling::ResourcePricing;

/// Configuration of the dynamic case study.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicStudy {
    /// The serving model.
    pub model: FaissModel,
    /// Tail-latency target in seconds (paper: 2.0).
    pub latency_target_s: f64,
    /// Sustained query rate the service must absorb (queries/s).
    pub query_rate_qps: f64,
    /// Baseline pricing; its embodied rates are modulated by the signal.
    pub base_pricing: ResourcePricing,
}

impl Default for DynamicStudy {
    fn default() -> Self {
        Self {
            model: FaissModel::default(),
            latency_target_s: 2.0,
            query_rate_qps: 100.0,
            base_pricing: ResourcePricing::paper_default(250.0),
        }
    }
}

/// One interval of the simulated week.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalOutcome {
    /// Interval start (UNIX seconds, trace-relative).
    pub t: i64,
    /// Grid CI during the interval (gCO₂e/kWh).
    pub grid_ci: f64,
    /// Embodied-intensity modulation applied (1.0 = average).
    pub embodied_scale: f64,
    /// The configuration chosen for the interval.
    pub config: FaissConfig,
    /// Carbon emitted by the optimized service this interval (gCO₂e).
    pub optimized_g: f64,
    /// Carbon the performance-optimal configuration would have emitted.
    pub baseline_g: f64,
}

/// Result of the week-long simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicOutcome {
    /// Per-interval decisions and carbon.
    pub intervals: Vec<IntervalOutcome>,
}

impl DynamicOutcome {
    /// Total carbon of the dynamically optimized service (gCO₂e).
    pub fn optimized_total_g(&self) -> f64 {
        self.intervals.iter().map(|i| i.optimized_g).sum()
    }

    /// Total carbon of the performance-optimal baseline (gCO₂e).
    pub fn baseline_total_g(&self) -> f64 {
        self.intervals.iter().map(|i| i.baseline_g).sum()
    }

    /// Fractional carbon saving over the window.
    pub fn saving(&self) -> f64 {
        1.0 - self.optimized_total_g() / self.baseline_total_g()
    }

    /// Number of intervals in which the chosen index differs from the
    /// previous interval's (index-switch count).
    pub fn index_switches(&self) -> usize {
        self.intervals
            .windows(2)
            .filter(|w| w[0].config.index != w[1].config.index)
            .count()
    }
}

impl DynamicStudy {
    /// Runs the simulation over a grid-CI trace and an embodied-intensity
    /// signal (both sampled at the decision interval; the embodied signal
    /// is normalized to mean 1 internally).
    ///
    /// # Panics
    ///
    /// Panics if the traces are not on the same grid, or if no
    /// configuration can meet the latency target.
    pub fn run(&self, grid: &GridIntensityTrace, embodied_signal: &TimeSeries) -> DynamicOutcome {
        let grid_series = grid.series();
        assert_eq!(
            grid_series.step(),
            embodied_signal.step(),
            "traces must share a sampling grid"
        );
        assert_eq!(
            grid_series.len(),
            embodied_signal.len(),
            "traces must cover the same window"
        );
        let signal_mean = embodied_signal.mean();
        assert!(signal_mean > 0.0, "embodied signal must be non-trivial");
        let interval_s = f64::from(grid_series.step());

        let mut intervals = Vec::with_capacity(grid_series.len());
        for ((t, ci), (_, signal)) in grid_series.iter().zip(embodied_signal.iter()) {
            let scale = signal / signal_mean;
            let pricing = ResourcePricing {
                embodied_per_core_s: self.base_pricing.embodied_per_core_s * scale,
                embodied_per_gb_s: self.base_pricing.embodied_per_gb_s * scale,
                grid_ci: ci,
                static_power_w: self.base_pricing.static_power_w,
            };
            let best = self
                .model
                .best_under_latency(&pricing, self.latency_target_s)
                .expect("the grid always contains a feasible configuration");
            let baseline = self.model.latency_optimal(&pricing);
            let queries = self.query_rate_qps * interval_s;
            intervals.push(IntervalOutcome {
                t,
                grid_ci: ci,
                embodied_scale: scale,
                config: best.config,
                optimized_g: carbon_for(&best, queries),
                baseline_g: carbon_for(&baseline, queries),
            });
        }
        DynamicOutcome { intervals }
    }
}

fn carbon_for(point: &ServingPoint, queries: f64) -> f64 {
    point.carbon_per_kquery_g * queries / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairco2_shapley::temporal::TemporalShapley;
    use fairco2_trace::AzureLikeTrace;

    fn embodied_signal(days: u32, step: u32) -> TimeSeries {
        let demand = AzureLikeTrace::builder()
            .days(days)
            .step_seconds(step)
            .seed(41)
            .build();
        TemporalShapley::new(vec![days as usize, 24])
            .attribute(demand.series(), 1000.0)
            .unwrap()
            .leaf_intensity()
            .clone()
    }

    #[test]
    fn week_simulation_saves_substantial_carbon() {
        let grid = GridIntensityTrace::caiso_like(7, 3600, 13);
        let signal = embodied_signal(7, 3600);
        let outcome = DynamicStudy::default().run(&grid, &signal);
        let saving = outcome.saving();
        // The paper reports 38.4 %; assert the same regime.
        assert!(saving > 0.2, "saving {saving:.3}");
        assert!(saving < 0.9, "saving {saving:.3} suspiciously large");
        assert_eq!(outcome.intervals.len(), 7 * 24);
    }

    #[test]
    fn optimizer_switches_index_with_conditions() {
        // Over a duck-curve week the CI swings across the IVF↔HNSW
        // crossover, so at least one switch must occur.
        let grid = GridIntensityTrace::caiso_like(7, 3600, 13);
        let signal = embodied_signal(7, 3600);
        let outcome = DynamicStudy::default().run(&grid, &signal);
        assert!(outcome.index_switches() > 0);
    }

    #[test]
    fn every_interval_meets_the_latency_target() {
        let grid = GridIntensityTrace::caiso_like(2, 3600, 3);
        let signal = embodied_signal(2, 3600);
        let study = DynamicStudy::default();
        let outcome = study.run(&grid, &signal);
        for i in &outcome.intervals {
            let latency = study.model.tail_latency_s(i.config);
            assert!(latency <= study.latency_target_s + 1e-9);
            assert!(i.optimized_g <= i.baseline_g + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "sampling grid")]
    fn mismatched_traces_panic() {
        let grid = GridIntensityTrace::caiso_like(7, 3600, 13);
        let signal = embodied_signal(7, 1800);
        let _ = DynamicStudy::default().run(&grid, &signal);
    }
}
