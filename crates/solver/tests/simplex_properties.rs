//! Property battery for the vendored revised simplex.
//!
//! * On small dense instances (m ≤ 4, n ≤ 6) with a feasible point baked
//!   in by construction (`b = A·x₀`, `x₀ ≥ 0`), the solver's objective
//!   equals the minimum over **brute-force enumerated vertices** (all
//!   m-column bases, dense Gaussian elimination).
//! * On larger random sparse instances the returned solution passes the
//!   independent KKT certificate — primal feasibility, bounds, **zero
//!   duality gap and non-negative reduced costs — to 1e-9** (scaled).
//! * Degenerate (all-tied-ratio), infeasible, and unbounded families
//!   return **typed** outcomes: never a panic, never a NaN.

use fairco2_solver::{certify, solve, Csc, LinearProgram, LpOutcome};
use proptest::prelude::*;

/// Dense Gaussian elimination with partial pivoting: solves `B x = b` for
/// an m×m column-major `B`. Returns `None` when `B` is singular.
#[allow(clippy::needless_range_loop)] // row k is borrowed while row i is mutated
fn dense_solve(m: usize, cols: &[Vec<f64>], b: &[f64]) -> Option<Vec<f64>> {
    let mut a = vec![vec![0.0f64; m + 1]; m];
    for (j, col) in cols.iter().enumerate() {
        for i in 0..m {
            a[i][j] = col[i];
        }
    }
    for i in 0..m {
        a[i][m] = b[i];
    }
    for k in 0..m {
        let piv = (k..m).max_by(|&i, &j| a[i][k].abs().partial_cmp(&a[j][k].abs()).unwrap())?;
        if a[piv][k].abs() < 1e-11 {
            return None;
        }
        a.swap(k, piv);
        for i in k + 1..m {
            let f = a[i][k] / a[k][k];
            for j in k..=m {
                a[i][j] -= f * a[k][j];
            }
        }
    }
    let mut x = vec![0.0f64; m];
    for k in (0..m).rev() {
        let mut acc = a[k][m];
        for j in k + 1..m {
            acc -= a[k][j] * x[j];
        }
        x[k] = acc / a[k][k];
    }
    Some(x)
}

/// Minimum objective over all basic feasible solutions (vertices), by
/// enumerating every m-subset of columns. `None` if no vertex was found.
fn brute_force_vertex_min(
    m: usize,
    n: usize,
    dense: &[Vec<f64>],
    b: &[f64],
    c: &[f64],
) -> Option<f64> {
    let mut best: Option<f64> = None;
    // Iterate all n-choose-m subsets via bitmasks (n ≤ 6).
    for mask in 0u32..(1 << n) {
        if mask.count_ones() as usize != m {
            continue;
        }
        let members: Vec<usize> = (0..n).filter(|&j| mask & (1 << j) != 0).collect();
        let cols: Vec<Vec<f64>> = members.iter().map(|&j| dense[j].clone()).collect();
        let Some(xb) = dense_solve(m, &cols, b) else {
            continue;
        };
        if xb.iter().any(|&v| v < -1e-7) {
            continue;
        }
        let obj: f64 = members.iter().zip(&xb).map(|(&j, &v)| c[j] * v).sum();
        best = Some(match best {
            None => obj,
            Some(prev) => prev.min(obj),
        });
    }
    best
}

/// Builds the instance from integer pools: dense columns, a feasible
/// point `x0`, and `b = A·x0` — so the LP is feasible by construction.
struct SmallInstance {
    m: usize,
    n: usize,
    dense: Vec<Vec<f64>>, // dense[j][i]
    b: Vec<f64>,
    c: Vec<f64>,
}

fn build_instance(m: usize, n: usize, entries: &[i8], x0: &[u8], costs: &[i8]) -> SmallInstance {
    let dense: Vec<Vec<f64>> = (0..n)
        .map(|j| {
            (0..m)
                .map(|i| entries[(j * m + i) % entries.len()] as f64)
                .collect()
        })
        .collect();
    let mut b = vec![0.0f64; m];
    for (j, col) in dense.iter().enumerate() {
        let xj = x0[j % x0.len()] as f64;
        for (i, &v) in col.iter().enumerate() {
            b[i] += v * xj;
        }
    }
    let c: Vec<f64> = (0..n).map(|j| costs[j % costs.len()] as f64).collect();
    SmallInstance { m, n, dense, b, c }
}

fn to_lp(inst: &SmallInstance) -> LinearProgram {
    let mut triplets = Vec::new();
    for (j, col) in inst.dense.iter().enumerate() {
        for (i, &v) in col.iter().enumerate() {
            if v != 0.0 {
                triplets.push((i, j, v));
            }
        }
    }
    LinearProgram::new(
        Csc::from_triplets(inst.m, inst.n, &triplets),
        inst.b.clone(),
        inst.c.clone(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simplex_matches_brute_force_vertex_enumeration(
        m in 1usize..=4,
        extra in 0usize..=4,
        entries in prop::collection::vec(-3i8..=3, 8..32),
        x0 in prop::collection::vec(0u8..=4, 6),
        costs in prop::collection::vec(-5i8..=5, 4..8),
    ) {
        let n = (m + extra).min(6);
        let inst = build_instance(m, n, &entries, &x0, &costs);
        let lp = to_lp(&inst);
        match solve(&lp).expect("solver must not fail on finite data") {
            LpOutcome::Optimal(sol) => {
                prop_assert!(sol.objective.is_finite());
                let cert = certify(&lp, &sol);
                let scale = 1.0 + sol.objective.abs();
                prop_assert!(cert.passes(1e-7 * scale), "certificate {cert:?}");
                if let Some(best) = brute_force_vertex_min(inst.m, n, &inst.dense, &inst.b, &inst.c) {
                    prop_assert!(
                        (sol.objective - best).abs() <= 1e-6 * scale,
                        "simplex {} vs brute-force {}", sol.objective, best
                    );
                }
            }
            // Feasible by construction, so Infeasible would be a bug…
            LpOutcome::Infeasible => prop_assert!(false, "feasible instance typed infeasible"),
            // …but an unbounded ray is legitimate for signed costs.
            LpOutcome::Unbounded => {}
        }
    }

    #[test]
    fn larger_sparse_instances_certify_to_1e9(
        m in 3usize..=10,
        extra in 2usize..=10,
        entries in prop::collection::vec(-2i8..=2, 16..64),
        x0 in prop::collection::vec(0u8..=3, 20),
        costs in prop::collection::vec(0i8..=7, 8..16),
    ) {
        let n = m + extra;
        // Sparse column pattern: each column touches ≤ 3 rows.
        let dense: Vec<Vec<f64>> = (0..n)
            .map(|j| {
                let mut col = vec![0.0f64; m];
                for k in 0..3 {
                    let i = (j * 3 + k * 7) % m;
                    col[i] = entries[(j + k) % entries.len()] as f64;
                }
                col
            })
            .collect();
        let mut b = vec![0.0f64; m];
        for (j, col) in dense.iter().enumerate() {
            let xj = x0[j % x0.len()] as f64;
            for (i, &v) in col.iter().enumerate() {
                b[i] += v * xj;
            }
        }
        let c: Vec<f64> = (0..n).map(|j| costs[j % costs.len()] as f64).collect();
        let inst = SmallInstance { m, n, dense, b, c };
        let lp = to_lp(&inst);
        match solve(&lp).expect("solver must not fail on finite data") {
            LpOutcome::Optimal(sol) => {
                prop_assert!(sol.objective.is_finite());
                prop_assert!(sol.x.iter().all(|v| v.is_finite()));
                prop_assert!(sol.duals.iter().all(|v| v.is_finite()));
                let cert = certify(&lp, &sol);
                let scale = 1.0 + sol.objective.abs();
                // Primal feasibility + zero duality gap (reduced-cost
                // check) to 1e-9, scaled.
                prop_assert!(cert.passes(1e-9 * scale), "certificate {cert:?}");
            }
            LpOutcome::Infeasible => prop_assert!(false, "feasible instance typed infeasible"),
            LpOutcome::Unbounded => {
                // Costs are non-negative here, so the objective is bounded
                // below by zero: Unbounded would be a bug.
                prop_assert!(false, "bounded instance typed unbounded");
            }
        }
    }

    #[test]
    fn degenerate_all_tied_ratio_instances_terminate_typed(
        m in 1usize..=4,
        extra in 0usize..=4,
        entries in prop::collection::vec(-3i8..=3, 8..32),
        costs in prop::collection::vec(-5i8..=5, 4..8),
    ) {
        // b = 0: the origin is feasible and every ratio test ties at zero
        // — the worst case for cycling.
        let n = (m + extra).min(6);
        let inst = build_instance(m, n, &entries, &[0], &costs);
        let lp = to_lp(&inst);
        match solve(&lp).expect("degenerate instances must terminate") {
            LpOutcome::Optimal(sol) => {
                prop_assert!(sol.objective.is_finite());
                // The origin costs 0, so the minimum is ≤ 0.
                prop_assert!(sol.objective <= 1e-9);
            }
            LpOutcome::Unbounded => {}
            LpOutcome::Infeasible => prop_assert!(false, "origin is feasible"),
        }
    }

    #[test]
    fn conflicting_duplicate_rows_are_typed_infeasible(
        m in 1usize..=3,
        extra in 1usize..=3,
        entries in prop::collection::vec(-3i8..=3, 8..32),
        x0 in prop::collection::vec(0u8..=4, 6),
        costs in prop::collection::vec(-5i8..=5, 4..8),
    ) {
        // Start from a feasible instance, then append a copy of row 0
        // with rhs shifted by 1: x must satisfy both a·x = b₀ and
        // a·x = b₀ + 1 — infeasible by construction.
        let n = (m + extra).min(6);
        let inst = build_instance(m, n, &entries, &x0, &costs);
        let mut dense = inst.dense.clone();
        for col in dense.iter_mut() {
            col.push(col[0]);
        }
        let mut b = inst.b.clone();
        b.push(b[0] + 1.0);
        let conflicted = SmallInstance { m: m + 1, n, dense, b, c: inst.c.clone() };
        let lp = to_lp(&conflicted);
        match solve(&lp).expect("infeasible instances must terminate") {
            LpOutcome::Infeasible => {}
            other => prop_assert!(false, "expected Infeasible, got {other:?}"),
        }
    }

    #[test]
    fn free_negative_cost_column_is_typed_unbounded(
        m in 1usize..=4,
        extra in 0usize..=3,
        entries in prop::collection::vec(-3i8..=3, 8..32),
        x0 in prop::collection::vec(0u8..=4, 6),
        costs in prop::collection::vec(-5i8..=5, 4..8),
    ) {
        // Append a column that appears in no constraint with cost −1:
        // grows without bound, so the LP is unbounded by construction.
        let n = (m + extra).min(6);
        let inst = build_instance(m, n, &entries, &x0, &costs);
        let mut dense = inst.dense.clone();
        dense.push(vec![0.0; m]);
        let mut c = inst.c.clone();
        c.push(-1.0);
        let unbounded = SmallInstance { m, n: n + 1, dense, b: inst.b.clone(), c };
        let lp = to_lp(&unbounded);
        match solve(&lp).expect("unbounded instances must terminate") {
            LpOutcome::Unbounded => {}
            other => prop_assert!(false, "expected Unbounded, got {other:?}"),
        }
    }
}
