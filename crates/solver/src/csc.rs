//! Compressed-sparse-column matrices.
//!
//! The constraint matrices of coalition LPs are tall-and-sparse (flow
//! conservation touches two rows per column, capacity rows one), and the
//! revised simplex only ever needs *column* access: pricing dots a column
//! against the dual vector, FTRAN pulls one column into the factors. CSC
//! is the natural layout; rows are never traversed.
//!
//! Construction goes through [`Csc::from_triplets`], which sorts by
//! `(column, row)` and sums duplicates, so the stored form — and
//! therefore every downstream dot product's accumulation order — is a
//! canonical function of the triplet *set*, not of the order the caller
//! produced it in.

/// A sparse matrix in compressed-sparse-column form.
#[derive(Debug, Clone, PartialEq)]
pub struct Csc {
    rows: usize,
    cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl Csc {
    /// Builds a `rows × cols` matrix from `(row, col, value)` triplets.
    ///
    /// Triplets are sorted by `(col, row)` and duplicates are summed in
    /// that canonical order; exact zeros produced by cancellation are
    /// kept (dropping them would make the stored pattern depend on
    /// floating-point cancellation).
    ///
    /// # Panics
    ///
    /// Panics if any triplet indexes outside the matrix.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut sorted: Vec<(usize, usize, f64)> = triplets.to_vec();
        for &(r, c, _) in &sorted {
            assert!(r < rows && c < cols, "triplet ({r}, {c}) out of bounds");
        }
        sorted.sort_by_key(|&(r, c, _)| (c, r));
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(sorted.len());
        for &(r, c, v) in &sorted {
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => merged.push((r, c, v)),
            }
        }
        let mut col_ptr = vec![0usize; cols + 1];
        let mut row_idx = Vec::with_capacity(merged.len());
        let mut values = Vec::with_capacity(merged.len());
        for &(r, c, v) in &merged {
            row_idx.push(r);
            values.push(v);
            col_ptr[c + 1] += 1;
        }
        for c in 0..cols {
            col_ptr[c + 1] += col_ptr[c];
        }
        Self {
            rows,
            cols,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The stored entries of column `j` as parallel `(rows, values)`
    /// slices, sorted by row.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    pub fn col(&self, j: usize) -> (&[usize], &[f64]) {
        let range = self.col_ptr[j]..self.col_ptr[j + 1];
        (&self.row_idx[range.clone()], &self.values[range])
    }

    /// The dot product of column `j` with a dense vector, accumulated in
    /// ascending-row order (the canonical order for determinism pins).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds or `y` is shorter than the rows.
    pub fn dot_col(&self, j: usize, y: &[f64]) -> f64 {
        let (rows, vals) = self.col(j);
        let mut acc = 0.0;
        for (&r, &v) in rows.iter().zip(vals) {
            acc += v * y[r];
        }
        acc
    }

    /// Accumulates `scale ×` column `j` into the dense vector `out`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds or `out` is shorter than the rows.
    pub fn scatter_col(&self, j: usize, scale: f64, out: &mut [f64]) {
        let (rows, vals) = self.col(j);
        for (&r, &v) in rows.iter().zip(vals) {
            out[r] += scale * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_are_sorted_and_deduplicated() {
        let m = Csc::from_triplets(
            3,
            2,
            &[
                (2, 1, 5.0),
                (0, 0, 1.0),
                (2, 1, 2.0),
                (1, 0, 3.0),
                (0, 1, 4.0),
            ],
        );
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.col(0), (&[0usize, 1][..], &[1.0, 3.0][..]));
        assert_eq!(m.col(1), (&[0usize, 2][..], &[4.0, 7.0][..]));
    }

    #[test]
    fn construction_is_order_invariant() {
        let t = [(0usize, 0usize, 1.0), (1, 0, 2.0), (1, 1, 3.0), (1, 0, 0.5)];
        let mut rev = t;
        rev.reverse();
        assert_eq!(Csc::from_triplets(2, 2, &t), Csc::from_triplets(2, 2, &rev));
    }

    #[test]
    fn dot_and_scatter_agree() {
        let m = Csc::from_triplets(3, 1, &[(0, 0, 2.0), (2, 0, -1.0)]);
        let y = [3.0, 10.0, 4.0];
        assert_eq!(m.dot_col(0, &y), 2.0 * 3.0 - 4.0);
        let mut out = [0.0; 3];
        m.scatter_col(0, 2.0, &mut out);
        assert_eq!(out, [4.0, 0.0, -2.0]);
    }

    #[test]
    fn empty_columns_are_representable() {
        let m = Csc::from_triplets(2, 3, &[(1, 2, 1.0)]);
        assert_eq!(m.col(0).0.len(), 0);
        assert_eq!(m.col(1).0.len(), 0);
        assert_eq!(m.col(2), (&[1usize][..], &[1.0][..]));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_triplets_panic() {
        let _ = Csc::from_triplets(2, 2, &[(2, 0, 1.0)]);
    }
}
