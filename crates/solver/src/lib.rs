//! Vendored sparse linear-programming substrate.
//!
//! The LP-valued coalition games of `fairco2-shapley` (ROADMAP: "network
//! carbon attribution") need v(S) = the objective of a min-carbon routing
//! LP, solved hundreds of thousands of times across coalition lattices.
//! The build environment has no registry access, so — like `rand`, `serde`
//! and friends under `vendor/` — the solver is vendored: a from-scratch,
//! pure-Rust **sparse revised simplex** held to the same determinism
//! standard as the rest of the workspace.
//!
//! * [`csc`] — compressed-sparse-column matrices built from triplets with
//!   a deterministic (sorted, duplicate-summed) canonical form.
//! * [`lu`] — sparse LU factorization with Markowitz pivoting (minimum
//!   fill-in estimate under a threshold-stability guard) and an eta-file
//!   (product-form) update scheme that refactorizes on a fixed pivot
//!   count or when a pivot falls below the stability threshold.
//! * [`simplex`] — the revised simplex: two-phase primal for cold solves,
//!   dual simplex for warm starts from a relative's basis (the coalition
//!   lattice changes only `b`, so a parent's optimal basis stays dual
//!   feasible), Dantzig pricing with **Bland's rule as the documented
//!   deterministic anti-cycling fallback**, and typed
//!   [`LpOutcome::Infeasible`] / [`LpOutcome::Unbounded`] results.
//!
//! # Determinism contract
//!
//! Every pivot choice — LU pivot, entering column, leaving row, every
//! tie-break — is a pure function of the current basis and the instance
//! data: ties break toward the lowest index, and no randomization, time,
//! or address-dependent state is consulted anywhere. Two solves of the
//! same instance from the same starting basis therefore execute the same
//! pivot sequence and return bit-identical results, on any machine and at
//! any thread count.
//!
//! On *exact-dyadic* instances — integer capacities and demands, costs
//! that are dyadic rationals — more is true: min-cost-flow bases are
//! totally unimodular, Gaussian elimination on a totally unimodular
//! matrix keeps every entry in {−1, 0, +1} (pivoting preserves total
//! unimodularity), so every intermediate quantity of the solve is an
//! exact dyadic `f64` and **warm and cold solves return bit-identical
//! objectives** even when they terminate at different optimal bases: both
//! compute the (unique) optimal value exactly, through the canonical
//! ascending-index objective accumulation of [`simplex::Solution`].
//!
//! # Example
//!
//! ```
//! use fairco2_solver::{solve, Csc, LinearProgram, LpOutcome};
//!
//! // min x0 + 2·x1  s.t.  x0 + x1 = 4, x0 ≤ 3 (slack x2), x ≥ 0.
//! let a = Csc::from_triplets(2, 3, &[(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0)]);
//! let lp = LinearProgram::new(a, vec![4.0, 3.0], vec![1.0, 2.0, 0.0]);
//! match solve(&lp).unwrap() {
//!     LpOutcome::Optimal(sol) => assert!((sol.objective - 5.0).abs() < 1e-9),
//!     other => panic!("expected an optimum, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csc;
pub mod lu;
pub mod simplex;

pub use csc::Csc;
pub use lu::{LuError, LuFactors};
pub use simplex::{
    certify, solve, solve_warm, Basis, Certificate, LinearProgram, LpOutcome, Solution, SolveStats,
    SolverError,
};
