//! Sparse LU factorization with Markowitz pivoting.
//!
//! The revised simplex keeps the basis matrix `B` factored as `B = P⁻¹ L
//! U Q⁻¹` (row and column permutations chosen during elimination) and
//! reuses the factors for every FTRAN (`B x = v`) and BTRAN (`Bᵀ y = c`)
//! of an iteration. Pivots are chosen by the **Markowitz criterion** —
//! minimize `(rᵢ − 1)(cⱼ − 1)`, the classic fill-in estimate, over
//! candidates that pass a threshold-stability guard `|aᵢⱼ| ≥ τ ·
//! max|column|` — with ties broken toward the lowest column then lowest
//! row, so the factorization is a pure function of the input matrix.
//!
//! Basis *changes* do not refactorize: [`LuFactors::append_eta`] records
//! a product-form eta vector per pivot, and the owner refactorizes when
//! the eta file reaches [`REFACTOR_ETAS`] or a pivot magnitude falls
//! below [`ETA_STABILITY`] (the "refactorize-on-threshold" scheme; a
//! Forrest–Tomlin update would amortize better on huge bases but has no
//! payoff at coalition-LP sizes and costs considerably more code to keep
//! bit-deterministic).
//!
//! On totally unimodular bases (network matrices — the coalition-game
//! case) every pivot is ±1 and elimination keeps all entries in
//! {−1, 0, +1}, so factorization, solves, and eta updates are all exact
//! in `f64`; see the crate docs for why that makes warm and cold solves
//! bit-identical.

/// Eta vectors accumulated before the owner should refactorize.
pub const REFACTOR_ETAS: usize = 32;

/// Relative pivot magnitude below which an eta update is refused and a
/// refactorization requested instead.
pub const ETA_STABILITY: f64 = 1e-8;

/// Markowitz threshold-stability parameter: a pivot candidate must have
/// magnitude at least `τ` times the largest magnitude in its column.
const MARKOWITZ_TAU: f64 = 0.1;

/// Entries with magnitude at or below this are treated as structural
/// zeros during elimination (guards against round-off fill).
const DROP_TOL: f64 = 0.0;

/// Factorization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LuError {
    /// No acceptable pivot remained: the matrix is singular (or too
    /// ill-conditioned to factor at the stability threshold).
    Singular {
        /// Elimination step at which no pivot was found.
        step: usize,
    },
}

impl std::fmt::Display for LuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LuError::Singular { step } => write!(f, "basis is singular at elimination step {step}"),
        }
    }
}

impl std::error::Error for LuError {}

/// One product-form update: the basis column at slot `slot` was replaced
/// by a column whose FTRAN image was `w` (split into the pivot element
/// and the off-pivot sparse part).
#[derive(Debug, Clone)]
struct Eta {
    slot: usize,
    pivot: f64,
    /// `(slot, value)` pairs of the off-pivot entries, ascending slot.
    entries: Vec<(usize, f64)>,
}

/// LU factors of a square sparse matrix plus the eta file of subsequent
/// rank-one basis replacements.
#[derive(Debug, Clone)]
pub struct LuFactors {
    m: usize,
    /// `pivot_row[k]`: original row eliminated at step `k`.
    pivot_row: Vec<usize>,
    /// `col_pos[j]`: elimination step at which original column `j` left.
    col_pos: Vec<usize>,
    /// `col_of_pos[k]`: original column eliminated at step `k`.
    col_of_pos: Vec<usize>,
    /// Unit-lower-triangular multipliers per step: `(original row, l)`.
    lower: Vec<Vec<(usize, f64)>>,
    /// Off-diagonal upper entries per step: `(elimination position, u)`.
    upper: Vec<Vec<(usize, f64)>>,
    /// Diagonal pivots per step.
    pivots: Vec<f64>,
    etas: Vec<Eta>,
}

impl LuFactors {
    /// Factorizes the `m × m` matrix given as `columns[j]` = sparse
    /// column `j` (`(row, value)` pairs, any order, no duplicates).
    ///
    /// # Errors
    ///
    /// [`LuError::Singular`] when elimination runs out of acceptable
    /// pivots.
    ///
    /// # Panics
    ///
    /// Panics if a column entry indexes a row `≥ m` (debug builds).
    pub fn factorize(m: usize, columns: &[Vec<(usize, f64)>]) -> Result<Self, LuError> {
        assert_eq!(columns.len(), m, "need exactly m columns");
        // Working copy: cols[j] holds the still-active entries of column j.
        let mut cols: Vec<Vec<(usize, f64)>> = columns.to_vec();
        for col in &mut cols {
            col.sort_by_key(|&(r, _)| r);
            debug_assert!(col.iter().all(|&(r, _)| r < m), "row index out of bounds");
        }
        let mut row_active = vec![true; m];
        let mut col_active = vec![true; m];
        let mut row_count = vec![0usize; m];
        for col in &cols {
            for &(r, _) in col {
                row_count[r] += 1;
            }
        }

        let mut pivot_row = Vec::with_capacity(m);
        let mut col_pos = vec![usize::MAX; m];
        let mut col_of_pos = Vec::with_capacity(m);
        let mut lower = Vec::with_capacity(m);
        let mut upper: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        let mut pivots = Vec::with_capacity(m);
        // Sparse accumulator for column updates.
        let mut spa = vec![0.0f64; m];

        for step in 0..m {
            // --- Markowitz pivot selection -------------------------------
            let mut best: Option<(usize, usize, usize, f64)> = None; // (cost, col, row, val)
            for (j, col) in cols.iter().enumerate() {
                if !col_active[j] {
                    continue;
                }
                let col_max = col
                    .iter()
                    .filter(|&&(r, _)| row_active[r])
                    .map(|&(_, v)| v.abs())
                    .fold(0.0f64, f64::max);
                if col_max <= DROP_TOL {
                    continue;
                }
                let live = col.iter().filter(|&&(r, _)| row_active[r]).count();
                for &(r, v) in col.iter().filter(|&&(r, _)| row_active[r]) {
                    if v.abs() < MARKOWITZ_TAU * col_max || v == 0.0 {
                        continue;
                    }
                    let cost = (row_count[r] - 1) * (live - 1);
                    let candidate = (cost, j, r, v);
                    // Strictly-less on (cost, col, row): lowest indices win
                    // ties, making the choice a pure function of the matrix.
                    if best.is_none_or(|b| (cost, j, r) < (b.0, b.1, b.2)) {
                        best = Some(candidate);
                    }
                }
            }
            let Some((_, pj, pr, pv)) = best else {
                return Err(LuError::Singular { step });
            };

            // --- Record L column and U row -------------------------------
            let mut lcol: Vec<(usize, f64)> = Vec::new();
            for &(r, v) in cols[pj].iter().filter(|&&(r, _)| row_active[r]) {
                if r != pr && v != 0.0 {
                    lcol.push((r, v / pv));
                }
            }
            pivot_row.push(pr);
            col_pos[pj] = step;
            col_of_pos.push(pj);
            pivots.push(pv);

            row_active[pr] = false;
            col_active[pj] = false;
            for &(r, v) in &cols[pj] {
                if v != 0.0 && (row_active[r] || r == pr) {
                    // Entry leaves the active submatrix with its column.
                    row_count[r] = row_count[r].saturating_sub(1);
                }
            }
            // `row_count[pr]` entries in other columns become U entries.

            // --- Update the remaining active columns ---------------------
            let mut urow: Vec<(usize, f64)> = Vec::new();
            for j in 0..m {
                if !col_active[j] {
                    continue;
                }
                let Some(&(_, uval)) = cols[j].iter().find(|&&(r, _)| r == pr) else {
                    continue;
                };
                if uval == 0.0 {
                    continue;
                }
                urow.push((j, uval)); // position resolved after the loop
                                      // col_j ← col_j − (uval / pv) · pivot column (active rows).
                let scale = uval / pv;
                for &(r, _) in &cols[j] {
                    spa[r] = 0.0;
                }
                for &(r, v) in cols[j].iter().filter(|&&(r, _)| row_active[r]) {
                    spa[r] = v;
                }
                let mut pattern: Vec<usize> = cols[j]
                    .iter()
                    .filter(|&&(r, _)| row_active[r])
                    .map(|&(r, _)| r)
                    .collect();
                for &(r, l) in &lcol {
                    if spa[r] == 0.0 && !pattern.contains(&r) {
                        pattern.push(r);
                        row_count[r] += 1;
                    }
                    spa[r] -= scale * (l * pv);
                }
                pattern.sort_unstable();
                let rebuilt: Vec<(usize, f64)> = pattern.iter().map(|&r| (r, spa[r])).collect();
                for &(r, _) in &rebuilt {
                    spa[r] = 0.0;
                }
                // Entries cancelling to exact zero stay (pattern is part of
                // the deterministic contract); the pr entry moved to U.
                cols[j] = rebuilt;
                row_count[pr] = row_count[pr].saturating_sub(1);
            }
            lower.push(lcol);
            upper.push(urow);
        }

        // Resolve U column ids to elimination positions now that every
        // column has one.
        for row in &mut upper {
            for entry in row.iter_mut() {
                entry.0 = col_pos[entry.0];
            }
            row.sort_unstable_by_key(|&(p, _)| p);
        }

        Ok(Self {
            m,
            pivot_row,
            col_pos,
            col_of_pos,
            lower,
            upper,
            pivots,
            etas: Vec::new(),
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.m
    }

    /// Number of eta updates applied since factorization.
    pub fn eta_count(&self) -> usize {
        self.etas.len()
    }

    /// Whether the owner should refactorize instead of appending more
    /// etas (the eta file reached [`REFACTOR_ETAS`]).
    pub fn wants_refactor(&self) -> bool {
        self.etas.len() >= REFACTOR_ETAS
    }

    /// Records the replacement of the basis column at `slot` by a column
    /// whose FTRAN image is `w` (dense, length `m`). Returns `false` —
    /// and records nothing — when `|w[slot]|` is below [`ETA_STABILITY`]
    /// relative to the largest entry of `w`, in which case the owner must
    /// refactorize the updated basis from scratch.
    ///
    /// # Panics
    ///
    /// Panics if `w.len() != m`.
    pub fn append_eta(&mut self, slot: usize, w: &[f64]) -> bool {
        assert_eq!(w.len(), self.m, "eta vector length mismatch");
        let scale = w.iter().fold(0.0f64, |a, &v| a.max(v.abs())).max(1.0);
        if w[slot].abs() < ETA_STABILITY * scale {
            return false;
        }
        let entries: Vec<(usize, f64)> = w
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != slot && v != 0.0)
            .map(|(i, &v)| (i, v))
            .collect();
        self.etas.push(Eta {
            slot,
            pivot: w[slot],
            entries,
        });
        true
    }

    /// FTRAN: solves `B x = v` in place, where `B` is the factored basis
    /// including all appended etas. `v` is indexed by original row on
    /// input and by basis slot on output.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != m`.
    pub fn ftran(&self, v: &mut [f64]) {
        assert_eq!(v.len(), self.m, "ftran vector length mismatch");
        self.solve_base(v);
        for eta in &self.etas {
            let t = v[eta.slot] / eta.pivot;
            for &(i, wv) in &eta.entries {
                v[i] -= wv * t;
            }
            v[eta.slot] = t;
        }
    }

    /// BTRAN: solves `Bᵀ y = c` in place, where `B` is the factored basis
    /// including all appended etas. `c` is indexed by basis slot on input
    /// and `y` by original row on output.
    ///
    /// # Panics
    ///
    /// Panics if `c.len() != m`.
    pub fn btran(&self, c: &mut [f64]) {
        assert_eq!(c.len(), self.m, "btran vector length mismatch");
        for eta in self.etas.iter().rev() {
            let mut s = 0.0;
            for &(i, wv) in &eta.entries {
                s += wv * c[i];
            }
            c[eta.slot] = (c[eta.slot] - s) / eta.pivot;
        }
        self.solve_base_transposed(c);
    }

    /// Solves `B₀ x = v` against the bare LU factors (no etas).
    fn solve_base(&self, v: &mut [f64]) {
        // Forward: y = L⁻¹ P v, stored per elimination step.
        let mut y = vec![0.0f64; self.m];
        for k in 0..self.m {
            let t = v[self.pivot_row[k]];
            y[k] = t;
            if t != 0.0 {
                for &(r, l) in &self.lower[k] {
                    v[r] -= l * t;
                }
            }
        }
        // Backward: U sol = y in elimination positions.
        let mut sol = y;
        for k in (0..self.m).rev() {
            let mut acc = sol[k];
            for &(p, u) in &self.upper[k] {
                acc -= u * sol[p];
            }
            sol[k] = acc / self.pivots[k];
        }
        // Un-permute columns: slot j gets the value of its position.
        for j in 0..self.m {
            v[j] = sol[self.col_pos[j]];
        }
    }

    /// Solves `B₀ᵀ y = c` against the bare LU factors (no etas).
    fn solve_base_transposed(&self, c: &mut [f64]) {
        // Permute into elimination positions: v1[k] = c[col at k].
        let mut w = vec![0.0f64; self.m];
        for k in 0..self.m {
            w[k] = c[self.col_of_pos[k]];
        }
        // Uᵀ z = v1 (forward in position order, scattering off-diagonals).
        for k in 0..self.m {
            let z = w[k] / self.pivots[k];
            w[k] = z;
            if z != 0.0 {
                for &(p, u) in &self.upper[k] {
                    w[p] -= u * z;
                }
            }
        }
        // Pᵀ L⁻ᵀ: adjoint of the forward-replay program.
        for item in c.iter_mut() {
            *item = 0.0;
        }
        for k in (0..self.m).rev() {
            let mut t = w[k];
            for &(r, l) in &self.lower[k] {
                t -= l * c[r];
            }
            c[self.pivot_row[k]] += t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_cols(a: &[&[f64]]) -> Vec<Vec<(usize, f64)>> {
        let m = a.len();
        (0..m)
            .map(|j| {
                (0..m)
                    .filter(|&i| a[i][j] != 0.0)
                    .map(|i| (i, a[i][j]))
                    .collect()
            })
            .collect()
    }

    fn mat_vec(a: &[&[f64]], x: &[f64]) -> Vec<f64> {
        a.iter()
            .map(|row| row.iter().zip(x).map(|(r, x)| r * x).sum())
            .collect()
    }

    #[test]
    fn ftran_solves_against_dense_reference() {
        let a: [&[f64]; 3] = [&[2.0, 0.0, 1.0], &[1.0, 3.0, 0.0], &[0.0, 1.0, 1.0]];
        let lu = LuFactors::factorize(3, &dense_cols(&a)).unwrap();
        let x_true = [1.5, -2.0, 4.0];
        let mut v = mat_vec(&a, &x_true);
        lu.ftran(&mut v);
        for (got, want) in v.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
    }

    #[test]
    fn btran_solves_the_transpose() {
        let a: [&[f64]; 3] = [&[2.0, 0.0, 1.0], &[1.0, 3.0, 0.0], &[0.0, 1.0, 1.0]];
        let lu = LuFactors::factorize(3, &dense_cols(&a)).unwrap();
        let y_true = [0.5, 1.0, -3.0];
        // c = Aᵀ y.
        let mut c = [0.0f64; 3];
        for (i, row) in a.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                c[j] += v * y_true[i];
            }
        }
        let mut v = c;
        lu.btran(&mut v);
        for (got, want) in v.iter().zip(&y_true) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
    }

    #[test]
    fn eta_updates_match_refactorization() {
        let a: [&[f64]; 3] = [&[1.0, 0.0, 2.0], &[0.0, 1.0, 1.0], &[1.0, 1.0, 0.0]];
        let mut lu = LuFactors::factorize(3, &dense_cols(&a)).unwrap();
        // Replace column (slot) 1 with [1, 2, 0].
        let newcol = [1.0, 2.0, 0.0];
        let mut w = newcol;
        lu.ftran(&mut w);
        assert!(lu.append_eta(1, &w));
        // Updated matrix, refactorized, must agree with the eta path.
        let b: [&[f64]; 3] = [&[1.0, 1.0, 2.0], &[0.0, 2.0, 1.0], &[1.0, 0.0, 0.0]];
        let fresh = LuFactors::factorize(3, &dense_cols(&b)).unwrap();
        let rhs = [3.0, -1.0, 2.0];
        let mut via_eta = rhs;
        lu.ftran(&mut via_eta);
        let mut via_fresh = rhs;
        fresh.ftran(&mut via_fresh);
        for (e, f) in via_eta.iter().zip(&via_fresh) {
            assert!((e - f).abs() < 1e-12, "eta {e} vs fresh {f}");
        }
        // And the transpose path.
        let c = [1.0, 4.0, -2.0];
        let mut te = c;
        lu.btran(&mut te);
        let mut tf = c;
        fresh.btran(&mut tf);
        for (e, f) in te.iter().zip(&tf) {
            assert!((e - f).abs() < 1e-12, "eta {e} vs fresh {f}");
        }
    }

    #[test]
    fn singular_matrix_is_typed_not_a_panic() {
        let a: [&[f64]; 2] = [&[1.0, 2.0], &[2.0, 4.0]];
        let err = LuFactors::factorize(2, &dense_cols(&a)).unwrap_err();
        assert_eq!(err, LuError::Singular { step: 1 });
    }

    #[test]
    fn tiny_eta_pivot_is_refused() {
        let a: [&[f64]; 2] = [&[1.0, 0.0], &[0.0, 1.0]];
        let mut lu = LuFactors::factorize(2, &dense_cols(&a)).unwrap();
        let w = [1.0, 1e-12];
        assert!(!lu.append_eta(1, &w));
        assert_eq!(lu.eta_count(), 0);
    }
}
