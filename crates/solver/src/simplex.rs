//! Deterministic revised simplex over [`Csc`] matrices and [`LuFactors`].
//!
//! Standard form: `min cᵀx  s.t.  A x = b, x ≥ 0`. Cold solves run the
//! **two-phase primal** method (phase 1 minimizes the sum of signed
//! artificial variables; artificials never re-enter once they leave, and
//! a drive-out pass pivots zero-level artificials off feasible bases).
//! Warm solves — the coalition-lattice case, where only `b` changes
//! between relatives so a parent's optimal basis stays *dual* feasible —
//! run the **dual simplex** from the supplied basis and fall back to the
//! reference cold path whenever the basis is unusable (wrong shape,
//! singular, dual infeasible, or the dual iteration hits a limit).
//!
//! # Pivot rules and determinism
//!
//! * Entering (primal): Dantzig pricing — most negative reduced cost,
//!   ties broken toward the lowest column index.
//! * Leaving (primal): minimum-ratio test, ties broken toward the lowest
//!   basic *column id* (not slot), which is exactly the tie-break Bland's
//!   rule requires.
//! * **Bland's rule fallback**: after [`DEGENERATE_STREAK_LIMIT`]
//!   consecutive degenerate pivots the solve switches permanently to
//!   Bland's rule (entering = lowest eligible index), which provably
//!   cannot cycle. The switch is itself deterministic — a pure function
//!   of the pivot sequence — and is recorded in
//!   [`SolveStats::bland_activated`].
//! * Dual simplex: leaving = most negative basic value (ties → lowest
//!   basic column id), entering = minimum dual ratio (ties → lowest
//!   column index), with the same Bland-style degeneracy fallback.
//!
//! No randomness, no time, no address-dependent iteration order anywhere:
//! two solves of the same instance from the same starting basis execute
//! the same pivot sequence bit-for-bit. A hard iteration cap converts any
//! residual numerical stall into the typed [`SolverError::IterationLimit`]
//! rather than a hang.

use crate::csc::Csc;
use crate::lu::{LuError, LuFactors};

/// Feasibility / optimality tolerance used for pricing, ratio tests and
/// the infeasibility decision (scaled by the magnitude of `b` where
/// noted). Exact-dyadic instances never come near it.
pub const FEAS_TOL: f64 = 1e-9;

/// Minimum pivot magnitude accepted by the ratio tests.
const PIVOT_TOL: f64 = 1e-9;

/// Consecutive degenerate pivots tolerated before switching to Bland's
/// rule for the remainder of the solve.
const DEGENERATE_STREAK_LIMIT: usize = 40;

/// A linear program in standard form `min cᵀx  s.t.  A x = b, x ≥ 0`.
#[derive(Debug, Clone)]
pub struct LinearProgram {
    a: Csc,
    b: Vec<f64>,
    c: Vec<f64>,
}

impl LinearProgram {
    /// Builds the program `min cᵀx  s.t.  A x = b, x ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `b`/`c` lengths disagree with `a`, or any datum is
    /// non-finite.
    pub fn new(a: Csc, b: Vec<f64>, c: Vec<f64>) -> Self {
        assert_eq!(a.rows(), b.len(), "rhs length must match constraint rows");
        assert_eq!(a.cols(), c.len(), "cost length must match variable count");
        assert!(
            b.iter().chain(c.iter()).all(|v| v.is_finite()),
            "LP data must be finite"
        );
        Self { a, b, c }
    }

    /// Number of equality constraints (rows of `A`).
    pub fn constraints(&self) -> usize {
        self.a.rows()
    }

    /// Number of structural variables (columns of `A`).
    pub fn variables(&self) -> usize {
        self.a.cols()
    }

    /// The constraint matrix.
    pub fn matrix(&self) -> &Csc {
        &self.a
    }

    /// The right-hand side `b`.
    pub fn rhs(&self) -> &[f64] {
        &self.b
    }

    /// The cost vector `c`.
    pub fn costs(&self) -> &[f64] {
        &self.c
    }
}

/// An ordered basis: `columns()[slot]` is the structural column occupying
/// basis slot `slot`. Returned by optimal solves and accepted by
/// [`solve_warm`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Basis {
    cols: Vec<usize>,
}

impl Basis {
    /// The basic column ids, slot by slot.
    pub fn columns(&self) -> &[usize] {
        &self.cols
    }

    /// Whether every basic column is structural (index `< n`); only such
    /// bases are reusable as warm starts.
    pub fn is_structural(&self, n: usize) -> bool {
        self.cols.iter().all(|&j| j < n)
    }
}

/// Counters describing how a solve proceeded. Bit-identity pins compare
/// objectives, not stats — warm and cold solves legitimately differ here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Total simplex pivots (both phases, or dual iterations).
    pub iterations: u64,
    /// Pivots spent in phase 1 (always 0 for a pure warm solve).
    pub phase1_iterations: u64,
    /// LU refactorizations beyond the initial one.
    pub refactorizations: u64,
    /// Pivots with a (near-)zero step length.
    pub degenerate_pivots: u64,
    /// Whether the Bland's-rule anti-cycling fallback engaged.
    pub bland_activated: bool,
    /// Whether this solve was requested through [`solve_warm`].
    pub warm_started: bool,
    /// Whether a warm request fell back to the cold reference path.
    pub cold_fallback: bool,
}

/// An optimal solution with its certificate ingredients.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Primal values of the structural variables.
    pub x: Vec<f64>,
    /// `cᵀx`, accumulated in canonical ascending-column order (skipping
    /// exact zeros), so equal vertices yield bit-identical objectives.
    pub objective: f64,
    /// Dual values `y` (one per constraint row).
    pub duals: Vec<f64>,
    /// The optimal basis, reusable to warm-start a relative's solve.
    pub basis: Basis,
    /// How the solve went.
    pub stats: SolveStats,
}

/// Typed solve outcome. `Infeasible` and `Unbounded` are results, not
/// errors — callers (e.g. the network game) map them to documented
/// values.
#[derive(Debug, Clone)]
pub enum LpOutcome {
    /// An optimal vertex was found.
    Optimal(Solution),
    /// No point satisfies `A x = b, x ≥ 0`.
    Infeasible,
    /// The objective decreases without bound along a feasible ray.
    Unbounded,
}

impl LpOutcome {
    /// The solution, if optimal.
    pub fn optimal(self) -> Option<Solution> {
        match self {
            LpOutcome::Optimal(sol) => Some(sol),
            _ => None,
        }
    }

    /// The optimal objective, if optimal.
    pub fn objective(&self) -> Option<f64> {
        match self {
            LpOutcome::Optimal(sol) => Some(sol.objective),
            _ => None,
        }
    }
}

/// A genuine solver failure (distinct from the typed [`LpOutcome`]s).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolverError {
    /// The hard pivot cap was reached — numerical stall or cycling that
    /// even the Bland fallback did not resolve.
    IterationLimit {
        /// Pivots executed when the cap fired.
        iterations: u64,
    },
    /// The basis factorization broke down (should not happen on valid
    /// bases; surfaced rather than panicking).
    NumericalBreakdown {
        /// Human-readable detail.
        detail: String,
    },
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::IterationLimit { iterations } => {
                write!(
                    f,
                    "simplex iteration limit reached after {iterations} pivots"
                )
            }
            SolverError::NumericalBreakdown { detail } => {
                write!(f, "numerical breakdown: {detail}")
            }
        }
    }
}

impl std::error::Error for SolverError {}

/// Independent optimality certificate for a claimed [`Solution`]:
/// recomputes every KKT residual from the raw instance data.
#[derive(Debug, Clone, Copy)]
pub struct Certificate {
    /// `‖A x − b‖∞`.
    pub primal_residual: f64,
    /// `max(0, −minⱼ xⱼ)` — violation of the lower bounds.
    pub lower_violation: f64,
    /// `|cᵀx − bᵀy|` — the duality gap.
    pub duality_gap: f64,
    /// `max(0, −minⱼ (cⱼ − aⱼᵀy))` — violation of dual feasibility.
    pub dual_violation: f64,
}

impl Certificate {
    /// Whether every residual is within `tol`.
    pub fn passes(&self, tol: f64) -> bool {
        self.primal_residual <= tol
            && self.lower_violation <= tol
            && self.duality_gap <= tol
            && self.dual_violation <= tol
    }
}

/// Recomputes the KKT residuals of `sol` against `lp` from scratch.
pub fn certify(lp: &LinearProgram, sol: &Solution) -> Certificate {
    let m = lp.constraints();
    let n = lp.variables();
    let mut ax = vec![0.0f64; m];
    for j in 0..n {
        if sol.x[j] != 0.0 {
            lp.matrix().scatter_col(j, sol.x[j], &mut ax);
        }
    }
    let primal_residual = ax
        .iter()
        .zip(lp.rhs())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    let lower_violation = sol.x.iter().fold(0.0f64, |acc, &v| acc.max(-v));
    let mut by = 0.0f64;
    for (bv, yv) in lp.rhs().iter().zip(&sol.duals) {
        if *bv != 0.0 && *yv != 0.0 {
            by += bv * yv;
        }
    }
    let duality_gap = (sol.objective - by).abs();
    let dual_violation = (0..n)
        .map(|j| lp.costs()[j] - lp.matrix().dot_col(j, &sol.duals))
        .fold(0.0f64, |acc, d| acc.max(-d));
    Certificate {
        primal_residual,
        lower_violation,
        duality_gap,
        dual_violation,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    One,
    Two,
}

enum PrimalEnd {
    Optimal,
    Unbounded,
}

enum DualEnd {
    Optimal,
    PrimalInfeasible,
}

struct Engine<'a> {
    lp: &'a LinearProgram,
    m: usize,
    n: usize,
    /// Sign of the artificial column for each row (`±e_r`).
    art_sign: Vec<f64>,
    /// `basis[slot]` = column id; ids `≥ n` are artificials.
    basis: Vec<usize>,
    in_basis: Vec<bool>,
    lu: LuFactors,
    xb: Vec<f64>,
    stats: SolveStats,
    bland: bool,
    degen_streak: usize,
    iter_cap: u64,
}

impl<'a> Engine<'a> {
    fn cold(lp: &'a LinearProgram) -> Self {
        let m = lp.constraints();
        let n = lp.variables();
        let art_sign: Vec<f64> = lp
            .rhs()
            .iter()
            .map(|&b| if b < 0.0 { -1.0 } else { 1.0 })
            .collect();
        let basis: Vec<usize> = (n..n + m).collect();
        let mut in_basis = vec![false; n + m];
        for &j in &basis {
            in_basis[j] = true;
        }
        let cols: Vec<Vec<(usize, f64)>> = (0..m).map(|r| vec![(r, art_sign[r])]).collect();
        let lu = LuFactors::factorize(m, &cols).expect("signed identity is nonsingular");
        let mut xb = lp.rhs().to_vec();
        lu.ftran(&mut xb);
        Self {
            lp,
            m,
            n,
            art_sign,
            basis,
            in_basis,
            lu,
            xb,
            stats: SolveStats::default(),
            bland: false,
            degen_streak: 0,
            iter_cap: iter_cap(m, n),
        }
    }

    fn warm(lp: &'a LinearProgram, cols_ids: &[usize]) -> Result<Self, LuError> {
        let m = lp.constraints();
        let n = lp.variables();
        let art_sign = vec![1.0; m];
        let cols: Vec<Vec<(usize, f64)>> = cols_ids
            .iter()
            .map(|&j| {
                let (rows, vals) = lp.matrix().col(j);
                rows.iter().zip(vals).map(|(&r, &v)| (r, v)).collect()
            })
            .collect();
        let lu = LuFactors::factorize(m, &cols)?;
        let mut in_basis = vec![false; n + m];
        for &j in cols_ids {
            in_basis[j] = true;
        }
        let mut xb = lp.rhs().to_vec();
        lu.ftran(&mut xb);
        Ok(Self {
            lp,
            m,
            n,
            art_sign,
            basis: cols_ids.to_vec(),
            in_basis,
            lu,
            xb,
            stats: SolveStats::default(),
            bland: false,
            degen_streak: 0,
            iter_cap: iter_cap(m, n),
        })
    }

    fn phase2_costs(&self) -> Vec<f64> {
        let mut costs = vec![0.0f64; self.n + self.m];
        costs[..self.n].copy_from_slice(self.lp.costs());
        costs
    }

    fn check_cap(&self) -> Result<(), SolverError> {
        if self.stats.iterations >= self.iter_cap {
            Err(SolverError::IterationLimit {
                iterations: self.stats.iterations,
            })
        } else {
            Ok(())
        }
    }

    /// BTRAN of the basic costs: the dual vector `y` (row-indexed).
    fn duals(&self, costs: &[f64]) -> Vec<f64> {
        let mut y: Vec<f64> = self.basis.iter().map(|&j| costs[j]).collect();
        self.lu.btran(&mut y);
        y
    }

    fn dense_column(&self, j: usize) -> Vec<f64> {
        let mut col = vec![0.0f64; self.m];
        if j < self.n {
            self.lp.matrix().scatter_col(j, 1.0, &mut col);
        } else {
            col[j - self.n] = self.art_sign[j - self.n];
        }
        col
    }

    fn sparse_column(&self, j: usize) -> Vec<(usize, f64)> {
        if j < self.n {
            let (rows, vals) = self.lp.matrix().col(j);
            rows.iter().zip(vals).map(|(&r, &v)| (r, v)).collect()
        } else {
            vec![(j - self.n, self.art_sign[j - self.n])]
        }
    }

    fn refactorize(&mut self) -> Result<(), SolverError> {
        let cols: Vec<Vec<(usize, f64)>> =
            self.basis.iter().map(|&j| self.sparse_column(j)).collect();
        self.lu =
            LuFactors::factorize(self.m, &cols).map_err(|e| SolverError::NumericalBreakdown {
                detail: e.to_string(),
            })?;
        self.stats.refactorizations += 1;
        // Recompute the basic values from scratch: drift control, and a
        // pure function of the basis (determinism-safe).
        let mut xb = self.lp.rhs().to_vec();
        self.lu.ftran(&mut xb);
        self.xb = xb;
        Ok(())
    }

    /// Dantzig pricing (Bland when the fallback engaged). Entering
    /// candidates are always structural — artificials never re-enter.
    fn price(&self, costs: &[f64], y: &[f64]) -> Option<usize> {
        let mut best: Option<(f64, usize)> = None;
        for (j, &cj) in costs.iter().enumerate().take(self.n) {
            if self.in_basis[j] {
                continue;
            }
            let d = cj - self.lp.matrix().dot_col(j, y);
            if d >= -FEAS_TOL {
                continue;
            }
            if self.bland {
                return Some(j);
            }
            // Strict `<` keeps the lowest index on exact ties.
            if best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, j));
            }
        }
        best.map(|(_, j)| j)
    }

    /// Minimum-ratio test; ties break toward the lowest basic column id
    /// (the Bland-compatible choice). Basic artificials sitting at zero
    /// are forced out even along a negative direction, so they can never
    /// go negative in phase 2.
    fn ratio_test(&self, w: &[f64]) -> Option<usize> {
        let mut leave: Option<(f64, usize)> = None;
        for (i, &wi) in w.iter().enumerate().take(self.m) {
            let bi = self.basis[i];
            let ratio = if wi > PIVOT_TOL {
                Some(self.xb[i].max(0.0) / wi)
            } else if bi >= self.n && wi < -PIVOT_TOL && self.xb[i].abs() <= FEAS_TOL {
                Some(0.0)
            } else {
                None
            };
            let Some(r) = ratio else { continue };
            let better = match leave {
                None => true,
                Some((br, bs)) => r < br || (r == br && bi < self.basis[bs]),
            };
            if better {
                leave = Some((r, i));
            }
        }
        leave.map(|(_, i)| i)
    }

    fn note_degenerate(&mut self, degenerate: bool) {
        if degenerate {
            self.stats.degenerate_pivots += 1;
            self.degen_streak += 1;
            if self.degen_streak >= DEGENERATE_STREAK_LIMIT && !self.bland {
                self.bland = true;
                self.stats.bland_activated = true;
            }
        } else {
            self.degen_streak = 0;
        }
    }

    /// Replaces the basic column at `slot` with `q`, given `w = B⁻¹ a_q`
    /// computed against the *current* factors, and updates the factors by
    /// eta append or refactorization.
    fn pivot(&mut self, slot: usize, q: usize, w: &[f64]) -> Result<(), SolverError> {
        let raw = self.xb[slot] / w[slot];
        // Normalize −0.0 step lengths so degenerate pivots leave +0.0 in
        // the basis regardless of pivot signs.
        let theta = if raw == 0.0 { 0.0 } else { raw };
        for (i, &wi) in w.iter().enumerate().take(self.m) {
            if i != slot && wi != 0.0 {
                self.xb[i] -= wi * theta;
            }
        }
        self.xb[slot] = theta;
        let old = self.basis[slot];
        self.in_basis[old] = false;
        self.in_basis[q] = true;
        self.basis[slot] = q;
        if self.lu.wants_refactor() || !self.lu.append_eta(slot, w) {
            self.refactorize()?;
        }
        Ok(())
    }

    fn primal(&mut self, costs: &[f64], phase: Phase) -> Result<PrimalEnd, SolverError> {
        self.bland = false;
        self.degen_streak = 0;
        loop {
            self.check_cap()?;
            let y = self.duals(costs);
            let Some(q) = self.price(costs, &y) else {
                return Ok(PrimalEnd::Optimal);
            };
            let mut w = self.dense_column(q);
            self.lu.ftran(&mut w);
            let Some(slot) = self.ratio_test(&w) else {
                return Ok(PrimalEnd::Unbounded);
            };
            let theta = self.xb[slot] / w[slot];
            self.note_degenerate(theta.abs() <= FEAS_TOL);
            self.pivot(slot, q, &w)?;
            self.stats.iterations += 1;
            if phase == Phase::One {
                self.stats.phase1_iterations += 1;
            }
        }
    }

    /// After a feasible phase 1: pivot zero-level artificials out of the
    /// basis wherever a structural column can take their slot; slots with
    /// no candidate sit on redundant rows and keep their artificial at
    /// exactly zero.
    fn drive_out_artificials(&mut self) -> Result<(), SolverError> {
        for slot in 0..self.m {
            if self.basis[slot] < self.n {
                continue;
            }
            // ρ = row `slot` of B⁻¹, via BTRAN of a slot unit vector.
            let mut rho = vec![0.0f64; self.m];
            rho[slot] = 1.0;
            self.lu.btran(&mut rho);
            let mut entering = None;
            for j in 0..self.n {
                if !self.in_basis[j] && self.lp.matrix().dot_col(j, &rho).abs() > PIVOT_TOL {
                    entering = Some(j);
                    break;
                }
            }
            let Some(q) = entering else { continue };
            let mut w = self.dense_column(q);
            self.lu.ftran(&mut w);
            self.pivot(slot, q, &w)?;
        }
        Ok(())
    }

    fn two_phase(&mut self) -> Result<LpOutcome, SolverError> {
        let mut p1 = vec![0.0f64; self.n + self.m];
        for cost in p1.iter_mut().skip(self.n) {
            *cost = 1.0;
        }
        match self.primal(&p1, Phase::One)? {
            PrimalEnd::Unbounded => {
                return Err(SolverError::NumericalBreakdown {
                    detail: "phase-1 problem reported unbounded".into(),
                })
            }
            PrimalEnd::Optimal => {}
        }
        let scale = 1.0 + self.lp.rhs().iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        let infeasibility: f64 = (0..self.m)
            .filter(|&i| self.basis[i] >= self.n)
            .map(|i| self.xb[i].max(0.0))
            .sum();
        if infeasibility > FEAS_TOL * scale {
            return Ok(LpOutcome::Infeasible);
        }
        self.drive_out_artificials()?;
        let p2 = self.phase2_costs();
        match self.primal(&p2, Phase::Two)? {
            PrimalEnd::Unbounded => Ok(LpOutcome::Unbounded),
            PrimalEnd::Optimal => {
                // Defensive: an artificial stuck above tolerance means the
                // feasibility decision was numerically marginal.
                let stuck = (0..self.m)
                    .any(|i| self.basis[i] >= self.n && self.xb[i].abs() > FEAS_TOL * scale);
                if stuck {
                    return Ok(LpOutcome::Infeasible);
                }
                Ok(LpOutcome::Optimal(self.finalize(&p2)))
            }
        }
    }

    fn dual_feasible(&self, costs: &[f64]) -> bool {
        let y = self.duals(costs);
        (0..self.n)
            .filter(|&j| !self.in_basis[j])
            .all(|j| costs[j] - self.lp.matrix().dot_col(j, &y) >= -FEAS_TOL)
    }

    fn dual_simplex(&mut self, costs: &[f64]) -> Result<DualEnd, SolverError> {
        self.bland = false;
        self.degen_streak = 0;
        loop {
            self.check_cap()?;
            // Leaving: most negative basic value; ties (and Bland mode)
            // resolve toward the lowest basic column id.
            let mut leave: Option<usize> = None;
            for i in 0..self.m {
                if self.xb[i] >= -FEAS_TOL {
                    continue;
                }
                let better = match leave {
                    None => true,
                    Some(l) => {
                        if self.bland {
                            self.basis[i] < self.basis[l]
                        } else {
                            self.xb[i] < self.xb[l]
                                || (self.xb[i] == self.xb[l] && self.basis[i] < self.basis[l])
                        }
                    }
                };
                if better {
                    leave = Some(i);
                }
            }
            let Some(slot) = leave else {
                return Ok(DualEnd::Optimal);
            };
            let mut rho = vec![0.0f64; self.m];
            rho[slot] = 1.0;
            self.lu.btran(&mut rho);
            let y = self.duals(costs);
            // Entering: minimum dual ratio d_j / (−α_j) over α_j < 0.
            let mut enter: Option<(f64, usize)> = None;
            for (j, &cj) in costs.iter().enumerate().take(self.n) {
                if self.in_basis[j] {
                    continue;
                }
                let alpha = self.lp.matrix().dot_col(j, &rho);
                if alpha >= -PIVOT_TOL {
                    continue;
                }
                if self.bland {
                    enter = Some((0.0, j));
                    break;
                }
                // Clamp tiny negative reduced costs: dual feasibility is an
                // invariant here, violated only by round-off.
                let d = (cj - self.lp.matrix().dot_col(j, &y)).max(0.0);
                let ratio = d / -alpha;
                let better = match enter {
                    None => true,
                    Some((br, bj)) => ratio < br || (ratio == br && j < bj),
                };
                if better {
                    enter = Some((ratio, j));
                }
            }
            let Some((ratio, q)) = enter else {
                // Dual unbounded ⇒ primal infeasible.
                return Ok(DualEnd::PrimalInfeasible);
            };
            self.note_degenerate(ratio <= FEAS_TOL);
            let mut w = self.dense_column(q);
            self.lu.ftran(&mut w);
            self.pivot(slot, q, &w)?;
            self.stats.iterations += 1;
        }
    }

    fn finalize(&self, costs: &[f64]) -> Solution {
        let y = self.duals(costs);
        let mut x = vec![0.0f64; self.n];
        for i in 0..self.m {
            if self.basis[i] < self.n {
                x[self.basis[i]] = self.xb[i];
            }
        }
        // Canonical ascending-column accumulation, skipping exact zeros
        // (so ±0.0 basics cannot perturb the sign of a zero objective).
        let mut objective = 0.0f64;
        for (xj, cj) in x.iter().zip(self.lp.costs()) {
            if *xj != 0.0 && *cj != 0.0 {
                objective += cj * xj;
            }
        }
        Solution {
            x,
            objective,
            duals: y,
            basis: Basis {
                cols: self.basis.clone(),
            },
            stats: self.stats,
        }
    }
}

fn iter_cap(m: usize, n: usize) -> u64 {
    2000 + 200 * (m + n) as u64
}

/// Solves `lp` cold via the two-phase primal simplex.
///
/// # Errors
///
/// [`SolverError`] on iteration-cap or factorization breakdown; the
/// mathematical outcomes (`Infeasible`, `Unbounded`) are typed
/// [`LpOutcome`]s, not errors.
pub fn solve(lp: &LinearProgram) -> Result<LpOutcome, SolverError> {
    let mut eng = Engine::cold(lp);
    eng.two_phase()
}

/// Solves `lp` warm-starting from `basis` (typically a relative's optimal
/// basis after only `b` changed, which leaves it dual feasible) via the
/// dual simplex. Falls back to the cold reference path — recording
/// [`SolveStats::cold_fallback`] — whenever the basis is unusable: wrong
/// shape, contains artificials, singular, dual infeasible, or the dual
/// iteration hits a limit.
///
/// # Errors
///
/// [`SolverError`] only if the *fallback cold solve* itself fails.
pub fn solve_warm(lp: &LinearProgram, basis: &Basis) -> Result<LpOutcome, SolverError> {
    let m = lp.constraints();
    let n = lp.variables();
    let shape_ok = basis.cols.len() == m && basis.is_structural(n) && {
        let mut seen = vec![false; n];
        basis
            .cols
            .iter()
            .all(|&j| !std::mem::replace(&mut seen[j], true))
    };
    if shape_ok {
        if let Ok(mut eng) = Engine::warm(lp, &basis.cols) {
            eng.stats.warm_started = true;
            let costs = eng.phase2_costs();
            if eng.dual_feasible(&costs) {
                match eng.dual_simplex(&costs) {
                    Ok(DualEnd::Optimal) => return Ok(LpOutcome::Optimal(eng.finalize(&costs))),
                    Ok(DualEnd::PrimalInfeasible) => return Ok(LpOutcome::Infeasible),
                    Err(_) => {} // fall through to the cold reference path
                }
            }
        }
    }
    let mut out = solve(lp)?;
    if let LpOutcome::Optimal(sol) = &mut out {
        sol.stats.warm_started = true;
        sol.stats.cold_fallback = true;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lp(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
        b: &[f64],
        c: &[f64],
    ) -> LinearProgram {
        LinearProgram::new(
            Csc::from_triplets(rows, cols, triplets),
            b.to_vec(),
            c.to_vec(),
        )
    }

    #[test]
    fn small_lp_reaches_the_known_optimum() {
        // min x0 + 2 x1  s.t.  x0 + x1 = 4, x0 + x2 = 3, x ≥ 0.
        let p = lp(
            2,
            3,
            &[(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0)],
            &[4.0, 3.0],
            &[1.0, 2.0, 0.0],
        );
        let sol = solve(&p).unwrap().optimal().expect("optimal");
        assert!((sol.objective - 5.0).abs() < 1e-12);
        assert!((sol.x[0] - 3.0).abs() < 1e-12);
        assert!((sol.x[1] - 1.0).abs() < 1e-12);
        assert!(certify(&p, &sol).passes(1e-9));
    }

    #[test]
    fn conflicting_rows_are_typed_infeasible() {
        let p = lp(2, 1, &[(0, 0, 1.0), (1, 0, 1.0)], &[1.0, 2.0], &[1.0]);
        assert!(matches!(solve(&p).unwrap(), LpOutcome::Infeasible));
    }

    #[test]
    fn descending_ray_is_typed_unbounded() {
        // min −x0  s.t.  x0 − x1 = 0: the ray x0 = x1 = t is feasible.
        let p = lp(1, 2, &[(0, 0, 1.0), (0, 1, -1.0)], &[0.0], &[-1.0, 0.0]);
        assert!(matches!(solve(&p).unwrap(), LpOutcome::Unbounded));
    }

    #[test]
    fn negative_rhs_is_handled_by_signed_artificials() {
        // x0 − x1 = −1, x0 + x1 = 3 ⇒ unique point (1, 2).
        let p = lp(
            2,
            2,
            &[(0, 0, 1.0), (0, 1, -1.0), (1, 0, 1.0), (1, 1, 1.0)],
            &[-1.0, 3.0],
            &[1.0, 1.0],
        );
        let sol = solve(&p).unwrap().optimal().expect("optimal");
        assert!((sol.objective - 3.0).abs() < 1e-12);
        assert!(certify(&p, &sol).passes(1e-9));
    }

    #[test]
    fn degenerate_instance_terminates_with_an_optimum() {
        // Zero rhs forces every pivot to be degenerate.
        let p = lp(
            2,
            4,
            &[
                (0, 0, 1.0),
                (0, 1, -1.0),
                (0, 2, 1.0),
                (1, 1, 1.0),
                (1, 2, -1.0),
                (1, 3, 1.0),
            ],
            &[0.0, 0.0],
            &[1.0, 1.0, 1.0, 1.0],
        );
        let sol = solve(&p).unwrap().optimal().expect("optimal");
        assert_eq!(sol.objective, 0.0);
    }

    #[test]
    fn redundant_rows_keep_a_zero_artificial_and_still_solve() {
        // Row 1 duplicates row 0: rank-deficient but consistent.
        let p = lp(
            2,
            2,
            &[(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 1.0)],
            &[2.0, 2.0],
            &[1.0, 3.0],
        );
        let sol = solve(&p).unwrap().optimal().expect("optimal");
        assert!((sol.objective - 2.0).abs() < 1e-12);
    }

    #[test]
    fn warm_solve_matches_cold_bitwise_on_a_network_instance() {
        // One conservation row, one capacity row: f1 + f2 = d, f1 + s = 2.
        let triplets = [(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0)];
        let c = [1.0, 2.0, 0.0];
        let parent = lp(2, 3, &triplets, &[2.0, 2.0], &c);
        let parent_sol = solve(&parent).unwrap().optimal().expect("optimal");
        assert_eq!(parent_sol.objective, 2.0);
        assert!(parent_sol.basis.is_structural(3));

        let child = lp(2, 3, &triplets, &[3.0, 2.0], &c);
        let cold = solve(&child).unwrap().optimal().expect("optimal");
        let warm = solve_warm(&child, &parent_sol.basis)
            .unwrap()
            .optimal()
            .expect("optimal");
        assert_eq!(cold.objective.to_bits(), warm.objective.to_bits());
        assert_eq!(warm.objective, 4.0);
        assert!(warm.stats.warm_started);
        assert!(certify(&child, &warm).passes(1e-9));
    }

    #[test]
    fn warm_solve_types_an_infeasible_child() {
        // Parent feasible; child demand exceeds capacity (f1 ≤ 2, only arc).
        let triplets = [(0, 0, 1.0), (1, 0, 1.0), (1, 1, 1.0)];
        let c = [1.0, 0.0];
        let parent = lp(2, 2, &triplets, &[1.0, 2.0], &c);
        let parent_sol = solve(&parent).unwrap().optimal().expect("optimal");
        let child = lp(2, 2, &triplets, &[5.0, 2.0], &c);
        assert!(matches!(
            solve_warm(&child, &parent_sol.basis).unwrap(),
            LpOutcome::Infeasible
        ));
    }

    #[test]
    fn garbage_basis_falls_back_to_cold() {
        let p = lp(1, 2, &[(0, 0, 1.0), (0, 1, 1.0)], &[1.0], &[1.0, 2.0]);
        let bad = Basis { cols: vec![0, 0] };
        let sol = solve_warm(&p, &bad).unwrap().optimal().expect("optimal");
        assert!(sol.stats.cold_fallback);
        assert_eq!(sol.objective, 1.0);
    }

    #[test]
    fn solve_never_returns_nan_objectives() {
        let p = lp(
            2,
            3,
            &[(0, 0, 1.0), (0, 1, 1.0), (1, 1, 1.0), (1, 2, 1.0)],
            &[1.0, 1.0],
            &[0.5, 0.25, 0.125],
        );
        if let LpOutcome::Optimal(sol) = solve(&p).unwrap() {
            assert!(sol.objective.is_finite());
            assert!(sol.x.iter().all(|v| v.is_finite()));
            assert!(sol.duals.iter().all(|v| v.is_finite()));
        } else {
            panic!("expected an optimum");
        }
    }
}
