//! Per-link carbon-intensity signals for network attribution.
//!
//! The LP-valued coalition games route tenant traffic over datacenter
//! links at a carbon price per unit of traffic. This module derives that
//! price from physical ingredients — network-gear energy per gigabyte
//! times grid intensity, plus an amortized embodied share — and
//! **quantizes it onto a dyadic grid** so the prices are exactly
//! representable in binary floating point. On integer-capacity instances
//! with dyadic link prices the simplex arithmetic is exact end to end,
//! which is what lets the attribution layer pin warm-started coalition
//! solves bit-identical to cold ones (see `fairco2-solver`'s crate docs).

use crate::units::{Carbon, CarbonIntensity, Energy};

/// Default number of fractional bits for [`quantize_dyadic`]: 2⁻²⁰ grams
/// per GB resolution (≈ microgram), far below any physical signal while
/// keeping products with realistic traffic volumes exact.
pub const DYADIC_FRAC_BITS: u32 = 20;

/// Snaps `value` to the nearest multiple of `2^-frac_bits`.
///
/// The result is a dyadic rational, exactly representable in `f64` (for
/// any value whose magnitude fits 2⁵³⁻ᶠʳᵃᶜ⁻ᵇⁱᵗˢ), so sums and
/// integer-scalar products of quantized values are computed without
/// rounding — the property the bit-determinism pins of the network games
/// rely on.
///
/// # Panics
///
/// Panics if `value` is not finite or `frac_bits > 52`.
pub fn quantize_dyadic(value: f64, frac_bits: u32) -> f64 {
    assert!(value.is_finite(), "cannot quantize a non-finite value");
    assert!(
        frac_bits <= 52,
        "more than 52 fractional bits is meaningless for f64"
    );
    let scale = (1u64 << frac_bits) as f64;
    (value * scale).round() / scale
}

/// Carbon price model for one class of network link.
///
/// Ingredients follow the operational/embodied split used everywhere else
/// in this crate: moving a gigabyte costs `energy_per_gb × grid
/// intensity` in operational carbon, plus an embodied share amortized
/// over the link's lifetime traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkCarbonModel {
    energy_per_gb: Energy,
    intensity: CarbonIntensity,
    embodied_per_gb: Carbon,
}

impl LinkCarbonModel {
    /// Builds a model from its physical ingredients.
    pub fn new(energy_per_gb: Energy, intensity: CarbonIntensity, embodied_per_gb: Carbon) -> Self {
        Self {
            energy_per_gb,
            intensity,
            embodied_per_gb,
        }
    }

    /// A representative in-datacenter link class: ≈ 0.06 kWh per GB of
    /// switching/transport energy (aggregate of NIC, ToR and aggregation
    /// hops) and a small embodied share.
    pub fn datacenter_default(intensity: CarbonIntensity) -> Self {
        Self::new(Energy::from_kwh(0.06), intensity, Carbon::from_grams(0.4))
    }

    /// Total carbon per gigabyte: operational plus embodied.
    pub fn carbon_per_gb(&self) -> Carbon {
        let operational = self.energy_per_gb * self.intensity;
        Carbon::from_grams(operational.as_grams() + self.embodied_per_gb.as_grams())
    }

    /// [`carbon_per_gb`](Self::carbon_per_gb) in grams, snapped to the
    /// dyadic grid of [`DYADIC_FRAC_BITS`] — the form the network games
    /// consume as an exact link price.
    pub fn dyadic_grams_per_gb(&self) -> f64 {
        quantize_dyadic(self.carbon_per_gb().as_grams(), DYADIC_FRAC_BITS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_lands_on_the_dyadic_grid() {
        let q = quantize_dyadic(0.1, 20);
        // q must be an exact multiple of 2^-20.
        let scaled = q * (1u64 << 20) as f64;
        assert_eq!(scaled, scaled.round());
        assert!((q - 0.1).abs() < 1e-6);
    }

    #[test]
    fn quantized_values_sum_exactly() {
        let a = quantize_dyadic(0.3, 20);
        let b = quantize_dyadic(0.7, 20);
        // Dyadic + dyadic at the same scale is exact: re-quantizing the
        // sum changes nothing.
        assert_eq!(a + b, quantize_dyadic(a + b, 20));
    }

    #[test]
    fn link_model_combines_operational_and_embodied() {
        let model = LinkCarbonModel::new(
            Energy::from_kwh(0.05),
            CarbonIntensity::from_g_per_kwh(400.0),
            Carbon::from_grams(1.0),
        );
        // 0.05 kWh/GB × 400 g/kWh = 20 g/GB operational + 1 g embodied.
        assert!((model.carbon_per_gb().as_grams() - 21.0).abs() < 1e-9);
        let dyadic = model.dyadic_grams_per_gb();
        assert!((dyadic - 21.0).abs() < 1e-6);
    }

    #[test]
    fn datacenter_default_is_positive_and_dyadic() {
        let model = LinkCarbonModel::datacenter_default(CarbonIntensity::from_g_per_kwh(300.0));
        let price = model.dyadic_grams_per_gb();
        assert!(price > 0.0);
        let scaled = price * (1u64 << DYADIC_FRAC_BITS) as f64;
        assert_eq!(scaled, scaled.round());
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_quantization_panics() {
        let _ = quantize_dyadic(f64::NAN, 20);
    }
}
