//! The evaluation server: composition, embodied breakdown, amortization,
//! and per-resource embodied rates.

use serde::{Deserialize, Serialize};

use crate::embodied::{CpuModel, DramModel, PlatformModel, SsdModel};
use crate::operational::NodePowerModel;
use crate::units::{Carbon, Power};

/// Seconds in a (365-day) year.
pub const SECS_PER_YEAR: f64 = 365.0 * 86_400.0;

/// A server configuration: the unit of provisioning in every experiment.
///
/// # Example
///
/// ```
/// use fairco2_carbon::ServerSpec;
///
/// let server = ServerSpec::xeon_6240r();
/// assert_eq!(server.physical_cores(), 48);
/// assert_eq!(server.logical_cores(), 96);
/// let rates = server.embodied_rates();
/// assert!(rates.cpu_per_core_second.as_grams() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    /// CPU package model.
    pub cpu: CpuModel,
    /// Number of sockets.
    pub cpu_count: u32,
    /// DRAM population.
    pub dram: DramModel,
    /// SSD population.
    pub ssd: SsdModel,
    /// Platform overhead model.
    pub platform: PlatformModel,
    /// Amortization lifetime in years (uniform amortization).
    pub lifetime_years: f64,
    /// Node power model.
    pub power: NodePowerModel,
}

impl ServerSpec {
    /// The paper's test server: 2× Intel Xeon Gold 6240R (48 physical /
    /// 96 logical cores), 192 GB DDR4, 480 GB SSD, 4-year uniform
    /// amortization.
    pub fn xeon_6240r() -> Self {
        Self {
            cpu: CpuModel::xeon_6240r(),
            cpu_count: 2,
            dram: DramModel::ddr4_192gb(),
            ssd: SsdModel::sata_480gb(),
            platform: PlatformModel::dell_r740(),
            lifetime_years: 4.0,
            power: NodePowerModel::xeon_6240r_node(),
        }
    }

    /// Total physical cores across sockets.
    pub fn physical_cores(&self) -> u32 {
        self.cpu.physical_cores * self.cpu_count
    }

    /// Total logical (SMT) cores: two hardware threads per physical core.
    pub fn logical_cores(&self) -> u32 {
        self.physical_cores() * 2
    }

    /// Installed DRAM in GB.
    pub fn dram_gb(&self) -> f64 {
        self.dram.capacity_gb
    }

    /// Installed SSD capacity in GB.
    pub fn ssd_gb(&self) -> f64 {
        self.ssd.capacity_gb
    }

    /// Aggregate component TDP used to scale platform power/cooling.
    pub fn system_tdp(&self) -> Power {
        self.cpu.tdp * f64::from(self.cpu_count) + self.dram.tdp + self.ssd.tdp
    }

    /// Per-component embodied carbon.
    pub fn embodied(&self) -> EmbodiedBreakdown {
        EmbodiedBreakdown {
            cpu: self.cpu.embodied() * f64::from(self.cpu_count),
            dram: self.dram.embodied(),
            ssd: self.ssd.embodied(),
            platform: self.platform.embodied(self.system_tdp()),
        }
    }

    /// Embodied carbon per resource pool, with platform overhead allocated
    /// to pools in proportion to component TDP (power delivery and cooling
    /// are sized by dissipation, as in the paper's R740 scaling).
    pub fn embodied_by_resource(&self) -> ResourceEmbodied {
        let b = self.embodied();
        let cpu_tdp = self.cpu.tdp.as_watts() * f64::from(self.cpu_count);
        let dram_tdp = self.dram.tdp.as_watts();
        let ssd_tdp = self.ssd.tdp.as_watts();
        let total_tdp = cpu_tdp + dram_tdp + ssd_tdp;
        let share = |tdp: f64| b.platform * (tdp / total_tdp);
        ResourceEmbodied {
            cpu: b.cpu + share(cpu_tdp),
            dram: b.dram + share(dram_tdp),
            ssd: b.ssd + share(ssd_tdp),
        }
    }

    /// Uniformly amortized embodied rates per resource unit-second.
    ///
    /// # Panics
    ///
    /// Panics if the lifetime is not positive.
    pub fn embodied_rates(&self) -> EmbodiedRates {
        assert!(self.lifetime_years > 0.0, "lifetime must be positive");
        let lifetime_s = self.lifetime_years * SECS_PER_YEAR;
        let by_resource = self.embodied_by_resource();
        EmbodiedRates {
            cpu_per_core_second: by_resource.cpu / (f64::from(self.physical_cores()) * lifetime_s),
            dram_per_gb_second: by_resource.dram / (self.dram_gb() * lifetime_s),
            ssd_per_gb_second: by_resource.ssd / (self.ssd_gb() * lifetime_s),
            node_per_second: by_resource.total() / lifetime_s,
        }
    }

    /// Embodied carbon amortized to one calendar month (the 30-day share
    /// Temporal Shapley redistributes in the paper's Figure 4).
    pub fn embodied_per_month(&self) -> Carbon {
        self.embodied().total() * (30.0 * 86_400.0 / (self.lifetime_years * SECS_PER_YEAR))
    }
}

/// Embodied carbon split by physical component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmbodiedBreakdown {
    /// All CPU packages.
    pub cpu: Carbon,
    /// DRAM.
    pub dram: Carbon,
    /// SSD storage.
    pub ssd: Carbon,
    /// Mainboard, chassis, power delivery, cooling.
    pub platform: Carbon,
}

impl EmbodiedBreakdown {
    /// Whole-server embodied carbon.
    pub fn total(&self) -> Carbon {
        self.cpu + self.dram + self.ssd + self.platform
    }
}

/// Embodied carbon split by attributable resource pool (platform overhead
/// folded in).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceEmbodied {
    /// CPU pool (attributed per core).
    pub cpu: Carbon,
    /// Memory pool (attributed per GB).
    pub dram: Carbon,
    /// Storage pool (attributed per GB).
    pub ssd: Carbon,
}

impl ResourceEmbodied {
    /// Whole-server embodied carbon.
    pub fn total(&self) -> Carbon {
        self.cpu + self.dram + self.ssd
    }
}

/// Amortized embodied-carbon rates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmbodiedRates {
    /// gCO₂e per physical-core-second.
    pub cpu_per_core_second: Carbon,
    /// gCO₂e per DRAM-GB-second.
    pub dram_per_gb_second: Carbon,
    /// gCO₂e per SSD-GB-second.
    pub ssd_per_gb_second: Carbon,
    /// gCO₂e per second for the whole node.
    pub node_per_second: Carbon,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_server_composition() {
        let s = ServerSpec::xeon_6240r();
        assert_eq!(s.physical_cores(), 48);
        assert_eq!(s.logical_cores(), 96);
        assert_eq!(s.dram_gb(), 192.0);
        assert_eq!(s.ssd_gb(), 480.0);
        assert!((s.system_tdp().as_watts() - 365.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_total_is_sum_of_parts() {
        let s = ServerSpec::xeon_6240r();
        let b = s.embodied();
        let total = b.cpu + b.dram + b.ssd + b.platform;
        assert_eq!(b.total(), total);
        // CPU ≈ 20.54 kg, DRAM ≈ 146.87 kg, SSD = 76.8 kg.
        assert!((b.cpu.as_kg() - 20.54).abs() < 0.01);
        assert!((b.dram.as_kg() - 146.87).abs() < 0.01);
        assert!((b.ssd.as_kg() - 76.8).abs() < 1e-9);
        assert!(b.platform.as_kg() > 300.0);
    }

    #[test]
    fn resource_split_conserves_total() {
        let s = ServerSpec::xeon_6240r();
        let by_component = s.embodied().total();
        let by_resource = s.embodied_by_resource().total();
        assert!((by_component.as_grams() - by_resource.as_grams()).abs() < 1e-6);
    }

    #[test]
    fn rates_scale_inversely_with_lifetime() {
        let mut s = ServerSpec::xeon_6240r();
        let r4 = s.embodied_rates();
        s.lifetime_years = 8.0;
        let r8 = s.embodied_rates();
        let ratio = r4.node_per_second / r8.node_per_second;
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn monthly_share_matches_uniform_amortization() {
        let s = ServerSpec::xeon_6240r();
        let month = s.embodied_per_month();
        let expected = s.embodied().total().as_grams() * 30.0 / (4.0 * 365.0);
        assert!((month.as_grams() - expected).abs() < 1e-6);
    }

    #[test]
    fn rate_identity_node_equals_pool_sum() {
        let s = ServerSpec::xeon_6240r();
        let r = s.embodied_rates();
        let pools = r.cpu_per_core_second * 48.0 * 1.0
            + r.dram_per_gb_second * 192.0
            + r.ssd_per_gb_second * 480.0;
        assert!((pools.as_grams() - r.node_per_second.as_grams()).abs() < 1e-9);
    }
}
