//! Operational energy and carbon: static/dynamic power split.
//!
//! Per Google's production characterization (cited throughout the paper),
//! roughly **60 %** of server energy is *static* — drawn whenever the node
//! is provisioned, independent of load — and **40 %** is *dynamic*, driven
//! by the workloads. Operational carbon is energy times grid carbon
//! intensity.

use serde::{Deserialize, Serialize};

use crate::units::{Carbon, CarbonIntensity, Energy, Power};

/// Static share of server energy in Google's characterization.
pub const GOOGLE_STATIC_ENERGY_SHARE: f64 = 0.6;

/// Linear node power model: `P(u) = idle + (max − idle) · u` for CPU
/// utilization `u ∈ [0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodePowerModel {
    /// Power drawn by a provisioned but idle node (the static component).
    pub idle: Power,
    /// Power at full utilization.
    pub max: Power,
}

impl NodePowerModel {
    /// The paper's dual-socket Xeon Gold 6240R node. Idle is set so that a
    /// node at the fleet-average utilization matches Google's 60 % static
    /// energy share.
    pub fn xeon_6240r_node() -> Self {
        Self {
            idle: Power::from_watts(220.0),
            max: Power::from_watts(580.0),
        }
    }

    /// Total node power at CPU utilization `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is outside `[0, 1]` or the model is inverted
    /// (`max < idle`).
    pub fn at_utilization(&self, u: f64) -> Power {
        assert!((0.0..=1.0).contains(&u), "utilization must be in [0, 1]");
        assert!(
            self.max.as_watts() >= self.idle.as_watts(),
            "max power must not be below idle power"
        );
        self.idle + (self.max - self.idle) * u
    }

    /// The dynamic (above-idle) power at utilization `u`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`NodePowerModel::at_utilization`].
    pub fn dynamic_at(&self, u: f64) -> Power {
        self.at_utilization(u) - self.idle
    }

    /// Static energy over `seconds` of provisioned time.
    pub fn static_energy(&self, seconds: f64) -> Energy {
        self.idle.for_seconds(seconds)
    }
}

/// Converts energy to operational carbon at a fixed grid intensity.
pub fn operational_carbon(energy: Energy, intensity: CarbonIntensity) -> Carbon {
    energy * intensity
}

/// Splits a measured total energy into static and dynamic parts using a
/// fixed static share (e.g. [`GOOGLE_STATIC_ENERGY_SHARE`]).
///
/// # Panics
///
/// Panics if `static_share` is outside `[0, 1]`.
pub fn split_static_dynamic(total: Energy, static_share: f64) -> (Energy, Energy) {
    assert!(
        (0.0..=1.0).contains(&static_share),
        "static share must be in [0, 1]"
    );
    let static_energy = total * static_share;
    (static_energy, total - static_energy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_is_linear_in_utilization() {
        let m = NodePowerModel::xeon_6240r_node();
        assert_eq!(m.at_utilization(0.0), m.idle);
        assert_eq!(m.at_utilization(1.0), m.max);
        let half = m.at_utilization(0.5).as_watts();
        assert!((half - 400.0).abs() < 1e-9);
        assert!((m.dynamic_at(0.5).as_watts() - 180.0).abs() < 1e-9);
    }

    #[test]
    fn static_energy_accumulates_over_time() {
        let m = NodePowerModel::xeon_6240r_node();
        let e = m.static_energy(3600.0);
        assert!((e.as_kwh() - 0.22).abs() < 1e-9);
    }

    #[test]
    fn energy_to_carbon() {
        let c = operational_carbon(
            Energy::from_kwh(10.0),
            CarbonIntensity::from_g_per_kwh(250.0),
        );
        assert_eq!(c.as_grams(), 2500.0);
    }

    #[test]
    fn static_dynamic_split() {
        let (s, d) = split_static_dynamic(Energy::from_joules(100.0), 0.6);
        assert_eq!(s.as_joules(), 60.0);
        assert_eq!(d.as_joules(), 40.0);
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn out_of_range_utilization_panics() {
        let _ = NodePowerModel::xeon_6240r_node().at_utilization(1.5);
    }

    #[test]
    fn default_node_matches_google_static_share_at_typical_util() {
        // At ~40 % fleet utilization: static 220 W, dynamic 144 W → static
        // share ≈ 60 %.
        let m = NodePowerModel::xeon_6240r_node();
        let total = m.at_utilization(0.4).as_watts();
        let share = m.idle.as_watts() / total;
        assert!(
            (share - GOOGLE_STATIC_ENERGY_SHARE).abs() < 0.01,
            "share {share}"
        );
    }
}
