//! Physical-quantity newtypes.
//!
//! The attribution math constantly mixes energy, power, carbon mass, and
//! carbon intensity; these zero-cost newtypes make unit errors compile
//! errors. Only the physically meaningful operations are implemented:
//! `Power × seconds → Energy`, `Energy × CarbonIntensity → Carbon`, and
//! additive/scalar arithmetic within each quantity.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Joules per kilowatt-hour.
pub const JOULES_PER_KWH: f64 = 3.6e6;

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Raw magnitude in the base unit.
            pub fn value(self) -> f64 {
                self.0
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }
    };
}

quantity!(
    /// An amount of energy, stored in joules.
    Energy,
    "J"
);

quantity!(
    /// Electrical power, stored in watts.
    Power,
    "W"
);

quantity!(
    /// A mass of CO₂-equivalent greenhouse gas, stored in grams.
    Carbon,
    "gCO2e"
);

quantity!(
    /// Grid carbon intensity, stored in gCO₂e per kilowatt-hour.
    CarbonIntensity,
    "gCO2e/kWh"
);

impl Energy {
    /// Energy from joules.
    pub fn from_joules(joules: f64) -> Self {
        Self(joules)
    }

    /// Energy from kilowatt-hours.
    pub fn from_kwh(kwh: f64) -> Self {
        Self(kwh * JOULES_PER_KWH)
    }

    /// Magnitude in joules.
    pub fn as_joules(self) -> f64 {
        self.0
    }

    /// Magnitude in kilowatt-hours.
    pub fn as_kwh(self) -> f64 {
        self.0 / JOULES_PER_KWH
    }
}

impl Power {
    /// Power from watts.
    pub fn from_watts(watts: f64) -> Self {
        Self(watts)
    }

    /// Magnitude in watts.
    pub fn as_watts(self) -> f64 {
        self.0
    }

    /// Energy dissipated running at this power for `seconds`.
    pub fn for_seconds(self, seconds: f64) -> Energy {
        Energy(self.0 * seconds)
    }
}

impl Carbon {
    /// Carbon from grams of CO₂e.
    pub fn from_grams(grams: f64) -> Self {
        Self(grams)
    }

    /// Carbon from kilograms of CO₂e.
    pub fn from_kg(kg: f64) -> Self {
        Self(kg * 1000.0)
    }

    /// Magnitude in grams.
    pub fn as_grams(self) -> f64 {
        self.0
    }

    /// Magnitude in kilograms.
    pub fn as_kg(self) -> f64 {
        self.0 / 1000.0
    }
}

impl CarbonIntensity {
    /// Intensity from gCO₂e per kilowatt-hour (the paper's unit).
    pub fn from_g_per_kwh(g_per_kwh: f64) -> Self {
        Self(g_per_kwh)
    }

    /// Magnitude in gCO₂e per kilowatt-hour.
    pub fn as_g_per_kwh(self) -> f64 {
        self.0
    }

    /// Magnitude in gCO₂e per joule.
    pub fn as_g_per_joule(self) -> f64 {
        self.0 / JOULES_PER_KWH
    }
}

impl Mul<CarbonIntensity> for Energy {
    type Output = Carbon;
    fn mul(self, intensity: CarbonIntensity) -> Carbon {
        Carbon(self.as_kwh() * intensity.as_g_per_kwh())
    }
}

impl Mul<Energy> for CarbonIntensity {
    type Output = Carbon;
    fn mul(self, energy: Energy) -> Carbon {
        energy * self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        let e = Power::from_watts(100.0).for_seconds(3600.0);
        assert_eq!(e.as_joules(), 360_000.0);
        assert!((e.as_kwh() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn energy_times_intensity_is_carbon() {
        let e = Energy::from_kwh(2.0);
        let ci = CarbonIntensity::from_g_per_kwh(250.0);
        assert_eq!((e * ci).as_grams(), 500.0);
        assert_eq!((ci * e).as_grams(), 500.0);
    }

    #[test]
    fn arithmetic_within_a_quantity() {
        let a = Carbon::from_kg(1.0);
        let b = Carbon::from_grams(500.0);
        assert_eq!((a + b).as_grams(), 1500.0);
        assert_eq!((a - b).as_grams(), 500.0);
        assert_eq!((a * 2.0).as_kg(), 2.0);
        assert_eq!((2.0 * a).as_kg(), 2.0);
        assert_eq!((a / 2.0).as_grams(), 500.0);
        assert_eq!(a / b, 2.0);
        assert_eq!((-b).as_grams(), -500.0);
        let total: Carbon = [a, b].into_iter().sum();
        assert_eq!(total.as_grams(), 1500.0);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(Power::from_watts(165.0).to_string(), "165 W");
        assert_eq!(Carbon::from_grams(5.0).to_string(), "5 gCO2e");
    }

    #[test]
    fn assign_ops() {
        let mut c = Carbon::ZERO;
        c += Carbon::from_grams(3.0);
        c -= Carbon::from_grams(1.0);
        assert_eq!(c.as_grams(), 2.0);
    }
}
