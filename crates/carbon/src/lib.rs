//! Operational and embodied carbon models for the Fair-CO₂ reproduction.
//!
//! This crate is the ACT-style ([Gupta et al., ISCA '22]) carbon substrate
//! the paper builds on:
//!
//! * [`units`] — newtypes for energy, power, carbon mass, and carbon
//!   intensity, so a joule can never be mistaken for a gram.
//! * [`embodied`] — per-component embodied-carbon models (logic die area ×
//!   process carbon-per-area, DRAM and SSD capacity scaling, platform
//!   overheads scaled by TDP as in the Dell R740 LCA), pinned to the
//!   paper's Table 1 numbers.
//! * [`server`] — the evaluation server (2× Intel Xeon Gold 6240R, 192 GB
//!   DDR4, 480 GB SSD), its embodied breakdown, uniform amortization, and
//!   per-resource embodied rates.
//! * [`operational`] — the static/dynamic power split (≈60/40 per Google's
//!   characterization) and energy→carbon conversion.
//! * [`network`] — per-link carbon prices (gear energy × grid intensity
//!   plus an embodied share) quantized onto a dyadic grid, the exact link
//!   costs consumed by the LP-valued network attribution games.
//!
//! # Example
//!
//! ```
//! use fairco2_carbon::server::ServerSpec;
//!
//! let server = ServerSpec::xeon_6240r();
//! let breakdown = server.embodied();
//! // Table 1: DRAM embodies ~7× more carbon than both CPUs together.
//! assert!(breakdown.dram.as_kg() / breakdown.cpu.as_kg() > 5.0);
//! ```
//!
//! [Gupta et al., ISCA '22]: https://doi.org/10.1145/3470496.3527408

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amortization;
pub mod embodied;
pub mod network;
pub mod operational;
pub mod server;
pub mod units;

pub use server::ServerSpec;
pub use units::{Carbon, CarbonIntensity, Energy, Power};
