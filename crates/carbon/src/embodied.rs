//! ACT-style embodied-carbon models for server components.
//!
//! The paper estimates component footprints with imec.netzero and ACT
//! (logic), ACT (DRAM), Tannu & Nair's 0.16 kgCO₂e/GB rate (SSD), and the
//! Dell R740 LCA with TDP scaling (mainboard/chassis/power/cooling). The
//! models here follow the same structure, with constants calibrated so the
//! paper's reference server reproduces **Table 1 exactly**:
//!
//! | Component | TDP | Embodied | Ratio |
//! |---|---|---|---|
//! | DRAM (192 GB) | 25 W | 146.87 kgCO₂e | 1 W : 9.7943 kg |
//! | CPU (per socket) | 165 W | 10.27 kgCO₂e | 1 W : 0.0622 kg |

use serde::{Deserialize, Serialize};

use crate::units::{Carbon, Power};

/// Logic process node, selecting the fab carbon-per-area intensity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessNode {
    /// 7 nm class (EUV-heavy, highest per-area footprint).
    Nm7,
    /// 10 nm class.
    Nm10,
    /// 14 nm class (Cascade Lake generation).
    Nm14,
    /// 22 nm class.
    Nm22,
}

impl ProcessNode {
    /// Fab carbon intensity in kgCO₂e per cm² of good die, ACT-style
    /// (typical fab energy mix, gas abatement included). The 14 nm value
    /// is calibrated so a 680 mm² Cascade Lake die at 85 % yield plus
    /// packaging reproduces the paper's 10.27 kgCO₂e per socket.
    pub fn kg_per_cm2(self) -> f64 {
        match self {
            ProcessNode::Nm7 => 1.80,
            ProcessNode::Nm10 => 1.45,
            ProcessNode::Nm14 => 1.221_125,
            ProcessNode::Nm22 => 0.90,
        }
    }
}

/// Embodied-carbon model of a CPU package: die fabrication (area over
/// yield times process intensity) plus packaging overhead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuModel {
    /// Marketing name, e.g. `"Intel Xeon Gold 6240R"`.
    pub name: String,
    /// Die area in mm².
    pub die_area_mm2: f64,
    /// Process node of the die.
    pub process: ProcessNode,
    /// Fab yield in `(0, 1]`.
    pub fab_yield: f64,
    /// Packaging and substrate overhead in kgCO₂e.
    pub packaging_kg: f64,
    /// Thermal design power of the package.
    pub tdp: Power,
    /// Physical core count of the package.
    pub physical_cores: u32,
}

impl CpuModel {
    /// The paper's Intel Xeon Gold 6240R (Cascade Lake, 24 cores, 165 W).
    pub fn xeon_6240r() -> Self {
        Self {
            name: "Intel Xeon Gold 6240R".to_owned(),
            die_area_mm2: 680.0,
            process: ProcessNode::Nm14,
            fab_yield: 0.85,
            packaging_kg: 0.5,
            tdp: Power::from_watts(165.0),
            physical_cores: 24,
        }
    }

    /// Embodied carbon of one package.
    ///
    /// # Panics
    ///
    /// Panics if the yield is not in `(0, 1]` — dividing by a zero or
    /// negative yield is meaningless.
    pub fn embodied(&self) -> Carbon {
        assert!(
            self.fab_yield > 0.0 && self.fab_yield <= 1.0,
            "yield must be in (0, 1]"
        );
        let die_cm2 = self.die_area_mm2 / 100.0;
        Carbon::from_kg(die_cm2 / self.fab_yield * self.process.kg_per_cm2() + self.packaging_kg)
    }

    /// Ratio of embodied carbon (kg) to TDP (W) — the paper's Table 1
    /// "Ratio" column.
    pub fn kg_per_tdp_watt(&self) -> f64 {
        self.embodied().as_kg() / self.tdp.as_watts()
    }
}

/// Embodied-carbon model of a DRAM population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramModel {
    /// Installed capacity in GB.
    pub capacity_gb: f64,
    /// Embodied kgCO₂e per GB. The DDR4 default (0.764948) makes 192 GB
    /// come out at the paper's 146.87 kgCO₂e.
    pub kg_per_gb: f64,
    /// Aggregate TDP of the installed DIMMs.
    pub tdp: Power,
}

impl DramModel {
    /// The paper's 192 GB DDR4 configuration (25 W aggregate TDP).
    pub fn ddr4_192gb() -> Self {
        Self {
            capacity_gb: 192.0,
            kg_per_gb: 0.764_947_916_666_666_7,
            tdp: Power::from_watts(25.0),
        }
    }

    /// Embodied carbon of the whole population.
    pub fn embodied(&self) -> Carbon {
        Carbon::from_kg(self.capacity_gb * self.kg_per_gb)
    }

    /// Ratio of embodied carbon (kg) to TDP (W).
    pub fn kg_per_tdp_watt(&self) -> f64 {
        self.embodied().as_kg() / self.tdp.as_watts()
    }
}

/// Embodied-carbon model of SSD storage, using Tannu & Nair's
/// capacity-proportional rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SsdModel {
    /// Installed capacity in GB.
    pub capacity_gb: f64,
    /// Embodied kgCO₂e per GB (the paper uses 0.16).
    pub kg_per_gb: f64,
    /// Aggregate TDP of the drives.
    pub tdp: Power,
}

impl SsdModel {
    /// The paper's 480 GB SSD at 0.16 kgCO₂e/GB.
    pub fn sata_480gb() -> Self {
        Self {
            capacity_gb: 480.0,
            kg_per_gb: 0.16,
            tdp: Power::from_watts(10.0),
        }
    }

    /// Embodied carbon of the drives.
    pub fn embodied(&self) -> Carbon {
        Carbon::from_kg(self.capacity_gb * self.kg_per_gb)
    }
}

/// Platform overheads — mainboard, chassis, and power-delivery/cooling —
/// with the power/cooling share scaled by system TDP as the paper does
/// with the Dell R740 LCA reference values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlatformModel {
    /// Mainboard embodied carbon in kgCO₂e.
    pub mainboard_kg: f64,
    /// Chassis (sheet metal, rails) embodied carbon in kgCO₂e.
    pub chassis_kg: f64,
    /// Power-delivery + cooling embodied carbon at the reference TDP.
    pub power_cooling_ref_kg: f64,
    /// Reference system TDP the LCA's power/cooling figure corresponds to.
    pub reference_tdp: Power,
}

impl PlatformModel {
    /// Dell R740-derived reference values.
    pub fn dell_r740() -> Self {
        Self {
            mainboard_kg: 145.0,
            chassis_kg: 90.0,
            power_cooling_ref_kg: 150.0,
            reference_tdp: Power::from_watts(500.0),
        }
    }

    /// Embodied carbon for a system with the given total component TDP.
    ///
    /// # Panics
    ///
    /// Panics if the reference TDP is not positive.
    pub fn embodied(&self, system_tdp: Power) -> Carbon {
        assert!(
            self.reference_tdp.as_watts() > 0.0,
            "reference TDP must be positive"
        );
        let scale = system_tdp.as_watts() / self.reference_tdp.as_watts();
        Carbon::from_kg(self.mainboard_kg + self.chassis_kg + self.power_cooling_ref_kg * scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_cpu_value() {
        let cpu = CpuModel::xeon_6240r();
        let kg = cpu.embodied().as_kg();
        assert!((kg - 10.27).abs() < 0.005, "CPU embodied {kg} kg");
        assert!((cpu.kg_per_tdp_watt() - 0.0622).abs() < 0.0005);
    }

    #[test]
    fn table1_dram_value() {
        let dram = DramModel::ddr4_192gb();
        let kg = dram.embodied().as_kg();
        assert!((kg - 146.87).abs() < 0.005, "DRAM embodied {kg} kg");
        // Table 1 prints the ratio as 9.7943 kg/W, which is inconsistent
        // with its own 146.87 kg / 25 W row; we assert the self-consistent
        // value (146.87 / 25 = 5.8748). The qualitative claim — DRAM's
        // ratio dwarfs the CPU's — is unaffected.
        assert!((dram.kg_per_tdp_watt() - 5.8748).abs() < 0.001);
    }

    #[test]
    fn table1_ratio_gap_is_two_orders_of_magnitude() {
        // The point of Table 1: power is a poor proxy for embodied carbon.
        let cpu = CpuModel::xeon_6240r();
        let dram = DramModel::ddr4_192gb();
        let gap = dram.kg_per_tdp_watt() / cpu.kg_per_tdp_watt();
        assert!(gap > 50.0, "ratio gap {gap}");
    }

    #[test]
    fn ssd_uses_capacity_rate() {
        let ssd = SsdModel::sata_480gb();
        assert!((ssd.embodied().as_kg() - 76.8).abs() < 1e-9);
    }

    #[test]
    fn platform_scales_power_cooling_with_tdp() {
        let p = PlatformModel::dell_r740();
        let at_ref = p.embodied(Power::from_watts(500.0)).as_kg();
        let at_half = p.embodied(Power::from_watts(250.0)).as_kg();
        assert!((at_ref - 385.0).abs() < 1e-9);
        assert!((at_half - 310.0).abs() < 1e-9);
    }

    #[test]
    fn smaller_process_nodes_cost_more_per_area() {
        assert!(ProcessNode::Nm7.kg_per_cm2() > ProcessNode::Nm10.kg_per_cm2());
        assert!(ProcessNode::Nm10.kg_per_cm2() > ProcessNode::Nm14.kg_per_cm2());
        assert!(ProcessNode::Nm14.kg_per_cm2() > ProcessNode::Nm22.kg_per_cm2());
    }

    #[test]
    #[should_panic(expected = "yield")]
    fn zero_yield_is_rejected() {
        let mut cpu = CpuModel::xeon_6240r();
        cpu.fab_yield = 0.0;
        let _ = cpu.embodied();
    }
}
