//! Embodied-carbon amortization (depreciation) schedules.
//!
//! The paper amortizes server embodied carbon *uniformly* over its
//! lifetime before applying Temporal Shapley ("a simple amortization
//! scheme such as uniform amortization"), citing carbon-depreciation
//! models (Ji et al.) as the general setting. This module implements the
//! uniform default plus the two standard depreciation alternatives so
//! the attribution pipeline can be studied under different schedules:
//!
//! * [`Amortization::Uniform`] — equal carbon per second of life;
//! * [`Amortization::StraightLineToSalvage`] — uniform down to a salvage
//!   fraction (hardware resold/recycled with residual value);
//! * [`Amortization::DecliningBalance`] — a constant-rate geometric
//!   schedule: young hardware carries more of its embodied debt, which
//!   front-loads carbon onto early adopters of new silicon.
//!
//! All schedules integrate to the same total (minus salvage), verified by
//! property tests.

use serde::{Deserialize, Serialize};

use crate::units::Carbon;

/// An amortization schedule over a hardware lifetime.
///
/// # Example
///
/// ```
/// use fairco2_carbon::amortization::Amortization;
/// use fairco2_carbon::Carbon;
///
/// let embodied = Carbon::from_kg(588.7);
/// let life = 4.0 * 365.0 * 86_400.0;
/// let month = 30.0 * 86_400.0;
/// // Uniform: every month carries the same share.
/// let uniform = Amortization::Uniform.window(embodied, life, 0.0, month);
/// // Declining balance front-loads: month 1 carries more.
/// let declining = Amortization::DecliningBalance { decline_rate: 1.5 }
///     .window(embodied, life, 0.0, month);
/// assert!(declining.as_kg() > uniform.as_kg());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum Amortization {
    /// Equal share per unit time (the paper's default).
    #[default]
    Uniform,
    /// Uniform down to `salvage_fraction` of the embodied total, which is
    /// never attributed to workloads (it leaves with the hardware).
    StraightLineToSalvage {
        /// Fraction of embodied carbon recovered at end-of-life, `[0, 1)`.
        salvage_fraction: f64,
    },
    /// Geometric decline: the attribution *rate* at age `a` is
    /// proportional to `exp(-decline_rate · a / lifetime)`, normalized so
    /// the lifetime integral equals the embodied total.
    DecliningBalance {
        /// Dimensionless decline aggressiveness (> 0); 1.0 ≈ the classic
        /// "double-declining" feel over a 4-year life.
        decline_rate: f64,
    },
}

impl Amortization {
    /// Carbon attributed over the age window `[from_s, to_s)` of hardware
    /// with the given `embodied` total and `lifetime_s`.
    ///
    /// Windows are clamped to `[0, lifetime_s]`; carbon outside the
    /// lifetime is zero.
    ///
    /// # Panics
    ///
    /// Panics if `lifetime_s` is not positive, the window is reversed, or
    /// schedule parameters are out of range.
    pub fn window(&self, embodied: Carbon, lifetime_s: f64, from_s: f64, to_s: f64) -> Carbon {
        assert!(lifetime_s > 0.0, "lifetime must be positive");
        assert!(from_s <= to_s, "window must not be reversed");
        let a = from_s.clamp(0.0, lifetime_s);
        let b = to_s.clamp(0.0, lifetime_s);
        if a >= b {
            return Carbon::ZERO;
        }
        match *self {
            Amortization::Uniform => embodied * ((b - a) / lifetime_s),
            Amortization::StraightLineToSalvage { salvage_fraction } => {
                assert!(
                    (0.0..1.0).contains(&salvage_fraction),
                    "salvage fraction must be in [0, 1)"
                );
                embodied * (1.0 - salvage_fraction) * ((b - a) / lifetime_s)
            }
            Amortization::DecliningBalance { decline_rate } => {
                assert!(decline_rate > 0.0, "decline rate must be positive");
                // rate(a) = C·k·exp(-k·a/L) / (L·(1 − exp(−k)))
                let k = decline_rate;
                let norm = 1.0 - (-k).exp();
                let f = |x: f64| 1.0 - (-k * x / lifetime_s).exp();
                embodied * ((f(b) - f(a)) / norm)
            }
        }
    }

    /// Instantaneous attribution rate (gCO₂e per second) at hardware age
    /// `age_s`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Amortization::window`].
    pub fn rate_at(&self, embodied: Carbon, lifetime_s: f64, age_s: f64) -> Carbon {
        // Differentiate via a small window; exact for the closed forms
        // within floating tolerance and keeps one source of truth.
        let eps = lifetime_s * 1e-9;
        let lo = age_s.clamp(0.0, lifetime_s - eps);
        self.window(embodied, lifetime_s, lo, lo + eps) * (1.0 / eps)
    }

    /// Total carbon attributed over the whole lifetime (embodied minus
    /// salvage, for every schedule).
    pub fn lifetime_total(&self, embodied: Carbon, lifetime_s: f64) -> Carbon {
        self.window(embodied, lifetime_s, 0.0, lifetime_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIFE: f64 = 4.0 * 365.0 * 86_400.0;

    fn embodied() -> Carbon {
        Carbon::from_kg(588.7)
    }

    #[test]
    fn uniform_window_is_proportional() {
        let month = 30.0 * 86_400.0;
        let c = Amortization::Uniform.window(embodied(), LIFE, 0.0, month);
        let expected = embodied().as_grams() * month / LIFE;
        assert!((c.as_grams() - expected).abs() < 1e-6);
    }

    #[test]
    fn all_schedules_integrate_to_their_lifetime_total() {
        let schedules = [
            Amortization::Uniform,
            Amortization::StraightLineToSalvage {
                salvage_fraction: 0.2,
            },
            Amortization::DecliningBalance { decline_rate: 1.5 },
        ];
        for s in schedules {
            // Sum of 48 monthly windows equals the lifetime total.
            let month = LIFE / 48.0;
            let total: f64 = (0..48)
                .map(|m| {
                    s.window(embodied(), LIFE, m as f64 * month, (m + 1) as f64 * month)
                        .as_grams()
                })
                .sum();
            let lifetime = s.lifetime_total(embodied(), LIFE).as_grams();
            assert!(
                (total - lifetime).abs() < 1e-6 * lifetime,
                "{s:?}: {total} vs {lifetime}"
            );
        }
    }

    #[test]
    fn declining_balance_front_loads() {
        let s = Amortization::DecliningBalance { decline_rate: 1.5 };
        let first_year = s.window(embodied(), LIFE, 0.0, LIFE / 4.0);
        let last_year = s.window(embodied(), LIFE, 3.0 * LIFE / 4.0, LIFE);
        assert!(first_year.as_grams() > 1.5 * last_year.as_grams());
        // Uniform does not.
        let u = Amortization::Uniform;
        let uf = u.window(embodied(), LIFE, 0.0, LIFE / 4.0);
        let ul = u.window(embodied(), LIFE, 3.0 * LIFE / 4.0, LIFE);
        assert!((uf.as_grams() - ul.as_grams()).abs() < 1e-9);
    }

    #[test]
    fn salvage_reduces_attributable_carbon() {
        let s = Amortization::StraightLineToSalvage {
            salvage_fraction: 0.25,
        };
        let total = s.lifetime_total(embodied(), LIFE);
        assert!((total.as_grams() - 0.75 * embodied().as_grams()).abs() < 1e-6);
    }

    #[test]
    fn windows_outside_lifetime_are_zero() {
        let s = Amortization::Uniform;
        assert_eq!(
            s.window(embodied(), LIFE, LIFE, LIFE + 1000.0),
            Carbon::ZERO
        );
        assert_eq!(s.window(embodied(), LIFE, -100.0, 0.0), Carbon::ZERO);
    }

    #[test]
    fn rate_matches_window_derivative() {
        let s = Amortization::DecliningBalance { decline_rate: 1.0 };
        let age = LIFE / 3.0;
        let rate = s.rate_at(embodied(), LIFE, age).as_grams();
        let window = s.window(embodied(), LIFE, age, age + 1.0).as_grams();
        assert!(
            (rate - window).abs() < 1e-3 * window.max(1e-12),
            "{rate} vs {window}"
        );
    }

    #[test]
    #[should_panic(expected = "reversed")]
    fn reversed_window_panics() {
        let _ = Amortization::Uniform.window(embodied(), LIFE, 10.0, 5.0);
    }
}
