//! Service contracts: every published epoch answers billing queries
//! bit-identical to a from-scratch rebuild of the same sample prefix,
//! at any thread count, even while ingestion races the queries; and
//! persisted windows survive a round trip bit for bit.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use fairco2_serve::{
    demand_sample, read_persisted_window, AttributionService, EpochSnapshot, ServiceConfig,
};
use fairco2_shapley::cascade::first_sample_at_or_after;
use fairco2_shapley::temporal::TemporalShapley;
use fairco2_shapley::BillingQuery;
use fairco2_trace::series::TimeSeries;

fn test_config(splits: Vec<usize>, leaf_samples: usize) -> ServiceConfig {
    ServiceConfig {
        start: 1_700_000_000,
        step: 300,
        splits,
        leaf_samples,
        carbon_per_window: 750.0,
        persist_dir: None,
    }
}

/// The independent oracle: rebuilds the full service state for the
/// first `windows` windows from nothing but the raw sample stream —
/// per-window frozen cascade runs composed by the canonical segmented
/// prefix (one left-to-right fold over window totals).
struct Rebuild {
    start: i64,
    step: u32,
    window_samples: usize,
    prefixes: Vec<Vec<f64>>,
    cum_before: Vec<f64>,
}

impl Rebuild {
    fn new(config: &ServiceConfig, windows: u64, seed: u64) -> Self {
        let frozen = TemporalShapley::new(config.splits.clone());
        let w = config.window_samples();
        let mut prefixes = Vec::new();
        let mut cum_before = Vec::new();
        let mut cum = 0.0;
        for k in 0..windows {
            let values: Vec<f64> = (0..w)
                .map(|i| demand_sample(k * w as u64 + i as u64, seed))
                .collect();
            let series = TimeSeries::from_values(
                config.start + k as i64 * w as i64 * i64::from(config.step),
                config.step,
                values,
            )
            .unwrap();
            let attribution = frozen.attribute(&series, config.carbon_per_window).unwrap();
            cum_before.push(cum);
            cum += attribution.carbon_prefix()[w];
            prefixes.push(attribution.carbon_prefix().to_vec());
        }
        Self {
            start: config.start,
            step: config.step,
            window_samples: w,
            prefixes,
            cum_before,
        }
    }

    fn prefix_at(&self, i: usize) -> f64 {
        if self.prefixes.is_empty() {
            return 0.0;
        }
        let w = (i / self.window_samples).min(self.prefixes.len() - 1);
        self.cum_before[w] + self.prefixes[w][i - w * self.window_samples]
    }

    fn carbon(&self, (t0, t1, alloc): BillingQuery) -> f64 {
        let n = self.prefixes.len() * self.window_samples;
        let lo = first_sample_at_or_after(self.start, i64::from(self.step), n, t0);
        let hi = first_sample_at_or_after(self.start, i64::from(self.step), n, t1);
        if hi <= lo {
            return 0.0;
        }
        alloc * (self.prefix_at(hi) - self.prefix_at(lo))
    }
}

/// Deterministic query mix over (roughly) the covered range, including
/// degenerate and far-out-of-range windows.
fn query_mix(config: &ServiceConfig, windows: u64, salt: u64) -> Vec<BillingQuery> {
    let w = config.window_samples() as i64;
    let step = i64::from(config.step);
    let span = windows as i64 * w * step;
    let mut queries = vec![
        (config.start, config.start + span, 1.0),
        (config.start - 10 * step, config.start + 2 * span, 0.5),
        (config.start + span, config.start, 2.0), // inverted
        (config.start + 7, config.start + 7, 1.0), // empty
        (i64::MIN, i64::MAX, 1.5),                // extreme clamp
        (i64::MAX - 3, i64::MAX, 1.0),
    ];
    let mut state = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for _ in 0..64 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let a = config.start + (state % (2 * span.max(1) as u64)) as i64 - span / 4;
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let b = config.start + (state % (2 * span.max(1) as u64)) as i64 - span / 4;
        queries.push((a.min(b), a.max(b), ((state % 8) + 1) as f64 / 2.0));
    }
    queries
}

#[test]
fn every_epoch_matches_a_from_scratch_rebuild_bit_for_bit() {
    let config = test_config(vec![3, 2], 2);
    let w = config.window_samples() as u64;
    let seed = 17;
    let mut service = AttributionService::start(config.clone()).unwrap();
    let handle = service.handle();

    let total_windows = 5u64;
    for i in 0..total_windows * w {
        let published = service.ingest(demand_sample(i, seed)).unwrap();
        if let Some(epoch) = published {
            let snapshot = handle.epoch();
            assert_eq!(snapshot.epoch, epoch);
            let rebuild = Rebuild::new(&config, epoch, seed);
            // The whole prefix table agrees…
            for i in 0..=snapshot.samples() {
                assert_eq!(
                    snapshot.prefix_at(i).to_bits(),
                    rebuild.prefix_at(i).to_bits(),
                    "prefix_at({i}) diverged at epoch {epoch}"
                );
            }
            // …and so does every query in the mix.
            for q in query_mix(&config, epoch, epoch) {
                assert_eq!(
                    snapshot.carbon(q).to_bits(),
                    rebuild.carbon(q).to_bits(),
                    "query {q:?} diverged at epoch {epoch}"
                );
            }
        }
    }
    assert_eq!(handle.epoch().epoch, total_windows);
}

#[test]
fn sharded_batches_are_bit_identical_at_any_thread_count() {
    let config = test_config(vec![4, 3], 2);
    let w = config.window_samples() as u64;
    let seed = 23;
    let mut service = AttributionService::start(config.clone()).unwrap();
    for i in 0..4 * w {
        service.ingest(demand_sample(i, seed)).unwrap();
    }
    let handle = service.handle();
    let epoch = handle.epoch();
    let queries = query_mix(&config, 4, 99);

    let mut sequential = Vec::new();
    epoch.carbon_batch_into(&queries, &mut sequential);
    for threads in [1, 2, 3, 8, 64] {
        let sharded = epoch.carbon_batch_sharded(&queries, threads);
        assert_eq!(sharded.len(), sequential.len());
        for (i, (s, r)) in sharded.iter().zip(&sequential).enumerate() {
            assert_eq!(
                s.to_bits(),
                r.to_bits(),
                "query {i} diverged at {threads} threads"
            );
        }
    }
    assert!(epoch.carbon_batch_sharded(&[], 4).is_empty());
}

/// The concurrency pin: tenants query *while* the writer ingests, every
/// answer is recorded with the epoch that produced it, and afterwards
/// each recorded `(epoch, query, answer)` triple is re-derived from a
/// frozen-trace rebuild of exactly that epoch's prefix. If a reader
/// ever saw a half-published epoch, some triple would fail to
/// reproduce.
#[test]
fn concurrent_queries_always_match_their_epochs_rebuild() {
    let config = test_config(vec![2, 2], 2);
    let w = config.window_samples() as u64;
    let seed = 41;
    let total_windows = 24u64;
    let mut service = AttributionService::start(config.clone()).unwrap();
    let handle = service.handle();

    let stop = AtomicBool::new(false);
    let answered = std::sync::atomic::AtomicU64::new(0);
    let observed: Mutex<Vec<(u64, BillingQuery, u64)>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for tenant in 0..3u64 {
            let handle = handle.clone();
            let stop = &stop;
            let answered = &answered;
            let observed = &observed;
            let config = &config;
            scope.spawn(move || {
                let mut salt = tenant;
                let mut local = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let epoch = handle.epoch();
                    let windows = epoch.epoch;
                    salt += 1;
                    for q in query_mix(config, windows.max(1), salt) {
                        local.push((windows, q, epoch.carbon(q).to_bits()));
                    }
                    answered.fetch_add(1, Ordering::Relaxed);
                }
                observed.lock().unwrap().extend(local);
            });
        }
        // Interleave: a short pause per window lets tenants observe many
        // different epochs even on one CPU.
        for k in 0..total_windows {
            for i in 0..w {
                service.ingest(demand_sample(k * w + i, seed)).unwrap();
            }
            std::thread::sleep(std::time::Duration::from_micros(500));
        }
        // Keep serving until every tenant has answered a few rounds (a
        // 5 s ceiling stops a pathological scheduler from hanging CI).
        let waited = std::time::Instant::now();
        while answered.load(Ordering::Relaxed) < 24
            && waited.elapsed() < std::time::Duration::from_secs(5)
        {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        stop.store(true, Ordering::Relaxed);
    });

    let observed = observed.lock().unwrap();
    assert!(
        !observed.is_empty(),
        "tenants answered no queries during ingestion"
    );
    // Post-hoc audit: rebuild each observed epoch once, re-derive every
    // recorded answer.
    let max_epoch = observed.iter().map(|(e, _, _)| *e).max().unwrap();
    let rebuilds: Vec<Rebuild> = (0..=max_epoch)
        .map(|e| Rebuild::new(&config, e, seed))
        .collect();
    for (epoch, query, answer) in observed.iter() {
        assert_eq!(
            *answer,
            rebuilds[*epoch as usize].carbon(*query).to_bits(),
            "epoch {epoch} query {query:?} did not reproduce"
        );
    }
}

#[test]
fn persisted_windows_round_trip_bit_for_bit() {
    let dir = std::env::temp_dir().join(format!("fairco2-serve-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServiceConfig {
        persist_dir: Some(dir.clone()),
        ..test_config(vec![2], 3)
    };
    let w = config.window_samples() as u64;
    let seed = 7;
    let mut service = AttributionService::start(config.clone()).unwrap();
    for i in 0..3 * w {
        service.ingest(demand_sample(i, seed)).unwrap();
    }
    let handle = service.handle();
    let epoch = handle.epoch();
    assert_eq!(epoch.epoch, 3);
    for (k, segment) in epoch.windows.iter().enumerate() {
        let path = dir.join(format!("window-{k:08}.json"));
        let restored =
            read_persisted_window(&path).unwrap_or_else(|e| panic!("window {k} unreadable: {e}"));
        assert_eq!(
            restored.total_carbon.to_bits(),
            segment.attribution.total_carbon.to_bits()
        );
        assert_eq!(
            restored.stranded_carbon.to_bits(),
            segment.attribution.stranded_carbon.to_bits()
        );
        assert_eq!(
            restored.carbon_prefix.len(),
            segment.attribution.carbon_prefix.len()
        );
        for (a, b) in restored
            .carbon_prefix
            .iter()
            .zip(&segment.attribution.carbon_prefix)
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in restored
            .leaf_intensity
            .iter()
            .zip(&segment.attribution.leaf_intensity)
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
    // No torn temporaries left behind.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| !n.ends_with(".json"))
        .collect();
    assert!(leftovers.is_empty(), "stray files: {leftovers:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_epoch_answers_zero_everywhere() {
    let config = test_config(vec![2], 2);
    let service = AttributionService::start(config.clone()).unwrap();
    let handle = service.handle();
    let epoch: &EpochSnapshot = handle.epoch();
    assert_eq!(epoch.epoch, 0);
    assert_eq!(epoch.samples(), 0);
    for q in query_mix(&config, 1, 5) {
        assert_eq!(epoch.carbon(q), 0.0);
    }
}
