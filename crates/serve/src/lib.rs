//! The always-on attribution service (`fairco2-serve`).
//!
//! Fair-CO2's attribution outputs are billing artifacts: tenants query
//! "how much carbon is my reservation responsible for over `[t0, t1)`?"
//! continuously, while 5-minute demand samples keep arriving. This
//! crate turns the frozen Temporal Shapley cascade into a service:
//!
//! * [`service`] — the single-writer [`AttributionService`]: samples
//!   stream into the [`IncrementalCascade`](fairco2_shapley::incremental)
//!   at amortized `O(log n)` per sample; every closed window publishes
//!   an immutable epoch snapshot via one atomic pointer swap, so
//!   readers never take a lock. Closed windows are optionally persisted
//!   through the checkpoint layer's durable-write helper (tmp + fsync +
//!   rename + parent-directory fsync).
//! * [`epoch`] — the read side: [`EpochSnapshot`] answers billing
//!   queries over a segmented carbon prefix, bit-identical to a
//!   from-scratch rebuild of the same windows at any thread count;
//!   batches shard over `run_parallel` worker threads with an in-order
//!   merge.
//! * [`load`] — the deterministic ingest + query load harness behind
//!   the `serve` binary and `perf_report --section service`.
//!
//! This crate deliberately does *not* carry
//! `#![forbid(unsafe_code)]` like the solver crates: the lock-free
//! reader needs exactly one audited `unsafe` dereference
//! ([`ServiceHandle::epoch`]), made sound by never freeing published
//! epochs while the service is alive.
//!
//! # Example
//!
//! ```
//! use fairco2_serve::{AttributionService, ServiceConfig};
//!
//! let config = ServiceConfig { splits: vec![2], leaf_samples: 2, ..Default::default() };
//! let mut service = AttributionService::start(config).unwrap();
//! let handle = service.handle();
//! assert_eq!(handle.epoch().epoch, 0); // empty epoch exists at startup
//! for i in 0..4 {
//!     service.ingest(1.0 + i as f64).unwrap();
//! }
//! let epoch = handle.epoch();
//! assert_eq!(epoch.epoch, 1);
//! // A tenant holding 1 unit for the whole window:
//! let billed = epoch.carbon((0, 4 * 300, 1.0));
//! assert!(billed > 0.0);
//! ```

#![warn(missing_docs)]

pub mod epoch;
pub mod load;
pub mod service;

pub use epoch::{EpochSnapshot, WindowSegment};
pub use load::{demand_sample, run_load, LoadOptions, LoadReport};
pub use service::{
    read_persisted_window, AttributionService, ServeError, ServiceConfig, ServiceHandle,
};
