//! Immutable epoch snapshots: the read side of the service.
//!
//! Every closed attribution window advances the service by one *epoch*.
//! An [`EpochSnapshot`] is a frozen view of all windows closed so far —
//! readers query it without any lock, and its answers never change: the
//! same query against the same epoch returns the same bits forever,
//! which is what makes concurrent answers auditable after the fact.
//!
//! The per-window attributions are shared via [`Arc`] (publishing epoch
//! `k + 1` clones `k` pointers, not `k` prefix arrays), and the
//! cross-window carbon prefix is *segmented*: each window keeps its own
//! prefix exactly as the frozen cascade produced it, plus a
//! `cum_before` offset fixed at close time by one left-to-right fold
//! over window totals. Queries therefore decompose into per-window
//! charges combined by a deterministic rule — bit-identical to a
//! from-scratch rebuild of the same windows, at any thread count.

use std::sync::Arc;

use fairco2_shapley::cascade::first_sample_at_or_after;
use fairco2_shapley::incremental::WindowAttribution;
use fairco2_shapley::{run_parallel, BillingQuery};

/// One closed window inside an epoch: the frozen attribution plus the
/// segmented-prefix offset of everything before it.
#[derive(Debug, Clone)]
pub struct WindowSegment {
    /// The window's finalized attribution, shared across every epoch
    /// that includes it.
    pub attribution: Arc<WindowAttribution>,
    /// Value of the service-wide carbon prefix at this window's first
    /// sample: the sum of all earlier windows' full-window charges,
    /// folded left to right in window order.
    pub cum_before: f64,
}

/// An immutable, lock-free view of every window the service had closed
/// when this epoch was published.
#[derive(Debug)]
pub struct EpochSnapshot {
    /// Epoch number: how many windows this snapshot contains.
    pub epoch: u64,
    /// Unix timestamp (seconds) of the service's first sample.
    pub start: i64,
    /// Sampling step in seconds.
    pub step: u32,
    /// Samples per window.
    pub window_samples: usize,
    /// The closed windows, oldest first.
    pub windows: Vec<WindowSegment>,
}

impl EpochSnapshot {
    /// Attributed samples covered by this epoch
    /// (`windows · window_samples`).
    pub fn samples(&self) -> usize {
        self.windows.len() * self.window_samples
    }

    /// The service-wide carbon prefix at sample index `i`
    /// (`0 ..= samples()`): the segment's `cum_before` plus its own
    /// frozen prefix — the canonical segmented-prefix rule every
    /// rebuild must reproduce bit for bit.
    pub fn prefix_at(&self, i: usize) -> f64 {
        if self.windows.is_empty() {
            return 0.0;
        }
        let w = (i / self.window_samples).min(self.windows.len() - 1);
        let seg = &self.windows[w];
        seg.cum_before + seg.attribution.carbon_prefix[i - w * self.window_samples]
    }

    /// Carbon attributed to a tenant holding `alloc` resource units over
    /// `[t0, t1)` — zero for empty, inverted, or out-of-range windows;
    /// endpoints anywhere in `i64` are clamped, never wrapped.
    pub fn carbon(&self, query: BillingQuery) -> f64 {
        let (t0, t1, alloc) = query;
        let n = self.samples();
        let lo = first_sample_at_or_after(self.start, i64::from(self.step), n, t0);
        let hi = first_sample_at_or_after(self.start, i64::from(self.step), n, t1);
        if hi <= lo {
            return 0.0;
        }
        alloc * (self.prefix_at(hi) - self.prefix_at(lo))
    }

    /// Answers a batch in order, appending to `out`.
    pub fn carbon_batch_into(&self, queries: &[BillingQuery], out: &mut Vec<f64>) {
        out.extend(queries.iter().map(|&q| self.carbon(q)));
    }

    /// Answers a batch sharded over `threads` worker threads with an
    /// in-order merge. Each query is independent, so the answers are
    /// bit-identical to [`EpochSnapshot::carbon_batch_into`] at any
    /// thread count.
    pub fn carbon_batch_sharded(&self, queries: &[BillingQuery], threads: usize) -> Vec<f64> {
        if queries.is_empty() {
            return Vec::new();
        }
        let threads = threads.clamp(1, queries.len());
        let chunk_len = queries.len().div_ceil(threads);
        let chunks: Vec<&[BillingQuery]> = queries.chunks(chunk_len).collect();
        let per_chunk = run_parallel(chunks.len(), threads, |c| {
            let mut out = Vec::with_capacity(chunks[c].len());
            self.carbon_batch_into(chunks[c], &mut out);
            out
        });
        per_chunk.into_iter().flatten().collect()
    }
}

/// Builds the next epoch from the previous one plus a freshly closed
/// window: shares every existing segment's attribution by pointer and
/// extends the segmented prefix by one left-to-right fold step.
pub(crate) fn extend_epoch(prev: &EpochSnapshot, window: WindowAttribution) -> EpochSnapshot {
    let mut windows = prev.windows.clone();
    let cum_before = match windows.last() {
        Some(seg) => seg.cum_before + seg.attribution.carbon_prefix[prev.window_samples],
        None => 0.0,
    };
    windows.push(WindowSegment {
        attribution: Arc::new(window),
        cum_before,
    });
    EpochSnapshot {
        epoch: prev.epoch + 1,
        start: prev.start,
        step: prev.step,
        window_samples: prev.window_samples,
        windows,
    }
}
