//! A deterministic-demand load harness: one ingest thread racing tenant
//! query threads against live epoch publication. Shared by the `serve`
//! binary and `perf_report --section service` so the smoke test and the
//! benchmark exercise the same code path.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use fairco2_shapley::BillingQuery;

use crate::service::{AttributionService, ServeError, ServiceConfig};

/// Deterministic synthetic demand for sample `global_index`: quantized
/// to eighths (so peak ties occur, the hard case for max folds) and a
/// pure function of the index, so any recorded answer can be re-derived
/// later by replaying the same prefix.
pub fn demand_sample(global_index: u64, seed: u64) -> f64 {
    let mut x = global_index
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(seed);
    x ^= x >> 29;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 32;
    ((x >> 16) % 16) as f64 / 8.0
}

/// SplitMix64 — the workers' query generator.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Load-run knobs.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Wall-clock run length in milliseconds.
    pub duration_ms: u64,
    /// Concurrent tenant query threads.
    pub tenants: usize,
    /// Billing queries per batch.
    pub batch: usize,
    /// Ingestion stops after this many windows (the query side keeps
    /// running); bounds snapshot memory on unthrottled CPUs.
    pub max_windows: u64,
    /// Demand / query randomness seed.
    pub seed: u64,
}

impl Default for LoadOptions {
    fn default() -> Self {
        Self {
            duration_ms: 2_000,
            tenants: 2,
            batch: 256,
            max_windows: 256,
            seed: 0x5EED,
        }
    }
}

/// What a load run did — the numbers behind `BENCH_service.json`.
#[derive(Debug, Clone, serde::Serialize)]
pub struct LoadReport {
    /// Samples ingested.
    pub ingested_samples: u64,
    /// Windows closed == epochs published past epoch 0.
    pub windows_closed: u64,
    /// Billing queries answered across all tenants.
    pub queries_answered: u64,
    /// Query batches answered.
    pub batches_answered: u64,
    /// Wall-clock seconds the run took.
    pub elapsed_secs: f64,
    /// Sustained queries per second across all tenants.
    pub queries_per_sec: f64,
    /// 99th-percentile per-batch latency, microseconds.
    pub p99_batch_latency_us: f64,
    /// Engine primitive operations per ingested sample (the amortized
    /// O(log n) gauge, independent of machine speed).
    pub ops_per_sample: f64,
    /// Final epoch number.
    pub final_epoch: u64,
}

/// Runs `service` under concurrent ingest + query load and reports
/// sustained throughput.
///
/// One writer thread ingests [`demand_sample`] values flat out (until
/// `max_windows`, then idles to the deadline); `tenants` reader threads
/// each loop: grab the latest epoch, generate a batch of random billing
/// queries over its covered range, answer them, record the batch
/// latency.
///
/// # Errors
///
/// Propagates [`ServeError`] from service startup or window
/// persistence.
///
/// # Panics
///
/// Panics if a worker thread panics.
pub fn run_load(config: ServiceConfig, opts: &LoadOptions) -> Result<LoadReport, ServeError> {
    let mut service = AttributionService::start(config.clone())?;
    let handle = service.handle();
    let stop = AtomicBool::new(false);
    let queries = AtomicU64::new(0);
    let batches = AtomicU64::new(0);
    let started = Instant::now();
    let deadline_ms = opts.duration_ms;

    let mut ingest_error: Option<ServeError> = None;
    let mut latencies: Vec<Vec<f64>> = Vec::new();
    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for tenant in 0..opts.tenants {
            let handle = handle.clone();
            let stop = &stop;
            let queries = &queries;
            let batches = &batches;
            workers.push(scope.spawn(move || {
                let mut rng = opts.seed ^ (0xA11CE ^ tenant as u64).wrapping_mul(0x1_0000_001B);
                let mut lat = Vec::new();
                let mut out = Vec::with_capacity(opts.batch);
                let mut batch = Vec::with_capacity(opts.batch);
                while !stop.load(Ordering::Relaxed) {
                    let epoch = handle.epoch();
                    let span = (epoch.samples() as u64 + 1) * u64::from(epoch.step);
                    batch.clear();
                    for _ in 0..opts.batch {
                        let a = epoch.start + (splitmix(&mut rng) % span) as i64;
                        let b = epoch.start + (splitmix(&mut rng) % span) as i64;
                        let alloc = (splitmix(&mut rng) % 8 + 1) as f64 / 2.0;
                        let query: BillingQuery = (a.min(b), a.max(b), alloc);
                        batch.push(query);
                    }
                    out.clear();
                    let t0 = Instant::now();
                    epoch.carbon_batch_into(&batch, &mut out);
                    lat.push(t0.elapsed().as_secs_f64() * 1e6);
                    queries.fetch_add(opts.batch as u64, Ordering::Relaxed);
                    batches.fetch_add(1, Ordering::Relaxed);
                }
                lat
            }));
        }

        // The writer: this thread. Flat-out ingest, then idle-wait.
        let mut global: u64 = 0;
        loop {
            let elapsed = started.elapsed().as_millis() as u64;
            if elapsed >= deadline_ms {
                break;
            }
            if service.windows_closed() >= opts.max_windows {
                std::thread::sleep(std::time::Duration::from_millis(
                    (deadline_ms - elapsed).min(5),
                ));
                continue;
            }
            match service.ingest(demand_sample(global, opts.seed)) {
                Ok(_) => global += 1,
                Err(e) => {
                    ingest_error = Some(e);
                    break;
                }
            }
        }
        stop.store(true, Ordering::Relaxed);
        for w in workers {
            latencies.push(w.join().expect("tenant thread panicked"));
        }
    });
    if let Some(e) = ingest_error {
        return Err(e);
    }

    let elapsed = started.elapsed().as_secs_f64();
    let mut all: Vec<f64> = latencies.into_iter().flatten().collect();
    all.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let p99 = if all.is_empty() {
        0.0
    } else {
        all[((all.len() as f64 * 0.99).ceil() as usize).clamp(1, all.len()) - 1]
    };
    let ingested = handle.ingested();
    let answered = queries.load(Ordering::Relaxed);
    Ok(LoadReport {
        ingested_samples: ingested,
        windows_closed: service.windows_closed(),
        queries_answered: answered,
        batches_answered: batches.load(Ordering::Relaxed),
        elapsed_secs: elapsed,
        queries_per_sec: answered as f64 / elapsed.max(1e-9),
        p99_batch_latency_us: p99,
        ops_per_sample: service.engine_ops() as f64 / (ingested as f64).max(1.0),
        final_epoch: service.windows_closed(),
    })
}
