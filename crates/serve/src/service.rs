//! The always-on service: single-writer ingestion, lock-free readers.
//!
//! One writer owns the [`IncrementalCascade`] and pushes 5-minute demand
//! samples as they arrive; any number of reader threads hold cloned
//! [`ServiceHandle`]s and query concurrently. The two sides meet at a
//! single `AtomicPtr` holding the latest [`EpochSnapshot`]:
//!
//! * **Publish** (writer, once per closed window): build the next
//!   snapshot off to the side, move it into the epoch arena (a `Mutex`
//!   the writer alone locks), then `store(Release)` the pointer. The
//!   heap allocation does not move when the owning `Box` does, so the
//!   pointer stays valid.
//! * **Read** (any thread, every query): `load(Acquire)` and
//!   dereference. No lock, no reference count traffic, no retry loop —
//!   the `Release`/`Acquire` pair makes every write that built the
//!   snapshot visible.
//!
//! Snapshots are retained for the service's lifetime (the arena only
//! grows), so a reader can never observe a freed epoch: that retention
//! is what makes the single unsafe dereference in
//! [`ServiceHandle::epoch`] sound, and it doubles as the audit trail —
//! any recorded `(epoch, query, answer)` triple can be re-checked later
//! against the exact snapshot that produced it.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use fairco2_montecarlo::{write_durable_atomic, CheckpointError, WriteFault};
use fairco2_shapley::incremental::{IncrementalCascade, WindowAttribution};
use fairco2_trace::series::SeriesError;

use crate::epoch::{extend_epoch, EpochSnapshot};

/// Static configuration of an attribution service.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Unix timestamp (seconds) of the first sample.
    pub start: i64,
    /// Sampling step in seconds (the paper's grids use 300).
    pub step: u32,
    /// Hierarchy split ratios, coarsest first.
    pub splits: Vec<usize>,
    /// Samples per finest-level period; the window is
    /// `leaf_samples · Π splits` samples.
    pub leaf_samples: usize,
    /// Carbon attributed to each closed window (gCO₂e). A production
    /// deployment would meter this per window; the service treats it as
    /// an input.
    pub carbon_per_window: f64,
    /// When set, every closed window is persisted to
    /// `dir/window-<index>.json` with the checkpoint layer's durable
    /// write helper (tmp + fsync + rename + parent-directory fsync).
    pub persist_dir: Option<PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            start: 0,
            step: 300,
            splits: vec![4, 3],
            leaf_samples: 4,
            carbon_per_window: 1000.0,
            persist_dir: None,
        }
    }
}

impl ServiceConfig {
    /// Samples per attribution window.
    pub fn window_samples(&self) -> usize {
        self.splits
            .iter()
            .fold(self.leaf_samples, |acc, &m| acc.saturating_mul(m))
    }
}

/// Everything that can go wrong running the service.
#[derive(Debug)]
pub enum ServeError {
    /// The configured hierarchy or grid is degenerate.
    Config(SeriesError),
    /// Persisting a closed window failed.
    Persist(CheckpointError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config(e) => write!(f, "invalid service config: {e}"),
            ServeError::Persist(e) => write!(f, "window persistence failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CheckpointError> for ServeError {
    fn from(e: CheckpointError) -> Self {
        ServeError::Persist(e)
    }
}

/// State shared between the writer and every reader handle.
struct Shared {
    /// The latest published epoch; never null (epoch 0 is published at
    /// construction) and always points into `epochs`.
    latest: AtomicPtr<EpochSnapshot>,
    /// The epoch arena: owns every snapshot ever published, in order.
    /// Only the writer locks it; it only grows, so pointers handed to
    /// `latest` stay valid for the service's lifetime. The boxes are
    /// load-bearing: the vec may reallocate, the snapshots must not move.
    #[allow(clippy::vec_box)]
    epochs: Mutex<Vec<Box<EpochSnapshot>>>,
    /// Total samples ingested (monitoring).
    ingested: AtomicU64,
}

/// The always-on attribution service (the single writer).
pub struct AttributionService {
    config: ServiceConfig,
    engine: IncrementalCascade,
    shared: Arc<Shared>,
}

/// A cheaply cloneable reader handle; queries never lock.
#[derive(Clone)]
pub struct ServiceHandle {
    shared: Arc<Shared>,
}

impl AttributionService {
    /// Starts a service: validates the hierarchy, publishes the empty
    /// epoch 0, and creates the persistence directory if configured.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for a degenerate hierarchy or step;
    /// [`ServeError::Persist`] if the persistence directory cannot be
    /// created.
    pub fn start(config: ServiceConfig) -> Result<Self, ServeError> {
        let engine = IncrementalCascade::new(&config.splits, config.leaf_samples, config.step)
            .map_err(ServeError::Config)?;
        if let Some(dir) = &config.persist_dir {
            fs::create_dir_all(dir)
                .map_err(|e| CheckpointError::Io(format!("create {}: {e}", dir.display())))?;
        }
        let zero = Box::new(EpochSnapshot {
            epoch: 0,
            start: config.start,
            step: config.step,
            window_samples: engine.window_samples(),
            windows: Vec::new(),
        });
        let ptr: *const EpochSnapshot = &*zero;
        let shared = Arc::new(Shared {
            latest: AtomicPtr::new(ptr.cast_mut()),
            epochs: Mutex::new(vec![zero]),
            ingested: AtomicU64::new(0),
        });
        Ok(Self {
            config,
            engine,
            shared,
        })
    }

    /// A reader handle; clone one per tenant thread.
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Ingests one demand sample. When the sample fills the current
    /// window, the window is closed, optionally persisted, and a new
    /// epoch is published; the new epoch number is returned.
    ///
    /// # Errors
    ///
    /// [`ServeError::Persist`] if the configured durable write fails —
    /// the window is *not* published in that case (at-least-once
    /// persistence: nothing is queryable that is not on disk).
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or non-finite (see
    /// [`IncrementalCascade::push`]).
    pub fn ingest(&mut self, value: f64) -> Result<Option<u64>, ServeError> {
        let closed = self.engine.push(value);
        self.shared.ingested.fetch_add(1, Ordering::Relaxed);
        if !closed {
            return Ok(None);
        }
        let window_index = self.engine.windows_closed();
        let window = self.engine.close_window(self.config.carbon_per_window);
        if let Some(dir) = &self.config.persist_dir {
            let text = serde_json::to_string(&window).expect("window attributions serialize");
            let path = dir.join(format!("window-{window_index:08}.json"));
            write_durable_atomic(&path, &text, WriteFault::None)?;
        }
        Ok(Some(self.publish(window)))
    }

    /// Builds the next snapshot from the latest one plus the freshly
    /// closed window, moves it into the arena, and releases the pointer.
    fn publish(&self, window: WindowAttribution) -> u64 {
        let mut epochs = self.shared.epochs.lock().expect("epoch arena poisoned");
        let prev = epochs.last().expect("epoch 0 exists from construction");
        let next = Box::new(extend_epoch(prev, window));
        let epoch = next.epoch;
        let ptr: *const EpochSnapshot = &*next;
        epochs.push(next);
        // Release: pairs with the Acquire load in `ServiceHandle::epoch`
        // so readers see the fully built snapshot.
        self.shared.latest.store(ptr.cast_mut(), Ordering::Release);
        epoch
    }

    /// Samples ingested into the open window so far.
    pub fn open_window_fill(&self) -> usize {
        self.engine.filled()
    }

    /// Windows closed (== the latest epoch number).
    pub fn windows_closed(&self) -> u64 {
        self.engine.windows_closed()
    }

    /// The streaming engine's primitive-operation counter (the
    /// amortized-O(log n) pin; see [`IncrementalCascade::ops`]).
    pub fn engine_ops(&self) -> u64 {
        self.engine.ops()
    }

    /// Service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }
}

impl ServiceHandle {
    /// The latest published epoch. Lock-free: one `Acquire` load and a
    /// dereference.
    pub fn epoch(&self) -> &EpochSnapshot {
        let ptr = self.shared.latest.load(Ordering::Acquire);
        // SAFETY: `ptr` was produced from a `Box<EpochSnapshot>` that
        // was moved into the epoch arena before the `Release` store
        // (heap contents do not move with the box), the arena only ever
        // grows, and it lives inside `Shared`, which outlives this
        // handle's `Arc`. The returned borrow is tied to `&self`, which
        // keeps the `Arc` — and therefore the snapshot — alive. The
        // `Acquire`/`Release` pair orders the snapshot's construction
        // before any read through this reference. Snapshots are never
        // mutated after publication, so shared `&` access is race-free.
        unsafe { &*ptr }
    }

    /// Total samples ingested by the writer (monitoring; `Relaxed` — a
    /// freshness gauge, not a synchronization edge).
    pub fn ingested(&self) -> u64 {
        self.shared.ingested.load(Ordering::Relaxed)
    }
}

/// Reads back one persisted window attribution (the service's durable
/// unit), as written by [`AttributionService::ingest`].
///
/// # Errors
///
/// [`ServeError::Persist`] if the file is unreadable or malformed.
pub fn read_persisted_window(path: &std::path::Path) -> Result<WindowAttribution, ServeError> {
    let text = fs::read_to_string(path)
        .map_err(|e| CheckpointError::Io(format!("read {}: {e}", path.display())))?;
    let window: WindowAttribution =
        serde_json::from_str(&text).map_err(|e| CheckpointError::Malformed(e.0))?;
    Ok(window)
}
