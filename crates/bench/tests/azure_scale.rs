//! Kill/resume and fault-containment pins for the Azure-scale
//! co-simulation at a reduced (~20k-VM) size: a run interrupted by the
//! deterministic kill failpoint and resumed from its snapshot must
//! reproduce the uninterrupted report bit for bit, torn checkpoint
//! writes must never corrupt the previous snapshot, and mid-batch
//! panics must be retried without changing a single bit.

use std::path::PathBuf;

use fairco2_bench::scale::{run_azure_scale, scale_fingerprint, ScaleSnapshot};
use fairco2_bench::AzureScaleStudy;
use fairco2_montecarlo::{
    CheckpointSpec, EngineConfig, EngineError, FaultKind, FaultPlan, StudyOptions, TrialFault,
};

const BATCH: usize = 360;

fn study() -> AzureScaleStudy {
    AzureScaleStudy {
        vms: 20_000,
        days: 2,
        regions: 2,
        tenants: 6,
        seed: 7,
        ..AzureScaleStudy::default()
    }
}

fn config(threads: usize) -> EngineConfig {
    EngineConfig {
        threads,
        batch_trials: BATCH,
        collect_trials: false,
    }
}

fn tmp(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("fairco2-{name}-{}.ckpt", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// The scientific payload, without the engine counters (which carry the
/// thread count and reorder depth).
fn payload(report: &fairco2_bench::AzureScaleReport) -> String {
    format!(
        "{}|{}|{}",
        report.vms,
        serde_json::to_string(&report.scenarios).unwrap(),
        serde_json::to_string(&report.tenant_rows).unwrap()
    )
}

#[test]
fn killed_run_resumes_bit_identically() {
    let study = study();
    let reference = run_azure_scale(&study, config(2), &StudyOptions::default())
        .expect("fault-free run completes");
    let path = tmp("azure-kill");
    let killed = run_azure_scale(
        &study,
        config(2),
        &StudyOptions {
            checkpoint: Some(CheckpointSpec::new(&path, 1)),
            faults: FaultPlan {
                kill_after_writes: Some(3),
                ..FaultPlan::default()
            },
            ..StudyOptions::default()
        },
    );
    assert!(
        matches!(killed, Err(EngineError::Killed { writes: 3 })),
        "kill plan must stop the run: {killed:?}"
    );
    // The snapshot on disk validates against this exact study config.
    let fingerprint = scale_fingerprint(&study, BATCH);
    let snap = ScaleSnapshot::load(&path, &fingerprint).expect("snapshot validates");
    assert!(snap.frontier >= 3, "three merges were checkpointed");
    let resumed = run_azure_scale(
        &study,
        config(2),
        &StudyOptions {
            checkpoint: Some(CheckpointSpec::new(&path, 1)),
            resume: true,
            ..StudyOptions::default()
        },
    )
    .expect("resume completes the study");
    assert_eq!(
        payload(&resumed),
        payload(&reference),
        "killed-then-resumed run must reproduce the uninterrupted report"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn torn_checkpoint_write_leaves_the_previous_snapshot_intact() {
    let study = study();
    let reference = run_azure_scale(&study, config(1), &StudyOptions::default())
        .expect("fault-free run completes");
    let path = tmp("azure-torn");
    let torn = run_azure_scale(
        &study,
        config(1),
        &StudyOptions {
            checkpoint: Some(CheckpointSpec::new(&path, 1)),
            faults: FaultPlan {
                checkpoint_writes: vec![2],
                ..FaultPlan::default()
            },
            ..StudyOptions::default()
        },
    );
    assert!(
        matches!(torn, Err(EngineError::Checkpoint(_))),
        "torn write must surface as a checkpoint error: {torn:?}"
    );
    // The atomic rename protocol guarantees the prior snapshot survived
    // the torn attempt, so resuming from it completes bit-identically.
    let fingerprint = scale_fingerprint(&study, BATCH);
    ScaleSnapshot::load(&path, &fingerprint).expect("previous snapshot is intact");
    let resumed = run_azure_scale(
        &study,
        config(1),
        &StudyOptions {
            checkpoint: Some(CheckpointSpec::new(&path, 1)),
            resume: true,
            ..StudyOptions::default()
        },
    )
    .expect("resume completes the study");
    assert_eq!(payload(&resumed), payload(&reference));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn mid_batch_panics_are_retried_without_changing_bits() {
    let study = study();
    let reference = run_azure_scale(&study, config(2), &StudyOptions::default())
        .expect("fault-free run completes");
    let faulted = run_azure_scale(
        &study,
        config(2),
        &StudyOptions {
            retry_budget: 2,
            faults: FaultPlan {
                trials: vec![TrialFault {
                    trial: BATCH + 17,
                    kind: FaultKind::Panic,
                    times: 1,
                }],
                ..FaultPlan::default()
            },
            ..StudyOptions::default()
        },
    )
    .expect("retry budget absorbs the panic");
    assert_eq!(faulted.engine.retries, 1, "the panic was retried once");
    assert_eq!(payload(&faulted), payload(&reference));
}
