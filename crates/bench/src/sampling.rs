//! Shared sampled-Shapley instrumentation for the experiment binaries.
//!
//! The Monte Carlo figure bins (`convergence`, `fig7`, `fig8`) each attach
//! an instrumented [`parallel_sampled_shapley`] run to their JSON output:
//! the convergence trace (standard error versus permutation count), the
//! work counters, and the final estimate quality on a representative
//! peak-demand game. This module builds that report and renders it for
//! the terminal.

use fairco2::schedule::Schedule;
use fairco2_shapley::game::PeakDemandGame;
use fairco2_shapley::{
    parallel_sampled_shapley, ConvergenceTrace, EvalCounters, ParallelConfig, SampleConfig,
};
use serde::Serialize;

/// JSON-serializable record of one instrumented sampling run.
#[derive(Debug, Clone, Serialize)]
pub struct SamplingReport {
    /// Players in the sampled game (workloads in the schedule).
    pub players: usize,
    /// Worker threads used (results are thread-count invariant).
    pub threads: usize,
    /// Permutations actually drawn before the stopping rule fired.
    pub permutations: usize,
    /// Largest per-player pair-aware standard error at the end.
    pub max_std_error: f64,
    /// Work performed: coalition evaluations, marginal updates, batches,
    /// and summed per-batch busy time.
    pub counters: EvalCounters,
    /// Fraction of coalition lookups served by the per-batch
    /// [`CoalitionCache`](fairco2_shapley::CoalitionCache) (0 when the
    /// cache saw no lookups).
    pub cache_hit_rate: f64,
    /// Standard error versus permutation count, one point per round.
    pub trace: ConvergenceTrace,
}

/// Runs the parallel sampling engine on `schedule`'s peak-demand game and
/// packages the instrumentation.
pub fn sample_schedule(
    schedule: &Schedule,
    max_permutations: usize,
    threads: usize,
    seed: u64,
) -> SamplingReport {
    let game = PeakDemandGame::new(schedule.demand_matrix());
    let config = ParallelConfig {
        sample: SampleConfig {
            max_permutations,
            ..SampleConfig::default()
        },
        threads,
        // Schedules cap at 64 workloads well before sampling becomes
        // attractive, so every figure bin can afford the memo table.
        coalition_cache: true,
        ..ParallelConfig::default()
    };
    let run = parallel_sampled_shapley(&game, &config, seed);
    SamplingReport {
        players: schedule.workloads().len(),
        threads,
        permutations: run.estimate.permutations,
        max_std_error: run.estimate.max_std_error(),
        cache_hit_rate: run.estimate.counters.cache_hit_rate(),
        counters: run.estimate.counters,
        trace: run.trace,
    }
}

/// Prints the report as a small convergence table.
pub fn print_report(report: &SamplingReport) {
    println!(
        "\nsampled Shapley convergence ({} players, {} threads):",
        report.players, report.threads
    );
    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>10}",
        "perms", "samples", "max stderr", "evals", "elapsed"
    );
    for p in &report.trace.points {
        println!(
            "{:>8} {:>8} {:>12.6} {:>12} {:>9.3}s",
            p.permutations, p.samples, p.max_std_error, p.coalition_evals, p.elapsed_secs
        );
    }
    println!(
        "final: {} permutations, max stderr {:.6}, {} coalition evals in {} batches ({:.3}s busy)",
        report.permutations,
        report.max_std_error,
        report.counters.coalition_evals,
        report.counters.batches,
        report.counters.wall_time_secs
    );
    if report.counters.cache_hits + report.counters.cache_misses > 0 {
        println!(
            "coalition cache: {} hits / {} misses ({:.1}% hit rate)",
            report.counters.cache_hits,
            report.counters.cache_misses,
            100.0 * report.cache_hit_rate
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairco2::schedule::ScheduledWorkload;

    fn demo_schedule() -> Schedule {
        let workloads = vec![
            ScheduledWorkload::new(8.0, 0, 2).unwrap(),
            ScheduledWorkload::new(16.0, 1, 3).unwrap(),
            ScheduledWorkload::new(32.0, 0, 3).unwrap(),
            ScheduledWorkload::new(8.0, 2, 3).unwrap(),
        ];
        Schedule::new(3600, 3, workloads).unwrap()
    }

    #[test]
    fn report_is_thread_invariant_and_serializable() {
        let s = demo_schedule();
        let one = sample_schedule(&s, 256, 1, 11);
        let four = sample_schedule(&s, 256, 4, 11);
        assert_eq!(one.permutations, four.permutations);
        assert_eq!(
            one.max_std_error.to_bits(),
            four.max_std_error.to_bits(),
            "estimate must not depend on the thread count"
        );
        assert!(!one.trace.points.is_empty());
        // Four workloads → 16 coalitions; 256 permutations must hit the
        // per-batch memo table heavily, and the hit pattern is part of
        // the schedule, so it matches across thread counts.
        assert!(one.cache_hit_rate > 0.5, "{}", one.cache_hit_rate);
        assert_eq!(one.counters.cache_hits, four.counters.cache_hits);
        let json = serde_json::to_string(&one).unwrap();
        assert!(json.contains("\"trace\""));
        assert!(json.contains("\"coalition_evals\""));
        assert!(json.contains("\"cache_hit_rate\""));
    }
}
