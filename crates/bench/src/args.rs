//! A tiny `--flag value` argument parser for the experiment binaries
//! (kept dependency-free on purpose; the binaries take at most a handful
//! of numeric knobs).

use std::collections::HashMap;

/// Parsed command-line flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    /// Parses the process arguments. Flags must look like
    /// `--name value`; anything else aborts with a usage hint.
    ///
    /// # Panics
    ///
    /// Panics (with a readable message) on malformed arguments — these
    /// binaries are experiment drivers, not servers.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (used by tests).
    ///
    /// A flag followed by another flag (or by the end of the list) is a
    /// bare boolean switch and stores `"true"` — `--resume` reads the
    /// same as `--resume true`.
    ///
    /// # Panics
    ///
    /// Panics on malformed arguments.
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut flags = HashMap::new();
        let mut iter = args.into_iter().peekable();
        while let Some(key) = iter.next() {
            let Some(name) = key.strip_prefix("--") else {
                panic!("unexpected argument {key:?}; flags look like --name value");
            };
            let bare = match iter.peek() {
                Some(next) => next.starts_with("--"),
                None => true,
            };
            let value = if bare {
                "true".to_owned()
            } else {
                iter.next().expect("peeked value")
            };
            flags.insert(name.to_owned(), value);
        }
        Self { flags }
    }

    /// A `usize` flag with a default.
    ///
    /// # Panics
    ///
    /// Panics if the value is present but not a valid `usize`.
    pub fn usize(&self, name: &str, default: usize) -> usize {
        self.flags
            .get(name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{name} expects an integer, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// An `f64` flag with a default.
    ///
    /// # Panics
    ///
    /// Panics if the value is present but not a valid `f64`.
    pub fn f64(&self, name: &str, default: f64) -> f64 {
        self.flags
            .get(name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{name} expects a number, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// A boolean flag with a default. Accepts `true`/`false`/`1`/`0`;
    /// a bare `--name` (no value) reads as `true`.
    ///
    /// # Panics
    ///
    /// Panics if the value is present but none of the accepted forms.
    pub fn bool(&self, name: &str, default: bool) -> bool {
        self.flags
            .get(name)
            .map(|v| match v.as_str() {
                "true" | "1" => true,
                "false" | "0" => false,
                other => panic!("--{name} expects true/false, got {other:?}"),
            })
            .unwrap_or(default)
    }

    /// A string flag, `None` when absent.
    pub fn str(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// A `u64` flag with a default.
    ///
    /// # Panics
    ///
    /// Panics if the value is present but not a valid `u64`.
    pub fn u64(&self, name: &str, default: u64) -> u64 {
        self.flags
            .get(name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{name} expects an integer, got {v:?}"))
            })
            .unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::parse_from(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_flags_and_defaults() {
        let a = args(&["--trials", "100", "--grid-ci", "2.5"]);
        assert_eq!(a.usize("trials", 10), 100);
        assert_eq!(a.usize("threads", 8), 8);
        assert_eq!(a.f64("grid-ci", 0.0), 2.5);
        assert_eq!(a.u64("seed", 7), 7);
    }

    #[test]
    fn bare_flags_read_as_boolean_switches() {
        let a = args(&["--resume", "--trials", "5", "--verbose", "0"]);
        assert!(a.bool("resume", false));
        assert!(!a.bool("verbose", true));
        assert!(a.bool("absent", true));
        assert_eq!(a.usize("trials", 1), 5);
    }

    #[test]
    fn string_flags_pass_through() {
        let a = args(&["--checkpoint", "/tmp/run.ckpt", "--resume"]);
        assert_eq!(a.str("checkpoint"), Some("/tmp/run.ckpt"));
        assert_eq!(a.str("absent"), None);
    }

    #[test]
    #[should_panic(expected = "expects true/false")]
    fn bad_boolean_panics() {
        let a = args(&["--resume", "maybe"]);
        let _ = a.bool("resume", false);
    }

    #[test]
    #[should_panic(expected = "expects an integer")]
    fn dangling_numeric_flag_panics() {
        // A bare flag stores "true"; numeric getters still refuse it.
        let a = args(&["--trials"]);
        let _ = a.usize("trials", 1);
    }

    #[test]
    #[should_panic(expected = "expects an integer")]
    fn bad_integer_panics() {
        let a = args(&["--trials", "lots"]);
        let _ = a.usize("trials", 1);
    }

    #[test]
    #[should_panic(expected = "flags look like")]
    fn positional_argument_panics() {
        let _ = args(&["trials"]);
    }
}
