//! A tiny `--flag value` argument parser for the experiment binaries
//! (kept dependency-free on purpose; the binaries take at most a handful
//! of numeric knobs).
//!
//! Every binary declares its flag set up front and parsing **aborts** on
//! an unknown or duplicated flag with a readable message — a typo like
//! `--chekpoint-every 5` must not silently run the whole study with
//! checkpointing disabled.

use std::collections::HashMap;

/// Parsed command-line flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    /// Parses the process arguments against the binary's declared flag
    /// set (names without the leading `--`). Flags must look like
    /// `--name value`; anything else aborts with a usage hint.
    ///
    /// # Panics
    ///
    /// Panics (with a readable message) on malformed arguments, on a
    /// flag not in `known`, and on a repeated flag — these binaries are
    /// experiment drivers, not servers, and a silently ignored typo
    /// changes what the experiment measures.
    pub fn parse(known: &[&str]) -> Self {
        Self::parse_from(known, std::env::args().skip(1))
    }

    /// Parses an explicit argument list (used by tests); see
    /// [`Args::parse`] for the strictness contract.
    ///
    /// A flag followed by another flag (or by the end of the list) is a
    /// bare boolean switch and stores `"true"` — `--resume` reads the
    /// same as `--resume true`.
    ///
    /// # Panics
    ///
    /// Panics on malformed arguments and on unknown or duplicate flags.
    pub fn parse_from(known: &[&str], args: impl IntoIterator<Item = String>) -> Self {
        let mut flags = HashMap::new();
        let mut iter = args.into_iter().peekable();
        while let Some(key) = iter.next() {
            let Some(name) = key.strip_prefix("--") else {
                panic!("unexpected argument {key:?}; flags look like --name value");
            };
            if !known.contains(&name) {
                panic!("unknown flag --{name}{}", unknown_flag_help(name, known));
            }
            let bare = match iter.peek() {
                Some(next) => next.starts_with("--"),
                None => true,
            };
            let value = if bare {
                "true".to_owned()
            } else {
                iter.next().expect("peeked value")
            };
            if flags.insert(name.to_owned(), value).is_some() {
                panic!("duplicate flag --{name}; each flag may be given once");
            }
        }
        Self { flags }
    }

    /// A `usize` flag with a default.
    ///
    /// # Panics
    ///
    /// Panics if the value is present but not a valid `usize`.
    pub fn usize(&self, name: &str, default: usize) -> usize {
        self.flags
            .get(name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{name} expects an integer, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// An `f64` flag with a default.
    ///
    /// # Panics
    ///
    /// Panics if the value is present but not a valid `f64`.
    pub fn f64(&self, name: &str, default: f64) -> f64 {
        self.flags
            .get(name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{name} expects a number, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// A boolean flag with a default. Accepts `true`/`false`/`1`/`0`;
    /// a bare `--name` (no value) reads as `true`.
    ///
    /// # Panics
    ///
    /// Panics if the value is present but none of the accepted forms.
    pub fn bool(&self, name: &str, default: bool) -> bool {
        self.flags
            .get(name)
            .map(|v| match v.as_str() {
                "true" | "1" => true,
                "false" | "0" => false,
                other => panic!("--{name} expects true/false, got {other:?}"),
            })
            .unwrap_or(default)
    }

    /// A string flag, `None` when absent.
    pub fn str(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// A `u64` flag with a default.
    ///
    /// # Panics
    ///
    /// Panics if the value is present but not a valid `u64`.
    pub fn u64(&self, name: &str, default: u64) -> u64 {
        self.flags
            .get(name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{name} expects an integer, got {v:?}"))
            })
            .unwrap_or(default)
    }
}

/// The abort message tail for an unknown flag: a "did you mean"
/// suggestion when a declared flag is close, plus the full declared set.
fn unknown_flag_help(name: &str, known: &[&str]) -> String {
    let mut help = String::new();
    if let Some(best) = known
        .iter()
        .map(|k| (edit_distance(name, k), *k))
        .filter(|&(d, k)| d <= (k.len() / 3).max(1))
        .min_by_key(|&(d, _)| d)
    {
        help.push_str(&format!(" (did you mean --{}?)", best.1));
    }
    let mut list: Vec<&str> = known.to_vec();
    list.sort_unstable();
    help.push_str("; this binary accepts: ");
    help.push_str(
        &list
            .iter()
            .map(|k| format!("--{k}"))
            .collect::<Vec<_>>()
            .join(", "),
    );
    help
}

/// Levenshtein distance, small inputs only (flag names).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    const KNOWN: &[&str] = &[
        "trials",
        "grid-ci",
        "threads",
        "seed",
        "resume",
        "verbose",
        "checkpoint",
        "checkpoint-every",
    ];

    fn args(s: &[&str]) -> Args {
        Args::parse_from(KNOWN, s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_flags_and_defaults() {
        let a = args(&["--trials", "100", "--grid-ci", "2.5"]);
        assert_eq!(a.usize("trials", 10), 100);
        assert_eq!(a.usize("threads", 8), 8);
        assert_eq!(a.f64("grid-ci", 0.0), 2.5);
        assert_eq!(a.u64("seed", 7), 7);
    }

    #[test]
    fn bare_flags_read_as_boolean_switches() {
        let a = args(&["--resume", "--trials", "5", "--verbose", "0"]);
        assert!(a.bool("resume", false));
        assert!(!a.bool("verbose", true));
        assert!(a.bool("absent", true));
        assert_eq!(a.usize("trials", 1), 5);
    }

    #[test]
    fn string_flags_pass_through() {
        let a = args(&["--checkpoint", "/tmp/run.ckpt", "--resume"]);
        assert_eq!(a.str("checkpoint"), Some("/tmp/run.ckpt"));
        assert_eq!(a.str("absent"), None);
    }

    #[test]
    #[should_panic(expected = "expects true/false")]
    fn bad_boolean_panics() {
        let a = args(&["--resume", "maybe"]);
        let _ = a.bool("resume", false);
    }

    #[test]
    #[should_panic(expected = "expects an integer")]
    fn dangling_numeric_flag_panics() {
        // A bare flag stores "true"; numeric getters still refuse it.
        let a = args(&["--trials"]);
        let _ = a.usize("trials", 1);
    }

    #[test]
    #[should_panic(expected = "expects an integer")]
    fn bad_integer_panics() {
        let a = args(&["--trials", "lots"]);
        let _ = a.usize("trials", 1);
    }

    #[test]
    #[should_panic(expected = "flags look like")]
    fn positional_argument_panics() {
        let _ = args(&["trials"]);
    }

    #[test]
    #[should_panic(expected = "unknown flag --chekpoint-every (did you mean --checkpoint-every?)")]
    fn unknown_flag_aborts_with_a_suggestion() {
        // The motivating regression: this typo used to silently run the
        // whole study with checkpointing disabled.
        let _ = args(&["--chekpoint-every", "5"]);
    }

    #[test]
    #[should_panic(expected = "unknown flag --banana")]
    fn unknown_flag_aborts_without_a_far_fetched_suggestion() {
        let _ = args(&["--banana", "1"]);
    }

    #[test]
    fn unknown_flag_message_lists_the_declared_set() {
        let caught = std::panic::catch_unwind(|| args(&["--bogus"])).unwrap_err();
        let message = caught
            .downcast_ref::<String>()
            .cloned()
            .expect("panic carries a message");
        assert!(
            message.contains("--checkpoint-every") && message.contains("--trials"),
            "{message}"
        );
    }

    #[test]
    #[should_panic(expected = "duplicate flag --trials")]
    fn duplicate_flag_aborts() {
        let _ = args(&["--trials", "5", "--trials", "6"]);
    }
}
