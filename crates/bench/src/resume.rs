//! Checkpoint/resume flag plumbing shared by the Monte Carlo binaries.
//!
//! Every streaming-study binary accepts the same four knobs:
//!
//! * `--checkpoint <path>` — snapshot engine state to `<path>` as the
//!   study streams (atomic write: tmp file + rename);
//! * `--checkpoint-every <batches>` — snapshot cadence (default 8);
//! * `--resume` — restore from `--checkpoint` if the file exists and
//!   continue from the merged-prefix frontier (bit-identical to an
//!   uninterrupted run);
//! * `--retries <n>` — per-batch retry budget for failed/panicked
//!   batches (default 2).

use std::path::PathBuf;

use fairco2_montecarlo::{CheckpointSpec, EngineError, StudyOptions};

use crate::Args;

/// Default snapshot cadence in merged batches.
pub const DEFAULT_CHECKPOINT_EVERY: usize = 8;

/// The flags every checkpoint-aware study binary accepts; append these
/// to the binary's own flag set when declaring [`Args::parse`]'s known
/// set so a typo like `--chekpoint-every` aborts instead of silently
/// disabling checkpointing.
pub const CHECKPOINT_FLAGS: &[&str] = &["checkpoint", "checkpoint-every", "resume", "retries"];

/// Builds the engine's [`StudyOptions`] from the standard command-line
/// flags. `suffix` distinguishes checkpoint files when one binary runs
/// several studies (the convergence driver runs both): a non-empty
/// suffix is appended to the `--checkpoint` path as an extra extension,
/// e.g. `run.ckpt` → `run.ckpt.demand`.
pub fn study_options(args: &Args, suffix: &str) -> StudyOptions {
    let checkpoint = args.str("checkpoint").map(|p| {
        let mut path = PathBuf::from(p);
        if !suffix.is_empty() {
            let mut name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            name.push('.');
            name.push_str(suffix);
            path.set_file_name(name);
        }
        CheckpointSpec::new(
            path,
            args.usize("checkpoint-every", DEFAULT_CHECKPOINT_EVERY),
        )
    });
    StudyOptions {
        checkpoint,
        resume: args.bool("resume", false),
        retry_budget: args.usize("retries", 2) as u32,
        ..StudyOptions::default()
    }
}

/// Unwraps a resumable-study result the way an experiment driver wants:
/// report the typed engine error on stderr and exit nonzero rather than
/// unwinding through the report-building code.
pub fn exit_on_engine_error<T>(result: Result<T, EngineError>) -> T {
    result.unwrap_or_else(|e| {
        eprintln!("study failed: {e}");
        std::process::exit(1);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::parse_from(CHECKPOINT_FLAGS, s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn no_flags_means_no_checkpointing() {
        let opts = study_options(&args(&[]), "");
        assert!(opts.checkpoint.is_none());
        assert!(!opts.resume);
        assert_eq!(opts.retry_budget, 2);
        assert!(opts.faults.is_empty());
    }

    #[test]
    fn checkpoint_flags_flow_through() {
        let opts = study_options(
            &args(&[
                "--checkpoint",
                "/tmp/run.ckpt",
                "--checkpoint-every",
                "3",
                "--resume",
                "--retries",
                "5",
            ]),
            "",
        );
        let spec = opts.checkpoint.expect("spec");
        assert_eq!(spec.path, PathBuf::from("/tmp/run.ckpt"));
        assert_eq!(spec.every_batches, 3);
        assert!(opts.resume);
        assert_eq!(opts.retry_budget, 5);
    }

    #[test]
    fn suffix_distinguishes_multi_study_binaries() {
        let a = args(&["--checkpoint", "/tmp/conv.ckpt"]);
        let demand = study_options(&a, "demand").checkpoint.expect("spec");
        let colo = study_options(&a, "colocation").checkpoint.expect("spec");
        assert_eq!(demand.path, PathBuf::from("/tmp/conv.ckpt.demand"));
        assert_eq!(colo.path, PathBuf::from("/tmp/conv.ckpt.colocation"));
        assert_ne!(demand.path, colo.path);
    }
}
