//! Streaming per-trial JSONL dumps for the study binaries.
//!
//! `--dump-trials` used to collect every trial in memory and write one
//! big JSON array at the end — `O(trials)` memory on a path whose whole
//! point is auditing full 10,000-trial studies. The generalized form
//! streams instead, backed by the engine's per-trial sink (trials are
//! observed in ascending trial order at any thread count, so the emitted
//! JSONL bytes are thread-invariant):
//!
//! * `--dump-trials all` — stream every trial;
//! * `--dump-trials N` — stream the first `N` trials;
//! * `--dump-path PATH` — write there instead of
//!   `results/<name>_trials.jsonl`.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;

use serde::Serialize;

use crate::args::Args;
use crate::output::results_dir;

/// How many trials to dump, parsed from `--dump-trials`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DumpSpec {
    /// No dump requested.
    #[default]
    None,
    /// Dump the first `N` trials.
    First(usize),
    /// Dump every trial.
    All,
}

impl DumpSpec {
    /// Parses `--dump-trials` (`all`, or an integer; `0` means none).
    ///
    /// # Panics
    ///
    /// Panics when the value is neither `all` nor an integer — same
    /// strictness as the numeric flags.
    pub fn from_args(args: &Args) -> Self {
        match args.str("dump-trials") {
            None => Self::None,
            Some("all") => Self::All,
            Some(v) => match v.parse::<usize>() {
                Ok(0) => Self::None,
                Ok(n) => Self::First(n),
                Err(_) => panic!("--dump-trials expects `all` or an integer, got {v:?}"),
            },
        }
    }

    /// Whether any dump was requested.
    pub fn is_active(&self) -> bool {
        !matches!(self, Self::None)
    }

    /// Whether trial index `k` (0-based) is within the dump.
    pub fn wants(&self, k: u64) -> bool {
        match self {
            Self::None => false,
            Self::First(n) => k < *n as u64,
            Self::All => true,
        }
    }
}

/// A streaming JSONL trial dump: one serialized record per line, written
/// through a buffered file as the engine's sink observes trials.
#[derive(Debug)]
pub struct TrialDump {
    spec: DumpSpec,
    path: PathBuf,
    writer: BufWriter<File>,
    written: u64,
    seen: u64,
}

impl TrialDump {
    /// Opens the dump for `name` (default path
    /// `results/<name>_trials.jsonl`, overridden by `--dump-path`).
    /// Returns `None` when no dump was requested.
    ///
    /// # Panics
    ///
    /// Panics when the dump file cannot be created — an audit artifact
    /// that silently goes missing is worse than an abort.
    pub fn from_args(args: &Args, name: &str) -> Option<Self> {
        let spec = DumpSpec::from_args(args);
        if !spec.is_active() {
            assert!(
                args.str("dump-path").is_none(),
                "--dump-path without --dump-trials has no effect; pass --dump-trials all or N"
            );
            return None;
        }
        let path = match args.str("dump-path") {
            Some(p) => PathBuf::from(p),
            None => {
                let dir = results_dir();
                std::fs::create_dir_all(&dir)
                    .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
                dir.join(format!("{name}_trials.jsonl"))
            }
        };
        let file = File::create(&path)
            .unwrap_or_else(|e| panic!("cannot create dump file {}: {e}", path.display()));
        Some(Self {
            spec,
            path,
            writer: BufWriter::new(file),
            written: 0,
            seen: 0,
        })
    }

    /// Observes one trial record (in trial order): serializes it to one
    /// JSONL line when it falls within the requested range.
    ///
    /// # Panics
    ///
    /// Panics on write failure.
    pub fn observe<T: Serialize>(&mut self, record: &T) {
        let k = self.seen;
        self.seen += 1;
        if !self.spec.wants(k) {
            return;
        }
        let line = serde_json::to_string(record).expect("trial records are serializable");
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", self.path.display()));
        self.written += 1;
    }

    /// Flushes the dump and reports `(path, lines written)`.
    ///
    /// # Panics
    ///
    /// Panics when the final flush fails.
    pub fn finish(mut self) -> (PathBuf, u64) {
        self.writer
            .flush()
            .unwrap_or_else(|e| panic!("cannot flush {}: {e}", self.path.display()));
        (self.path, self.written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::parse_from(
            &["dump-trials", "dump-path"],
            s.iter().map(|s| s.to_string()),
        )
    }

    #[test]
    fn parses_all_and_counts() {
        assert_eq!(DumpSpec::from_args(&args(&[])), DumpSpec::None);
        assert_eq!(
            DumpSpec::from_args(&args(&["--dump-trials", "all"])),
            DumpSpec::All
        );
        assert_eq!(
            DumpSpec::from_args(&args(&["--dump-trials", "7"])),
            DumpSpec::First(7)
        );
        assert_eq!(
            DumpSpec::from_args(&args(&["--dump-trials", "0"])),
            DumpSpec::None
        );
    }

    #[test]
    #[should_panic(expected = "expects `all` or an integer")]
    fn rejects_garbage_counts() {
        let _ = DumpSpec::from_args(&args(&["--dump-trials", "some"]));
    }

    #[test]
    fn first_n_limits_the_stream() {
        let spec = DumpSpec::First(3);
        let kept: Vec<u64> = (0..10).filter(|&k| spec.wants(k)).collect();
        assert_eq!(kept, vec![0, 1, 2]);
        assert!((0..10).all(|k| DumpSpec::All.wants(k)));
        assert!(!(0..10).any(|k| DumpSpec::None.wants(k)));
    }

    #[test]
    fn streams_jsonl_to_the_requested_path() {
        let dir = std::env::temp_dir().join("fairco2_dump_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dump.jsonl");
        let a = args(&["--dump-trials", "2", "--dump-path", path.to_str().unwrap()]);
        let mut dump = TrialDump::from_args(&a, "unused").expect("active");
        for k in 0..5 {
            dump.observe(&serde_json::json!({ "trial": k }));
        }
        let (written_path, lines) = dump.finish();
        assert_eq!(written_path, path);
        assert_eq!(lines, 2);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"trial\":0}\n{\"trial\":1}\n");
        std::fs::remove_file(&path).unwrap();
    }
}
