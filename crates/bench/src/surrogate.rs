//! Surrogate-accelerated attribution benchmark: harvest → fit → serve,
//! with the accuracy gates asserted in-binary before any timing runs.
//!
//! The study attributes the Figure-7 demand schedules three ways:
//!
//! 1. **Streaming engine** (the baseline): exact ground truth plus all
//!    method deviations per trial, through the batched study engine.
//! 2. **Surrogate**: a ridge model harvested from an *out-of-sample*
//!    training study serves normalized Shapley shares in `O(features)`
//!    per workload, falling back to the sampled solver whenever the
//!    residual bound exceeds the tolerance.
//! 3. **Exact audit**: a subset of trials re-solved exactly to measure
//!    the surrogate pipeline's true share error.
//!
//! Gates (all asserted before timing, recorded in `gates_passed`):
//! served outcomes satisfy the efficiency axiom to 1e-9; zero tolerance
//! collapses bit-for-bit to `sampled_shapley_cached`; fallback decisions
//! and served values are bit-identical at 1/2/8 threads; and the audited
//! max normalized share error stays within the accuracy budget. The
//! tolerance → (fallback rate, error, throughput) frontier is swept and
//! recorded alongside the headline speedup.

use std::time::Instant;

use serde::Serialize;

use fairco2_montecarlo::harvest::{fit_surrogate, harvest_demand_study_with, HarvestRecord};
use fairco2_montecarlo::schedules::DemandStudy;
use fairco2_montecarlo::scratch::TrialScratch;
use fairco2_montecarlo::{stream_demand_study, EngineConfig};
use fairco2_shapley::axioms::check_efficiency;
use fairco2_shapley::exact::{exact_shapley_fast_with_scratch, ExactScratch};
use fairco2_shapley::game::PeakDemandGame;
use fairco2_shapley::surrogate::{SurrogateAttributor, SurrogateModel, SurrogateScratch};

/// Salt XORed into the evaluation seed to draw the *training* schedules:
/// the model never trains on the trials it is timed and audited on.
pub const TRAIN_SEED_SALT: u64 = 0x7261_494E;

/// Configuration of the surrogate benchmark.
#[derive(Debug, Clone)]
pub struct SurrogateStudy {
    /// Evaluation trials attributed end to end (the timed study).
    pub trials: usize,
    /// Out-of-sample training trials harvested with exact ground truth.
    pub train_trials: usize,
    /// Evaluation trials re-solved exactly to audit the share error.
    pub audit_trials: usize,
    /// Workload cap of both studies (the paper's 22).
    pub max_workloads: usize,
    /// Worker threads for the harvest (timing runs are single-threaded).
    pub threads: usize,
    /// Serving tolerance on the residual bound (the pinned operating
    /// point the headline speedup is measured at).
    pub tolerance: f64,
    /// Accuracy budget: the audited max normalized share error
    /// (`|φ̂_p − φ_p| / v(N)`) must stay below this for the gate to pass.
    pub accuracy_budget: f64,
    /// Tolerances of the frontier sweep.
    pub tolerances: Vec<f64>,
    /// Ridge regularization of the surrogate fit.
    pub lambda: f64,
    /// Evaluation-study base seed (the Figure-7 default).
    pub seed: u64,
    /// Timing repetitions per measured path (best wall-clock wins).
    pub reps: usize,
    /// Headline target: surrogate attribution throughput over streaming
    /// baseline throughput (the ≥10× claim).
    pub speedup_target: f64,
}

impl Default for SurrogateStudy {
    fn default() -> Self {
        Self {
            trials: 10_000,
            train_trials: 500,
            audit_trials: 400,
            max_workloads: 22,
            threads: 1,
            tolerance: 0.1,
            accuracy_budget: 0.1,
            tolerances: vec![0.005, 0.01, 0.02, 0.05, 0.1],
            lambda: 1e-6,
            seed: DemandStudy::default().base_seed,
            reps: 1,
            speedup_target: 10.0,
        }
    }
}

impl SurrogateStudy {
    /// The evaluation demand study (same generator/seed family as fig7).
    pub fn eval_study(&self) -> DemandStudy {
        DemandStudy {
            trials: self.trials,
            max_workloads: self.max_workloads,
            base_seed: self.seed,
            ..DemandStudy::default()
        }
    }

    /// The disjoint training study the harvest runs over.
    pub fn train_study(&self) -> DemandStudy {
        DemandStudy {
            trials: self.train_trials,
            max_workloads: self.max_workloads,
            base_seed: self.seed ^ TRAIN_SEED_SALT,
            ..DemandStudy::default()
        }
    }
}

/// One point of the tolerance → accuracy/throughput frontier, measured
/// over the audit subset.
#[derive(Debug, Clone, Serialize)]
pub struct Tolerancepoint {
    /// Residual-bound tolerance of this point.
    pub tolerance: f64,
    /// Fraction of audited trials that fell back to the sampled solver.
    pub fallback_rate: f64,
    /// Audited max normalized share error of the full pipeline.
    pub max_share_error: f64,
    /// Audited mean (per-trial max) normalized share error.
    pub mean_share_error: f64,
    /// End-to-end attribution throughput at this tolerance (fallbacks
    /// executed), trials per second.
    pub trials_per_sec: f64,
}

/// Machine-readable surrogate benchmark results
/// (`results/BENCH_surrogate.json`).
#[derive(Debug, Clone, Serialize)]
pub struct SurrogateReport {
    /// Evaluation trials timed end to end.
    pub trials: usize,
    /// Out-of-sample training trials harvested.
    pub train_trials: usize,
    /// Training rows (workloads × trials) the ridge fit on.
    pub train_rows: usize,
    /// Audited evaluation trials (exact truth recomputed).
    pub audit_trials: usize,
    /// Workload cap of both studies.
    pub max_workloads: usize,
    /// Pinned serving tolerance of the headline measurement.
    pub tolerance: f64,
    /// Accuracy budget the audit gate enforces.
    pub accuracy_budget: f64,
    /// Ridge regularization.
    pub lambda: f64,
    /// Every gate below held (asserted before timing; recorded).
    pub gates_passed: bool,
    /// Served outcomes satisfied the efficiency axiom to 1e-9.
    pub gate_efficiency: bool,
    /// Tolerance 0 collapsed bit-for-bit to `sampled_shapley_cached`.
    pub gate_zero_tolerance_collapse: bool,
    /// Fallback decisions and values bit-identical at 1/2/8 threads.
    pub gate_thread_invariant: bool,
    /// Audited max share error stayed within the accuracy budget.
    pub gate_accuracy: bool,
    /// Audited max normalized share error at the pinned tolerance.
    pub max_share_error: f64,
    /// Audited mean (per-trial max) normalized share error.
    pub mean_share_error: f64,
    /// Fallback rate at the pinned tolerance over the full evaluation.
    pub fallback_rate: f64,
    /// Harvest wall time (training-study trials with exact truth).
    pub harvest_secs: f64,
    /// Ridge fit wall time (shared-Gram Cholesky, all targets).
    pub fit_secs: f64,
    /// Streaming-engine baseline over the evaluation study (1 thread).
    pub streaming_secs: f64,
    /// Baseline trials per second.
    pub streaming_trials_per_sec: f64,
    /// Surrogate pipeline over the same trials (1 thread, fallbacks
    /// executed).
    pub surrogate_secs: f64,
    /// Surrogate trials per second.
    pub surrogate_trials_per_sec: f64,
    /// Headline: streaming wall time over surrogate wall time.
    pub speedup: f64,
    /// Speedup with harvest + fit amortized into the surrogate side.
    pub amortized_speedup: f64,
    /// Headline target (the ≥10× claim) and whether this run met it.
    pub speedup_target: f64,
    /// Whether `speedup >= speedup_target` in this run.
    pub meets_speedup_target: bool,
    /// The tolerance → (fallback, error, throughput) frontier.
    pub frontier: Vec<Tolerancepoint>,
}

/// Best wall-clock over `reps` runs of `f`.
fn best_secs<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Reusable buffers for one evaluation pass.
struct EvalScratch {
    trial: TrialScratch,
    surrogate: SurrogateScratch,
    exact: ExactScratch,
}

impl EvalScratch {
    fn new() -> Self {
        Self {
            trial: TrialScratch::new(),
            surrogate: SurrogateScratch::new(),
            exact: ExactScratch::new(),
        }
    }
}

/// Attributes one evaluation trial through the surrogate pipeline.
fn attribute_trial(
    study: &DemandStudy,
    attributor: &SurrogateAttributor,
    trial: usize,
    scratch: &mut EvalScratch,
) -> fairco2_shapley::surrogate::SurrogateOutcome {
    let schedule = study.generate_schedule_with(trial, &mut scratch.trial);
    let game = PeakDemandGame::new(schedule.demand_matrix());
    attributor.attribute_with(&game, trial as u64, &mut scratch.surrogate)
}

/// Audit pass over `trials` evaluation trials: runs the full pipeline
/// *and* the exact solver, returning `(fallbacks, max error, mean
/// per-trial max error)` in normalized share units.
fn audit(
    study: &DemandStudy,
    attributor: &SurrogateAttributor,
    trials: usize,
    scratch: &mut EvalScratch,
) -> (usize, f64, f64) {
    let mut fallbacks = 0usize;
    let mut max_err = 0.0f64;
    let mut sum_trial_max = 0.0f64;
    for t in 0..trials {
        let schedule = study.generate_schedule_with(t, &mut scratch.trial);
        let game = PeakDemandGame::new(schedule.demand_matrix());
        let outcome = attributor.attribute_with(&game, t as u64, &mut scratch.surrogate);
        let phi = exact_shapley_fast_with_scratch(&game, &mut scratch.exact)
            .expect("generated schedules are solvable");
        let v_n = outcome.grand_value;
        let mut trial_max = 0.0f64;
        for (served, exact) in outcome.values.iter().zip(phi) {
            trial_max = trial_max.max((served - exact).abs() / v_n);
        }
        max_err = max_err.max(trial_max);
        sum_trial_max += trial_max;
        fallbacks += usize::from(outcome.fell_back);
    }
    (fallbacks, max_err, sum_trial_max / trials.max(1) as f64)
}

/// The thread-invariance gate: attributes `trials` evaluation trials on
/// real worker threads (each with its own scratch), and demands the
/// per-trial `(fell_back, value bits)` stream match the serial reference
/// exactly at every thread count.
fn thread_invariant(study: &DemandStudy, attributor: &SurrogateAttributor, trials: usize) -> bool {
    /// One trial's observable outcome: the fallback decision plus the
    /// served value bits.
    type TrialBits = (bool, Vec<u64>);
    let collect = |threads: usize| -> Vec<TrialBits> {
        let mut out: Vec<Option<TrialBits>> = vec![None; trials];
        std::thread::scope(|scope| {
            let chunk = trials.div_ceil(threads.max(1));
            for (w, slice) in out.chunks_mut(chunk).enumerate() {
                scope.spawn(move || {
                    let mut scratch = EvalScratch::new();
                    for (i, slot) in slice.iter_mut().enumerate() {
                        let t = w * chunk + i;
                        let outcome = attribute_trial(study, attributor, t, &mut scratch);
                        *slot = Some((
                            outcome.fell_back,
                            outcome.values.iter().map(|v| v.to_bits()).collect(),
                        ));
                    }
                });
            }
        });
        out.into_iter()
            .map(|o| o.expect("all trials ran"))
            .collect()
    };
    let reference = collect(1);
    [2usize, 8].iter().all(|&t| collect(t) == reference)
}

/// Runs the full surrogate benchmark: harvest, fit, gates, frontier,
/// and the headline streaming-vs-surrogate timing.
///
/// # Panics
///
/// Panics when any gate fails — the speedup of a wrong answer is not a
/// result. Gate outcomes are also recorded in the report so downstream
/// tooling can assert `gates_passed` from the JSON alone.
pub fn run_surrogate(study: &SurrogateStudy) -> SurrogateReport {
    let eval = study.eval_study();
    let train = study.train_study();
    assert!(
        study.audit_trials <= study.trials,
        "audit subset exceeds the evaluation study"
    );

    // --- Harvest the out-of-sample training set, then fit. ---
    let start = Instant::now();
    let mut records: Vec<HarvestRecord> = Vec::with_capacity(train.trials);
    harvest_demand_study_with(&train, study.threads, 64, |r| records.push(r.clone()));
    let harvest_secs = start.elapsed().as_secs_f64();
    let train_rows: usize = records.iter().map(|r| r.workloads).sum();
    let start = Instant::now();
    let model: SurrogateModel = fit_surrogate(&records, study.lambda).expect("harvest fits");
    let fit_secs = start.elapsed().as_secs_f64();
    drop(records);

    let attributor = SurrogateAttributor::new(model.clone(), study.tolerance);
    let mut scratch = EvalScratch::new();

    // --- Gates, before any timing. ---
    let gate_trials = study.audit_trials.clamp(1, 200);

    // Efficiency: every served outcome satisfies the axiom to 1e-9.
    let mut gate_efficiency = true;
    for t in 0..gate_trials {
        let schedule = eval.generate_schedule_with(t, &mut scratch.trial);
        let game = PeakDemandGame::new(schedule.demand_matrix());
        let outcome = attributor.attribute_with(&game, t as u64, &mut scratch.surrogate);
        if !outcome.fell_back {
            gate_efficiency &= check_efficiency(&game, &outcome.values, 1e-9).holds();
        }
    }
    assert!(gate_efficiency, "served outcomes must satisfy efficiency");

    // Zero tolerance collapses to the sampled solver bit-for-bit.
    let zero = SurrogateAttributor::new(model.clone(), 0.0);
    let mut gate_zero = true;
    for t in 0..gate_trials.min(8) {
        let schedule = eval.generate_schedule_with(t, &mut scratch.trial);
        let game = PeakDemandGame::new(schedule.demand_matrix());
        let outcome = zero.attribute_with(&game, t as u64, &mut scratch.surrogate);
        let direct = zero.fallback_estimate(&game, t as u64);
        gate_zero &= outcome.fell_back;
        gate_zero &= outcome
            .values
            .iter()
            .zip(&direct.values)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    }
    assert!(
        gate_zero,
        "tolerance 0 must collapse to sampled_shapley_cached"
    );

    // Fallback decisions and served bits are thread-invariant.
    let gate_thread = thread_invariant(&eval, &attributor, gate_trials);
    assert!(
        gate_thread,
        "attribution must be bit-identical at any thread count"
    );

    // Accuracy audit at the pinned tolerance.
    let (audit_fallbacks, max_share_error, mean_share_error) =
        audit(&eval, &attributor, study.audit_trials, &mut scratch);
    let gate_accuracy = max_share_error <= study.accuracy_budget;
    assert!(
        gate_accuracy,
        "audited max share error {max_share_error} exceeds the {} budget",
        study.accuracy_budget
    );
    let gates_passed = gate_efficiency && gate_zero && gate_thread && gate_accuracy;

    // --- Frontier sweep over the audit subset. ---
    let mut frontier = Vec::new();
    for &tol in &study.tolerances {
        let a = SurrogateAttributor::new(model.clone(), tol);
        let (fallbacks, max_err, mean_err) = audit(&eval, &a, study.audit_trials, &mut scratch);
        let secs = best_secs(study.reps, || {
            for t in 0..study.audit_trials {
                std::hint::black_box(attribute_trial(&eval, &a, t, &mut scratch));
            }
        });
        frontier.push(Tolerancepoint {
            tolerance: tol,
            fallback_rate: fallbacks as f64 / study.audit_trials.max(1) as f64,
            max_share_error: max_err,
            mean_share_error: mean_err,
            trials_per_sec: study.audit_trials as f64 / secs,
        });
    }

    // --- Headline timing: streaming engine vs surrogate, 1 thread. ---
    let cfg = EngineConfig {
        threads: 1,
        batch_trials: 64,
        collect_trials: false,
    };
    let streaming_secs = best_secs(study.reps, || stream_demand_study(&eval, cfg));
    let mut fallbacks = 0usize;
    let surrogate_secs = best_secs(study.reps, || {
        fallbacks = 0;
        for t in 0..eval.trials {
            let outcome = attribute_trial(&eval, &attributor, t, &mut scratch);
            fallbacks += usize::from(outcome.fell_back);
            std::hint::black_box(&outcome);
        }
    });
    let speedup = streaming_secs / surrogate_secs;
    let amortized_speedup = streaming_secs / (surrogate_secs + harvest_secs + fit_secs);

    let _ = audit_fallbacks;
    SurrogateReport {
        trials: study.trials,
        train_trials: study.train_trials,
        train_rows,
        audit_trials: study.audit_trials,
        max_workloads: study.max_workloads,
        tolerance: study.tolerance,
        accuracy_budget: study.accuracy_budget,
        lambda: study.lambda,
        gates_passed,
        gate_efficiency,
        gate_zero_tolerance_collapse: gate_zero,
        gate_thread_invariant: gate_thread,
        gate_accuracy,
        max_share_error,
        mean_share_error,
        fallback_rate: fallbacks as f64 / eval.trials.max(1) as f64,
        harvest_secs,
        fit_secs,
        streaming_secs,
        streaming_trials_per_sec: eval.trials as f64 / streaming_secs,
        surrogate_secs,
        surrogate_trials_per_sec: eval.trials as f64 / surrogate_secs,
        speedup,
        amortized_speedup,
        speedup_target: study.speedup_target,
        meets_speedup_target: speedup >= study.speedup_target,
        frontier,
    }
}

/// Prints the human-readable summary the binaries share.
pub fn print_surrogate(report: &SurrogateReport) {
    println!(
        "surrogate  trained on {} trials ({} rows) in {:.2}s + {:.4}s fit",
        report.train_trials, report.train_rows, report.harvest_secs, report.fit_secs
    );
    println!(
        "surrogate  gates: efficiency {}, zero-tol collapse {}, thread-invariant {}, accuracy {} (max err {:.4} ≤ {:.3})",
        report.gate_efficiency,
        report.gate_zero_tolerance_collapse,
        report.gate_thread_invariant,
        report.gate_accuracy,
        report.max_share_error,
        report.accuracy_budget
    );
    for p in &report.frontier {
        println!(
            "surrogate  tol {:>6.3}  fallback {:>5.1}%  max err {:.4}  mean err {:.4}  {:>9.0} trials/s",
            p.tolerance,
            100.0 * p.fallback_rate,
            p.max_share_error,
            p.mean_share_error,
            p.trials_per_sec
        );
    }
    println!(
        "surrogate  streaming {:.3}s ({:.0}/s)  surrogate {:.3}s ({:.0}/s)  speedup {:.1}x (target {:.0}x, met: {})",
        report.streaming_secs,
        report.streaming_trials_per_sec,
        report.surrogate_secs,
        report.surrogate_trials_per_sec,
        report.speedup,
        report.speedup_target,
        report.meets_speedup_target
    );
    println!(
        "surrogate  fallback rate {:.2}% at tol {:.3}; amortized speedup {:.1}x (harvest+fit included)",
        100.0 * report.fallback_rate,
        report.tolerance,
        report.amortized_speedup
    );
}
