//! **Azure-scale multi-region co-simulation** (the `azure_scale` study
//! bin): streams the ~2M-VM synthetic trace of
//! [`fairco2_trace::scale::ScaleVmConfig`] through the Monte Carlo
//! engine's resumable batch path and evaluates three shifting policies
//! per VM against per-region grid-intensity traces:
//!
//! * **baseline** — every VM runs immediately in its home region;
//! * **temporal** — deferrable VMs slide inside their slack window but
//!   stay home ([`PlacementIndex::best_placement`] on the home region);
//! * **spatio-temporal** — deferrable VMs may also migrate, paying a
//!   per-move transfer carbon
//!   ([`PlacementIndex::best_placement_migrating`]).
//!
//! Tenancy, home region, and deferrability derive from the trace's
//! chunk-invariant per-VM tag, so any batching/threading of the bucket
//! range folds bit-identical accumulators; the engine merges them in
//! batch order, making the whole study — including checkpoint/resume
//! through [`ScaleSnapshot`] — bit-identical to a serial run.
//!
//! Attribution closes the loop the Fair-CO₂ way: for each scenario and
//! region, the *realized* tenant demand is re-attributed with Temporal
//! Shapley (per-region embodied budget priced over the leaf intensity
//! signal), so the report's per-tenant deltas reflect what shifting did
//! to both operational and embodied shares — not just the optimizer's
//! internal price.

use std::path::Path;

use fairco2_montecarlo::engine::{stream_batches_resumable, ResumeState};
use fairco2_montecarlo::{
    read_envelope, write_envelope_atomic, CheckpointError, EngineConfig, EngineError, EngineStats,
    FaultPlan, NoScratch, StudyOptions, WriteFault,
};
use fairco2_optimize::scaling::ResourcePricing;
use fairco2_optimize::spatial::{job_carbon, BatchJob, MigrationCost, PlacementIndex, Region};
use fairco2_shapley::temporal::TemporalShapley;
use fairco2_trace::scale::ScaleVmConfig;
use fairco2_trace::vms::VmEvent;
use fairco2_trace::{AzureLikeTrace, GridIntensityTrace, TimeSeries};
use serde::{Deserialize, Serialize};

/// The three policies, in accumulator-scenario order.
pub const SCENARIOS: [&str; 3] = ["baseline", "temporal", "spatio_temporal"];

/// Configuration of the Azure-scale co-simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct AzureScaleStudy {
    /// Expected short-VM count over the horizon.
    pub vms: u64,
    /// Horizon in days (the grid traces extend two days past it so every
    /// slack window stays inside the traces).
    pub days: u32,
    /// Regions in play (first `regions` of the built-in set, 1–3).
    pub regions: usize,
    /// Tenants the VM population is hashed into.
    pub tenants: usize,
    /// Deferral slack for shiftable VMs (hours past the natural finish).
    pub slack_hours: i64,
    /// Fraction of slack-eligible VMs that are actually deferrable.
    pub deferrable_share: f64,
    /// Minimum lifetime for a VM to be worth shifting (seconds).
    pub min_deferrable_lifetime_s: f64,
    /// Dynamic power per reserved core (W).
    pub watts_per_core: f64,
    /// Memory per reserved core (GB), priced by the embodied model.
    pub gb_per_core: f64,
    /// Transfer carbon of moving one VM's data out of its home region.
    pub migration: MigrationCost,
    /// Embodied budget attributed per region over the window (gCO₂e).
    pub embodied_budget_g: f64,
    /// Trace seed (drives generation, tags, and the region traces).
    pub seed: u64,
}

impl Default for AzureScaleStudy {
    fn default() -> Self {
        Self {
            vms: 2_000_000,
            days: 14,
            regions: 3,
            tenants: 12,
            slack_hours: 12,
            deferrable_share: 0.3,
            min_deferrable_lifetime_s: 1800.0,
            watts_per_core: 6.0,
            gb_per_core: 4.0,
            migration: MigrationCost {
                data_gb: 100.0,
                g_per_gb: 4.0,
            },
            embodied_budget_g: 5.0e6,
            seed: 0x0005_EED5_CA1E,
        }
    }
}

impl AzureScaleStudy {
    /// The streaming trace generator this study consumes.
    pub fn vm_config(&self) -> ScaleVmConfig {
        let mut cfg = ScaleVmConfig::for_total_vms(self.vms, self.days);
        cfg.seed = self.seed;
        cfg
    }

    /// Days the region traces span: the VM horizon plus two days so a
    /// slack window ending after the horizon is still priceable.
    pub fn grid_days(&self) -> u32 {
        self.days + 2
    }

    /// Hourly samples in the region traces.
    pub fn hours(&self) -> usize {
        self.grid_days() as usize * 24
    }

    /// The built-in region set, truncated to `self.regions`: a duck-curve
    /// coast, a flat-dirty coal belt, and a windy low-carbon grid, each
    /// with a Fair-CO₂ embodied price signal derived from its own
    /// demand history.
    ///
    /// # Panics
    ///
    /// Panics when `regions` is 0 or exceeds the built-in set.
    pub fn build_regions(&self) -> Vec<Region> {
        let days = self.grid_days();
        let signal = |seed: u64| {
            let demand = AzureLikeTrace::builder()
                .days(days)
                .step_seconds(3600)
                .seed(seed)
                .build();
            TemporalShapley::new(vec![days as usize, 24])
                .attribute(demand.series(), 1000.0)
                .expect("hourly days divide")
                .leaf_intensity()
                .clone()
        };
        let all = vec![
            Region {
                name: "california".into(),
                grid: GridIntensityTrace::caiso_like(days, 3600, self.seed ^ 0x11),
                embodied_signal: signal(self.seed ^ 0x11),
            },
            Region {
                name: "coal-belt".into(),
                grid: GridIntensityTrace::coal_like(days, 3600, self.seed ^ 0x22),
                embodied_signal: signal(self.seed ^ 0x22),
            },
            Region {
                name: "nordic".into(),
                grid: GridIntensityTrace::wind_heavy(days, 3600, self.seed ^ 0x33),
                embodied_signal: signal(self.seed ^ 0x33),
            },
        ];
        assert!(
            self.regions >= 1 && self.regions <= all.len(),
            "regions must be 1..={}",
            all.len()
        );
        all.into_iter().take(self.regions).collect()
    }
}

/// Configuration fingerprint binding checkpoints to one exact study.
pub fn scale_fingerprint(study: &AzureScaleStudy, batch_buckets: usize) -> String {
    let text = format!(
        "azure_scale|vms={}|days={}|regions={}|tenants={}|slack={}|share={}|minlife={}|wpc={}|gbpc={}|mig={}x{}|embodied={}|seed={}|batch={batch_buckets}",
        study.vms,
        study.days,
        study.regions,
        study.tenants,
        study.slack_hours,
        study.deferrable_share,
        study.min_deferrable_lifetime_s,
        study.watts_per_core,
        study.gb_per_core,
        study.migration.data_gb,
        study.migration.g_per_gb,
        study.embodied_budget_g,
        study.seed,
    );
    fairco2_montecarlo::checkpoint::fnv1a_hex(text.as_bytes())
}

/// The per-batch (and merged master) accumulator: realized demand per
/// `(scenario, tenant, region, hour)` plus per-tenant carbon and shift
/// counters. Merging is elementwise addition, performed by the engine in
/// batch order, so the master is bit-identical at any thread count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleAccumulator {
    /// Hourly samples per region trace.
    pub hours: usize,
    /// Regions in play.
    pub regions: usize,
    /// Tenants in play.
    pub tenants: usize,
    /// Core-seconds per `(scenario, tenant, region, hour)`, flattened in
    /// that order.
    pub tenant_demand: Vec<f64>,
    /// Operational gCO₂e per `(scenario, tenant)`, transfer carbon
    /// excluded.
    pub operational_g: Vec<f64>,
    /// Transfer gCO₂e per `(scenario, tenant)` (nonzero only under
    /// spatio-temporal).
    pub migration_g: Vec<f64>,
    /// VMs per tenant.
    pub vms: Vec<u64>,
    /// Deferrable VMs per tenant.
    pub deferrable_vms: Vec<u64>,
    /// VMs per `(scenario, tenant)` that moved in time or space.
    pub shifted: Vec<u64>,
    /// VMs per `(scenario, tenant)` that left their home region.
    pub migrated: Vec<u64>,
}

impl ScaleAccumulator {
    /// An all-zero accumulator for the given shape.
    pub fn new(hours: usize, regions: usize, tenants: usize) -> Self {
        let s = SCENARIOS.len();
        Self {
            hours,
            regions,
            tenants,
            tenant_demand: vec![0.0; s * tenants * regions * hours],
            operational_g: vec![0.0; s * tenants],
            migration_g: vec![0.0; s * tenants],
            vms: vec![0; tenants],
            deferrable_vms: vec![0; tenants],
            shifted: vec![0; s * tenants],
            migrated: vec![0; s * tenants],
        }
    }

    fn demand_at(
        &mut self,
        scenario: usize,
        tenant: usize,
        region: usize,
        hour: usize,
    ) -> &mut f64 {
        let idx = ((scenario * self.tenants + tenant) * self.regions + region) * self.hours + hour;
        &mut self.tenant_demand[idx]
    }

    /// Flat index into the `(scenario, tenant)` counters.
    pub fn st(&self, scenario: usize, tenant: usize) -> usize {
        scenario * self.tenants + tenant
    }

    /// Adds `other` elementwise (the engine calls this in batch order).
    ///
    /// # Panics
    ///
    /// Panics when the shapes differ.
    pub fn merge(&mut self, other: &Self) {
        assert!(
            self.hours == other.hours
                && self.regions == other.regions
                && self.tenants == other.tenants,
            "accumulator shapes must match"
        );
        let addf = |a: &mut Vec<f64>, b: &[f64]| a.iter_mut().zip(b).for_each(|(x, y)| *x += y);
        let addu = |a: &mut Vec<u64>, b: &[u64]| a.iter_mut().zip(b).for_each(|(x, y)| *x += y);
        addf(&mut self.tenant_demand, &other.tenant_demand);
        addf(&mut self.operational_g, &other.operational_g);
        addf(&mut self.migration_g, &other.migration_g);
        addu(&mut self.vms, &other.vms);
        addu(&mut self.deferrable_vms, &other.deferrable_vms);
        addu(&mut self.shifted, &other.shifted);
        addu(&mut self.migrated, &other.migrated);
    }
}

/// One completed batch parked in the reorder buffer at checkpoint time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PendingScaleBatch {
    /// Batch index (greater than the snapshot frontier).
    pub batch: u64,
    /// The batch's accumulator, merged without re-execution on resume.
    pub acc: ScaleAccumulator,
}

/// Durable engine state of an Azure-scale run, in the same versioned,
/// digest-guarded envelope as the built-in study snapshots.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaleSnapshot {
    /// Fingerprint of the study + batch size that produced the snapshot.
    pub fingerprint: String,
    /// Batches `0..frontier` are folded into [`Self::acc`].
    pub frontier: u64,
    /// The merged master accumulator.
    pub acc: ScaleAccumulator,
    /// Completed batches beyond the frontier.
    pub pending: Vec<PendingScaleBatch>,
    /// Cumulative engine counters through the frontier.
    pub stats: EngineStats,
}

impl ScaleSnapshot {
    /// Atomically and durably writes the snapshot to `path`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on filesystem failures;
    /// [`CheckpointError::WriteFailed`] when `fault` injects one.
    pub fn save(&self, path: &Path, fault: WriteFault) -> Result<(), CheckpointError> {
        let payload = serde_json::to_string(self).expect("snapshots serialize");
        write_envelope_atomic(path, &payload, fault)
    }

    /// Loads and fully validates a snapshot.
    ///
    /// # Errors
    ///
    /// Every [`CheckpointError`] variant except `WriteFailed`; on any
    /// error no state has been applied.
    pub fn load(path: &Path, expected_fingerprint: &str) -> Result<Self, CheckpointError> {
        let payload = read_envelope(path)?;
        let snap = Self::deserialize(&payload)
            .map_err(|e| CheckpointError::Malformed(format!("payload: {}", e.0)))?;
        if snap.fingerprint != expected_fingerprint {
            return Err(CheckpointError::ConfigMismatch {
                expected: expected_fingerprint.to_owned(),
                found: snap.fingerprint,
            });
        }
        Ok(snap)
    }
}

/// Everything a batch worker needs, shared immutably across threads.
struct StudyCtx<'a> {
    study: &'a AzureScaleStudy,
    regions: &'a [Region],
    /// All regions at once, for the spatio-temporal policy.
    full: &'a PlacementIndex<'a>,
    /// One single-region index per region, for the temporal policy.
    single: &'a [PlacementIndex<'a>],
    pricing: ResourcePricing,
}

impl StudyCtx<'_> {
    fn region_index(&self, name: &str) -> usize {
        self.regions
            .iter()
            .position(|r| r.name == name)
            .expect("placements come from the study's own regions")
    }

    /// Scatters one placed run into the accumulator: demand into the
    /// hour lattice of `(scenario, tenant, region)`, carbon and counters
    /// into the `(scenario, tenant)` slots.
    #[allow(clippy::too_many_arguments)]
    fn record(
        &self,
        acc: &mut ScaleAccumulator,
        scenario: usize,
        tenant: usize,
        region: usize,
        start: i64,
        runtime_s: f64,
        cores: f64,
        operational_g: f64,
        migration_g: f64,
        shifted: bool,
    ) {
        let end = start + runtime_s as i64;
        let mut h = (start / 3600) as usize;
        while (h as i64) * 3600 < end && h < acc.hours {
            let lo = start.max(h as i64 * 3600);
            let hi = end.min((h as i64 + 1) * 3600);
            if hi > lo {
                *acc.demand_at(scenario, tenant, region, h) += cores * (hi - lo) as f64;
            }
            h += 1;
        }
        let st = acc.st(scenario, tenant);
        acc.operational_g[st] += operational_g;
        acc.migration_g[st] += migration_g;
        if shifted {
            acc.shifted[st] += 1;
        }
    }

    /// Folds one VM through all three scenarios.
    fn fold_vm(&self, acc: &mut ScaleAccumulator, tag: u64, vm: &VmEvent, long_running: bool) {
        let s = self.study;
        let tenant = ((tag & 0xFFFF) as usize) % acc.tenants;
        let home = (((tag >> 16) & 0xFFFF) as usize) % self.regions.len();
        let draw = f64::from((tag >> 32) as u32) / 4_294_967_296.0;
        let deferrable = !long_running
            && vm.lifetime_s() >= s.min_deferrable_lifetime_s
            && draw < s.deferrable_share;
        let runtime = vm.lifetime_s();
        let immediate = BatchJob {
            runtime_s: runtime,
            dynamic_power_w: vm.cores * s.watts_per_core,
            cores: vm.cores,
            memory_gb: vm.cores * s.gb_per_core,
            earliest: vm.start,
            deadline: vm.end,
        };
        let p0 = job_carbon(&self.regions[home], &immediate, vm.start, &self.pricing)
            .expect("immediate placement lies inside the traces");
        acc.vms[tenant] += 1;
        if deferrable {
            acc.deferrable_vms[tenant] += 1;
        }
        self.record(
            acc,
            0,
            tenant,
            home,
            vm.start,
            runtime,
            vm.cores,
            p0.operational_g,
            0.0,
            false,
        );
        if !deferrable {
            // The shifting policies leave non-deferrable VMs untouched.
            for scenario in 1..SCENARIOS.len() {
                self.record(
                    acc,
                    scenario,
                    tenant,
                    home,
                    vm.start,
                    runtime,
                    vm.cores,
                    p0.operational_g,
                    0.0,
                    false,
                );
            }
            return;
        }
        // Deferred starts snap to the hour lattice (a scheduler slot),
        // which keeps the placement index on its O(1) prefix path; the
        // immediate placement stays available as the fallback whenever
        // no lattice slot beats it.
        let aligned = BatchJob {
            earliest: (vm.start + 3599) / 3600 * 3600,
            deadline: vm.end + s.slack_hours * 3600,
            ..immediate
        };
        let temporal = self.single[home]
            .best_placement(&aligned, &self.pricing)
            .filter(|p| p.carbon_g < p0.carbon_g);
        match temporal {
            Some(p) => self.record(
                acc,
                1,
                tenant,
                home,
                p.start,
                runtime,
                vm.cores,
                p.operational_g,
                0.0,
                true,
            ),
            None => self.record(
                acc,
                1,
                tenant,
                home,
                vm.start,
                runtime,
                vm.cores,
                p0.operational_g,
                0.0,
                false,
            ),
        }
        let spatio = self
            .full
            .best_placement_migrating(&aligned, home, s.migration, &self.pricing)
            .filter(|p| p.carbon_g < p0.carbon_g);
        match spatio {
            Some(p) => {
                let region = self.region_index(&p.region);
                let penalty = if region == home {
                    0.0
                } else {
                    s.migration.carbon_g()
                };
                let st = acc.st(2, tenant);
                if region != home {
                    acc.migrated[st] += 1;
                }
                self.record(
                    acc,
                    2,
                    tenant,
                    region,
                    p.start,
                    runtime,
                    vm.cores,
                    p.operational_g - penalty,
                    penalty,
                    true,
                );
            }
            None => self.record(
                acc,
                2,
                tenant,
                home,
                vm.start,
                runtime,
                vm.cores,
                p0.operational_g,
                0.0,
                false,
            ),
        }
    }
}

/// One scenario's fleet-wide totals.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioSummary {
    /// Scenario name (one of [`SCENARIOS`]).
    pub scenario: String,
    /// Operational carbon (kg), transfer excluded.
    pub operational_kg: f64,
    /// Embodied carbon attributed to tenants (kg).
    pub embodied_kg: f64,
    /// Cross-region transfer carbon (kg).
    pub migration_kg: f64,
    /// Embodied budget stranded on zero-demand hours (kg).
    pub stranded_embodied_kg: f64,
    /// Operational + embodied + transfer (kg).
    pub total_kg: f64,
    /// Saving versus the baseline scenario (%).
    pub saving_vs_baseline_pct: f64,
    /// VMs that moved in time or space.
    pub shifted_vms: u64,
    /// VMs that left their home region.
    pub migrated_vms: u64,
}

/// One tenant's Fair-CO₂ attribution under each policy.
#[derive(Debug, Clone, Serialize)]
pub struct TenantRow {
    /// Tenant index.
    pub tenant: usize,
    /// VMs hashed to this tenant.
    pub vms: u64,
    /// Of which deferrable.
    pub deferrable_vms: u64,
    /// Attribution under the baseline policy (kg).
    pub baseline_kg: f64,
    /// Attribution under temporal shifting (kg).
    pub temporal_kg: f64,
    /// Attribution under spatio-temporal shifting (kg).
    pub spatio_temporal_kg: f64,
    /// Temporal delta versus baseline (%; negative = saving).
    pub temporal_delta_pct: f64,
    /// Spatio-temporal delta versus baseline (%).
    pub spatio_delta_pct: f64,
}

/// The study's result, written to `results/azure_scale.json`.
#[derive(Debug, Clone, Serialize)]
pub struct AzureScaleReport {
    /// VMs actually generated (long + short).
    pub vms: u64,
    /// Horizon in days.
    pub days: u32,
    /// Region names in play.
    pub regions: Vec<String>,
    /// Tenant count.
    pub tenants: usize,
    /// Deferral slack (hours).
    pub slack_hours: i64,
    /// Deferrable fraction of slack-eligible VMs.
    pub deferrable_share: f64,
    /// Fleet totals per policy.
    pub scenarios: Vec<ScenarioSummary>,
    /// Per-tenant attribution deltas.
    pub tenant_rows: Vec<TenantRow>,
    /// Engine counters (batches, retries, reorder depth).
    pub engine: EngineStats,
}

/// Runs the co-simulation: streams bucket batches through the resumable
/// engine, then closes the attribution loop per scenario and region.
///
/// Bit-identity contract: at a fixed batch size, the report is identical
/// at any thread count, and a killed-then-resumed run reproduces an
/// uninterrupted one bit for bit (pinned in `tests/azure_scale.rs`).
///
/// # Errors
///
/// [`EngineError`] when a batch exhausts its retry budget, a checkpoint
/// read/write fails, or a fault plan kills the run.
pub fn run_azure_scale(
    study: &AzureScaleStudy,
    cfg: EngineConfig,
    opts: &StudyOptions,
) -> Result<AzureScaleReport, EngineError> {
    let vm_cfg = study.vm_config();
    let regions = study.build_regions();
    let full = PlacementIndex::new(&regions);
    let single: Vec<PlacementIndex<'_>> = (0..regions.len())
        .map(|i| PlacementIndex::new(&regions[i..=i]))
        .collect();
    let ctx = StudyCtx {
        study,
        regions: &regions,
        full: &full,
        single: &single,
        pricing: ResourcePricing::paper_default(0.0),
    };
    let fingerprint = scale_fingerprint(study, cfg.batch_trials);
    let buckets = vm_cfg.buckets() as usize;
    let hours = study.hours();
    let mut master = ScaleAccumulator::new(hours, regions.len(), study.tenants);
    let mut carried = EngineStats::default();
    let mut resume_state: Option<ResumeState<ScaleAccumulator>> = None;
    if opts.resume {
        if let Some(spec) = &opts.checkpoint {
            if spec.path.exists() {
                let snap = ScaleSnapshot::load(&spec.path, &fingerprint)?;
                master = snap.acc;
                carried = snap.stats;
                resume_state = Some(ResumeState {
                    frontier: snap.frontier as usize,
                    pending: snap
                        .pending
                        .into_iter()
                        .map(|p| (p.batch as usize, p.acc))
                        .collect(),
                });
            }
        }
    }
    let batch_buckets = cfg.batch_trials.max(1);
    let mut since_write = 0usize;
    let mut writes = 0usize;
    let mut write_attempts = 0usize;
    let stats = stream_batches_resumable(
        buckets,
        cfg.threads,
        batch_buckets,
        opts.retry_budget,
        resume_state,
        || NoScratch,
        |range, _scratch, attempt| {
            let batch = range.start / batch_buckets;
            if let Some(kind) = opts.faults.batch_fault(batch, attempt) {
                FaultPlan::fire(kind, &format!("batch {batch}"))?;
            }
            let mut acc = ScaleAccumulator::new(hours, regions.len(), study.tenants);
            if range.start == 0 {
                // The horizon-spanning reserved VMs ride with batch 0 so
                // they are streamed (and checkpointed) exactly once.
                for (k, vm) in vm_cfg.long_vms().iter().enumerate() {
                    ctx.fold_vm(&mut acc, vm_cfg.vm_tag(u64::MAX, k as u32), vm, true);
                }
            }
            let mut lo = range.start;
            for bucket in range.clone() {
                if let Some(kind) = opts.faults.trial_fault(bucket, attempt) {
                    // Stream the prefix first so the fault fires mid-batch,
                    // like a real bug in per-VM code would.
                    vm_cfg.for_each_vm_in(lo as u64, bucket as u64, |b, k, vm| {
                        ctx.fold_vm(&mut acc, vm_cfg.vm_tag(b, k), &vm, false);
                    });
                    lo = bucket;
                    FaultPlan::fire(kind, &format!("bucket {bucket}"))?;
                }
            }
            vm_cfg.for_each_vm_in(lo as u64, range.end as u64, |b, k, vm| {
                ctx.fold_vm(&mut acc, vm_cfg.vm_tag(b, k), &vm, false);
            });
            Ok(acc)
        },
        |mctx, acc| {
            master.merge(&acc);
            if let Some(spec) = &opts.checkpoint {
                since_write += 1;
                if since_write >= spec.every_batches.max(1) {
                    since_write = 0;
                    let snap = ScaleSnapshot {
                        fingerprint: fingerprint.clone(),
                        frontier: mctx.batch as u64 + 1,
                        acc: master.clone(),
                        pending: mctx
                            .pending
                            .iter()
                            .map(|(b, a)| PendingScaleBatch {
                                batch: *b as u64,
                                acc: a.clone(),
                            })
                            .collect(),
                        stats: EngineStats {
                            trials: ((mctx.batch + 1) * batch_buckets).min(buckets) as u64,
                            batches: mctx.batch as u64 + 1,
                            threads: cfg.threads.max(1) as u64,
                            scratch: carried.scratch,
                            max_reorder_depth: carried.max_reorder_depth,
                            retries: carried.retries + mctx.retries,
                            requeued_batches: carried.requeued_batches + mctx.requeued_batches,
                        },
                    };
                    let fault = if opts.faults.fail_checkpoint_write(write_attempts) {
                        WriteFault::TornTmp
                    } else {
                        WriteFault::None
                    };
                    write_attempts += 1;
                    snap.save(&spec.path, fault)?;
                    writes += 1;
                    if opts.faults.should_kill(writes) {
                        return Err(EngineError::Killed { writes });
                    }
                }
            }
            Ok(())
        },
    )?;
    let mut stats = stats;
    stats.trials = buckets as u64;
    stats.batches = buckets.div_ceil(batch_buckets) as u64;
    stats.retries += carried.retries;
    stats.requeued_batches += carried.requeued_batches;
    stats.scratch.merge(&carried.scratch);
    stats.max_reorder_depth = stats.max_reorder_depth.max(carried.max_reorder_depth);
    Ok(finalize(study, &regions, &master, stats))
}

/// Closes the attribution loop: per scenario and region, re-attributes
/// the embodied budget over the *realized* demand with Temporal Shapley
/// and folds per-tenant embodied shares into the carbon totals.
fn finalize(
    study: &AzureScaleStudy,
    regions: &[Region],
    master: &ScaleAccumulator,
    stats: EngineStats,
) -> AzureScaleReport {
    let hours = master.hours;
    let nr = master.regions;
    let nt = master.tenants;
    let ns = SCENARIOS.len();
    let splits = vec![study.grid_days() as usize, 24];
    let mut embodied = vec![0.0f64; ns * nt];
    let mut stranded = vec![0.0f64; ns];
    for scenario in 0..ns {
        for region in 0..nr {
            let mut total = vec![0.0f64; hours];
            for tenant in 0..nt {
                let base = ((scenario * nt + tenant) * nr + region) * hours;
                for (t, d) in total
                    .iter_mut()
                    .zip(&master.tenant_demand[base..base + hours])
                {
                    *t += d;
                }
            }
            if total.iter().sum::<f64>() <= 0.0 {
                stranded[scenario] += study.embodied_budget_g;
                continue;
            }
            // Average reserved cores per hour, on the grid lattice.
            let series =
                TimeSeries::from_values(0, 3600, total.iter().map(|cs| cs / 3600.0).collect())
                    .expect("region traces are non-empty");
            let attribution = TemporalShapley::new(splits.clone())
                .attribute(&series, study.embodied_budget_g)
                .expect("hour lattice divides the hierarchy");
            stranded[scenario] += attribution.stranded_carbon();
            let intensity = attribution.leaf_intensity().values();
            for tenant in 0..nt {
                let base = ((scenario * nt + tenant) * nr + region) * hours;
                let mut share = 0.0;
                for (i, d) in intensity
                    .iter()
                    .zip(&master.tenant_demand[base..base + hours])
                {
                    // intensity is gCO₂e per core-second; demand is
                    // core-seconds per hour bucket.
                    share += i * d;
                }
                embodied[scenario * nt + tenant] += share;
            }
        }
    }
    let tenant_total = |scenario: usize, tenant: usize| {
        let st = scenario * nt + tenant;
        master.operational_g[st] + master.migration_g[st] + embodied[st]
    };
    let tenant_rows: Vec<TenantRow> = (0..nt)
        .map(|tenant| {
            let baseline = tenant_total(0, tenant);
            let temporal = tenant_total(1, tenant);
            let spatio = tenant_total(2, tenant);
            let pct = |x: f64| {
                if baseline > 0.0 {
                    100.0 * (x - baseline) / baseline
                } else {
                    0.0
                }
            };
            TenantRow {
                tenant,
                vms: master.vms[tenant],
                deferrable_vms: master.deferrable_vms[tenant],
                baseline_kg: baseline / 1000.0,
                temporal_kg: temporal / 1000.0,
                spatio_temporal_kg: spatio / 1000.0,
                temporal_delta_pct: pct(temporal),
                spatio_delta_pct: pct(spatio),
            }
        })
        .collect();
    let scenario_total = |scenario: usize| -> (f64, f64, f64) {
        let mut op = 0.0;
        let mut mig = 0.0;
        let mut emb = 0.0;
        for tenant in 0..nt {
            let st = scenario * nt + tenant;
            op += master.operational_g[st];
            mig += master.migration_g[st];
            emb += embodied[st];
        }
        (op, mig, emb)
    };
    let (b_op, b_mig, b_emb) = scenario_total(0);
    let baseline_total = b_op + b_mig + b_emb;
    let scenarios: Vec<ScenarioSummary> = (0..ns)
        .map(|scenario| {
            let (op, mig, emb) = scenario_total(scenario);
            let total = op + mig + emb;
            let (mut shifted, mut migrated) = (0u64, 0u64);
            for tenant in 0..nt {
                let st = scenario * nt + tenant;
                shifted += master.shifted[st];
                migrated += master.migrated[st];
            }
            ScenarioSummary {
                scenario: SCENARIOS[scenario].to_owned(),
                operational_kg: op / 1000.0,
                embodied_kg: emb / 1000.0,
                migration_kg: mig / 1000.0,
                stranded_embodied_kg: stranded[scenario] / 1000.0,
                total_kg: total / 1000.0,
                saving_vs_baseline_pct: if baseline_total > 0.0 {
                    100.0 * (1.0 - total / baseline_total)
                } else {
                    0.0
                },
                shifted_vms: shifted,
                migrated_vms: migrated,
            }
        })
        .collect();
    AzureScaleReport {
        vms: master.vms.iter().sum(),
        days: study.days,
        regions: regions.iter().map(|r| r.name.clone()).collect(),
        tenants: nt,
        slack_hours: study.slack_hours,
        deferrable_share: study.deferrable_share,
        scenarios,
        tenant_rows,
        engine: stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> AzureScaleStudy {
        AzureScaleStudy {
            vms: 3_000,
            days: 2,
            tenants: 4,
            seed: 99,
            ..AzureScaleStudy::default()
        }
    }

    fn run(study: &AzureScaleStudy, threads: usize, batch: usize) -> AzureScaleReport {
        run_azure_scale(
            study,
            EngineConfig {
                threads,
                batch_trials: batch,
                collect_trials: false,
            },
            &StudyOptions::default(),
        )
        .expect("fault-free run completes")
    }

    /// The scientific payload (scenario totals + tenant rows), without
    /// the engine counters, which legitimately vary with thread count.
    fn payload(report: &AzureScaleReport) -> String {
        format!(
            "{}|{}",
            serde_json::to_string(&report.scenarios).unwrap(),
            serde_json::to_string(&report.tenant_rows).unwrap()
        )
    }

    #[test]
    fn report_is_thread_invariant_at_fixed_batch_size() {
        let study = small();
        let one = payload(&run(&study, 1, 360));
        for threads in [2usize, 8] {
            assert_eq!(
                one,
                payload(&run(&study, threads, 360)),
                "threads {threads}"
            );
        }
    }

    #[test]
    fn shifting_saves_carbon_and_conserves_tenant_sums() {
        let study = small();
        let report = run(&study, 2, 360);
        assert_eq!(report.scenarios.len(), 3);
        let baseline = &report.scenarios[0];
        let spatio = &report.scenarios[2];
        assert!(baseline.shifted_vms == 0 && baseline.migrated_vms == 0);
        assert!(spatio.shifted_vms > 0, "some VMs must shift");
        assert!(
            spatio.total_kg < baseline.total_kg,
            "spatio-temporal shifting must save carbon: {} vs {}",
            spatio.total_kg,
            baseline.total_kg
        );
        // Tenant rows decompose each scenario's total exactly.
        for (idx, scenario) in report.scenarios.iter().enumerate() {
            let sum: f64 = report
                .tenant_rows
                .iter()
                .map(|r| match idx {
                    0 => r.baseline_kg,
                    1 => r.temporal_kg,
                    _ => r.spatio_temporal_kg,
                })
                .sum();
            let total = scenario.operational_kg + scenario.embodied_kg + scenario.migration_kg;
            assert!(
                (sum - total).abs() <= 1e-9 * total.max(1.0),
                "tenant sums must reproduce the {} total: {sum} vs {total}",
                scenario.scenario
            );
        }
    }

    #[test]
    fn temporal_never_beats_spatio_temporal_fleet_wide() {
        let report = run(&small(), 2, 360);
        // The spatio-temporal policy only deviates from temporal when the
        // move wins even after the transfer penalty, so fleet-wide it can
        // only do better or equal.
        assert!(report.scenarios[2].total_kg <= report.scenarios[1].total_kg + 1e-9);
    }

    #[test]
    fn fingerprint_separates_studies_and_batch_sizes() {
        let a = small();
        let mut b = small();
        b.slack_hours = 6;
        assert_ne!(scale_fingerprint(&a, 64), scale_fingerprint(&b, 64));
        assert_ne!(scale_fingerprint(&a, 64), scale_fingerprint(&a, 128));
    }
}
