//! Experiment harness shared by the per-figure binaries.
//!
//! Every table and figure of the paper has a binary in `src/bin/` —
//! `table1`, `fig1`, `fig2`, `fig4`, `fig5`, `fig6`, `fig7`, `fig8`,
//! `fig9`, `fig10`, `fig11`, `fig12`, `fig13` — that prints the rows or
//! series the paper reports and writes a machine-readable copy to
//! `results/<id>.json`. Criterion benches measuring the *performance*
//! claims (Shapley scaling, Temporal Shapley hierarchy cost, method
//! throughput) live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod dump;
pub mod netbench;
pub mod output;
pub mod resume;
pub mod sampling;
pub mod scale;
pub mod surrogate;

pub use args::Args;
pub use dump::{DumpSpec, TrialDump};
pub use netbench::{print_network, run_network, NetworkReport, NetworkStudy};
pub use output::{results_dir, write_json};
pub use resume::{exit_on_engine_error, study_options, CHECKPOINT_FLAGS, DEFAULT_CHECKPOINT_EVERY};
pub use sampling::{print_report, sample_schedule, SamplingReport};
pub use scale::{run_azure_scale, AzureScaleReport, AzureScaleStudy, ScaleSnapshot};
pub use surrogate::{run_surrogate, SurrogateReport, SurrogateStudy, Tolerancepoint};
