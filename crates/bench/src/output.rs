//! Result persistence for the experiment binaries.

use std::fs;
use std::path::PathBuf;

use serde::Serialize;

/// Directory experiment results are written to: `$FAIRCO2_RESULTS`, or
/// `results/` under the workspace root (falling back to the current
/// directory when the binary is run elsewhere).
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("FAIRCO2_RESULTS") {
        return PathBuf::from(dir);
    }
    // The workspace root is two levels above this crate's manifest.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|root| root.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Writes `value` as pretty JSON to `results/<name>.json`, creating the
/// directory if needed, and returns the path written.
///
/// # Panics
///
/// Panics on I/O failure — an experiment whose results cannot be saved
/// should fail loudly.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> PathBuf {
    let dir = results_dir();
    fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("experiment results are serializable");
    fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_json_to_results_dir() {
        let path = write_json("selftest", &serde_json::json!({"ok": true}));
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"ok\": true"));
        fs::remove_file(path).unwrap();
    }

    #[test]
    fn results_dir_is_workspace_results() {
        let dir = results_dir();
        assert!(dir.ends_with("results"));
    }
}
