//! **Figure 1** — minimum required resource capacity is set by *peak*
//! demand: three different demand curves share the same minimum capacity.
//!
//! Prints the three curves and writes `results/fig1.json`.

use fairco2_bench::{write_json, Args};
use fairco2_trace::demand::stepwise_demand;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Curve {
    label: String,
    demand: Vec<f64>,
    peak: f64,
    mean: f64,
}

/// Command-line flags this binary accepts.
const FLAGS: &[&str] = &["seed", "steps", "peak"];

fn main() {
    let args = Args::parse(FLAGS);
    let seed = args.u64("seed", 1);
    let steps = args.usize("steps", 12);
    let peak = args.f64("peak", 96.0);

    let mut rng = StdRng::seed_from_u64(seed);
    let labels = ["bursty", "diurnal-like", "front-loaded"];
    let curves: Vec<Curve> = labels
        .iter()
        .map(|label| {
            let s = stepwise_demand(&mut rng, steps, peak, 0, 3600);
            Curve {
                label: (*label).to_owned(),
                demand: s.values().to_vec(),
                peak: s.peak(),
                mean: s.mean(),
            }
        })
        .collect();

    println!("Figure 1: three demand curves, one minimum required capacity");
    for c in &curves {
        let profile: Vec<String> = c.demand.iter().map(|v| format!("{v:>5.1}")).collect();
        println!("{:<14} [{}]", c.label, profile.join(" "));
        println!(
            "{:<14} peak = {:.1} cores, mean = {:.1} cores",
            "", c.peak, c.mean
        );
    }
    let peaks: Vec<f64> = curves.iter().map(|c| c.peak).collect();
    assert!(
        peaks.iter().all(|p| (p - peaks[0]).abs() < 1e-9),
        "all curves must share the same peak"
    );
    println!(
        "\nAll three require the same provisioned capacity: {:.1} cores (the dashed line).",
        peaks[0]
    );
    println!("Attribution must price contribution to the PEAK, not average use.");

    let path = write_json("fig1", &curves);
    println!("\nwrote {}", path.display());
}
