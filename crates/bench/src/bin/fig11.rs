//! **Figure 11** — stability of the live embodied-carbon-intensity signal
//! under forecast error: the signal built from 21 days of history plus a
//! 9-day forecast vs the oracle signal from the full 30-day trace.
//!
//! Writes `results/fig11.json`.

use fairco2::signal::LiveSignal;
use fairco2_bench::{write_json, Args};
use fairco2_carbon::ServerSpec;
use fairco2_forecast::split_at_day;
use fairco2_shapley::temporal::TemporalShapley;
use fairco2_trace::stats::{mape, worst_ape};
use fairco2_trace::AzureLikeTrace;
use serde::Serialize;

#[derive(Serialize)]
struct Fig11 {
    signal_mape_pct: f64,
    signal_worst_ape_pct: f64,
    oracle_hourly: Vec<f64>,
    forecast_hourly: Vec<f64>,
    error_hourly_pct: Vec<f64>,
}

/// Command-line flags this binary accepts.
const FLAGS: &[&str] = &["seed", "noise-sigma"];

fn main() {
    let args = Args::parse(FLAGS);
    let seed = args.u64("seed", 7);
    let noise = args.f64("noise-sigma", 0.008);

    let trace = AzureLikeTrace::builder()
        .days(30)
        .noise_sigma(noise)
        .seed(seed)
        .build();
    let full = trace.series();
    let (history, holdout) = split_at_day(full, 21).expect("30-day trace splits at day 21");

    let server = ServerSpec::xeon_6240r();
    let fleet = (full.peak() / f64::from(server.physical_cores())).ceil();
    let monthly = server.embodied_per_month().as_grams() * fleet;

    let live = LiveSignal::paper_default();
    let with_forecast = live
        .generate(&history, holdout.len(), monthly)
        .expect("forecaster fits 21 days of history");
    let oracle = TemporalShapley::paper_hierarchy()
        .attribute(full, monthly)
        .expect("8640 samples divide by the hierarchy");

    let start = history.end();
    let pick = |att: &fairco2_shapley::temporal::TemporalAttribution| -> Vec<f64> {
        att.leaf_intensity()
            .iter()
            .filter(|(t, _)| *t >= start)
            .map(|(_, v)| v)
            .collect()
    };
    let actual = pick(&oracle);
    let predicted = pick(&with_forecast);
    let m = mape(&actual, &predicted).expect("aligned signals");
    let w = worst_ape(&actual, &predicted).expect("aligned signals");

    println!("Figure 11: embodied-intensity signal stability under forecast error");
    println!(
        "forecast window: 9 days at 5-minute resolution ({} samples)",
        actual.len()
    );
    println!("signal MAPE      = {m:.2} %   (paper: 2.30 %)");
    println!("signal worst APE = {w:.2} %   (paper: 15.72 %)");

    // Hourly views for plotting.
    let hourly = |v: &[f64]| -> Vec<f64> {
        v.chunks(12)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect()
    };
    let oracle_hourly = hourly(&actual);
    let forecast_hourly = hourly(&predicted);
    let error_hourly_pct: Vec<f64> = oracle_hourly
        .iter()
        .zip(&forecast_hourly)
        .map(|(a, p)| if *a != 0.0 { 100.0 * (p - a) / a } else { 0.0 })
        .collect();

    println!("\nday  mean |error| of hourly signal");
    for d in 0..9 {
        let day = &error_hourly_pct[d * 24..(d + 1) * 24];
        let mean_abs = day.iter().map(|e| e.abs()).sum::<f64>() / 24.0;
        println!("{:>3}  {mean_abs:>6.2} %", 22 + d);
    }

    let out = Fig11 {
        signal_mape_pct: m,
        signal_worst_ape_pct: w,
        oracle_hourly,
        forecast_hourly,
        error_hourly_pct,
    };
    let path = write_json("fig11", &out);
    println!("\nwrote {}", path.display());
}
