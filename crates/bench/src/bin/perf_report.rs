//! **Performance report** — machine-readable timings for the three
//! optimizations of this PR, written to `results/BENCH_shapley.json`:
//!
//! * serial versus parallel exact enumeration (`parallel_exact_shapley`)
//!   across player counts (bit-identity asserted on every trial);
//! * cached versus uncached permutation sampling
//!   (`sampled_shapley_cached`), with eval counts and cache hit rate;
//! * the Gray-code table fill through the segment-tree toggle versus the
//!   original dense re-scan (`ScanPeak`);
//! * a `monte_carlo` section timing the Figure-7 demand study end to end —
//!   the pre-streaming baseline (fresh per-trial allocations, segment-tree
//!   fill, per-player marginal accumulation, replicated below from public
//!   APIs), the collect-then-summarize path, and the streaming engine,
//!   plus the checkpoint layer's costs (snapshot write/restore wall time
//!   and bytes, with a kill-and-resume bit-identity check on a capped
//!   sub-study) — written separately to `results/BENCH_montecarlo.json`;
//! * a `temporal` section timing the flat Temporal Shapley cascade against
//!   the retained per-period path on a year-long 5-minute trace under the
//!   paper hierarchy (bit-identity asserted), plus batched
//!   `workload_carbon_batch` billing-query throughput — written to
//!   `results/BENCH_temporal.json`;
//! * a `service` section driving the always-on attribution service
//!   (`fairco2-serve`) under concurrent ingest + query load: sustained
//!   queries per second and p99 batch latency while epochs publish, a
//!   bit-identity gate against a from-scratch rebuild, and sharded batch
//!   throughput — written to `results/BENCH_service.json`;
//! * a `kernels` section timing each lane-parallel inner-loop kernel
//!   against its retained scalar path on the year-long trace — the fused
//!   per-period sweep, the leaf carbon prefix, the exact-table scatter,
//!   and the paired antithetic replay — reporting GB/s and elements/ns
//!   per kernel with the equality/closeness gates asserted in the same
//!   run, plus a thread-scaling curve (1/2/4/… up to `--threads`) for
//!   the `run_parallel`-backed paths — written to
//!   `results/BENCH_kernels.json`;
//! * a `surrogate` section running the surrogate-accelerated attribution
//!   benchmark (harvest → cross-fitted ridge fit → error-bounded serving
//!   vs the streaming engine) with its determinism and accuracy gates
//!   asserted in-binary before timing — written to
//!   `results/BENCH_surrogate.json` (the dedicated `surrogate` binary
//!   runs the same pipeline at the full 10,000-trial scale);
//! * a `network` section running the LP-valued network attribution game
//!   on the vendored revised simplex: full-lattice duality-gap
//!   certificates, warm-vs-cold bit-identity, and 1/2/8-thread
//!   bit-invariance asserted before timing the lattice fills and exact
//!   Shapley solves, with the warm-start iteration-savings ratio as the
//!   headline — written to `results/BENCH_network.json`.
//!
//! `--section all|shapley|monte-carlo|temporal|service|kernels|surrogate|network`
//! picks one section (default `all`). Tune with `--trials N --threads N
//! --max-n N --permutations N --mc-trials N --temporal-samples N
//! --temporal-queries N --service-ms N --service-tenants N
//! --service-batch N --surrogate-trials N --surrogate-train N
//! --surrogate-audit N --tolerance X --budget X --net-tenants N
//! --seed N`. Each scenario reports the best wall-clock
//! over the trials (the usual benchmarking floor) plus the work counters
//! of one run, and the process-wide peak RSS (`VmHWM`) is recorded at the
//! end of each section.

use std::time::Instant;

use fairco2::demand::{DemandAttributor, DemandProportional, RupBaseline, TemporalFairCo2};
use fairco2::metrics::{summarize, DeviationSummary};
use fairco2_bench::surrogate::print_surrogate;
use fairco2_bench::{
    print_network, run_network, run_surrogate, write_json, Args, NetworkStudy, SurrogateStudy,
};
use fairco2_cluster::policy::FirstFit;
use fairco2_cluster::{run_sharded, Job, JobStream, Simulator};
use fairco2_montecarlo::checkpoint::demand_fingerprint;
use fairco2_montecarlo::schedules::DemandStudy;
use fairco2_montecarlo::streaming::{DemandStudySummary, DEFAULT_BATCH_TRIALS};
use fairco2_montecarlo::{
    stream_demand_study, stream_demand_study_resumable, CheckpointSpec, DemandSnapshot,
    EngineConfig, EngineError, EngineStats, FaultPlan, StudyOptions, WriteFault,
};
use fairco2_serve::{demand_sample, run_load, AttributionService, LoadOptions, ServiceConfig};
use fairco2_shapley::cascade::{BillingQuery, CascadeScratch};
use fairco2_shapley::default_threads;
use fairco2_shapley::exact::{
    exact_shapley, exact_shapley_fast, parallel_exact_shapley, shapley_from_table,
    shapley_from_table_scalar,
};
use fairco2_shapley::game::{
    replay_marginals_into, replay_marginals_paired_into, EvalCounters, Game, IncrementalGame,
    PeakDemandGame, ScanPeak,
};
use fairco2_shapley::kernels::{
    hierarchy_bounds, level_sums_lanes, level_sums_scalar, prefix_blocked, prefix_scalar,
    CANONICAL_LANES, PREFIX_BLOCK,
};
use fairco2_shapley::sampled::{sampled_shapley, sampled_shapley_cached, SampleConfig};
use fairco2_shapley::temporal::{TemporalAttribution, TemporalShapley};
use fairco2_shapley::MaxTree;
use fairco2_trace::scale::ScaleVmConfig;
use fairco2_trace::TimeSeries;
use fairco2_workloads::ALL_WORKLOADS;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

#[derive(Serialize)]
struct PerfReport {
    threads: usize,
    trials: usize,
    exact: Vec<ExactRow>,
    sampling: Vec<SamplingRow>,
    toggle: Vec<ToggleRow>,
    /// Process peak RSS (`VmHWM` from `/proc/self/status`) in KiB, when
    /// the platform exposes it. Dominated by the largest exact table.
    peak_rss_kib: Option<u64>,
}

#[derive(Serialize)]
struct ExactRow {
    players: usize,
    serial_secs: f64,
    parallel_secs: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct SamplingRow {
    players: usize,
    permutations: usize,
    uncached_secs: f64,
    cached_secs: f64,
    uncached_evals: u64,
    cached_evals: u64,
    cache_hit_rate: f64,
}

#[derive(Serialize)]
struct ToggleRow {
    players: usize,
    steps: usize,
    scan_secs: f64,
    tree_secs: f64,
    speedup: f64,
}

/// End-to-end demand-study throughput, written to
/// `results/BENCH_montecarlo.json`.
#[derive(Serialize)]
struct MonteCarloReport {
    /// Study trials timed per variant (`--mc-trials`).
    trials: usize,
    /// Workload cap of the study (the paper's 22 → up to 2²² coalitions).
    max_workloads: usize,
    /// Pre-streaming per-trial path: fresh allocations, segment-tree Gray
    /// fill, per-player marginal accumulation.
    baseline_secs: f64,
    baseline_trials_per_sec: f64,
    /// Current solver, but trials collected into a `Vec` and summarized
    /// at the end (the pre-engine driver shape).
    collect_secs: f64,
    collect_trials_per_sec: f64,
    /// Streaming engine on one thread: scratch arenas + constant-memory
    /// summary accumulators.
    streaming_secs: f64,
    streaming_trials_per_sec: f64,
    /// Streaming vs the pre-streaming baseline (the headline number).
    speedup_vs_baseline: f64,
    /// Streaming vs collect-then-summarize within the current build.
    speedup_vs_collect: f64,
    /// Engine counters from the streaming run (batches, scratch reuse).
    engine: EngineStats,
    /// Trials of the capped kill/resume sub-study below.
    checkpoint_trials: usize,
    /// Snapshot file size on disk after the mid-run kill (bytes).
    checkpoint_bytes: u64,
    /// Best wall time of one atomic snapshot write (tmp + fsync + rename).
    checkpoint_write_secs: f64,
    /// Best wall time to load one snapshot back, including version,
    /// digest, and config-fingerprint validation.
    checkpoint_restore_secs: f64,
    /// The killed-then-resumed summary serialized to the same bytes as
    /// the uninterrupted run (asserted; recorded for the report).
    checkpoint_resume_bit_identical: bool,
    /// Process peak RSS (`VmHWM`) in KiB after the study runs.
    peak_rss_kib: Option<u64>,
}

/// Flat-cascade throughput on the fleet-scale trace, written to
/// `results/BENCH_temporal.json`.
#[derive(Serialize)]
struct TemporalReport {
    /// Demand samples in the trace (default: one year at 5 minutes).
    samples: usize,
    /// Sampling step (s).
    step: u32,
    /// Hierarchy split ratios (the paper's Figure 4 cascade).
    splits: Vec<usize>,
    /// Leaf periods of the hierarchy.
    leaf_periods: usize,
    /// Owned per-period `TimeSeries` the old path materializes per call
    /// (1 root clone + every split product) — all avoided by the flat
    /// engine, which also reuses its scratch across calls.
    old_series_clones: usize,
    /// Retained per-period reference path, fresh call.
    per_period_secs: f64,
    /// Flat cascade, fresh call (new scratch every time).
    flat_fresh_secs: f64,
    /// Flat cascade through a reused `CascadeScratch` (allocation-free
    /// steady state).
    flat_scratch_secs: f64,
    /// Flat cascade with per-level parallel splits at `--threads`.
    flat_parallel_secs: f64,
    /// Fresh flat call vs the per-period reference (the ≥5× target).
    speedup_fresh: f64,
    /// Scratch-reuse flat call vs the per-period reference.
    speedup_scratch: f64,
    /// Billing queries answered per `workload_carbon_batch` timing run.
    queries: usize,
    /// Batched query wall time (one thread, reused output buffer).
    batch_secs: f64,
    /// Batched queries per second (the ≥10⁶/s target).
    queries_per_sec: f64,
    /// Process peak RSS (`VmHWM`) in KiB after the temporal runs.
    peak_rss_kib: Option<u64>,
}

/// Per-kernel scalar-versus-lane timings on the year-long trace, written
/// to `results/BENCH_kernels.json`.
#[derive(Serialize)]
struct KernelsReport {
    /// Demand samples in the trace (default: one year at 5 minutes).
    samples: usize,
    /// Sampling step (s).
    step: u32,
    /// Hierarchy split ratios driving the sweep kernel.
    splits: Vec<usize>,
    /// Accumulator lanes of the canonical reduction.
    lanes: usize,
    /// Block length of the two-level prefix.
    prefix_block: usize,
    /// Players of the synthetic exact table the scatter kernel runs over
    /// (`2ⁿ` masks).
    scatter_players: usize,
    /// Players and steps of the replay game, and permutations per timing
    /// pass.
    replay_players: usize,
    replay_steps: usize,
    replay_permutations: usize,
    /// One row per kernel: fused sweep, leaf prefix, table scatter,
    /// antithetic replay.
    kernels: Vec<KernelRow>,
    /// Every equality/closeness gate between the scalar and lane paths
    /// held before any timing ran (asserted; recorded for the report).
    gates_passed: bool,
    /// Cores the OS reports — speedup curves below are flat when this
    /// is 1 (single-CPU runners time slice the worker threads).
    available_cores: usize,
    /// `run_parallel`-backed paths at 1/2/4/… threads up to `--threads`.
    thread_scaling: Vec<ScalingRow>,
    /// Process peak RSS (`VmHWM`) in KiB.
    peak_rss_kib: Option<u64>,
}

/// One lane-parallel kernel against its retained scalar path.
#[derive(Serialize)]
struct KernelRow {
    kernel: &'static str,
    /// Work units per timing pass (samples, table masks, or profile
    /// samples touched by the replay).
    elems: usize,
    /// Memory traffic per pass the rates below are computed from.
    bytes: u64,
    scalar_secs: f64,
    lane_secs: f64,
    /// Scalar over lane wall time (the ≥1.5× targets are the sweep and
    /// prefix rows).
    speedup: f64,
    scalar_gb_per_sec: f64,
    lane_gb_per_sec: f64,
    scalar_elems_per_ns: f64,
    lane_elems_per_ns: f64,
}

impl KernelRow {
    fn new(
        kernel: &'static str,
        elems: usize,
        bytes: u64,
        scalar_secs: f64,
        lane_secs: f64,
    ) -> Self {
        let gb = bytes as f64 / 1.0e9;
        KernelRow {
            kernel,
            elems,
            bytes,
            scalar_secs,
            lane_secs,
            speedup: scalar_secs / lane_secs,
            scalar_gb_per_sec: gb / scalar_secs,
            lane_gb_per_sec: gb / lane_secs,
            scalar_elems_per_ns: elems as f64 / (scalar_secs * 1.0e9),
            lane_elems_per_ns: elems as f64 / (lane_secs * 1.0e9),
        }
    }
}

/// One point of the thread-scaling curve (results asserted bit-identical
/// to one-thread runs before timing).
#[derive(Serialize)]
struct ScalingRow {
    threads: usize,
    /// `TemporalShapley::attribute_parallel` on the year trace.
    attribute_secs: f64,
    /// `parallel_exact_shapley` on the scaling game.
    exact_secs: f64,
    /// Wall-time ratios versus the 1-thread row.
    attribute_speedup: f64,
    exact_speedup: f64,
}

/// Asserts two attributions agree within `tol` relative error in every
/// observable — the lane canonical reassociates sums, so lane-vs-scalar
/// comparisons are closeness pins, not bit pins.
fn assert_attributions_close(
    label: &str,
    a: &TemporalAttribution,
    b: &TemporalAttribution,
    tol: f64,
) {
    let close = |x: f64, y: f64| (x - y).abs() <= tol * x.abs().max(y.abs()).max(f64::MIN_POSITIVE);
    assert_eq!(a.level_intensity().len(), b.level_intensity().len());
    for (la, lb) in a.level_intensity().iter().zip(b.level_intensity()) {
        for (va, vb) in la.values().iter().zip(lb.values()) {
            assert!(close(*va, *vb), "{label}: level intensity {va} vs {vb}");
        }
    }
    for (va, vb) in a.carbon_prefix().iter().zip(b.carbon_prefix()) {
        assert!(close(*va, *vb), "{label}: carbon prefix {va} vs {vb}");
    }
    assert!(
        close(a.stranded_carbon(), b.stranded_carbon()),
        "{label}: stranded carbon"
    );
}

/// Asserts two attributions agree bit-for-bit in every observable.
fn assert_attributions_identical(label: &str, a: &TemporalAttribution, b: &TemporalAttribution) {
    assert_eq!(a.level_intensity().len(), b.level_intensity().len());
    for (la, lb) in a.level_intensity().iter().zip(b.level_intensity()) {
        for (va, vb) in la.values().iter().zip(lb.values()) {
            assert_eq!(va.to_bits(), vb.to_bits(), "{label}: level intensity");
        }
    }
    for (va, vb) in a.carbon_prefix().iter().zip(b.carbon_prefix()) {
        assert_eq!(va.to_bits(), vb.to_bits(), "{label}: carbon prefix");
    }
    assert_eq!(
        a.stranded_carbon().to_bits(),
        b.stranded_carbon().to_bits(),
        "{label}: stranded carbon"
    );
}

fn peak_game(n: usize, steps: usize, seed: u64) -> PeakDemandGame {
    let mut rng = StdRng::seed_from_u64(seed);
    let demand = (0..n)
        .map(|_| (0..steps).map(|_| rng.gen_range(0.0..96.0)).collect())
        .collect();
    PeakDemandGame::new(demand)
}

/// Schedule-shaped demand: each workload occupies a contiguous window of
/// `steps / 32` slices, so rows are sparse the way schedule-derived demand
/// matrices are. The segment-tree toggle's `O(|support| · log steps)`
/// beats the dense re-scan only under this sparsity; on fully dense rows
/// the linear scan is competitive.
fn windowed_peak_game(n: usize, steps: usize, seed: u64) -> PeakDemandGame {
    let mut rng = StdRng::seed_from_u64(seed);
    let window = (steps / 32).max(1);
    let demand = (0..n)
        .map(|p| {
            let start = p * (steps - window) / n.max(2);
            (0..steps)
                .map(|t| {
                    if (start..start + window).contains(&t) {
                        rng.gen_range(1.0..96.0)
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();
    PeakDemandGame::new(demand)
}

/// Shapley marginal weights `w[k] = k!(n-1-k)!/n!` for coalitions of size
/// `k` not containing the player.
fn marginal_weights(n: usize) -> Vec<f64> {
    let mut w = vec![0.0; n];
    w[0] = 1.0 / n as f64;
    for k in 1..n {
        w[k] = w[k - 1] * k as f64 / (n - k) as f64;
    }
    w
}

/// The pre-streaming exact solver, replicated from public APIs as the
/// baseline for the `monte_carlo` section: a fresh 2ⁿ table per call,
/// filled along the Gray sequence through a [`MaxTree`] toggle, then one
/// marginal-difference accumulation pass per player. The production path
/// replaced the tree with a flat re-scan at schedule-sized step counts and
/// the per-player passes with a single scatter pass over the table.
fn baseline_exact(game: &PeakDemandGame) -> Vec<f64> {
    let n = game.player_count();
    let size = 1u64 << n;
    let mut table = vec![0.0f64; size as usize];
    let mut sums = MaxTree::new(game.steps());
    let mut members = vec![false; n];
    for g in 1..size {
        let gray = g ^ (g >> 1);
        let prev = (g - 1) ^ ((g - 1) >> 1);
        let player = (gray ^ prev).trailing_zeros() as usize;
        let sign = if members[player] { -1.0 } else { 1.0 };
        members[player] = !members[player];
        for (t, &d) in game.demand()[player].iter().enumerate() {
            if d != 0.0 {
                sums.add(t, sign * d);
            }
        }
        table[gray as usize] = sums.max();
    }
    let weights = marginal_weights(n);
    let mut phi = vec![0.0; n];
    for (p, phi_p) in phi.iter_mut().enumerate() {
        let bit = 1u64 << p;
        for mask in 0..size {
            if mask & bit == 0 {
                let k = mask.count_ones() as usize;
                *phi_p += weights[k] * (table[(mask | bit) as usize] - table[mask as usize]);
            }
        }
    }
    phi
}

/// One demand-study trial on the pre-streaming path: fresh generation
/// buffers, [`baseline_exact`] ground truth, allocating attributors.
/// Mirrors `DemandStudy::run_trial` with the optimized solver swapped out.
fn baseline_demand_trial(study: &DemandStudy, trial: usize) -> [DeviationSummary; 3] {
    let schedule = study.generate_schedule(trial);
    let pool = 1000.0;
    let game = PeakDemandGame::new(schedule.demand_matrix());
    let mut truth = baseline_exact(&game);
    let total: f64 = truth.iter().sum();
    assert!(total > 0.0, "generated schedules have positive peak");
    for v in &mut truth {
        *v = pool * *v / total;
    }
    let dev = |method: &dyn DemandAttributor| {
        let shares = method
            .attribute(&schedule, pool)
            .expect("generated schedules are attributable");
        summarize(&shares, &truth).expect("ground truth has non-zero shares")
    };
    [
        dev(&RupBaseline),
        dev(&DemandProportional),
        dev(&TemporalFairCo2::per_step()),
    ]
}

/// Best wall-clock over `trials` runs of `f`.
fn best_secs<T>(trials: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Best wall-clock for each of two kernels, with the trials
/// *interleaved* (`a`, `b`, `a`, `b`, …) rather than phased. On a
/// shared machine a load spike that spans one phase would skew a
/// phased A-then-B comparison in whichever direction it landed;
/// alternating the pair means any quiet window donates a best trial to
/// both sides, so the reported ratio reflects the kernels, not the
/// neighbors.
fn best_secs_pair<T, U>(
    trials: usize,
    mut a: impl FnMut() -> T,
    mut b: impl FnMut() -> U,
) -> (f64, f64) {
    let mut best_a = f64::INFINITY;
    let mut best_b = f64::INFINITY;
    for _ in 0..trials {
        let start = Instant::now();
        std::hint::black_box(a());
        best_a = best_a.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        std::hint::black_box(b());
        best_b = best_b.min(start.elapsed().as_secs_f64());
    }
    (best_a, best_b)
}

/// Deterministic VM → cluster-job mapping for the scale section: the
/// workload kind comes from a multiplicative hash of the job index and
/// the arrival is the VM's creation time. `collect_events` emits VMs
/// with non-decreasing starts, so the stream build skips the re-sort.
fn vm_jobs(vms: &[fairco2_trace::vms::VmEvent]) -> Vec<Job> {
    vms.iter()
        .enumerate()
        .map(|(id, vm)| Job {
            id,
            kind: ALL_WORKLOADS[((id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as usize
                % ALL_WORKLOADS.len()],
            arrival_s: vm.start.max(0) as f64,
        })
        .collect()
}

/// `VmHWM` (peak resident set) in KiB from `/proc/self/status`.
fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Command-line flags this binary accepts.
const FLAGS: &[&str] = &[
    "trials",
    "threads",
    "max-n",
    "permutations",
    "seed",
    "mc-trials",
    "temporal-samples",
    "temporal-queries",
    "section",
    "service-ms",
    "service-tenants",
    "service-batch",
    "service-windows",
    "service-leaf-samples",
    "scale-vms",
    "scale-days",
    "shards",
    "surrogate-trials",
    "surrogate-train",
    "surrogate-audit",
    "tolerance",
    "budget",
    "net-tenants",
];

/// Sections `--section` can pick. `scale` is opt-in only: its full-size
/// run streams ~2M VMs end to end, which is too heavy for `all`.
const SECTIONS: &[&str] = &[
    "all",
    "shapley",
    "monte-carlo",
    "temporal",
    "service",
    "kernels",
    "surrogate",
    "network",
    "scale",
];

fn main() {
    let args = Args::parse(FLAGS);
    let trials = args.usize("trials", 5).max(1);
    let threads = args.usize("threads", default_threads());
    let max_n = args.usize("max-n", 20).max(1);
    let permutations = args.usize("permutations", 4096);
    let seed = args.u64("seed", 7);
    let section = args.str("section").unwrap_or("all").to_owned();
    assert!(
        SECTIONS.contains(&section.as_str()),
        "unknown --section {section}; expected one of {SECTIONS:?}"
    );
    let run = |name: &str| section == name || (section == "all" && name != "scale");

    println!("perf report: {trials} trials, {threads} threads, section {section}");

    if run("shapley") {
        let mut exact = Vec::new();
        // `24` is `MAX_EXACT_PLAYERS`; pass `--max-n 24` to include it (its
        // 2²⁴-entry table dominates the reported peak RSS).
        for n in [12usize, 16, 20, 24] {
            if n > max_n {
                continue;
            }
            let game = peak_game(n, 8, seed + n as u64);
            let reference = exact_shapley(&game).unwrap();
            let serial_secs = best_secs(trials, || exact_shapley(&game).unwrap());
            let parallel_secs = best_secs(trials, || {
                let phi = parallel_exact_shapley(&game, threads).unwrap();
                for (a, b) in phi.iter().zip(&reference) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "parallel exact must be bit-identical"
                    );
                }
                phi
            });
            let row = ExactRow {
                players: n,
                serial_secs,
                parallel_secs,
                speedup: serial_secs / parallel_secs,
            };
            println!(
                "exact      n={:<2}  serial {:.4}s  parallel {:.4}s  ({:.2}x)",
                row.players, row.serial_secs, row.parallel_secs, row.speedup
            );
            exact.push(row);
        }

        let config = SampleConfig {
            max_permutations: permutations,
            target_stderr: 0.0,
            min_permutations: 1,
            antithetic: true,
        };
        let mut sampling = Vec::new();
        for n in [12usize, 16] {
            if n > max_n {
                continue;
            }
            let game = peak_game(n, 8, seed + 100 + n as u64);
            let uncached_secs = best_secs(trials, || {
                sampled_shapley(&game, &config, &mut StdRng::seed_from_u64(seed))
            });
            let cached_secs = best_secs(trials, || {
                sampled_shapley_cached(&game, &config, &mut StdRng::seed_from_u64(seed))
            });
            let uncached = sampled_shapley(&game, &config, &mut StdRng::seed_from_u64(seed));
            let cached = sampled_shapley_cached(&game, &config, &mut StdRng::seed_from_u64(seed));
            let row = SamplingRow {
                players: n,
                permutations,
                uncached_secs,
                cached_secs,
                uncached_evals: uncached.counters.coalition_evals,
                cached_evals: cached.counters.coalition_evals,
                cache_hit_rate: cached.counters.cache_hit_rate(),
            };
            println!(
            "sampling   n={:<2}  uncached {:.4}s / {} evals  cached {:.4}s / {} evals  ({:.1}% hits)",
            row.players,
            row.uncached_secs,
            row.uncached_evals,
            row.cached_secs,
            row.cached_evals,
            100.0 * row.cache_hit_rate
        );
            sampling.push(row);
        }

        let mut toggle = Vec::new();
        // Steps start above `SCAN_FILL_MAX_STEPS` (64): at or below it the
        // hybrid fill routes `PeakDemandGame` to the flat re-scan itself, so
        // the tree-vs-scan comparison would measure two scans.
        for steps in [128usize, 512, 4096] {
            let n = 14.min(max_n);
            let game = windowed_peak_game(n, steps, seed + 200 + steps as u64);
            let scan = ScanPeak(game.clone());
            let tree_secs = best_secs(trials, || exact_shapley_fast(&game).unwrap());
            let scan_secs = best_secs(trials, || exact_shapley_fast(&scan).unwrap());
            let row = ToggleRow {
                players: n,
                steps,
                scan_secs,
                tree_secs,
                speedup: scan_secs / tree_secs,
            };
            println!(
                "toggle     steps={:<4} scan {:.4}s  tree {:.4}s  ({:.2}x)",
                row.steps, row.scan_secs, row.tree_secs, row.speedup
            );
            toggle.push(row);
        }

        let report = PerfReport {
            threads,
            trials,
            exact,
            sampling,
            toggle,
            peak_rss_kib: peak_rss_kib(),
        };
        if let Some(kib) = report.peak_rss_kib {
            println!("peak RSS: {:.1} MiB", kib as f64 / 1024.0);
        }
        let path = write_json("BENCH_shapley", &report);
        println!("wrote {}", path.display());
    }

    // --- monte_carlo: demand-study throughput, end to end ---
    if run("monte-carlo") {
        let mc_trials = args.usize("mc-trials", 1000).max(1);
        let study = DemandStudy {
            trials: mc_trials,
            ..DemandStudy::default()
        };
        println!(
            "monte carlo: {} demand trials, ≤{} workloads, 1 thread",
            mc_trials, study.max_workloads
        );

        // The replica must agree with the production trial before its timing
        // means anything: same deviations, up to accumulation-order rounding.
        for t in 0..3.min(mc_trials) {
            let replica = baseline_demand_trial(&study, t);
            let reference = study.run_trial(t);
            for (a, b) in replica.iter().zip([
                &reference.rup,
                &reference.demand_proportional,
                &reference.fair_co2,
            ]) {
                let close = |x: f64, y: f64| (x - y).abs() < 1e-6 * y.abs().max(1.0);
                assert!(
                    close(a.average_pct, b.average_pct)
                        && close(a.worst_case_pct, b.worst_case_pct),
                    "baseline replica diverged on trial {t}: {a:?} vs {b:?}"
                );
            }
        }

        // Best of two passes per variant, like the solver sections — a study
        // run is long enough that scheduler noise otherwise dominates the
        // collect-vs-streaming margin.
        const MC_REPS: usize = 2;
        let baseline_secs = best_secs(MC_REPS, || {
            for t in 0..mc_trials {
                std::hint::black_box(baseline_demand_trial(&study, t));
            }
        });

        let collect_secs = best_secs(MC_REPS, || {
            let collected: Vec<_> = (0..mc_trials).map(|t| study.run_trial(t)).collect();
            DemandStudySummary::from_trials(&study, &collected, DEFAULT_BATCH_TRIALS)
        });
        let collected: Vec<_> = (0..mc_trials).map(|t| study.run_trial(t)).collect();
        let collect_summary =
            DemandStudySummary::from_trials(&study, &collected, DEFAULT_BATCH_TRIALS);

        let cfg = EngineConfig {
            threads: 1,
            batch_trials: DEFAULT_BATCH_TRIALS,
            collect_trials: false,
        };
        let streaming_secs = best_secs(MC_REPS, || stream_demand_study(&study, cfg));
        let (summary, _, engine) = stream_demand_study(&study, cfg);
        assert_eq!(
            summary.all.rup.average.mean().to_bits(),
            collect_summary.all.rup.average.mean().to_bits(),
            "streaming summary must be bit-identical to collect-then-summarize"
        );

        // Checkpoint/resume cost on a capped sub-study: kill mid-run via the
        // deterministic fault plan, resume, and demand bit-identity with the
        // uninterrupted reference; then time the snapshot write and restore
        // paths in isolation.
        let ck_trials = mc_trials.min(200);
        let ck_study = DemandStudy {
            trials: ck_trials,
            ..DemandStudy::default()
        };
        let ck_path =
            std::env::temp_dir().join(format!("fairco2-perf-{}.ckpt", std::process::id()));
        let _ = std::fs::remove_file(&ck_path);
        let ck_batches = ck_trials.div_ceil(DEFAULT_BATCH_TRIALS);
        let (ck_reference, _, _) =
            stream_demand_study_resumable(&ck_study, cfg, &StudyOptions::default(), |_, _| {})
                .expect("fault-free sub-study");
        let killed = stream_demand_study_resumable(
            &ck_study,
            cfg,
            &StudyOptions {
                checkpoint: Some(CheckpointSpec::new(&ck_path, 1)),
                faults: FaultPlan {
                    kill_after_writes: Some((ck_batches / 2).max(1)),
                    ..FaultPlan::default()
                },
                ..StudyOptions::default()
            },
            |_, _| {},
        );
        assert!(
            matches!(killed, Err(EngineError::Killed { .. })),
            "kill plan must interrupt the sub-study: {killed:?}"
        );
        let checkpoint_bytes = std::fs::metadata(&ck_path)
            .expect("kill leaves a snapshot behind")
            .len();
        let (resumed, _, _) = stream_demand_study_resumable(
            &ck_study,
            cfg,
            &StudyOptions {
                checkpoint: Some(CheckpointSpec::new(&ck_path, 1)),
                resume: true,
                ..StudyOptions::default()
            },
            |_, _| {},
        )
        .expect("resume completes the sub-study");
        let bits = |s: &DemandStudySummary| serde_json::to_string(s).expect("summaries serialize");
        assert_eq!(
            bits(&resumed),
            bits(&ck_reference),
            "resumed sub-study must be bit-identical to the uninterrupted run"
        );
        let fingerprint = demand_fingerprint(&ck_study, DEFAULT_BATCH_TRIALS);
        let snapshot = DemandSnapshot::load(&ck_path, &fingerprint).expect("snapshot validates");
        let checkpoint_restore_secs = best_secs(trials, || {
            DemandSnapshot::load(&ck_path, &fingerprint).expect("snapshot validates")
        });
        let checkpoint_write_secs = best_secs(trials, || {
            snapshot
                .save(&ck_path, WriteFault::None)
                .expect("snapshot writes")
        });
        let _ = std::fs::remove_file(&ck_path);

        let per_sec = |secs: f64| mc_trials as f64 / secs;
        let mc = MonteCarloReport {
            trials: mc_trials,
            max_workloads: study.max_workloads,
            baseline_secs,
            baseline_trials_per_sec: per_sec(baseline_secs),
            collect_secs,
            collect_trials_per_sec: per_sec(collect_secs),
            streaming_secs,
            streaming_trials_per_sec: per_sec(streaming_secs),
            speedup_vs_baseline: baseline_secs / streaming_secs,
            speedup_vs_collect: collect_secs / streaming_secs,
            engine,
            checkpoint_trials: ck_trials,
            checkpoint_bytes,
            checkpoint_write_secs,
            checkpoint_restore_secs,
            checkpoint_resume_bit_identical: true,
            peak_rss_kib: peak_rss_kib(),
        };
        println!(
        "monte carlo  baseline {:.3}s ({:.1}/s)  collect {:.3}s ({:.1}/s)  streaming {:.3}s ({:.1}/s)",
        mc.baseline_secs,
        mc.baseline_trials_per_sec,
        mc.collect_secs,
        mc.collect_trials_per_sec,
        mc.streaming_secs,
        mc.streaming_trials_per_sec
    );
        println!(
        "monte carlo  {:.2}x vs pre-streaming baseline, {:.2}x vs collect; scratch grows {} / reuses {}",
        mc.speedup_vs_baseline, mc.speedup_vs_collect, mc.engine.scratch.table_grows, mc.engine.scratch.table_reuses
    );
        println!(
        "monte carlo  checkpoint {} B: write {:.1} µs, restore {:.1} µs; kill/resume bit-identical over {} trials",
        mc.checkpoint_bytes,
        mc.checkpoint_write_secs * 1.0e6,
        mc.checkpoint_restore_secs * 1.0e6,
        mc.checkpoint_trials
    );
        if let Some(kib) = mc.peak_rss_kib {
            println!("monte carlo  peak RSS {:.1} MiB", kib as f64 / 1024.0);
        }
        let path = write_json("BENCH_montecarlo", &mc);
        println!("wrote {}", path.display());
    }

    // --- temporal: flat cascade + batched billing queries ---
    if run("temporal") {
        let samples = args.usize("temporal-samples", 105_120).max(8_640); // 365 d × 288
        let queries = args.usize("temporal-queries", 1_000_000).max(1);
        let step = 300u32;
        let hierarchy = TemporalShapley::paper_hierarchy();
        println!(
            "temporal: {samples} samples × splits {:?}, {queries} queries",
            hierarchy.splits()
        );

        // A year of 5-minute demand with diurnal + weekly structure and
        // occasional idle spells (so the stranding path runs at scale too).
        let demand = TimeSeries::from_fn(0, step, samples, |t| {
            let day = t as f64 / 86_400.0;
            let base = 40.0
                + 25.0 * (day * std::f64::consts::TAU).sin().abs()
                + 10.0 * (day / 7.0 * std::f64::consts::TAU).cos();
            if (t / step as i64) % 97 == 96 {
                0.0
            } else {
                base.max(0.0)
            }
        })
        .expect("year-long trace is non-empty");
        let total_carbon = 1.0e6;

        let reference = hierarchy
            .attribute_per_period(&demand, total_carbon)
            .expect("paper hierarchy divides the trace");
        // The retained scalar kernels reproduce the per-period reference
        // bit for bit; the default lane canonical reassociates sums, so
        // it is closeness-pinned against the scalar path, and parallel
        // fan-out must reproduce the serial lane bits exactly.
        let scalar = hierarchy.attribute_scalar(&demand, total_carbon).unwrap();
        assert_attributions_identical("scalar flat vs per-period", &reference, &scalar);
        let flat = hierarchy.attribute(&demand, total_carbon).unwrap();
        assert_attributions_close("lane flat vs scalar flat", &scalar, &flat, 1e-9);
        let parallel = hierarchy
            .attribute_parallel(&demand, total_carbon, threads)
            .unwrap();
        assert_attributions_identical("parallel vs serial lane", &flat, &parallel);

        let per_period_secs = best_secs(trials, || {
            hierarchy
                .attribute_per_period(&demand, total_carbon)
                .unwrap()
        });
        let flat_fresh_secs = best_secs(trials, || {
            hierarchy.attribute(&demand, total_carbon).unwrap()
        });
        let mut scratch = CascadeScratch::new();
        hierarchy
            .attribute_with_scratch(&demand, total_carbon, 1, &mut scratch)
            .unwrap();
        let flat_scratch_secs = best_secs(trials, || {
            hierarchy
                .attribute_with_scratch(&demand, total_carbon, 1, &mut scratch)
                .unwrap()
        });
        let flat_parallel_secs = best_secs(trials, || {
            hierarchy
                .attribute_parallel(&demand, total_carbon, threads)
                .unwrap()
        });

        // Query load: random windows over 13 months (some out of range) with
        // varying allocations, answered through the batched index.
        let mut rng = StdRng::seed_from_u64(seed + 999);
        let horizon = demand.end();
        let batch: Vec<BillingQuery> = (0..queries)
            .map(|_| {
                let t0 = rng.gen_range(-86_400..horizon + 86_400);
                let t1 = t0 + rng.gen_range(0..2_592_000);
                (t0, t1, rng.gen_range(0.0..64.0))
            })
            .collect();
        let mut answers = Vec::new();
        flat.workload_carbon_batch_into(&batch, &mut answers);
        for (answer, &(t0, t1, alloc)) in answers
            .iter()
            .step_by(1 + queries / 512)
            .zip(batch.iter().step_by(1 + queries / 512))
        {
            assert_eq!(
                answer.to_bits(),
                flat.workload_carbon(t0, t1, alloc).to_bits(),
                "batched answers must match per-call lookups"
            );
        }
        let batch_secs = best_secs(trials, || {
            flat.workload_carbon_batch_into(&batch, &mut answers);
            answers.last().copied()
        });

        // Owned series the per-period path materializes per call: the root
        // clone plus one series per period of every split level.
        let mut old_series_clones = 1usize;
        let mut periods = 1usize;
        for &m in hierarchy.splits() {
            periods *= m;
            old_series_clones += periods;
        }
        let temporal = TemporalReport {
            samples,
            step,
            splits: hierarchy.splits().to_vec(),
            leaf_periods: periods,
            old_series_clones,
            per_period_secs,
            flat_fresh_secs,
            flat_scratch_secs,
            flat_parallel_secs,
            speedup_fresh: per_period_secs / flat_fresh_secs,
            speedup_scratch: per_period_secs / flat_scratch_secs,
            queries,
            batch_secs,
            queries_per_sec: queries as f64 / batch_secs,
            peak_rss_kib: peak_rss_kib(),
        };
        println!(
        "temporal   per-period {:.4}s  flat {:.4}s ({:.2}x)  scratch {:.4}s ({:.2}x)  parallel {:.4}s",
        temporal.per_period_secs,
        temporal.flat_fresh_secs,
        temporal.speedup_fresh,
        temporal.flat_scratch_secs,
        temporal.speedup_scratch,
        temporal.flat_parallel_secs
    );
        println!(
            "temporal   {} queries in {:.4}s = {:.2}M queries/s; {} series clones avoided per call",
            temporal.queries,
            temporal.batch_secs,
            temporal.queries_per_sec / 1.0e6,
            temporal.old_series_clones
        );
        if let Some(kib) = temporal.peak_rss_kib {
            println!("temporal   peak RSS {:.1} MiB", kib as f64 / 1024.0);
        }
        let path = write_json("BENCH_temporal", &temporal);
        println!("wrote {}", path.display());
    }

    // --- kernels: lane-parallel inner loops vs retained scalar paths ---
    if run("kernels") {
        let samples = args.usize("temporal-samples", 105_120).max(8_640);
        let step = 300u32;
        let hierarchy = TemporalShapley::paper_hierarchy();
        let scatter_players = 20.min(max_n);
        let replay_players = 16.min(max_n).max(2);
        let replay_steps = 96usize;
        let replay_perms = 256usize;
        println!(
            "kernels: {samples} samples, {CANONICAL_LANES} lanes, {PREFIX_BLOCK}-sample prefix blocks"
        );

        // Same year-long diurnal + weekly trace as the temporal section.
        let demand = TimeSeries::from_fn(0, step, samples, |t| {
            let day = t as f64 / 86_400.0;
            let base = 40.0
                + 25.0 * (day * std::f64::consts::TAU).sin().abs()
                + 10.0 * (day / 7.0 * std::f64::consts::TAU).cos();
            if (t / step as i64) % 97 == 96 {
                0.0
            } else {
                base.max(0.0)
            }
        })
        .expect("year-long trace is non-empty");
        let values = demand.values();
        let close = |label: &str, a: f64, b: f64, tol: f64| {
            let scale = a.abs().max(b.abs()).max(f64::MIN_POSITIVE);
            assert!(
                (a - b).abs() <= tol * scale,
                "{label}: scalar {a} vs lane {b}"
            );
        };

        // Fused sweep over the paper hierarchy. Gates: leaf peaks
        // bit-identical (`max` is associative and operand-selecting),
        // per-period sums within the documented reassociation bound.
        let bounds = hierarchy_bounds(samples, hierarchy.splits())
            .expect("paper hierarchy divides the trace");
        let (mut q_s, mut q_l) = (Vec::new(), Vec::new());
        let (mut peaks_s, mut peaks_l) = (Vec::new(), Vec::new());
        level_sums_scalar(values, f64::from(step), &bounds, &mut q_s, &mut peaks_s);
        level_sums_lanes::<CANONICAL_LANES>(
            values,
            f64::from(step),
            &bounds,
            &mut q_l,
            &mut peaks_l,
        );
        for (level, (qs, ql)) in q_s.iter().zip(&q_l).enumerate() {
            for (i, (a, b)) in qs.iter().zip(ql).enumerate() {
                close(&format!("sweep q[{level}][{i}]"), *a, *b, 1e-11);
            }
        }
        for (i, (a, b)) in peaks_s.iter().zip(&peaks_l).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "sweep peak[{i}] must be bit-identical"
            );
        }
        let (sweep_scalar_secs, sweep_lane_secs) = best_secs_pair(
            trials,
            || {
                level_sums_scalar(values, f64::from(step), &bounds, &mut q_s, &mut peaks_s);
                peaks_s.last().copied()
            },
            || {
                level_sums_lanes::<CANONICAL_LANES>(
                    values,
                    f64::from(step),
                    &bounds,
                    &mut q_l,
                    &mut peaks_l,
                );
                peaks_l.last().copied()
            },
        );

        // Leaf carbon prefix. Gates: bit-identical inside the first block
        // (no carry), within one `local + carry` reassociation beyond it.
        let (mut prefix_s, mut prefix_l) = (Vec::new(), Vec::new());
        prefix_scalar(values, f64::from(step), &mut prefix_s);
        prefix_blocked::<PREFIX_BLOCK>(values, f64::from(step), &mut prefix_l);
        assert_eq!(prefix_s.len(), prefix_l.len());
        for (i, (a, b)) in prefix_s
            .iter()
            .zip(&prefix_l)
            .take(PREFIX_BLOCK + 1)
            .enumerate()
        {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "prefix[{i}] in block 0 must be bit-identical"
            );
        }
        for (i, (a, b)) in prefix_s.iter().zip(&prefix_l).enumerate() {
            close(&format!("prefix[{i}]"), *a, *b, 1e-11);
        }
        let (prefix_scalar_secs, prefix_blocked_secs) = best_secs_pair(
            trials,
            || {
                prefix_scalar(values, f64::from(step), &mut prefix_s);
                prefix_s.last().copied()
            },
            || {
                prefix_blocked::<PREFIX_BLOCK>(values, f64::from(step), &mut prefix_l);
                prefix_l.last().copied()
            },
        );

        // Table scatter over a synthetic hash-valued 2ⁿ table, so the
        // kernel is measured apart from the table fill. Non-negative
        // values keep the scalar-vs-lane gate free of cancellation (the
        // tolerance still covers the ~n·ε worst case at 2²⁰ terms).
        let table: Vec<f64> = (0..1u64 << scatter_players)
            .map(|mask| {
                let mut x = mask.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(seed);
                x ^= x >> 33;
                x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
                ((x >> 40) % 8_001) as f64 / 100.0
            })
            .collect();
        let phi_scalar = shapley_from_table_scalar(scatter_players, &table);
        let phi_lane = shapley_from_table(scatter_players, &table);
        for (p, (a, b)) in phi_scalar.iter().zip(&phi_lane).enumerate() {
            close(&format!("scatter phi[{p}]"), *a, *b, 1e-9);
        }
        let (scatter_scalar_secs, scatter_lane_secs) = best_secs_pair(
            trials,
            || shapley_from_table_scalar(scatter_players, &table),
            || shapley_from_table(scatter_players, &table),
        );

        // Paired antithetic replay. Gate: the interleaved pair reproduces
        // two sequential replays bit for bit with equal counter charges.
        let replay_game = peak_game(replay_players, replay_steps, seed + 500);
        let mut rng = StdRng::seed_from_u64(seed + 501);
        let orders: Vec<Vec<usize>> = (0..replay_perms)
            .map(|_| {
                let mut order: Vec<usize> = (0..replay_players).collect();
                for i in (1..replay_players).rev() {
                    order.swap(i, rng.gen_range(0..=i));
                }
                order
            })
            .collect();
        let reversed: Vec<Vec<usize>> = orders
            .iter()
            .map(|o| o.iter().rev().copied().collect())
            .collect();
        let mut state_a = replay_game.initial_state();
        let mut state_b = replay_game.initial_state();
        let (mut fwd_s, mut rev_s) = (vec![0.0; replay_players], vec![0.0; replay_players]);
        let (mut fwd_p, mut rev_p) = (vec![0.0; replay_players], vec![0.0; replay_players]);
        for (order, rev) in orders.iter().zip(&reversed) {
            let mut seq = EvalCounters::default();
            replay_marginals_into(&replay_game, order, &mut state_a, &mut fwd_s, &mut seq);
            replay_marginals_into(&replay_game, rev, &mut state_a, &mut rev_s, &mut seq);
            let mut pair = EvalCounters::default();
            replay_marginals_paired_into(
                &replay_game,
                order,
                &mut state_a,
                &mut state_b,
                &mut fwd_p,
                &mut rev_p,
                &mut pair,
            );
            for p in 0..replay_players {
                assert_eq!(
                    fwd_s[p].to_bits(),
                    fwd_p[p].to_bits(),
                    "paired forward marginal"
                );
                assert_eq!(
                    rev_s[p].to_bits(),
                    rev_p[p].to_bits(),
                    "paired reverse marginal"
                );
            }
            assert_eq!(seq.coalition_evals, pair.coalition_evals);
            assert_eq!(seq.marginal_updates, pair.marginal_updates);
        }
        let mut state_c = replay_game.initial_state();
        let (replay_seq_secs, replay_paired_secs) = best_secs_pair(
            trials,
            || {
                let mut c = EvalCounters::default();
                for (order, rev) in orders.iter().zip(&reversed) {
                    replay_marginals_into(&replay_game, order, &mut state_a, &mut fwd_s, &mut c);
                    replay_marginals_into(&replay_game, rev, &mut state_a, &mut rev_s, &mut c);
                }
                c.marginal_updates
            },
            || {
                let mut c = EvalCounters::default();
                for order in &orders {
                    replay_marginals_paired_into(
                        &replay_game,
                        order,
                        &mut state_c,
                        &mut state_b,
                        &mut fwd_p,
                        &mut rev_p,
                        &mut c,
                    );
                }
                c.marginal_updates
            },
        );

        // Thread-scaling curve for the run_parallel-backed paths, every
        // point asserted bit-identical to the serial result first.
        let available_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let scaling_game = peak_game(replay_players, 8, seed + 600);
        let attr_reference = hierarchy.attribute(&demand, 1.0e6).unwrap();
        let exact_reference = exact_shapley(&scaling_game).unwrap();
        let mut scaling_raw = Vec::new();
        let mut t = 1usize;
        loop {
            let attribution = hierarchy.attribute_parallel(&demand, 1.0e6, t).unwrap();
            assert_attributions_identical("thread scaling", &attr_reference, &attribution);
            let phi = parallel_exact_shapley(&scaling_game, t).unwrap();
            for (a, b) in phi.iter().zip(&exact_reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "thread scaling: exact table");
            }
            let attribute_secs = best_secs(trials, || {
                hierarchy.attribute_parallel(&demand, 1.0e6, t).unwrap()
            });
            let exact_secs =
                best_secs(trials, || parallel_exact_shapley(&scaling_game, t).unwrap());
            scaling_raw.push((t, attribute_secs, exact_secs));
            if t >= threads {
                break;
            }
            t = (t * 2).min(threads);
        }
        let (_, attr_base, exact_base) = scaling_raw[0];
        let thread_scaling: Vec<ScalingRow> = scaling_raw
            .iter()
            .map(|&(threads, attribute_secs, exact_secs)| ScalingRow {
                threads,
                attribute_secs,
                exact_secs,
                attribute_speedup: attr_base / attribute_secs,
                exact_speedup: exact_base / exact_secs,
            })
            .collect();

        let replay_touched = replay_perms * 2 * replay_players * replay_steps;
        let kernels = vec![
            KernelRow::new(
                "fused_sweep",
                samples,
                8 * samples as u64,
                sweep_scalar_secs,
                sweep_lane_secs,
            ),
            // Prefix traffic: one read per sample plus one write per slot.
            KernelRow::new(
                "leaf_prefix",
                samples,
                8 * (2 * samples + 1) as u64,
                prefix_scalar_secs,
                prefix_blocked_secs,
            ),
            KernelRow::new(
                "table_scatter",
                1 << scatter_players,
                8u64 << scatter_players,
                scatter_scalar_secs,
                scatter_lane_secs,
            ),
            // Replay traffic: each marginal reads one demand row and
            // updates the profile in place.
            KernelRow::new(
                "antithetic_replay",
                replay_touched,
                16 * replay_touched as u64,
                replay_seq_secs,
                replay_paired_secs,
            ),
        ];
        for row in &kernels {
            println!(
                "kernels    {:<17} scalar {:>9.2} µs ({:>6.2} GB/s)  lane {:>9.2} µs ({:>6.2} GB/s)  ({:.2}x)",
                row.kernel,
                row.scalar_secs * 1.0e6,
                row.scalar_gb_per_sec,
                row.lane_secs * 1.0e6,
                row.lane_gb_per_sec,
                row.speedup
            );
        }
        for row in &thread_scaling {
            println!(
                "kernels    threads={:<2} attribute {:>9.2} µs ({:.2}x)  exact n={} {:>9.2} µs ({:.2}x)",
                row.threads,
                row.attribute_secs * 1.0e6,
                row.attribute_speedup,
                replay_players,
                row.exact_secs * 1.0e6,
                row.exact_speedup
            );
        }
        let report = KernelsReport {
            samples,
            step,
            splits: hierarchy.splits().to_vec(),
            lanes: CANONICAL_LANES,
            prefix_block: PREFIX_BLOCK,
            scatter_players,
            replay_players,
            replay_steps,
            replay_permutations: replay_perms,
            kernels,
            gates_passed: true,
            available_cores,
            thread_scaling,
            peak_rss_kib: peak_rss_kib(),
        };
        if available_cores == 1 {
            println!(
                "kernels    note: 1 available core — thread-scaling points time-slice one CPU"
            );
        }
        if let Some(kib) = report.peak_rss_kib {
            println!("kernels    peak RSS {:.1} MiB", kib as f64 / 1024.0);
        }
        let path = write_json("BENCH_kernels", &report);
        println!("wrote {}", path.display());
    }

    // --- service: the always-on attribution service under load ---
    if run("service") {
        let opts = LoadOptions {
            duration_ms: args.u64("service-ms", 2_000).max(100),
            tenants: args.usize("service-tenants", 2).max(1),
            batch: args.usize("service-batch", 256).max(1),
            max_windows: args.u64("service-windows", 256).max(1),
            seed,
        };
        let config = ServiceConfig {
            start: 0,
            step: 300,
            splits: vec![4, 3],
            leaf_samples: args.usize("service-leaf-samples", 4).max(1),
            carbon_per_window: 1000.0,
            persist_dir: None,
        };
        println!(
            "service: {} ms load, {} tenants × {}-query batches, {}-sample windows",
            opts.duration_ms,
            opts.tenants,
            opts.batch,
            config.window_samples()
        );

        // Correctness gate before any throughput number means anything: a
        // small deterministic stream's final epoch must reproduce the
        // from-scratch rebuild (per-window frozen cascade + the canonical
        // segmented prefix) bit for bit.
        let rebuild_bit_identical = {
            let check = ServiceConfig {
                leaf_samples: 2,
                ..config.clone()
            };
            let w = check.window_samples();
            let windows = 3usize;
            let mut service = AttributionService::start(check.clone()).expect("service starts");
            for i in 0..(windows * w) as u64 {
                service.ingest(demand_sample(i, opts.seed)).expect("ingest");
            }
            let handle = service.handle();
            let snapshot = handle.epoch();
            assert_eq!(snapshot.epoch, windows as u64);
            let frozen = TemporalShapley::new(check.splits.clone());
            let mut cum = 0.0;
            for k in 0..windows {
                let values: Vec<f64> = (0..w)
                    .map(|i| demand_sample((k * w + i) as u64, opts.seed))
                    .collect();
                let series = TimeSeries::from_values(
                    check.start + (k * w) as i64 * i64::from(check.step),
                    check.step,
                    values,
                )
                .unwrap();
                let attribution = frozen.attribute(&series, check.carbon_per_window).unwrap();
                for (i, v) in attribution.carbon_prefix().iter().enumerate() {
                    if i == 0 && k > 0 {
                        continue; // boundary index belongs to this window's cum
                    }
                    assert_eq!(
                        snapshot.prefix_at(k * w + i).to_bits(),
                        (cum + v).to_bits(),
                        "service prefix diverged from rebuild at window {k} sample {i}"
                    );
                }
                cum += attribution.carbon_prefix()[w];
            }
            true
        };

        let report = run_load(config.clone(), &opts).expect("load run completes");
        assert!(
            report.queries_answered > 0 && report.windows_closed > 0,
            "load run must both ingest and answer: {report:?}"
        );

        // Sharded batch throughput on the final state: one big batch split
        // over `--threads` run_parallel workers with an in-order merge.
        let sharded_queries = 100_000usize;
        let mut service = AttributionService::start(config.clone()).expect("service starts");
        let w = config.window_samples() as u64;
        for i in 0..opts.max_windows.min(64) * w {
            service.ingest(demand_sample(i, opts.seed)).expect("ingest");
        }
        let handle = service.handle();
        let epoch = handle.epoch();
        let span = (epoch.samples() as u64 + 1) * u64::from(config.step);
        let batch: Vec<BillingQuery> = (0..sharded_queries as u64)
            .map(|i| {
                let a = demand_sample(2 * i, 3).to_bits() % span;
                let b = demand_sample(2 * i + 1, 3).to_bits() % span;
                (
                    config.start + a.min(b) as i64,
                    config.start + a.max(b) as i64,
                    1.0 + (i % 7) as f64,
                )
            })
            .collect();
        let sequential = epoch.carbon_batch_sharded(&batch, 1);
        let sharded = epoch.carbon_batch_sharded(&batch, threads);
        for (a, b) in sequential.iter().zip(&sharded) {
            assert_eq!(a.to_bits(), b.to_bits(), "sharding changed an answer");
        }
        let sharded_secs = best_secs(trials, || epoch.carbon_batch_sharded(&batch, threads));

        let service_report = ServiceReport {
            duration_ms: opts.duration_ms,
            tenants: opts.tenants,
            batch: opts.batch,
            window_samples: config.window_samples(),
            splits: config.splits.clone(),
            ingested_samples: report.ingested_samples,
            windows_closed: report.windows_closed,
            queries_answered: report.queries_answered,
            queries_per_sec: report.queries_per_sec,
            p99_batch_latency_us: report.p99_batch_latency_us,
            ops_per_sample: report.ops_per_sample,
            rebuild_bit_identical,
            sharded_threads: threads,
            sharded_queries,
            sharded_secs,
            sharded_queries_per_sec: sharded_queries as f64 / sharded_secs,
            peak_rss_kib: peak_rss_kib(),
        };
        println!(
        "service    ingested {} samples / {} windows; {:.0} queries/s sustained, p99 batch {:.1} µs",
        service_report.ingested_samples,
        service_report.windows_closed,
        service_report.queries_per_sec,
        service_report.p99_batch_latency_us
    );
        println!(
        "service    {:.2} engine ops/sample (amortized O(log n) gauge); sharded {:.2}M queries/s at {} threads; rebuild bit-identical: {}",
        service_report.ops_per_sample,
        service_report.sharded_queries_per_sec / 1.0e6,
        service_report.sharded_threads,
        service_report.rebuild_bit_identical
    );
        let path = write_json("BENCH_service", &service_report);
        println!("wrote {}", path.display());
    }

    if run("surrogate") {
        let defaults = SurrogateStudy::default();
        let surrogate_study = SurrogateStudy {
            trials: args.usize("surrogate-trials", 2000),
            train_trials: args.usize("surrogate-train", defaults.train_trials),
            audit_trials: args.usize("surrogate-audit", 200),
            threads,
            tolerance: args.f64("tolerance", defaults.tolerance),
            accuracy_budget: args.f64("budget", defaults.accuracy_budget),
            seed: args.u64("seed", defaults.seed),
            reps: trials.min(3),
            ..defaults
        };
        println!(
            "surrogate  {} eval trials, {} train, {} audited (tol {}, budget {})",
            surrogate_study.trials,
            surrogate_study.train_trials,
            surrogate_study.audit_trials,
            surrogate_study.tolerance,
            surrogate_study.accuracy_budget
        );
        let surrogate_report = run_surrogate(&surrogate_study);
        print_surrogate(&surrogate_report);
        let path = write_json("BENCH_surrogate", &surrogate_report);
        println!("wrote {}", path.display());
    }

    if run("network") {
        let network_study = NetworkStudy {
            tenants: args.usize("net-tenants", 12),
            threads,
            reps: trials.min(3),
            ..NetworkStudy::default()
        };
        println!(
            "network    {} tenants ({} coalitions), gates before timing",
            network_study.tenants,
            1u64 << network_study.tenants
        );
        let network_report = run_network(&network_study);
        print_network(&network_report);
        let path = write_json("BENCH_network", &network_report);
        println!("wrote {}", path.display());
    }

    if run("scale") {
        let scale_vms = args.u64("scale-vms", 2_000_000);
        let scale_days = args.usize("scale-days", 14).max(1) as u32;
        let shards = args.usize("shards", 256).max(1);
        println!(
            "scale      ~{scale_vms} VMs over {scale_days} days, {shards} shards, {threads} threads"
        );

        // Correctness gates first, at a size small enough to run on every
        // invocation: the streamed difference-array demand must match the
        // materialized population bit for bit at any thread count, and the
        // sharded simulator must be thread-invariant with its one-shard
        // case collapsing to the serial reference.
        let gate_cfg = ScaleVmConfig::for_total_vms(20_000, 2);
        let gate_population = gate_cfg.collect_events(1);
        let gate_demand = gate_population.demand_series(300);
        for t in [1usize, 2, 8] {
            let streamed = gate_cfg.demand_series(300, t);
            assert_eq!(streamed.len(), gate_demand.len(), "demand grid length");
            for (a, b) in streamed.values().iter().zip(gate_demand.values()) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "streamed demand must be bit-identical at {t} threads"
                );
            }
        }
        let sim = Simulator::paper_default();
        let gate_stream = JobStream::from_sorted(vm_jobs(gate_population.vms()));
        let serial = sim.run(&gate_stream, &mut FirstFit);
        assert_eq!(
            run_sharded(&sim, &gate_stream, 1, 1, |_| Box::new(FirstFit)),
            serial,
            "one shard must collapse to the serial simulator"
        );
        let sharded_ref = run_sharded(&sim, &gate_stream, 8, 1, |_| Box::new(FirstFit));
        for t in [2usize, 8] {
            assert_eq!(
                run_sharded(&sim, &gate_stream, 8, t, |_| Box::new(FirstFit)),
                sharded_ref,
                "sharded outcome must be thread-invariant at {t} threads"
            );
        }
        let gates_passed = true;
        println!("scale      gates passed: streamed demand + sharded simulator bit-identical");

        // Full-size pipeline, one timed pass per stage (a 2M-VM stage is
        // too heavy to repeat for a best-of-N).
        let total_start = Instant::now();
        let cfg = ScaleVmConfig::for_total_vms(scale_vms, scale_days);

        let start = Instant::now();
        let generated_vms = cfg.count_vms(threads) + cfg.long_vm_count as u64;
        let generation_secs = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let demand = cfg.demand_series(300, threads);
        let demand_secs = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let population = cfg.collect_events(threads);
        let collect_secs = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let stream = JobStream::from_sorted(vm_jobs(population.vms()));
        let stream_build_secs = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let outcome = run_sharded(&sim, &stream, shards, threads, |_| Box::new(FirstFit));
        let cluster_secs = start.elapsed().as_secs_f64();
        let total_secs = total_start.elapsed().as_secs_f64();

        // Documented memory budget for the full 2M-VM pipeline; asserted
        // here so a regression in peak RSS fails the run, not just the
        // README claim.
        let rss_budget_kib = 2 * 1024 * 1024;
        let rss = peak_rss_kib();
        if let Some(kib) = rss {
            assert!(
                kib <= rss_budget_kib,
                "peak RSS {kib} KiB exceeds the {rss_budget_kib} KiB budget"
            );
        }

        let scale_report = ScaleReport {
            requested_vms: scale_vms,
            generated_vms,
            days: scale_days,
            shards,
            threads,
            gates_passed,
            generation_secs,
            generation_vms_per_sec: generated_vms as f64 / generation_secs,
            demand_secs,
            demand_points: demand.len(),
            peak_cores: demand.peak(),
            collect_secs,
            stream_build_secs,
            cluster_secs,
            cluster_jobs: stream.len(),
            cluster_jobs_per_sec: stream.len() as f64 / cluster_secs,
            peak_nodes: outcome.peak_nodes,
            node_seconds: outcome.node_seconds,
            makespan_s: outcome.makespan_s,
            total_secs,
            peak_rss_kib: rss,
            rss_budget_kib,
        };
        println!(
            "scale      generated {} VMs in {:.2} s ({:.2}M VMs/s); demand sweep {:.2} s over {} points",
            scale_report.generated_vms,
            scale_report.generation_secs,
            scale_report.generation_vms_per_sec / 1.0e6,
            scale_report.demand_secs,
            scale_report.demand_points
        );
        println!(
            "scale      cluster {} jobs / {} shards in {:.2} s ({:.0} jobs/s); peak {} nodes",
            scale_report.cluster_jobs,
            scale_report.shards,
            scale_report.cluster_secs,
            scale_report.cluster_jobs_per_sec,
            scale_report.peak_nodes
        );
        println!(
            "scale      end to end {:.2} s; peak RSS {} KiB (budget {} KiB)",
            scale_report.total_secs,
            scale_report.peak_rss_kib.unwrap_or(0),
            scale_report.rss_budget_kib
        );
        let path = write_json("BENCH_scale", &scale_report);
        println!("wrote {}", path.display());
    }
}

/// Always-on service throughput under concurrent ingest + query,
/// written to `results/BENCH_service.json`.
#[derive(Serialize)]
struct ServiceReport {
    /// Load-run length (ms).
    duration_ms: u64,
    /// Concurrent tenant query threads.
    tenants: usize,
    /// Queries per tenant batch.
    batch: usize,
    /// Samples per attribution window.
    window_samples: usize,
    /// Hierarchy split ratios.
    splits: Vec<usize>,
    /// Samples ingested during the load run.
    ingested_samples: u64,
    /// Windows closed (== epochs published).
    windows_closed: u64,
    /// Billing queries answered across all tenants.
    queries_answered: u64,
    /// Sustained queries per second under concurrent ingestion.
    queries_per_sec: f64,
    /// 99th-percentile per-batch latency (µs).
    p99_batch_latency_us: f64,
    /// Engine primitive operations per ingested sample — machine-speed
    /// independent; constant in stream length (the O(log n) gauge).
    ops_per_sample: f64,
    /// Final epoch reproduced the from-scratch rebuild bit for bit
    /// (asserted; recorded for the report).
    rebuild_bit_identical: bool,
    /// Threads the sharded batch ran on.
    sharded_threads: usize,
    /// Queries in the sharded batch.
    sharded_queries: usize,
    /// Best wall time of one sharded batch.
    sharded_secs: f64,
    /// Sharded queries per second.
    sharded_queries_per_sec: f64,
    /// Process peak RSS (`VmHWM`) in KiB.
    peak_rss_kib: Option<u64>,
}

/// Azure-scale pipeline throughput (2M-VM trace → demand sweep →
/// sharded cluster co-simulation), written to `results/BENCH_scale.json`.
/// The correctness gates (streamed-vs-materialized demand, sharded
/// thread invariance, one-shard == serial) run in-binary before any
/// timing starts; `gates_passed` records that they held.
#[derive(Serialize)]
struct ScaleReport {
    /// VM count requested on the command line.
    requested_vms: u64,
    /// VMs the deterministic generator actually produced.
    generated_vms: u64,
    /// Trace length in days.
    days: u32,
    /// Node-range shards the cluster simulation ran on.
    shards: usize,
    /// Worker threads.
    threads: usize,
    /// All reduced-size bit-identity gates held (asserted; recorded).
    gates_passed: bool,
    /// Streaming generation pass (count only, no materialization).
    generation_secs: f64,
    /// Generated VMs per second.
    generation_vms_per_sec: f64,
    /// Streamed `O(V + T)` difference-array demand sweep.
    demand_secs: f64,
    /// Points in the 300 s demand grid.
    demand_points: usize,
    /// Peak simultaneous cores across the fleet.
    peak_cores: f64,
    /// Full population materialization (the only `O(V)`-memory stage).
    collect_secs: f64,
    /// VM → job mapping plus sorted stream build.
    stream_build_secs: f64,
    /// Sharded cluster co-simulation.
    cluster_secs: f64,
    /// Jobs simulated.
    cluster_jobs: usize,
    /// Simulated jobs per second.
    cluster_jobs_per_sec: f64,
    /// Peak simultaneously occupied nodes.
    peak_nodes: usize,
    /// Total occupied node-seconds.
    node_seconds: f64,
    /// Completion time of the last job (s).
    makespan_s: f64,
    /// Whole pipeline wall time.
    total_secs: f64,
    /// Process peak RSS (`VmHWM`) in KiB.
    peak_rss_kib: Option<u64>,
    /// Documented memory budget (2 GiB), asserted in-binary.
    rss_budget_kib: u64,
}
