//! **Performance report** — machine-readable timings for the three
//! optimizations of this PR, written to `results/BENCH_shapley.json`:
//!
//! * serial versus parallel exact enumeration (`parallel_exact_shapley`)
//!   across player counts (bit-identity asserted on every trial);
//! * cached versus uncached permutation sampling
//!   (`sampled_shapley_cached`), with eval counts and cache hit rate;
//! * the Gray-code table fill through the segment-tree toggle versus the
//!   original dense re-scan (`ScanPeak`);
//! * a `monte_carlo` section timing the Figure-7 demand study end to end —
//!   the pre-streaming baseline (fresh per-trial allocations, segment-tree
//!   fill, per-player marginal accumulation, replicated below from public
//!   APIs), the collect-then-summarize path, and the streaming engine,
//!   plus the checkpoint layer's costs (snapshot write/restore wall time
//!   and bytes, with a kill-and-resume bit-identity check on a capped
//!   sub-study) — written separately to `results/BENCH_montecarlo.json`;
//! * a `temporal` section timing the flat Temporal Shapley cascade against
//!   the retained per-period path on a year-long 5-minute trace under the
//!   paper hierarchy (bit-identity asserted), plus batched
//!   `workload_carbon_batch` billing-query throughput — written to
//!   `results/BENCH_temporal.json`;
//! * a `service` section driving the always-on attribution service
//!   (`fairco2-serve`) under concurrent ingest + query load: sustained
//!   queries per second and p99 batch latency while epochs publish, a
//!   bit-identity gate against a from-scratch rebuild, and sharded batch
//!   throughput — written to `results/BENCH_service.json`.
//!
//! `--section all|shapley|monte-carlo|temporal|service` picks one section
//! (default `all`). Tune with `--trials N --threads N --max-n N
//! --permutations N --mc-trials N --temporal-samples N
//! --temporal-queries N --service-ms N --service-tenants N
//! --service-batch N --seed N`. Each scenario reports the best wall-clock
//! over the trials (the usual benchmarking floor) plus the work counters
//! of one run, and the process-wide peak RSS (`VmHWM`) is recorded at the
//! end of each section.

use std::time::Instant;

use fairco2::demand::{DemandAttributor, DemandProportional, RupBaseline, TemporalFairCo2};
use fairco2::metrics::{summarize, DeviationSummary};
use fairco2_bench::{write_json, Args};
use fairco2_montecarlo::checkpoint::demand_fingerprint;
use fairco2_montecarlo::schedules::DemandStudy;
use fairco2_montecarlo::streaming::{DemandStudySummary, DEFAULT_BATCH_TRIALS};
use fairco2_montecarlo::{
    stream_demand_study, stream_demand_study_resumable, CheckpointSpec, DemandSnapshot,
    EngineConfig, EngineError, EngineStats, FaultPlan, StudyOptions, WriteFault,
};
use fairco2_serve::{demand_sample, run_load, AttributionService, LoadOptions, ServiceConfig};
use fairco2_shapley::cascade::{BillingQuery, CascadeScratch};
use fairco2_shapley::default_threads;
use fairco2_shapley::exact::{exact_shapley, exact_shapley_fast, parallel_exact_shapley};
use fairco2_shapley::game::{Game, PeakDemandGame, ScanPeak};
use fairco2_shapley::sampled::{sampled_shapley, sampled_shapley_cached, SampleConfig};
use fairco2_shapley::temporal::{TemporalAttribution, TemporalShapley};
use fairco2_shapley::MaxTree;
use fairco2_trace::TimeSeries;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

#[derive(Serialize)]
struct PerfReport {
    threads: usize,
    trials: usize,
    exact: Vec<ExactRow>,
    sampling: Vec<SamplingRow>,
    toggle: Vec<ToggleRow>,
    /// Process peak RSS (`VmHWM` from `/proc/self/status`) in KiB, when
    /// the platform exposes it. Dominated by the largest exact table.
    peak_rss_kib: Option<u64>,
}

#[derive(Serialize)]
struct ExactRow {
    players: usize,
    serial_secs: f64,
    parallel_secs: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct SamplingRow {
    players: usize,
    permutations: usize,
    uncached_secs: f64,
    cached_secs: f64,
    uncached_evals: u64,
    cached_evals: u64,
    cache_hit_rate: f64,
}

#[derive(Serialize)]
struct ToggleRow {
    players: usize,
    steps: usize,
    scan_secs: f64,
    tree_secs: f64,
    speedup: f64,
}

/// End-to-end demand-study throughput, written to
/// `results/BENCH_montecarlo.json`.
#[derive(Serialize)]
struct MonteCarloReport {
    /// Study trials timed per variant (`--mc-trials`).
    trials: usize,
    /// Workload cap of the study (the paper's 22 → up to 2²² coalitions).
    max_workloads: usize,
    /// Pre-streaming per-trial path: fresh allocations, segment-tree Gray
    /// fill, per-player marginal accumulation.
    baseline_secs: f64,
    baseline_trials_per_sec: f64,
    /// Current solver, but trials collected into a `Vec` and summarized
    /// at the end (the pre-engine driver shape).
    collect_secs: f64,
    collect_trials_per_sec: f64,
    /// Streaming engine on one thread: scratch arenas + constant-memory
    /// summary accumulators.
    streaming_secs: f64,
    streaming_trials_per_sec: f64,
    /// Streaming vs the pre-streaming baseline (the headline number).
    speedup_vs_baseline: f64,
    /// Streaming vs collect-then-summarize within the current build.
    speedup_vs_collect: f64,
    /// Engine counters from the streaming run (batches, scratch reuse).
    engine: EngineStats,
    /// Trials of the capped kill/resume sub-study below.
    checkpoint_trials: usize,
    /// Snapshot file size on disk after the mid-run kill (bytes).
    checkpoint_bytes: u64,
    /// Best wall time of one atomic snapshot write (tmp + fsync + rename).
    checkpoint_write_secs: f64,
    /// Best wall time to load one snapshot back, including version,
    /// digest, and config-fingerprint validation.
    checkpoint_restore_secs: f64,
    /// The killed-then-resumed summary serialized to the same bytes as
    /// the uninterrupted run (asserted; recorded for the report).
    checkpoint_resume_bit_identical: bool,
    /// Process peak RSS (`VmHWM`) in KiB after the study runs.
    peak_rss_kib: Option<u64>,
}

/// Flat-cascade throughput on the fleet-scale trace, written to
/// `results/BENCH_temporal.json`.
#[derive(Serialize)]
struct TemporalReport {
    /// Demand samples in the trace (default: one year at 5 minutes).
    samples: usize,
    /// Sampling step (s).
    step: u32,
    /// Hierarchy split ratios (the paper's Figure 4 cascade).
    splits: Vec<usize>,
    /// Leaf periods of the hierarchy.
    leaf_periods: usize,
    /// Owned per-period `TimeSeries` the old path materializes per call
    /// (1 root clone + every split product) — all avoided by the flat
    /// engine, which also reuses its scratch across calls.
    old_series_clones: usize,
    /// Retained per-period reference path, fresh call.
    per_period_secs: f64,
    /// Flat cascade, fresh call (new scratch every time).
    flat_fresh_secs: f64,
    /// Flat cascade through a reused `CascadeScratch` (allocation-free
    /// steady state).
    flat_scratch_secs: f64,
    /// Flat cascade with per-level parallel splits at `--threads`.
    flat_parallel_secs: f64,
    /// Fresh flat call vs the per-period reference (the ≥5× target).
    speedup_fresh: f64,
    /// Scratch-reuse flat call vs the per-period reference.
    speedup_scratch: f64,
    /// Billing queries answered per `workload_carbon_batch` timing run.
    queries: usize,
    /// Batched query wall time (one thread, reused output buffer).
    batch_secs: f64,
    /// Batched queries per second (the ≥10⁶/s target).
    queries_per_sec: f64,
    /// Process peak RSS (`VmHWM`) in KiB after the temporal runs.
    peak_rss_kib: Option<u64>,
}

/// Asserts two attributions agree bit-for-bit in every observable.
fn assert_attributions_identical(label: &str, a: &TemporalAttribution, b: &TemporalAttribution) {
    assert_eq!(a.level_intensity().len(), b.level_intensity().len());
    for (la, lb) in a.level_intensity().iter().zip(b.level_intensity()) {
        for (va, vb) in la.values().iter().zip(lb.values()) {
            assert_eq!(va.to_bits(), vb.to_bits(), "{label}: level intensity");
        }
    }
    for (va, vb) in a.carbon_prefix().iter().zip(b.carbon_prefix()) {
        assert_eq!(va.to_bits(), vb.to_bits(), "{label}: carbon prefix");
    }
    assert_eq!(
        a.stranded_carbon().to_bits(),
        b.stranded_carbon().to_bits(),
        "{label}: stranded carbon"
    );
}

fn peak_game(n: usize, steps: usize, seed: u64) -> PeakDemandGame {
    let mut rng = StdRng::seed_from_u64(seed);
    let demand = (0..n)
        .map(|_| (0..steps).map(|_| rng.gen_range(0.0..96.0)).collect())
        .collect();
    PeakDemandGame::new(demand)
}

/// Schedule-shaped demand: each workload occupies a contiguous window of
/// `steps / 32` slices, so rows are sparse the way schedule-derived demand
/// matrices are. The segment-tree toggle's `O(|support| · log steps)`
/// beats the dense re-scan only under this sparsity; on fully dense rows
/// the linear scan is competitive.
fn windowed_peak_game(n: usize, steps: usize, seed: u64) -> PeakDemandGame {
    let mut rng = StdRng::seed_from_u64(seed);
    let window = (steps / 32).max(1);
    let demand = (0..n)
        .map(|p| {
            let start = p * (steps - window) / n.max(2);
            (0..steps)
                .map(|t| {
                    if (start..start + window).contains(&t) {
                        rng.gen_range(1.0..96.0)
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();
    PeakDemandGame::new(demand)
}

/// Shapley marginal weights `w[k] = k!(n-1-k)!/n!` for coalitions of size
/// `k` not containing the player.
fn marginal_weights(n: usize) -> Vec<f64> {
    let mut w = vec![0.0; n];
    w[0] = 1.0 / n as f64;
    for k in 1..n {
        w[k] = w[k - 1] * k as f64 / (n - k) as f64;
    }
    w
}

/// The pre-streaming exact solver, replicated from public APIs as the
/// baseline for the `monte_carlo` section: a fresh 2ⁿ table per call,
/// filled along the Gray sequence through a [`MaxTree`] toggle, then one
/// marginal-difference accumulation pass per player. The production path
/// replaced the tree with a flat re-scan at schedule-sized step counts and
/// the per-player passes with a single scatter pass over the table.
fn baseline_exact(game: &PeakDemandGame) -> Vec<f64> {
    let n = game.player_count();
    let size = 1u64 << n;
    let mut table = vec![0.0f64; size as usize];
    let mut sums = MaxTree::new(game.steps());
    let mut members = vec![false; n];
    for g in 1..size {
        let gray = g ^ (g >> 1);
        let prev = (g - 1) ^ ((g - 1) >> 1);
        let player = (gray ^ prev).trailing_zeros() as usize;
        let sign = if members[player] { -1.0 } else { 1.0 };
        members[player] = !members[player];
        for (t, &d) in game.demand()[player].iter().enumerate() {
            if d != 0.0 {
                sums.add(t, sign * d);
            }
        }
        table[gray as usize] = sums.max();
    }
    let weights = marginal_weights(n);
    let mut phi = vec![0.0; n];
    for (p, phi_p) in phi.iter_mut().enumerate() {
        let bit = 1u64 << p;
        for mask in 0..size {
            if mask & bit == 0 {
                let k = mask.count_ones() as usize;
                *phi_p += weights[k] * (table[(mask | bit) as usize] - table[mask as usize]);
            }
        }
    }
    phi
}

/// One demand-study trial on the pre-streaming path: fresh generation
/// buffers, [`baseline_exact`] ground truth, allocating attributors.
/// Mirrors `DemandStudy::run_trial` with the optimized solver swapped out.
fn baseline_demand_trial(study: &DemandStudy, trial: usize) -> [DeviationSummary; 3] {
    let schedule = study.generate_schedule(trial);
    let pool = 1000.0;
    let game = PeakDemandGame::new(schedule.demand_matrix());
    let mut truth = baseline_exact(&game);
    let total: f64 = truth.iter().sum();
    assert!(total > 0.0, "generated schedules have positive peak");
    for v in &mut truth {
        *v = pool * *v / total;
    }
    let dev = |method: &dyn DemandAttributor| {
        let shares = method
            .attribute(&schedule, pool)
            .expect("generated schedules are attributable");
        summarize(&shares, &truth).expect("ground truth has non-zero shares")
    };
    [
        dev(&RupBaseline),
        dev(&DemandProportional),
        dev(&TemporalFairCo2::per_step()),
    ]
}

/// Best wall-clock over `trials` runs of `f`.
fn best_secs<T>(trials: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// `VmHWM` (peak resident set) in KiB from `/proc/self/status`.
fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Command-line flags this binary accepts.
const FLAGS: &[&str] = &[
    "trials",
    "threads",
    "max-n",
    "permutations",
    "seed",
    "mc-trials",
    "temporal-samples",
    "temporal-queries",
    "section",
    "service-ms",
    "service-tenants",
    "service-batch",
    "service-windows",
    "service-leaf-samples",
];

/// Sections `--section` can pick.
const SECTIONS: &[&str] = &["all", "shapley", "monte-carlo", "temporal", "service"];

fn main() {
    let args = Args::parse(FLAGS);
    let trials = args.usize("trials", 5).max(1);
    let threads = args.usize("threads", default_threads());
    let max_n = args.usize("max-n", 20).max(1);
    let permutations = args.usize("permutations", 4096);
    let seed = args.u64("seed", 7);
    let section = args.str("section").unwrap_or("all").to_owned();
    assert!(
        SECTIONS.contains(&section.as_str()),
        "unknown --section {section}; expected one of {SECTIONS:?}"
    );
    let run = |name: &str| section == "all" || section == name;

    println!("perf report: {trials} trials, {threads} threads, section {section}");

    if run("shapley") {
        let mut exact = Vec::new();
        // `24` is `MAX_EXACT_PLAYERS`; pass `--max-n 24` to include it (its
        // 2²⁴-entry table dominates the reported peak RSS).
        for n in [12usize, 16, 20, 24] {
            if n > max_n {
                continue;
            }
            let game = peak_game(n, 8, seed + n as u64);
            let reference = exact_shapley(&game).unwrap();
            let serial_secs = best_secs(trials, || exact_shapley(&game).unwrap());
            let parallel_secs = best_secs(trials, || {
                let phi = parallel_exact_shapley(&game, threads).unwrap();
                for (a, b) in phi.iter().zip(&reference) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "parallel exact must be bit-identical"
                    );
                }
                phi
            });
            let row = ExactRow {
                players: n,
                serial_secs,
                parallel_secs,
                speedup: serial_secs / parallel_secs,
            };
            println!(
                "exact      n={:<2}  serial {:.4}s  parallel {:.4}s  ({:.2}x)",
                row.players, row.serial_secs, row.parallel_secs, row.speedup
            );
            exact.push(row);
        }

        let config = SampleConfig {
            max_permutations: permutations,
            target_stderr: 0.0,
            min_permutations: 1,
            antithetic: true,
        };
        let mut sampling = Vec::new();
        for n in [12usize, 16] {
            if n > max_n {
                continue;
            }
            let game = peak_game(n, 8, seed + 100 + n as u64);
            let uncached_secs = best_secs(trials, || {
                sampled_shapley(&game, &config, &mut StdRng::seed_from_u64(seed))
            });
            let cached_secs = best_secs(trials, || {
                sampled_shapley_cached(&game, &config, &mut StdRng::seed_from_u64(seed))
            });
            let uncached = sampled_shapley(&game, &config, &mut StdRng::seed_from_u64(seed));
            let cached = sampled_shapley_cached(&game, &config, &mut StdRng::seed_from_u64(seed));
            let row = SamplingRow {
                players: n,
                permutations,
                uncached_secs,
                cached_secs,
                uncached_evals: uncached.counters.coalition_evals,
                cached_evals: cached.counters.coalition_evals,
                cache_hit_rate: cached.counters.cache_hit_rate(),
            };
            println!(
            "sampling   n={:<2}  uncached {:.4}s / {} evals  cached {:.4}s / {} evals  ({:.1}% hits)",
            row.players,
            row.uncached_secs,
            row.uncached_evals,
            row.cached_secs,
            row.cached_evals,
            100.0 * row.cache_hit_rate
        );
            sampling.push(row);
        }

        let mut toggle = Vec::new();
        // Steps start above `SCAN_FILL_MAX_STEPS` (64): at or below it the
        // hybrid fill routes `PeakDemandGame` to the flat re-scan itself, so
        // the tree-vs-scan comparison would measure two scans.
        for steps in [128usize, 512, 4096] {
            let n = 14.min(max_n);
            let game = windowed_peak_game(n, steps, seed + 200 + steps as u64);
            let scan = ScanPeak(game.clone());
            let tree_secs = best_secs(trials, || exact_shapley_fast(&game).unwrap());
            let scan_secs = best_secs(trials, || exact_shapley_fast(&scan).unwrap());
            let row = ToggleRow {
                players: n,
                steps,
                scan_secs,
                tree_secs,
                speedup: scan_secs / tree_secs,
            };
            println!(
                "toggle     steps={:<4} scan {:.4}s  tree {:.4}s  ({:.2}x)",
                row.steps, row.scan_secs, row.tree_secs, row.speedup
            );
            toggle.push(row);
        }

        let report = PerfReport {
            threads,
            trials,
            exact,
            sampling,
            toggle,
            peak_rss_kib: peak_rss_kib(),
        };
        if let Some(kib) = report.peak_rss_kib {
            println!("peak RSS: {:.1} MiB", kib as f64 / 1024.0);
        }
        let path = write_json("BENCH_shapley", &report);
        println!("wrote {}", path.display());
    }

    // --- monte_carlo: demand-study throughput, end to end ---
    if run("monte-carlo") {
        let mc_trials = args.usize("mc-trials", 1000).max(1);
        let study = DemandStudy {
            trials: mc_trials,
            ..DemandStudy::default()
        };
        println!(
            "monte carlo: {} demand trials, ≤{} workloads, 1 thread",
            mc_trials, study.max_workloads
        );

        // The replica must agree with the production trial before its timing
        // means anything: same deviations, up to accumulation-order rounding.
        for t in 0..3.min(mc_trials) {
            let replica = baseline_demand_trial(&study, t);
            let reference = study.run_trial(t);
            for (a, b) in replica.iter().zip([
                &reference.rup,
                &reference.demand_proportional,
                &reference.fair_co2,
            ]) {
                let close = |x: f64, y: f64| (x - y).abs() < 1e-6 * y.abs().max(1.0);
                assert!(
                    close(a.average_pct, b.average_pct)
                        && close(a.worst_case_pct, b.worst_case_pct),
                    "baseline replica diverged on trial {t}: {a:?} vs {b:?}"
                );
            }
        }

        // Best of two passes per variant, like the solver sections — a study
        // run is long enough that scheduler noise otherwise dominates the
        // collect-vs-streaming margin.
        const MC_REPS: usize = 2;
        let baseline_secs = best_secs(MC_REPS, || {
            for t in 0..mc_trials {
                std::hint::black_box(baseline_demand_trial(&study, t));
            }
        });

        let collect_secs = best_secs(MC_REPS, || {
            let collected: Vec<_> = (0..mc_trials).map(|t| study.run_trial(t)).collect();
            DemandStudySummary::from_trials(&study, &collected, DEFAULT_BATCH_TRIALS)
        });
        let collected: Vec<_> = (0..mc_trials).map(|t| study.run_trial(t)).collect();
        let collect_summary =
            DemandStudySummary::from_trials(&study, &collected, DEFAULT_BATCH_TRIALS);

        let cfg = EngineConfig {
            threads: 1,
            batch_trials: DEFAULT_BATCH_TRIALS,
            collect_trials: false,
        };
        let streaming_secs = best_secs(MC_REPS, || stream_demand_study(&study, cfg));
        let (summary, _, engine) = stream_demand_study(&study, cfg);
        assert_eq!(
            summary.all.rup.average.mean().to_bits(),
            collect_summary.all.rup.average.mean().to_bits(),
            "streaming summary must be bit-identical to collect-then-summarize"
        );

        // Checkpoint/resume cost on a capped sub-study: kill mid-run via the
        // deterministic fault plan, resume, and demand bit-identity with the
        // uninterrupted reference; then time the snapshot write and restore
        // paths in isolation.
        let ck_trials = mc_trials.min(200);
        let ck_study = DemandStudy {
            trials: ck_trials,
            ..DemandStudy::default()
        };
        let ck_path =
            std::env::temp_dir().join(format!("fairco2-perf-{}.ckpt", std::process::id()));
        let _ = std::fs::remove_file(&ck_path);
        let ck_batches = ck_trials.div_ceil(DEFAULT_BATCH_TRIALS);
        let (ck_reference, _, _) =
            stream_demand_study_resumable(&ck_study, cfg, &StudyOptions::default(), |_, _| {})
                .expect("fault-free sub-study");
        let killed = stream_demand_study_resumable(
            &ck_study,
            cfg,
            &StudyOptions {
                checkpoint: Some(CheckpointSpec::new(&ck_path, 1)),
                faults: FaultPlan {
                    kill_after_writes: Some((ck_batches / 2).max(1)),
                    ..FaultPlan::default()
                },
                ..StudyOptions::default()
            },
            |_, _| {},
        );
        assert!(
            matches!(killed, Err(EngineError::Killed { .. })),
            "kill plan must interrupt the sub-study: {killed:?}"
        );
        let checkpoint_bytes = std::fs::metadata(&ck_path)
            .expect("kill leaves a snapshot behind")
            .len();
        let (resumed, _, _) = stream_demand_study_resumable(
            &ck_study,
            cfg,
            &StudyOptions {
                checkpoint: Some(CheckpointSpec::new(&ck_path, 1)),
                resume: true,
                ..StudyOptions::default()
            },
            |_, _| {},
        )
        .expect("resume completes the sub-study");
        let bits = |s: &DemandStudySummary| serde_json::to_string(s).expect("summaries serialize");
        assert_eq!(
            bits(&resumed),
            bits(&ck_reference),
            "resumed sub-study must be bit-identical to the uninterrupted run"
        );
        let fingerprint = demand_fingerprint(&ck_study, DEFAULT_BATCH_TRIALS);
        let snapshot = DemandSnapshot::load(&ck_path, &fingerprint).expect("snapshot validates");
        let checkpoint_restore_secs = best_secs(trials, || {
            DemandSnapshot::load(&ck_path, &fingerprint).expect("snapshot validates")
        });
        let checkpoint_write_secs = best_secs(trials, || {
            snapshot
                .save(&ck_path, WriteFault::None)
                .expect("snapshot writes")
        });
        let _ = std::fs::remove_file(&ck_path);

        let per_sec = |secs: f64| mc_trials as f64 / secs;
        let mc = MonteCarloReport {
            trials: mc_trials,
            max_workloads: study.max_workloads,
            baseline_secs,
            baseline_trials_per_sec: per_sec(baseline_secs),
            collect_secs,
            collect_trials_per_sec: per_sec(collect_secs),
            streaming_secs,
            streaming_trials_per_sec: per_sec(streaming_secs),
            speedup_vs_baseline: baseline_secs / streaming_secs,
            speedup_vs_collect: collect_secs / streaming_secs,
            engine,
            checkpoint_trials: ck_trials,
            checkpoint_bytes,
            checkpoint_write_secs,
            checkpoint_restore_secs,
            checkpoint_resume_bit_identical: true,
            peak_rss_kib: peak_rss_kib(),
        };
        println!(
        "monte carlo  baseline {:.3}s ({:.1}/s)  collect {:.3}s ({:.1}/s)  streaming {:.3}s ({:.1}/s)",
        mc.baseline_secs,
        mc.baseline_trials_per_sec,
        mc.collect_secs,
        mc.collect_trials_per_sec,
        mc.streaming_secs,
        mc.streaming_trials_per_sec
    );
        println!(
        "monte carlo  {:.2}x vs pre-streaming baseline, {:.2}x vs collect; scratch grows {} / reuses {}",
        mc.speedup_vs_baseline, mc.speedup_vs_collect, mc.engine.scratch.table_grows, mc.engine.scratch.table_reuses
    );
        println!(
        "monte carlo  checkpoint {} B: write {:.1} µs, restore {:.1} µs; kill/resume bit-identical over {} trials",
        mc.checkpoint_bytes,
        mc.checkpoint_write_secs * 1.0e6,
        mc.checkpoint_restore_secs * 1.0e6,
        mc.checkpoint_trials
    );
        if let Some(kib) = mc.peak_rss_kib {
            println!("monte carlo  peak RSS {:.1} MiB", kib as f64 / 1024.0);
        }
        let path = write_json("BENCH_montecarlo", &mc);
        println!("wrote {}", path.display());
    }

    // --- temporal: flat cascade + batched billing queries ---
    if run("temporal") {
        let samples = args.usize("temporal-samples", 105_120).max(8_640); // 365 d × 288
        let queries = args.usize("temporal-queries", 1_000_000).max(1);
        let step = 300u32;
        let hierarchy = TemporalShapley::paper_hierarchy();
        println!(
            "temporal: {samples} samples × splits {:?}, {queries} queries",
            hierarchy.splits()
        );

        // A year of 5-minute demand with diurnal + weekly structure and
        // occasional idle spells (so the stranding path runs at scale too).
        let demand = TimeSeries::from_fn(0, step, samples, |t| {
            let day = t as f64 / 86_400.0;
            let base = 40.0
                + 25.0 * (day * std::f64::consts::TAU).sin().abs()
                + 10.0 * (day / 7.0 * std::f64::consts::TAU).cos();
            if (t / step as i64) % 97 == 96 {
                0.0
            } else {
                base.max(0.0)
            }
        })
        .expect("year-long trace is non-empty");
        let total_carbon = 1.0e6;

        let reference = hierarchy
            .attribute_per_period(&demand, total_carbon)
            .expect("paper hierarchy divides the trace");
        let flat = hierarchy.attribute(&demand, total_carbon).unwrap();
        assert_attributions_identical("flat vs per-period", &reference, &flat);
        let parallel = hierarchy
            .attribute_parallel(&demand, total_carbon, threads)
            .unwrap();
        assert_attributions_identical("parallel vs per-period", &reference, &parallel);

        let per_period_secs = best_secs(trials, || {
            hierarchy
                .attribute_per_period(&demand, total_carbon)
                .unwrap()
        });
        let flat_fresh_secs = best_secs(trials, || {
            hierarchy.attribute(&demand, total_carbon).unwrap()
        });
        let mut scratch = CascadeScratch::new();
        hierarchy
            .attribute_with_scratch(&demand, total_carbon, 1, &mut scratch)
            .unwrap();
        let flat_scratch_secs = best_secs(trials, || {
            hierarchy
                .attribute_with_scratch(&demand, total_carbon, 1, &mut scratch)
                .unwrap()
        });
        let flat_parallel_secs = best_secs(trials, || {
            hierarchy
                .attribute_parallel(&demand, total_carbon, threads)
                .unwrap()
        });

        // Query load: random windows over 13 months (some out of range) with
        // varying allocations, answered through the batched index.
        let mut rng = StdRng::seed_from_u64(seed + 999);
        let horizon = demand.end();
        let batch: Vec<BillingQuery> = (0..queries)
            .map(|_| {
                let t0 = rng.gen_range(-86_400..horizon + 86_400);
                let t1 = t0 + rng.gen_range(0..2_592_000);
                (t0, t1, rng.gen_range(0.0..64.0))
            })
            .collect();
        let mut answers = Vec::new();
        flat.workload_carbon_batch_into(&batch, &mut answers);
        for (answer, &(t0, t1, alloc)) in answers
            .iter()
            .step_by(1 + queries / 512)
            .zip(batch.iter().step_by(1 + queries / 512))
        {
            assert_eq!(
                answer.to_bits(),
                flat.workload_carbon(t0, t1, alloc).to_bits(),
                "batched answers must match per-call lookups"
            );
        }
        let batch_secs = best_secs(trials, || {
            flat.workload_carbon_batch_into(&batch, &mut answers);
            answers.last().copied()
        });

        // Owned series the per-period path materializes per call: the root
        // clone plus one series per period of every split level.
        let mut old_series_clones = 1usize;
        let mut periods = 1usize;
        for &m in hierarchy.splits() {
            periods *= m;
            old_series_clones += periods;
        }
        let temporal = TemporalReport {
            samples,
            step,
            splits: hierarchy.splits().to_vec(),
            leaf_periods: periods,
            old_series_clones,
            per_period_secs,
            flat_fresh_secs,
            flat_scratch_secs,
            flat_parallel_secs,
            speedup_fresh: per_period_secs / flat_fresh_secs,
            speedup_scratch: per_period_secs / flat_scratch_secs,
            queries,
            batch_secs,
            queries_per_sec: queries as f64 / batch_secs,
            peak_rss_kib: peak_rss_kib(),
        };
        println!(
        "temporal   per-period {:.4}s  flat {:.4}s ({:.2}x)  scratch {:.4}s ({:.2}x)  parallel {:.4}s",
        temporal.per_period_secs,
        temporal.flat_fresh_secs,
        temporal.speedup_fresh,
        temporal.flat_scratch_secs,
        temporal.speedup_scratch,
        temporal.flat_parallel_secs
    );
        println!(
            "temporal   {} queries in {:.4}s = {:.2}M queries/s; {} series clones avoided per call",
            temporal.queries,
            temporal.batch_secs,
            temporal.queries_per_sec / 1.0e6,
            temporal.old_series_clones
        );
        if let Some(kib) = temporal.peak_rss_kib {
            println!("temporal   peak RSS {:.1} MiB", kib as f64 / 1024.0);
        }
        let path = write_json("BENCH_temporal", &temporal);
        println!("wrote {}", path.display());
    }

    // --- service: the always-on attribution service under load ---
    if run("service") {
        let opts = LoadOptions {
            duration_ms: args.u64("service-ms", 2_000).max(100),
            tenants: args.usize("service-tenants", 2).max(1),
            batch: args.usize("service-batch", 256).max(1),
            max_windows: args.u64("service-windows", 256).max(1),
            seed,
        };
        let config = ServiceConfig {
            start: 0,
            step: 300,
            splits: vec![4, 3],
            leaf_samples: args.usize("service-leaf-samples", 4).max(1),
            carbon_per_window: 1000.0,
            persist_dir: None,
        };
        println!(
            "service: {} ms load, {} tenants × {}-query batches, {}-sample windows",
            opts.duration_ms,
            opts.tenants,
            opts.batch,
            config.window_samples()
        );

        // Correctness gate before any throughput number means anything: a
        // small deterministic stream's final epoch must reproduce the
        // from-scratch rebuild (per-window frozen cascade + the canonical
        // segmented prefix) bit for bit.
        let rebuild_bit_identical = {
            let check = ServiceConfig {
                leaf_samples: 2,
                ..config.clone()
            };
            let w = check.window_samples();
            let windows = 3usize;
            let mut service = AttributionService::start(check.clone()).expect("service starts");
            for i in 0..(windows * w) as u64 {
                service.ingest(demand_sample(i, opts.seed)).expect("ingest");
            }
            let handle = service.handle();
            let snapshot = handle.epoch();
            assert_eq!(snapshot.epoch, windows as u64);
            let frozen = TemporalShapley::new(check.splits.clone());
            let mut cum = 0.0;
            for k in 0..windows {
                let values: Vec<f64> = (0..w)
                    .map(|i| demand_sample((k * w + i) as u64, opts.seed))
                    .collect();
                let series = TimeSeries::from_values(
                    check.start + (k * w) as i64 * i64::from(check.step),
                    check.step,
                    values,
                )
                .unwrap();
                let attribution = frozen.attribute(&series, check.carbon_per_window).unwrap();
                for (i, v) in attribution.carbon_prefix().iter().enumerate() {
                    if i == 0 && k > 0 {
                        continue; // boundary index belongs to this window's cum
                    }
                    assert_eq!(
                        snapshot.prefix_at(k * w + i).to_bits(),
                        (cum + v).to_bits(),
                        "service prefix diverged from rebuild at window {k} sample {i}"
                    );
                }
                cum += attribution.carbon_prefix()[w];
            }
            true
        };

        let report = run_load(config.clone(), &opts).expect("load run completes");
        assert!(
            report.queries_answered > 0 && report.windows_closed > 0,
            "load run must both ingest and answer: {report:?}"
        );

        // Sharded batch throughput on the final state: one big batch split
        // over `--threads` run_parallel workers with an in-order merge.
        let sharded_queries = 100_000usize;
        let mut service = AttributionService::start(config.clone()).expect("service starts");
        let w = config.window_samples() as u64;
        for i in 0..opts.max_windows.min(64) * w {
            service.ingest(demand_sample(i, opts.seed)).expect("ingest");
        }
        let handle = service.handle();
        let epoch = handle.epoch();
        let span = (epoch.samples() as u64 + 1) * u64::from(config.step);
        let batch: Vec<BillingQuery> = (0..sharded_queries as u64)
            .map(|i| {
                let a = demand_sample(2 * i, 3).to_bits() % span;
                let b = demand_sample(2 * i + 1, 3).to_bits() % span;
                (
                    config.start + a.min(b) as i64,
                    config.start + a.max(b) as i64,
                    1.0 + (i % 7) as f64,
                )
            })
            .collect();
        let sequential = epoch.carbon_batch_sharded(&batch, 1);
        let sharded = epoch.carbon_batch_sharded(&batch, threads);
        for (a, b) in sequential.iter().zip(&sharded) {
            assert_eq!(a.to_bits(), b.to_bits(), "sharding changed an answer");
        }
        let sharded_secs = best_secs(trials, || epoch.carbon_batch_sharded(&batch, threads));

        let service_report = ServiceReport {
            duration_ms: opts.duration_ms,
            tenants: opts.tenants,
            batch: opts.batch,
            window_samples: config.window_samples(),
            splits: config.splits.clone(),
            ingested_samples: report.ingested_samples,
            windows_closed: report.windows_closed,
            queries_answered: report.queries_answered,
            queries_per_sec: report.queries_per_sec,
            p99_batch_latency_us: report.p99_batch_latency_us,
            ops_per_sample: report.ops_per_sample,
            rebuild_bit_identical,
            sharded_threads: threads,
            sharded_queries,
            sharded_secs,
            sharded_queries_per_sec: sharded_queries as f64 / sharded_secs,
            peak_rss_kib: peak_rss_kib(),
        };
        println!(
        "service    ingested {} samples / {} windows; {:.0} queries/s sustained, p99 batch {:.1} µs",
        service_report.ingested_samples,
        service_report.windows_closed,
        service_report.queries_per_sec,
        service_report.p99_batch_latency_us
    );
        println!(
        "service    {:.2} engine ops/sample (amortized O(log n) gauge); sharded {:.2}M queries/s at {} threads; rebuild bit-identical: {}",
        service_report.ops_per_sample,
        service_report.sharded_queries_per_sec / 1.0e6,
        service_report.sharded_threads,
        service_report.rebuild_bit_identical
    );
        let path = write_json("BENCH_service", &service_report);
        println!("wrote {}", path.display());
    }
}

/// Always-on service throughput under concurrent ingest + query,
/// written to `results/BENCH_service.json`.
#[derive(Serialize)]
struct ServiceReport {
    /// Load-run length (ms).
    duration_ms: u64,
    /// Concurrent tenant query threads.
    tenants: usize,
    /// Queries per tenant batch.
    batch: usize,
    /// Samples per attribution window.
    window_samples: usize,
    /// Hierarchy split ratios.
    splits: Vec<usize>,
    /// Samples ingested during the load run.
    ingested_samples: u64,
    /// Windows closed (== epochs published).
    windows_closed: u64,
    /// Billing queries answered across all tenants.
    queries_answered: u64,
    /// Sustained queries per second under concurrent ingestion.
    queries_per_sec: f64,
    /// 99th-percentile per-batch latency (µs).
    p99_batch_latency_us: f64,
    /// Engine primitive operations per ingested sample — machine-speed
    /// independent; constant in stream length (the O(log n) gauge).
    ops_per_sample: f64,
    /// Final epoch reproduced the from-scratch rebuild bit for bit
    /// (asserted; recorded for the report).
    rebuild_bit_identical: bool,
    /// Threads the sharded batch ran on.
    sharded_threads: usize,
    /// Queries in the sharded batch.
    sharded_queries: usize,
    /// Best wall time of one sharded batch.
    sharded_secs: f64,
    /// Sharded queries per second.
    sharded_queries_per_sec: f64,
    /// Process peak RSS (`VmHWM`) in KiB.
    peak_rss_kib: Option<u64>,
}
