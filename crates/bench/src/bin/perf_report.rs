//! **Performance report** — machine-readable timings for the three
//! optimizations of this PR, written to `results/BENCH_shapley.json`:
//!
//! * serial versus parallel exact enumeration (`parallel_exact_shapley`)
//!   across player counts (bit-identity asserted on every trial);
//! * cached versus uncached permutation sampling
//!   (`sampled_shapley_cached`), with eval counts and cache hit rate;
//! * the Gray-code table fill through the segment-tree toggle versus the
//!   original dense re-scan (`ScanPeak`);
//! * a `monte_carlo` section timing the Figure-7 demand study end to end —
//!   the pre-streaming baseline (fresh per-trial allocations, segment-tree
//!   fill, per-player marginal accumulation, replicated below from public
//!   APIs), the collect-then-summarize path, and the streaming engine —
//!   written separately to `results/BENCH_montecarlo.json`.
//!
//! Tune with `--trials N --threads N --max-n N --permutations N
//! --mc-trials N --seed N`. Each scenario reports the best wall-clock over
//! the trials (the usual benchmarking floor) plus the work counters of one
//! run, and the process-wide peak RSS (`VmHWM`) is recorded at the end.

use std::time::Instant;

use fairco2::demand::{DemandAttributor, DemandProportional, RupBaseline, TemporalFairCo2};
use fairco2::metrics::{summarize, DeviationSummary};
use fairco2_bench::{write_json, Args};
use fairco2_montecarlo::schedules::DemandStudy;
use fairco2_montecarlo::streaming::{DemandStudySummary, DEFAULT_BATCH_TRIALS};
use fairco2_montecarlo::{stream_demand_study, EngineConfig, EngineStats};
use fairco2_shapley::default_threads;
use fairco2_shapley::exact::{exact_shapley, exact_shapley_fast, parallel_exact_shapley};
use fairco2_shapley::game::{Game, PeakDemandGame, ScanPeak};
use fairco2_shapley::sampled::{sampled_shapley, sampled_shapley_cached, SampleConfig};
use fairco2_shapley::MaxTree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

#[derive(Serialize)]
struct PerfReport {
    threads: usize,
    trials: usize,
    exact: Vec<ExactRow>,
    sampling: Vec<SamplingRow>,
    toggle: Vec<ToggleRow>,
    /// Process peak RSS (`VmHWM` from `/proc/self/status`) in KiB, when
    /// the platform exposes it. Dominated by the largest exact table.
    peak_rss_kib: Option<u64>,
}

#[derive(Serialize)]
struct ExactRow {
    players: usize,
    serial_secs: f64,
    parallel_secs: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct SamplingRow {
    players: usize,
    permutations: usize,
    uncached_secs: f64,
    cached_secs: f64,
    uncached_evals: u64,
    cached_evals: u64,
    cache_hit_rate: f64,
}

#[derive(Serialize)]
struct ToggleRow {
    players: usize,
    steps: usize,
    scan_secs: f64,
    tree_secs: f64,
    speedup: f64,
}

/// End-to-end demand-study throughput, written to
/// `results/BENCH_montecarlo.json`.
#[derive(Serialize)]
struct MonteCarloReport {
    /// Study trials timed per variant (`--mc-trials`).
    trials: usize,
    /// Workload cap of the study (the paper's 22 → up to 2²² coalitions).
    max_workloads: usize,
    /// Pre-streaming per-trial path: fresh allocations, segment-tree Gray
    /// fill, per-player marginal accumulation.
    baseline_secs: f64,
    baseline_trials_per_sec: f64,
    /// Current solver, but trials collected into a `Vec` and summarized
    /// at the end (the pre-engine driver shape).
    collect_secs: f64,
    collect_trials_per_sec: f64,
    /// Streaming engine on one thread: scratch arenas + constant-memory
    /// summary accumulators.
    streaming_secs: f64,
    streaming_trials_per_sec: f64,
    /// Streaming vs the pre-streaming baseline (the headline number).
    speedup_vs_baseline: f64,
    /// Streaming vs collect-then-summarize within the current build.
    speedup_vs_collect: f64,
    /// Engine counters from the streaming run (batches, scratch reuse).
    engine: EngineStats,
    /// Process peak RSS (`VmHWM`) in KiB after the study runs.
    peak_rss_kib: Option<u64>,
}

fn peak_game(n: usize, steps: usize, seed: u64) -> PeakDemandGame {
    let mut rng = StdRng::seed_from_u64(seed);
    let demand = (0..n)
        .map(|_| (0..steps).map(|_| rng.gen_range(0.0..96.0)).collect())
        .collect();
    PeakDemandGame::new(demand)
}

/// Schedule-shaped demand: each workload occupies a contiguous window of
/// `steps / 32` slices, so rows are sparse the way schedule-derived demand
/// matrices are. The segment-tree toggle's `O(|support| · log steps)`
/// beats the dense re-scan only under this sparsity; on fully dense rows
/// the linear scan is competitive.
fn windowed_peak_game(n: usize, steps: usize, seed: u64) -> PeakDemandGame {
    let mut rng = StdRng::seed_from_u64(seed);
    let window = (steps / 32).max(1);
    let demand = (0..n)
        .map(|p| {
            let start = p * (steps - window) / n.max(2);
            (0..steps)
                .map(|t| {
                    if (start..start + window).contains(&t) {
                        rng.gen_range(1.0..96.0)
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();
    PeakDemandGame::new(demand)
}

/// Shapley marginal weights `w[k] = k!(n-1-k)!/n!` for coalitions of size
/// `k` not containing the player.
fn marginal_weights(n: usize) -> Vec<f64> {
    let mut w = vec![0.0; n];
    w[0] = 1.0 / n as f64;
    for k in 1..n {
        w[k] = w[k - 1] * k as f64 / (n - k) as f64;
    }
    w
}

/// The pre-streaming exact solver, replicated from public APIs as the
/// baseline for the `monte_carlo` section: a fresh 2ⁿ table per call,
/// filled along the Gray sequence through a [`MaxTree`] toggle, then one
/// marginal-difference accumulation pass per player. The production path
/// replaced the tree with a flat re-scan at schedule-sized step counts and
/// the per-player passes with a single scatter pass over the table.
fn baseline_exact(game: &PeakDemandGame) -> Vec<f64> {
    let n = game.player_count();
    let size = 1u64 << n;
    let mut table = vec![0.0f64; size as usize];
    let mut sums = MaxTree::new(game.steps());
    let mut members = vec![false; n];
    for g in 1..size {
        let gray = g ^ (g >> 1);
        let prev = (g - 1) ^ ((g - 1) >> 1);
        let player = (gray ^ prev).trailing_zeros() as usize;
        let sign = if members[player] { -1.0 } else { 1.0 };
        members[player] = !members[player];
        for (t, &d) in game.demand()[player].iter().enumerate() {
            if d != 0.0 {
                sums.add(t, sign * d);
            }
        }
        table[gray as usize] = sums.max();
    }
    let weights = marginal_weights(n);
    let mut phi = vec![0.0; n];
    for (p, phi_p) in phi.iter_mut().enumerate() {
        let bit = 1u64 << p;
        for mask in 0..size {
            if mask & bit == 0 {
                let k = mask.count_ones() as usize;
                *phi_p += weights[k] * (table[(mask | bit) as usize] - table[mask as usize]);
            }
        }
    }
    phi
}

/// One demand-study trial on the pre-streaming path: fresh generation
/// buffers, [`baseline_exact`] ground truth, allocating attributors.
/// Mirrors `DemandStudy::run_trial` with the optimized solver swapped out.
fn baseline_demand_trial(study: &DemandStudy, trial: usize) -> [DeviationSummary; 3] {
    let schedule = study.generate_schedule(trial);
    let pool = 1000.0;
    let game = PeakDemandGame::new(schedule.demand_matrix());
    let mut truth = baseline_exact(&game);
    let total: f64 = truth.iter().sum();
    assert!(total > 0.0, "generated schedules have positive peak");
    for v in &mut truth {
        *v = pool * *v / total;
    }
    let dev = |method: &dyn DemandAttributor| {
        let shares = method
            .attribute(&schedule, pool)
            .expect("generated schedules are attributable");
        summarize(&shares, &truth).expect("ground truth has non-zero shares")
    };
    [
        dev(&RupBaseline),
        dev(&DemandProportional),
        dev(&TemporalFairCo2::per_step()),
    ]
}

/// Best wall-clock over `trials` runs of `f`.
fn best_secs<T>(trials: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// `VmHWM` (peak resident set) in KiB from `/proc/self/status`.
fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn main() {
    let args = Args::parse();
    let trials = args.usize("trials", 5).max(1);
    let threads = args.usize("threads", default_threads());
    let max_n = args.usize("max-n", 20).max(1);
    let permutations = args.usize("permutations", 4096);
    let seed = args.u64("seed", 7);

    println!("perf report: {trials} trials, {threads} threads");

    let mut exact = Vec::new();
    // `24` is `MAX_EXACT_PLAYERS`; pass `--max-n 24` to include it (its
    // 2²⁴-entry table dominates the reported peak RSS).
    for n in [12usize, 16, 20, 24] {
        if n > max_n {
            continue;
        }
        let game = peak_game(n, 8, seed + n as u64);
        let reference = exact_shapley(&game).unwrap();
        let serial_secs = best_secs(trials, || exact_shapley(&game).unwrap());
        let parallel_secs = best_secs(trials, || {
            let phi = parallel_exact_shapley(&game, threads).unwrap();
            for (a, b) in phi.iter().zip(&reference) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "parallel exact must be bit-identical"
                );
            }
            phi
        });
        let row = ExactRow {
            players: n,
            serial_secs,
            parallel_secs,
            speedup: serial_secs / parallel_secs,
        };
        println!(
            "exact      n={:<2}  serial {:.4}s  parallel {:.4}s  ({:.2}x)",
            row.players, row.serial_secs, row.parallel_secs, row.speedup
        );
        exact.push(row);
    }

    let config = SampleConfig {
        max_permutations: permutations,
        target_stderr: 0.0,
        min_permutations: 1,
        antithetic: true,
    };
    let mut sampling = Vec::new();
    for n in [12usize, 16] {
        if n > max_n {
            continue;
        }
        let game = peak_game(n, 8, seed + 100 + n as u64);
        let uncached_secs = best_secs(trials, || {
            sampled_shapley(&game, &config, &mut StdRng::seed_from_u64(seed))
        });
        let cached_secs = best_secs(trials, || {
            sampled_shapley_cached(&game, &config, &mut StdRng::seed_from_u64(seed))
        });
        let uncached = sampled_shapley(&game, &config, &mut StdRng::seed_from_u64(seed));
        let cached = sampled_shapley_cached(&game, &config, &mut StdRng::seed_from_u64(seed));
        let row = SamplingRow {
            players: n,
            permutations,
            uncached_secs,
            cached_secs,
            uncached_evals: uncached.counters.coalition_evals,
            cached_evals: cached.counters.coalition_evals,
            cache_hit_rate: cached.counters.cache_hit_rate(),
        };
        println!(
            "sampling   n={:<2}  uncached {:.4}s / {} evals  cached {:.4}s / {} evals  ({:.1}% hits)",
            row.players,
            row.uncached_secs,
            row.uncached_evals,
            row.cached_secs,
            row.cached_evals,
            100.0 * row.cache_hit_rate
        );
        sampling.push(row);
    }

    let mut toggle = Vec::new();
    // Steps start above `SCAN_FILL_MAX_STEPS` (64): at or below it the
    // hybrid fill routes `PeakDemandGame` to the flat re-scan itself, so
    // the tree-vs-scan comparison would measure two scans.
    for steps in [128usize, 512, 4096] {
        let n = 14.min(max_n);
        let game = windowed_peak_game(n, steps, seed + 200 + steps as u64);
        let scan = ScanPeak(game.clone());
        let tree_secs = best_secs(trials, || exact_shapley_fast(&game).unwrap());
        let scan_secs = best_secs(trials, || exact_shapley_fast(&scan).unwrap());
        let row = ToggleRow {
            players: n,
            steps,
            scan_secs,
            tree_secs,
            speedup: scan_secs / tree_secs,
        };
        println!(
            "toggle     steps={:<4} scan {:.4}s  tree {:.4}s  ({:.2}x)",
            row.steps, row.scan_secs, row.tree_secs, row.speedup
        );
        toggle.push(row);
    }

    let report = PerfReport {
        threads,
        trials,
        exact,
        sampling,
        toggle,
        peak_rss_kib: peak_rss_kib(),
    };
    if let Some(kib) = report.peak_rss_kib {
        println!("peak RSS: {:.1} MiB", kib as f64 / 1024.0);
    }
    let path = write_json("BENCH_shapley", &report);
    println!("wrote {}", path.display());

    // --- monte_carlo: demand-study throughput, end to end ---
    let mc_trials = args.usize("mc-trials", 1000).max(1);
    let study = DemandStudy {
        trials: mc_trials,
        ..DemandStudy::default()
    };
    println!(
        "monte carlo: {} demand trials, ≤{} workloads, 1 thread",
        mc_trials, study.max_workloads
    );

    // The replica must agree with the production trial before its timing
    // means anything: same deviations, up to accumulation-order rounding.
    for t in 0..3.min(mc_trials) {
        let replica = baseline_demand_trial(&study, t);
        let reference = study.run_trial(t);
        for (a, b) in replica.iter().zip([
            &reference.rup,
            &reference.demand_proportional,
            &reference.fair_co2,
        ]) {
            let close = |x: f64, y: f64| (x - y).abs() < 1e-6 * y.abs().max(1.0);
            assert!(
                close(a.average_pct, b.average_pct) && close(a.worst_case_pct, b.worst_case_pct),
                "baseline replica diverged on trial {t}: {a:?} vs {b:?}"
            );
        }
    }

    // Best of two passes per variant, like the solver sections — a study
    // run is long enough that scheduler noise otherwise dominates the
    // collect-vs-streaming margin.
    const MC_REPS: usize = 2;
    let baseline_secs = best_secs(MC_REPS, || {
        for t in 0..mc_trials {
            std::hint::black_box(baseline_demand_trial(&study, t));
        }
    });

    let collect_secs = best_secs(MC_REPS, || {
        let collected: Vec<_> = (0..mc_trials).map(|t| study.run_trial(t)).collect();
        DemandStudySummary::from_trials(&study, &collected, DEFAULT_BATCH_TRIALS)
    });
    let collected: Vec<_> = (0..mc_trials).map(|t| study.run_trial(t)).collect();
    let collect_summary = DemandStudySummary::from_trials(&study, &collected, DEFAULT_BATCH_TRIALS);

    let cfg = EngineConfig {
        threads: 1,
        batch_trials: DEFAULT_BATCH_TRIALS,
        collect_trials: false,
    };
    let streaming_secs = best_secs(MC_REPS, || stream_demand_study(&study, cfg));
    let (summary, _, engine) = stream_demand_study(&study, cfg);
    assert_eq!(
        summary.all.rup.average.mean().to_bits(),
        collect_summary.all.rup.average.mean().to_bits(),
        "streaming summary must be bit-identical to collect-then-summarize"
    );

    let per_sec = |secs: f64| mc_trials as f64 / secs;
    let mc = MonteCarloReport {
        trials: mc_trials,
        max_workloads: study.max_workloads,
        baseline_secs,
        baseline_trials_per_sec: per_sec(baseline_secs),
        collect_secs,
        collect_trials_per_sec: per_sec(collect_secs),
        streaming_secs,
        streaming_trials_per_sec: per_sec(streaming_secs),
        speedup_vs_baseline: baseline_secs / streaming_secs,
        speedup_vs_collect: collect_secs / streaming_secs,
        engine,
        peak_rss_kib: peak_rss_kib(),
    };
    println!(
        "monte carlo  baseline {:.3}s ({:.1}/s)  collect {:.3}s ({:.1}/s)  streaming {:.3}s ({:.1}/s)",
        mc.baseline_secs,
        mc.baseline_trials_per_sec,
        mc.collect_secs,
        mc.collect_trials_per_sec,
        mc.streaming_secs,
        mc.streaming_trials_per_sec
    );
    println!(
        "monte carlo  {:.2}x vs pre-streaming baseline, {:.2}x vs collect; scratch grows {} / reuses {}",
        mc.speedup_vs_baseline, mc.speedup_vs_collect, mc.engine.scratch.table_grows, mc.engine.scratch.table_reuses
    );
    if let Some(kib) = mc.peak_rss_kib {
        println!("monte carlo  peak RSS {:.1} MiB", kib as f64 / 1024.0);
    }
    let path = write_json("BENCH_montecarlo", &mc);
    println!("wrote {}", path.display());
}
