//! **Performance report** — machine-readable timings for the three
//! optimizations of this PR, written to `results/BENCH_shapley.json`:
//!
//! * serial versus parallel exact enumeration (`parallel_exact_shapley`)
//!   across player counts (bit-identity asserted on every trial);
//! * cached versus uncached permutation sampling
//!   (`sampled_shapley_cached`), with eval counts and cache hit rate;
//! * the Gray-code table fill through the segment-tree toggle versus the
//!   original dense re-scan (`ScanPeak`).
//!
//! Tune with `--trials N --threads N --max-n N --permutations N
//! --seed N`. Each scenario reports the best wall-clock over the trials
//! (the usual benchmarking floor) plus the work counters of one run, and
//! the process-wide peak RSS (`VmHWM`) is recorded at the end.

use std::time::Instant;

use fairco2_bench::{write_json, Args};
use fairco2_shapley::default_threads;
use fairco2_shapley::exact::{exact_shapley, exact_shapley_fast, parallel_exact_shapley};
use fairco2_shapley::game::{PeakDemandGame, ScanPeak};
use fairco2_shapley::sampled::{sampled_shapley, sampled_shapley_cached, SampleConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

#[derive(Serialize)]
struct PerfReport {
    threads: usize,
    trials: usize,
    exact: Vec<ExactRow>,
    sampling: Vec<SamplingRow>,
    toggle: Vec<ToggleRow>,
    /// Process peak RSS (`VmHWM` from `/proc/self/status`) in KiB, when
    /// the platform exposes it. Dominated by the largest exact table.
    peak_rss_kib: Option<u64>,
}

#[derive(Serialize)]
struct ExactRow {
    players: usize,
    serial_secs: f64,
    parallel_secs: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct SamplingRow {
    players: usize,
    permutations: usize,
    uncached_secs: f64,
    cached_secs: f64,
    uncached_evals: u64,
    cached_evals: u64,
    cache_hit_rate: f64,
}

#[derive(Serialize)]
struct ToggleRow {
    players: usize,
    steps: usize,
    scan_secs: f64,
    tree_secs: f64,
    speedup: f64,
}

fn peak_game(n: usize, steps: usize, seed: u64) -> PeakDemandGame {
    let mut rng = StdRng::seed_from_u64(seed);
    let demand = (0..n)
        .map(|_| (0..steps).map(|_| rng.gen_range(0.0..96.0)).collect())
        .collect();
    PeakDemandGame::new(demand)
}

/// Schedule-shaped demand: each workload occupies a contiguous window of
/// `steps / 32` slices, so rows are sparse the way schedule-derived demand
/// matrices are. The segment-tree toggle's `O(|support| · log steps)`
/// beats the dense re-scan only under this sparsity; on fully dense rows
/// the linear scan is competitive.
fn windowed_peak_game(n: usize, steps: usize, seed: u64) -> PeakDemandGame {
    let mut rng = StdRng::seed_from_u64(seed);
    let window = (steps / 32).max(1);
    let demand = (0..n)
        .map(|p| {
            let start = p * (steps - window) / n.max(2);
            (0..steps)
                .map(|t| {
                    if (start..start + window).contains(&t) {
                        rng.gen_range(1.0..96.0)
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();
    PeakDemandGame::new(demand)
}

/// Best wall-clock over `trials` runs of `f`.
fn best_secs<T>(trials: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// `VmHWM` (peak resident set) in KiB from `/proc/self/status`.
fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn main() {
    let args = Args::parse();
    let trials = args.usize("trials", 5).max(1);
    let threads = args.usize("threads", default_threads());
    let max_n = args.usize("max-n", 20).max(1);
    let permutations = args.usize("permutations", 4096);
    let seed = args.u64("seed", 7);

    println!("perf report: {trials} trials, {threads} threads");

    let mut exact = Vec::new();
    // `24` is `MAX_EXACT_PLAYERS`; pass `--max-n 24` to include it (its
    // 2²⁴-entry table dominates the reported peak RSS).
    for n in [12usize, 16, 20, 24] {
        if n > max_n {
            continue;
        }
        let game = peak_game(n, 8, seed + n as u64);
        let reference = exact_shapley(&game).unwrap();
        let serial_secs = best_secs(trials, || exact_shapley(&game).unwrap());
        let parallel_secs = best_secs(trials, || {
            let phi = parallel_exact_shapley(&game, threads).unwrap();
            for (a, b) in phi.iter().zip(&reference) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "parallel exact must be bit-identical"
                );
            }
            phi
        });
        let row = ExactRow {
            players: n,
            serial_secs,
            parallel_secs,
            speedup: serial_secs / parallel_secs,
        };
        println!(
            "exact      n={:<2}  serial {:.4}s  parallel {:.4}s  ({:.2}x)",
            row.players, row.serial_secs, row.parallel_secs, row.speedup
        );
        exact.push(row);
    }

    let config = SampleConfig {
        max_permutations: permutations,
        target_stderr: 0.0,
        min_permutations: 1,
        antithetic: true,
    };
    let mut sampling = Vec::new();
    for n in [12usize, 16] {
        if n > max_n {
            continue;
        }
        let game = peak_game(n, 8, seed + 100 + n as u64);
        let uncached_secs = best_secs(trials, || {
            sampled_shapley(&game, &config, &mut StdRng::seed_from_u64(seed))
        });
        let cached_secs = best_secs(trials, || {
            sampled_shapley_cached(&game, &config, &mut StdRng::seed_from_u64(seed))
        });
        let uncached = sampled_shapley(&game, &config, &mut StdRng::seed_from_u64(seed));
        let cached = sampled_shapley_cached(&game, &config, &mut StdRng::seed_from_u64(seed));
        let row = SamplingRow {
            players: n,
            permutations,
            uncached_secs,
            cached_secs,
            uncached_evals: uncached.counters.coalition_evals,
            cached_evals: cached.counters.coalition_evals,
            cache_hit_rate: cached.counters.cache_hit_rate(),
        };
        println!(
            "sampling   n={:<2}  uncached {:.4}s / {} evals  cached {:.4}s / {} evals  ({:.1}% hits)",
            row.players,
            row.uncached_secs,
            row.uncached_evals,
            row.cached_secs,
            row.cached_evals,
            100.0 * row.cache_hit_rate
        );
        sampling.push(row);
    }

    let mut toggle = Vec::new();
    for steps in [64usize, 512, 4096] {
        let n = 14.min(max_n);
        let game = windowed_peak_game(n, steps, seed + 200 + steps as u64);
        let scan = ScanPeak(game.clone());
        let tree_secs = best_secs(trials, || exact_shapley_fast(&game).unwrap());
        let scan_secs = best_secs(trials, || exact_shapley_fast(&scan).unwrap());
        let row = ToggleRow {
            players: n,
            steps,
            scan_secs,
            tree_secs,
            speedup: scan_secs / tree_secs,
        };
        println!(
            "toggle     steps={:<4} scan {:.4}s  tree {:.4}s  ({:.2}x)",
            row.steps, row.scan_secs, row.tree_secs, row.speedup
        );
        toggle.push(row);
    }

    let report = PerfReport {
        threads,
        trials,
        exact,
        sampling,
        toggle,
        peak_rss_kib: peak_rss_kib(),
    };
    if let Some(kib) = report.peak_rss_kib {
        println!("peak RSS: {:.1} MiB", kib as f64 / 1024.0);
    }
    let path = write_json("BENCH_shapley", &report);
    println!("wrote {}", path.display());
}
