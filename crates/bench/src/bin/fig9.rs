//! **Figure 9** — per-workload attribution equity: the distribution of
//! signed deviations from the ground truth for each workload (top) and
//! for each workload's *partners* (bottom), under the RUP-Baseline (left)
//! and Fair-CO₂ (right).
//!
//! The per-kind equity streams come straight from the streaming study
//! summary — no per-trial materialization. Tune with `--trials N
//! --threads N --batch N`; checkpoint/resume via `--checkpoint <path>
//! --checkpoint-every <batches> --resume --retries N`. Writes
//! `results/fig9.json`.

use fairco2_bench::{exit_on_engine_error, study_options, write_json, Args, CHECKPOINT_FLAGS};
use fairco2_montecarlo::colocations::ColocationStudy;
use fairco2_montecarlo::runner::default_threads;
use fairco2_montecarlo::streaming::{KindEquity, DEFAULT_BATCH_TRIALS};
use fairco2_montecarlo::{stream_colocation_study_resumable, EngineConfig, StatStream};
use serde::Serialize;

#[derive(Serialize)]
struct Distribution {
    workload: String,
    samples: usize,
    mean_pct: f64,
    p5_pct: f64,
    median_pct: f64,
    p95_pct: f64,
}

#[derive(Serialize)]
struct Fig9 {
    /// Deviation of each workload's own attribution.
    own_rup: Vec<Distribution>,
    own_fair: Vec<Distribution>,
    /// Deviation of each workload's *partner's* attribution.
    partner_rup: Vec<Distribution>,
    partner_fair: Vec<Distribution>,
}

fn distribution(workload: &str, s: &StatStream) -> Distribution {
    Distribution {
        workload: workload.to_owned(),
        samples: s.count() as usize,
        mean_pct: s.mean(),
        p5_pct: s.quantile(0.05),
        median_pct: s.quantile(0.5),
        p95_pct: s.quantile(0.95),
    }
}

fn print_block(title: &str, rows: &[Distribution]) {
    println!("\n{title}");
    println!(
        "{:<8} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "workload", "samples", "mean", "p5", "p50", "p95"
    );
    for r in rows {
        println!(
            "{:<8} {:>8} {:>8.2}% {:>8.2}% {:>8.2}% {:>8.2}%",
            r.workload, r.samples, r.mean_pct, r.p5_pct, r.median_pct, r.p95_pct
        );
    }
}

/// Command-line flags this binary accepts.
const FLAGS: &[&str] = &["trials", "seed", "threads", "batch"];

fn main() {
    let args = Args::parse(&[FLAGS, CHECKPOINT_FLAGS].concat());
    let study = ColocationStudy {
        trials: args.usize("trials", 2_000),
        base_seed: args.u64("seed", 0xF19_0009),
        ..ColocationStudy::default()
    };
    let threads = args.usize("threads", default_threads());
    let cfg = EngineConfig {
        threads,
        batch_trials: args.usize("batch", DEFAULT_BATCH_TRIALS),
        collect_trials: false,
    };

    let opts = study_options(&args, "");
    eprintln!(
        "streaming {} colocation trials on {threads} threads…",
        study.trials
    );
    let (summary, _, _) = exit_on_engine_error(stream_colocation_study_resumable(
        &study,
        cfg,
        &opts,
        |_, _| {},
    ));

    let build = |pick: fn(&KindEquity) -> &StatStream| -> Vec<Distribution> {
        summary
            .per_kind
            .iter()
            .map(|k| distribution(&k.workload, pick(k)))
            .collect()
    };
    let out = Fig9 {
        own_rup: build(|k| &k.own_rup),
        own_fair: build(|k| &k.own_fair),
        partner_rup: build(|k| &k.partner_rup),
        partner_fair: build(|k| &k.partner_fair),
    };

    println!("Figure 9: per-workload deviation distributions (signed, % of ground truth)");
    print_block("(top-left) own deviation, RUP-Baseline", &out.own_rup);
    print_block("(top-right) own deviation, Fair-CO2", &out.own_fair);
    print_block(
        "(bottom-left) partner deviation, RUP-Baseline",
        &out.partner_rup,
    );
    print_block(
        "(bottom-right) partner deviation, Fair-CO2",
        &out.partner_fair,
    );

    let spread = |rows: &[Distribution]| {
        rows.iter()
            .map(|r| r.p95_pct - r.p5_pct)
            .fold(0.0f64, f64::max)
    };
    println!(
        "\nmax p5-p95 spread: RUP {:.2}% vs Fair-CO2 {:.2}% — Fair-CO2 collapses the per-workload bias bands",
        spread(&out.own_rup),
        spread(&out.own_fair)
    );

    let path = write_json("fig9", &out);
    println!("\nwrote {}", path.display());
}
