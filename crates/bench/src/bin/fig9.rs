//! **Figure 9** — per-workload attribution equity: the distribution of
//! signed deviations from the ground truth for each workload (top) and
//! for each workload's *partners* (bottom), under the RUP-Baseline (left)
//! and Fair-CO₂ (right).
//!
//! Tune with `--trials N --threads N`. Writes `results/fig9.json`.

use fairco2_bench::{write_json, Args};
use fairco2_montecarlo::colocations::{ColocationStudy, ColocationTrial};
use fairco2_montecarlo::runner::{default_threads, run_parallel};
use fairco2_trace::stats::Summary;
use fairco2_workloads::ALL_WORKLOADS;
use serde::Serialize;

#[derive(Serialize)]
struct Distribution {
    workload: String,
    samples: usize,
    mean_pct: f64,
    p5_pct: f64,
    median_pct: f64,
    p95_pct: f64,
}

#[derive(Serialize)]
struct Fig9 {
    /// Deviation of each workload's own attribution.
    own_rup: Vec<Distribution>,
    own_fair: Vec<Distribution>,
    /// Deviation of each workload's *partner's* attribution.
    partner_rup: Vec<Distribution>,
    partner_fair: Vec<Distribution>,
}

fn distribution(workload: &str, values: &[f64]) -> Distribution {
    let s: Summary = values.iter().copied().collect();
    Distribution {
        workload: workload.to_owned(),
        samples: s.len(),
        mean_pct: s.mean(),
        p5_pct: s.quantile(0.05),
        median_pct: s.quantile(0.5),
        p95_pct: s.quantile(0.95),
    }
}

fn print_block(title: &str, rows: &[Distribution]) {
    println!("\n{title}");
    println!(
        "{:<8} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "workload", "samples", "mean", "p5", "p50", "p95"
    );
    for r in rows {
        println!(
            "{:<8} {:>8} {:>8.2}% {:>8.2}% {:>8.2}% {:>8.2}%",
            r.workload, r.samples, r.mean_pct, r.p5_pct, r.median_pct, r.p95_pct
        );
    }
}

fn main() {
    let args = Args::parse();
    let study = ColocationStudy {
        trials: args.usize("trials", 2_000),
        base_seed: args.u64("seed", 0xF19_0009),
        ..ColocationStudy::default()
    };
    let threads = args.usize("threads", default_threads());

    eprintln!(
        "running {} colocation trials on {threads} threads…",
        study.trials
    );
    let trials: Vec<ColocationTrial> = run_parallel(study.trials, threads, |t| study.run_trial(t));

    let n = ALL_WORKLOADS.len();
    let mut own_rup: Vec<Vec<f64>> = vec![Vec::new(); n];
    let mut own_fair: Vec<Vec<f64>> = vec![Vec::new(); n];
    let mut partner_rup: Vec<Vec<f64>> = vec![Vec::new(); n];
    let mut partner_fair: Vec<Vec<f64>> = vec![Vec::new(); n];

    for trial in &trials {
        // Index per-instance deviations by position so we can find each
        // record's partner record (pairs are adjacent in scenario order).
        for w in &trial.per_workload {
            own_rup[w.kind.index()].push(w.rup_pct);
            own_fair[w.kind.index()].push(w.fair_pct);
        }
        for pair in trial.per_workload.chunks(2) {
            if let [a, b] = pair {
                if a.partner.is_some() {
                    // `b` is `a`'s partner and vice versa.
                    partner_rup[a.kind.index()].push(b.rup_pct);
                    partner_fair[a.kind.index()].push(b.fair_pct);
                    partner_rup[b.kind.index()].push(a.rup_pct);
                    partner_fair[b.kind.index()].push(a.fair_pct);
                }
            }
        }
    }

    let build = |data: &[Vec<f64>]| -> Vec<Distribution> {
        ALL_WORKLOADS
            .iter()
            .map(|w| distribution(w.name(), &data[w.index()]))
            .collect()
    };
    let out = Fig9 {
        own_rup: build(&own_rup),
        own_fair: build(&own_fair),
        partner_rup: build(&partner_rup),
        partner_fair: build(&partner_fair),
    };

    println!("Figure 9: per-workload deviation distributions (signed, % of ground truth)");
    print_block("(top-left) own deviation, RUP-Baseline", &out.own_rup);
    print_block("(top-right) own deviation, Fair-CO2", &out.own_fair);
    print_block(
        "(bottom-left) partner deviation, RUP-Baseline",
        &out.partner_rup,
    );
    print_block(
        "(bottom-right) partner deviation, Fair-CO2",
        &out.partner_fair,
    );

    let spread = |rows: &[Distribution]| {
        rows.iter()
            .map(|r| r.p95_pct - r.p5_pct)
            .fold(0.0f64, f64::max)
    };
    println!(
        "\nmax p5-p95 spread: RUP {:.2}% vs Fair-CO2 {:.2}% — Fair-CO2 collapses the per-workload bias bands",
        spread(&out.own_rup),
        spread(&out.own_fair)
    );

    let path = write_json("fig9", &out);
    println!("\nwrote {}", path.display());
}
