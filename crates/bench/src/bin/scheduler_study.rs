//! **Scheduler study** — the paper's claim that Fair-CO₂ "provides fair
//! carbon attributions that are agnostic to the choice of scheduler"
//! (Section 9), demonstrated on the discrete-event cluster simulator:
//!
//! the *same* job stream is run under three placement policies
//! (first-fit, least-interference, random); RUP's attribution of a given
//! job swings with the placement luck each policy dealt it, while
//! Fair-CO₂'s history-based attribution of that job is identical across
//! schedulers.
//!
//! Tune with `--jobs N --mean-interarrival S --grid-ci X --seed N`.
//! Writes `results/scheduler_study.json`.

use fairco2_bench::{write_json, Args};
use fairco2_cluster::policy::{FirstFit, LeastInterference, PlacementPolicy, RandomFit};
use fairco2_cluster::{JobStream, Simulator};
use fairco2_trace::stats::Summary;
use fairco2_workloads::history::full_profile;
use serde::Serialize;

#[derive(Serialize)]
struct PolicyRow {
    policy: String,
    total_carbon_kg: f64,
    node_seconds: f64,
    mean_slowdown: f64,
    peak_nodes: usize,
}

#[derive(Serialize)]
struct StudyResult {
    policies: Vec<PolicyRow>,
    /// Cross-policy spread of each job's attributed share, RUP (percent
    /// of its mean share): mean and max over jobs.
    rup_share_spread_mean_pct: f64,
    rup_share_spread_max_pct: f64,
    /// Same for Fair-CO₂ (zero by construction).
    fair_share_spread_mean_pct: f64,
    fair_share_spread_max_pct: f64,
}

/// Command-line flags this binary accepts.
const FLAGS: &[&str] = &["jobs", "mean-interarrival", "grid-ci", "seed"];

fn main() {
    let args = Args::parse(FLAGS);
    let jobs = args.usize("jobs", 300);
    let mean_ia = args.f64("mean-interarrival", 60.0);
    let grid_ci = args.f64("grid-ci", 250.0);
    let seed = args.u64("seed", 21);

    let stream = JobStream::poisson(jobs, mean_ia, seed);
    let sim = Simulator::paper_default();
    let mut policies: Vec<Box<dyn PlacementPolicy>> = vec![
        Box::new(FirstFit),
        Box::new(LeastInterference::default()),
        Box::new(RandomFit::seeded(seed ^ 0xF00D)),
    ];

    // Fair-CO₂ share weights are a function of each job's kind and its
    // historical profile only — compute once, valid under any scheduler.
    let fair_weight: Vec<f64> = stream
        .jobs()
        .iter()
        .map(|j| {
            let prof = full_profile(sim.interference(), j.kind);
            // Fixed + dynamic marginal weight (slot accounting).
            prof.mean_slot_s + (prof.mean_own_energy_j + prof.mean_partner_energy_j) / 3.6e4
        })
        .collect();
    let fair_total: f64 = fair_weight.iter().sum();

    let mut rows = Vec::new();
    let mut rup_fracs: Vec<Vec<f64>> = Vec::new(); // policy -> per-job share fraction
    println!("Scheduler study: {jobs} jobs, one stream, three schedulers ({grid_ci} gCO2e/kWh)");
    println!(
        "{:<20} {:>12} {:>13} {:>10} {:>10}",
        "policy", "carbon kg", "node-seconds", "slowdown", "peak nodes"
    );
    for policy in policies.iter_mut() {
        let out = sim.run(&stream, policy.as_mut());
        let total_carbon = out.total_carbon_g(grid_ci);
        // RUP: fixed costs ∝ observed runtime, dynamic ∝ util × runtime;
        // collapse to a single share of the policy's actual total.
        let rup_w: Vec<f64> = out
            .jobs
            .iter()
            .map(|j| j.runtime_s() * (1.0 + j.kind.profile().cpu_utilization))
            .collect();
        let rup_total: f64 = rup_w.iter().sum();
        rup_fracs.push(rup_w.iter().map(|w| w / rup_total).collect());

        println!(
            "{:<20} {:>12.2} {:>13.0} {:>10.3} {:>10}",
            policy.name(),
            total_carbon / 1000.0,
            out.node_seconds,
            out.mean_slowdown(),
            out.peak_nodes
        );
        rows.push(PolicyRow {
            policy: policy.name().to_owned(),
            total_carbon_kg: total_carbon / 1000.0,
            node_seconds: out.node_seconds,
            mean_slowdown: out.mean_slowdown(),
            peak_nodes: out.peak_nodes,
        });
    }

    // Cross-policy spread of per-job share fractions.
    let spread = |fracs: &[Vec<f64>]| -> (f64, f64) {
        let mut s = Summary::new();
        for j in 0..jobs {
            let vals: Vec<f64> = fracs.iter().map(|f| f[j]).collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
            s.push(100.0 * (max - min) / mean);
        }
        (s.mean(), s.quantile(1.0))
    };
    let (rup_mean, rup_max) = spread(&rup_fracs);
    let fair_fracs: Vec<Vec<f64>> = (0..3)
        .map(|_| fair_weight.iter().map(|w| w / fair_total).collect())
        .collect();
    let (fair_mean, fair_max) = spread(&fair_fracs);

    println!("\ncross-scheduler attribution spread per job (share of total):");
    println!("  RUP-Baseline : mean {rup_mean:.2} %, worst {rup_max:.2} %");
    println!("  Fair-CO2     : mean {fair_mean:.2} %, worst {fair_max:.2} %");
    println!("\nFair-CO2 charges a job the same share under every scheduler — the");
    println!("scheduler-agnosticism the paper claims — while RUP re-bills tenants");
    println!("for their neighbours' luck. The least-interference policy trades a");
    println!("few more node-seconds for a visibly lower mean slowdown at near-equal");
    println!("total carbon: attribution and scheduling compose independently.");

    let result = StudyResult {
        policies: rows,
        rup_share_spread_mean_pct: rup_mean,
        rup_share_spread_max_pct: rup_max,
        fair_share_spread_mean_pct: fair_mean,
        fair_share_spread_max_pct: fair_max,
    };
    let path = write_json("scheduler_study", &result);
    println!("\nwrote {}", path.display());
}
