//! **serve** — the always-on attribution service, run from the command
//! line: a deterministic demand stream is ingested continuously while
//! tenant threads fire billing-query batches at the latest epoch
//! snapshot, then a load summary is printed and the process exits
//! cleanly (the CI smoke test asserts nonzero throughput and a zero
//! exit code).
//!
//! ```text
//! serve --duration-ms 2000 --tenants 2 --batch 256 \
//!       --splits 4,3 --leaf-samples 4 --max-windows 256 \
//!       --carbon-per-window 1000 --seed 7 [--persist results/service]
//! ```
//!
//! With `--persist <dir>`, every closed window is durably written
//! (tmp + fsync + rename + directory fsync) to `dir/window-*.json`
//! before its epoch is published.

use fairco2_bench::Args;
use fairco2_serve::{run_load, LoadOptions, ServiceConfig};

/// Command-line flags this binary accepts.
const FLAGS: &[&str] = &[
    "duration-ms",
    "tenants",
    "batch",
    "max-windows",
    "splits",
    "leaf-samples",
    "step",
    "start",
    "carbon-per-window",
    "seed",
    "persist",
];

fn main() {
    let args = Args::parse(FLAGS);
    let splits: Vec<usize> = args
        .str("splits")
        .unwrap_or("4,3")
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .unwrap_or_else(|e| panic!("--splits expects comma-separated ratios: {e}"))
        })
        .collect();
    let config = ServiceConfig {
        start: args.u64("start", 0) as i64,
        step: args.u64("step", 300) as u32,
        splits,
        leaf_samples: args.usize("leaf-samples", 4).max(1),
        carbon_per_window: args.f64("carbon-per-window", 1000.0),
        persist_dir: args.str("persist").map(std::path::PathBuf::from),
    };
    let opts = LoadOptions {
        duration_ms: args.u64("duration-ms", 2_000).max(100),
        tenants: args.usize("tenants", 2).max(1),
        batch: args.usize("batch", 256).max(1),
        max_windows: args.u64("max-windows", 256).max(1),
        seed: args.u64("seed", 7),
    };

    println!(
        "serve: {}-sample windows (splits {:?} × {} leaf samples), {} tenants × {}-query batches, {} ms",
        config.window_samples(),
        config.splits,
        config.leaf_samples,
        opts.tenants,
        opts.batch,
        opts.duration_ms
    );

    let report = match run_load(config, &opts) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("serve: load run failed: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "serve: ingested {} samples, closed {} windows (epoch {})",
        report.ingested_samples, report.windows_closed, report.final_epoch
    );
    println!(
        "serve: {} queries in {} batches over {:.2}s = {:.0} queries/s, p99 batch {:.1} µs",
        report.queries_answered,
        report.batches_answered,
        report.elapsed_secs,
        report.queries_per_sec,
        report.p99_batch_latency_us
    );
    println!(
        "serve: {:.2} engine ops/sample (amortized O(log n) gauge)",
        report.ops_per_sample
    );

    if report.windows_closed == 0 || report.queries_answered == 0 {
        eprintln!("serve: load run made no progress (no windows closed or no queries answered)");
        std::process::exit(1);
    }
    println!("serve: clean shutdown");
}
