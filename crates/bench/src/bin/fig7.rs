//! **Figure 7** — Monte Carlo fairness under dynamic demand: average
//! (top) and worst-case (bottom) deviation from the ground-truth Shapley
//! across 10,000 random schedules, overall and broken down by schedule
//! length and workload count.
//!
//! Trials run through the streaming study engine: per-worker scratch
//! arenas, constant-memory summary accumulators, and batch merges that
//! are bit-identical at any thread count. Defaults to the paper's scale;
//! tune with `--trials N --max-workloads N --min-slices N --max-slices N
//! --threads N --batch N`. `--dump-trials all` (or `N` for the first N)
//! additionally streams every per-trial record as JSONL to
//! `results/fig7_trials.jsonl` (override with `--dump-path`) without
//! collecting trials in memory; the stream is in trial order and
//! byte-identical at any thread count. Long runs can snapshot with
//! `--checkpoint <path> --checkpoint-every <batches>` and pick up after
//! a kill with `--resume` (bit-identical to an uninterrupted run);
//! `--retries N` sets the per-batch fault budget. Writes
//! `results/fig7.json`.

use fairco2_bench::{
    exit_on_engine_error, print_report, sample_schedule, study_options, write_json, Args,
    SamplingReport, TrialDump, CHECKPOINT_FLAGS,
};
use fairco2_montecarlo::runner::default_threads;
use fairco2_montecarlo::schedules::DemandStudy;
use fairco2_montecarlo::streaming::{DemandMethodSet, MethodStream, DEFAULT_BATCH_TRIALS};
use fairco2_montecarlo::{
    stream_demand_study_resumable, stream_demand_study_with_sink, EngineConfig, EngineStats,
};
use serde::Serialize;

#[derive(Serialize)]
struct Fig7 {
    panels: Vec<Panel>,
    /// Empirical CDFs of the per-trial average deviation over all
    /// scenarios (the Figure 7e curves), as `(deviation_pct,
    /// cumulative_fraction)` points.
    average_cdf: Vec<MethodCdf>,
    /// Convergence trace of the sampled engine on this study's first
    /// schedule — how many permutations the sampling alternative to the
    /// exact ground truth needs.
    shapley_sampling: SamplingReport,
    /// What the streaming engine did (trials, batches, scratch reuse).
    engine: EngineStats,
}

#[derive(Serialize)]
struct MethodStats {
    method: String,
    mean_pct: f64,
    median_pct: f64,
    p5_pct: f64,
    p95_pct: f64,
}

#[derive(Serialize)]
struct MethodCdf {
    method: String,
    points: Vec<(f64, f64)>,
}

#[derive(Serialize)]
struct Panel {
    label: String,
    scenarios: usize,
    average: Vec<MethodStats>,
    worst_case: Vec<MethodStats>,
}

const METHODS: [&str; 3] = ["rup-baseline", "demand-proportional", "fair-co2"];

fn method_streams(set: &DemandMethodSet) -> [&MethodStream; 3] {
    [&set.rup, &set.demand_proportional, &set.fair_co2]
}

fn stats(method: &str, s: &fairco2_montecarlo::StatStream) -> MethodStats {
    MethodStats {
        method: method.to_owned(),
        mean_pct: s.mean(),
        median_pct: s.quantile(0.5),
        p5_pct: s.quantile(0.05),
        p95_pct: s.quantile(0.95),
    }
}

fn panel(label: &str, set: &DemandMethodSet) -> Panel {
    let streams = method_streams(set);
    Panel {
        label: label.to_owned(),
        scenarios: set.rup.average.count() as usize,
        average: METHODS
            .iter()
            .zip(streams)
            .map(|(m, s)| stats(m, &s.average))
            .collect(),
        worst_case: METHODS
            .iter()
            .zip(streams)
            .map(|(m, s)| stats(m, &s.worst_case))
            .collect(),
    }
}

fn print_panel(p: &Panel) {
    println!("\n[{}] ({} scenarios)", p.label, p.scenarios);
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>10}   {:>10} {:>10}",
        "method", "avg mean", "avg p50", "avg p95", "avg p5", "worst mean", "worst p95"
    );
    for (a, w) in p.average.iter().zip(&p.worst_case) {
        println!(
            "{:<22} {:>9.1}% {:>9.1}% {:>9.1}% {:>9.1}%   {:>9.1}% {:>9.1}%",
            a.method, a.mean_pct, a.median_pct, a.p95_pct, a.p5_pct, w.mean_pct, w.p95_pct
        );
    }
}

/// Command-line flags this binary accepts.
const FLAGS: &[&str] = &[
    "trials",
    "max-workloads",
    "min-slices",
    "max-slices",
    "seed",
    "threads",
    "batch",
    "dump-trials",
    "dump-path",
    "permutations",
];

fn main() {
    let args = Args::parse(&[FLAGS, CHECKPOINT_FLAGS].concat());
    let study = DemandStudy {
        trials: args.usize("trials", 10_000),
        max_workloads: args.usize("max-workloads", 22),
        min_time_slices: args.usize("min-slices", 4),
        max_time_slices: args.usize("max-slices", 9),
        base_seed: args.u64("seed", DemandStudy::default().base_seed),
    };
    let threads = args.usize("threads", default_threads());
    let cfg = EngineConfig {
        threads,
        batch_trials: args.usize("batch", DEFAULT_BATCH_TRIALS),
        collect_trials: false,
    };

    let opts = study_options(&args, "");
    let mut dump = TrialDump::from_args(&args, "fig7");
    eprintln!(
        "streaming {} schedule trials on {threads} threads (exact ground truth, ≤{} workloads)…",
        study.trials, study.max_workloads
    );
    let (summary, engine) = if let Some(d) = dump.as_mut() {
        exit_on_engine_error(stream_demand_study_with_sink(
            &study,
            cfg,
            &opts,
            |_, _| {},
            |trial| d.observe(trial),
        ))
    } else {
        let (summary, _, engine) =
            exit_on_engine_error(stream_demand_study_resumable(&study, cfg, &opts, |_, _| {}));
        (summary, engine)
    };

    let mut panels = vec![panel("all scenarios (a, e)", &summary.all)];
    for b in &summary.by_time_slices {
        if b.methods.rup.average.count() > 0 {
            panels.push(panel(
                &format!("{} time slices (b, c, f, g)", b.lo),
                &b.methods,
            ));
        }
    }
    for b in &summary.by_workloads {
        if b.methods.rup.average.count() > 0 {
            panels.push(panel(
                &format!("{}-{} workloads (d, h)", b.lo, b.hi),
                &b.methods,
            ));
        }
    }

    println!("Figure 7: attribution fairness under dynamic demand");
    for p in &panels {
        print_panel(p);
    }

    let overall = &panels[0];
    println!(
        "\nheadline: RUP {:.0}% / {:.0}%, demand-prop {:.0}% / {:.0}%, Fair-CO2 {:.0}% / {:.0}% (avg/worst mean)",
        overall.average[0].mean_pct,
        overall.worst_case[0].mean_pct,
        overall.average[1].mean_pct,
        overall.worst_case[1].mean_pct,
        overall.average[2].mean_pct,
        overall.worst_case[2].mean_pct,
    );
    println!("paper:    RUP ~80% / ~279%, demand-prop ~31% / ~90%, Fair-CO2 ~19% / ~55%");
    println!(
        "engine:   {} trials in {} batches, scratch grows {} / reuses {}",
        engine.trials, engine.batches, engine.scratch.table_grows, engine.scratch.table_reuses
    );

    let average_cdf = METHODS
        .iter()
        .zip(method_streams(&summary.all))
        .map(|(m, s)| MethodCdf {
            method: (*m).to_owned(),
            points: s.average.hist.cdf_points(),
        })
        .collect();

    let schedule = study.generate_schedule(0);
    let shapley_sampling = sample_schedule(
        &schedule,
        args.usize("permutations", 4096),
        threads,
        study.base_seed,
    );
    print_report(&shapley_sampling);

    if let Some(d) = dump {
        let (path, lines) = d.finish();
        println!("wrote {} ({lines} per-trial JSONL records)", path.display());
    }
    let path = write_json(
        "fig7",
        &Fig7 {
            panels,
            average_cdf,
            shapley_sampling,
            engine,
        },
    );
    println!("\nwrote {}", path.display());
}
