//! **Figure 7** — Monte Carlo fairness under dynamic demand: average
//! (top) and worst-case (bottom) deviation from the ground-truth Shapley
//! across 10,000 random schedules, overall and broken down by schedule
//! length and workload count.
//!
//! Defaults to the paper's scale; tune with
//! `--trials N --max-workloads N --min-slices N --max-slices N
//! --threads N`. Writes `results/fig7.json`.

use fairco2_bench::{print_report, sample_schedule, write_json, Args, SamplingReport};
use fairco2_montecarlo::runner::{default_threads, run_parallel};
use fairco2_montecarlo::schedules::{DemandStudy, DemandTrial};
use fairco2_trace::stats::Summary;
use serde::Serialize;

#[derive(Serialize)]
struct Fig7 {
    panels: Vec<Panel>,
    /// Convergence trace of the sampled engine on this study's first
    /// schedule — how many permutations the sampling alternative to the
    /// exact ground truth needs.
    shapley_sampling: SamplingReport,
}

#[derive(Serialize)]
struct MethodStats {
    method: String,
    mean_pct: f64,
    median_pct: f64,
    p5_pct: f64,
    p95_pct: f64,
}

#[derive(Serialize)]
struct Panel {
    label: String,
    scenarios: usize,
    average: Vec<MethodStats>,
    worst_case: Vec<MethodStats>,
}

fn stats<F: Fn(&DemandTrial) -> f64>(
    method: &str,
    trials: &[&DemandTrial],
    pick: F,
) -> MethodStats {
    let s: Summary = trials.iter().map(|t| pick(t)).collect();
    MethodStats {
        method: method.to_owned(),
        mean_pct: s.mean(),
        median_pct: s.quantile(0.5),
        p5_pct: s.quantile(0.05),
        p95_pct: s.quantile(0.95),
    }
}

fn panel(label: &str, trials: &[&DemandTrial]) -> Panel {
    Panel {
        label: label.to_owned(),
        scenarios: trials.len(),
        average: vec![
            stats("rup-baseline", trials, |t| t.rup.average_pct),
            stats("demand-proportional", trials, |t| {
                t.demand_proportional.average_pct
            }),
            stats("fair-co2", trials, |t| t.fair_co2.average_pct),
        ],
        worst_case: vec![
            stats("rup-baseline", trials, |t| t.rup.worst_case_pct),
            stats("demand-proportional", trials, |t| {
                t.demand_proportional.worst_case_pct
            }),
            stats("fair-co2", trials, |t| t.fair_co2.worst_case_pct),
        ],
    }
}

fn print_panel(p: &Panel) {
    println!("\n[{}] ({} scenarios)", p.label, p.scenarios);
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>10}   {:>10} {:>10}",
        "method", "avg mean", "avg p50", "avg p95", "avg p5", "worst mean", "worst p95"
    );
    for (a, w) in p.average.iter().zip(&p.worst_case) {
        println!(
            "{:<22} {:>9.1}% {:>9.1}% {:>9.1}% {:>9.1}%   {:>9.1}% {:>9.1}%",
            a.method, a.mean_pct, a.median_pct, a.p95_pct, a.p5_pct, w.mean_pct, w.p95_pct
        );
    }
}

fn main() {
    let args = Args::parse();
    let study = DemandStudy {
        trials: args.usize("trials", 10_000),
        max_workloads: args.usize("max-workloads", 22),
        min_time_slices: args.usize("min-slices", 4),
        max_time_slices: args.usize("max-slices", 9),
        base_seed: args.u64("seed", DemandStudy::default().base_seed),
    };
    let threads = args.usize("threads", default_threads());

    eprintln!(
        "running {} schedule trials on {threads} threads (exact ground truth, ≤{} workloads)…",
        study.trials, study.max_workloads
    );
    let trials: Vec<DemandTrial> = run_parallel(study.trials, threads, |t| study.run_trial(t));

    let all: Vec<&DemandTrial> = trials.iter().collect();
    let mut panels = vec![panel("all scenarios (a, e)", &all)];

    for slices in study.min_time_slices..=study.max_time_slices {
        let subset: Vec<&DemandTrial> = trials.iter().filter(|t| t.time_slices == slices).collect();
        if !subset.is_empty() {
            panels.push(panel(
                &format!("{slices} time slices (b, c, f, g)"),
                &subset,
            ));
        }
    }
    for (lo, hi) in [(1usize, 7usize), (8, 14), (15, 22)] {
        let subset: Vec<&DemandTrial> = trials
            .iter()
            .filter(|t| (lo..=hi).contains(&t.workloads))
            .collect();
        if !subset.is_empty() {
            panels.push(panel(&format!("{lo}-{hi} workloads (d, h)"), &subset));
        }
    }

    println!("Figure 7: attribution fairness under dynamic demand");
    for p in &panels {
        print_panel(p);
    }

    let overall = &panels[0];
    println!(
        "\nheadline: RUP {:.0}% / {:.0}%, demand-prop {:.0}% / {:.0}%, Fair-CO2 {:.0}% / {:.0}% (avg/worst mean)",
        overall.average[0].mean_pct,
        overall.worst_case[0].mean_pct,
        overall.average[1].mean_pct,
        overall.worst_case[1].mean_pct,
        overall.average[2].mean_pct,
        overall.worst_case[2].mean_pct,
    );
    println!("paper:    RUP ~80% / ~279%, demand-prop ~31% / ~90%, Fair-CO2 ~19% / ~55%");

    let schedule = study.generate_schedule(0);
    let shapley_sampling = sample_schedule(
        &schedule,
        args.usize("permutations", 4096),
        threads,
        study.base_seed,
    );
    print_report(&shapley_sampling);

    let path = write_json(
        "fig7",
        &Fig7 {
            panels,
            shapley_sampling,
        },
    );
    println!("\nwrote {}", path.display());
}
