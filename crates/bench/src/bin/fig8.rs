//! **Figure 8** — Monte Carlo fairness under interference: average (top)
//! and worst-case (bottom) deviation from the ground-truth Shapley across
//! 10,000 random colocation scenarios — overall, by historical sampling
//! rate, by workload count, and by grid carbon intensity.
//!
//! Trials run through the streaming study engine (per-worker scratch
//! arenas, constant-memory accumulators, thread-count-invariant merges).
//! Tune with `--trials N --min-workloads N --max-workloads N
//! --min-grid-ci X --max-grid-ci X --threads N --batch N`.
//! `--dump-trials all` (or `N` for the first N) additionally streams
//! every per-trial record as JSONL to `results/fig8_trials.jsonl`
//! (override with `--dump-path`) without collecting trials in memory;
//! the stream is in trial order and byte-identical at any thread count.
//! Long runs can snapshot with `--checkpoint <path> --checkpoint-every
//! <batches>` and pick up after a kill with `--resume`; `--retries N`
//! sets the per-batch fault budget. Writes `results/fig8.json`.

use fairco2_bench::{
    exit_on_engine_error, print_report, sample_schedule, study_options, write_json, Args,
    SamplingReport, TrialDump, CHECKPOINT_FLAGS,
};
use fairco2_montecarlo::colocations::ColocationStudy;
use fairco2_montecarlo::runner::default_threads;
use fairco2_montecarlo::schedules::DemandStudy;
use fairco2_montecarlo::streaming::{ColocationMethodSet, MethodStream, DEFAULT_BATCH_TRIALS};
use fairco2_montecarlo::{
    stream_colocation_study_resumable, stream_colocation_study_with_sink, EngineConfig,
    EngineStats, StatStream,
};
use serde::Serialize;

#[derive(Serialize)]
struct Fig8 {
    panels: Vec<Panel>,
    /// Empirical CDFs of the per-trial average deviation over all
    /// scenarios, as `(deviation_pct, cumulative_fraction)` points.
    average_cdf: Vec<MethodCdf>,
    /// Convergence trace of the sampled engine on a peak game sized to
    /// this study's workload counts — exact enumeration is intractable at
    /// this scale, so sampling is the only ground-truth path.
    shapley_sampling: SamplingReport,
    /// What the streaming engine did (trials, batches, scratch reuse).
    engine: EngineStats,
}

#[derive(Serialize)]
struct MethodStats {
    method: String,
    mean_pct: f64,
    median_pct: f64,
    p95_pct: f64,
}

#[derive(Serialize)]
struct MethodCdf {
    method: String,
    points: Vec<(f64, f64)>,
}

#[derive(Serialize)]
struct Panel {
    label: String,
    scenarios: usize,
    average: Vec<MethodStats>,
    worst_case: Vec<MethodStats>,
}

const METHODS: [&str; 2] = ["rup-baseline", "fair-co2"];

fn method_streams(set: &ColocationMethodSet) -> [&MethodStream; 2] {
    [&set.rup, &set.fair_co2]
}

fn stats(method: &str, s: &StatStream) -> MethodStats {
    MethodStats {
        method: method.to_owned(),
        mean_pct: s.mean(),
        median_pct: s.quantile(0.5),
        p95_pct: s.quantile(0.95),
    }
}

fn panel(label: &str, set: &ColocationMethodSet) -> Panel {
    let streams = method_streams(set);
    Panel {
        label: label.to_owned(),
        scenarios: set.rup.average.count() as usize,
        average: METHODS
            .iter()
            .zip(streams)
            .map(|(m, s)| stats(m, &s.average))
            .collect(),
        worst_case: METHODS
            .iter()
            .zip(streams)
            .map(|(m, s)| stats(m, &s.worst_case))
            .collect(),
    }
}

fn print_panel(p: &Panel) {
    println!("\n[{}] ({} scenarios)", p.label, p.scenarios);
    for (a, w) in p.average.iter().zip(&p.worst_case) {
        println!(
            "  {:<14} avg: mean {:>6.2}% p50 {:>6.2}% p95 {:>6.2}%   worst: mean {:>6.2}% p95 {:>6.2}%",
            a.method, a.mean_pct, a.median_pct, a.p95_pct, w.mean_pct, w.p95_pct
        );
    }
}

/// Command-line flags this binary accepts.
const FLAGS: &[&str] = &[
    "trials",
    "min-workloads",
    "max-workloads",
    "min-grid-ci",
    "max-grid-ci",
    "min-samples",
    "max-samples",
    "seed",
    "threads",
    "batch",
    "dump-trials",
    "dump-path",
    "permutations",
];

fn main() {
    let args = Args::parse(&[FLAGS, CHECKPOINT_FLAGS].concat());
    let study = ColocationStudy {
        trials: args.usize("trials", 10_000),
        min_workloads: args.usize("min-workloads", 4),
        max_workloads: args.usize("max-workloads", 100),
        min_grid_ci: args.f64("min-grid-ci", 0.0),
        max_grid_ci: args.f64("max-grid-ci", 1000.0),
        min_samples: args.usize("min-samples", 1),
        max_samples: args.usize("max-samples", 15),
        base_seed: args.u64("seed", ColocationStudy::default().base_seed),
    };
    let threads = args.usize("threads", default_threads());
    let cfg = EngineConfig {
        threads,
        batch_trials: args.usize("batch", DEFAULT_BATCH_TRIALS),
        collect_trials: false,
    };

    let opts = study_options(&args, "");
    let mut dump = TrialDump::from_args(&args, "fig8");
    eprintln!(
        "streaming {} colocation trials on {threads} threads (exact matching-game ground truth)…",
        study.trials
    );
    let (summary, engine) = if let Some(d) = dump.as_mut() {
        exit_on_engine_error(stream_colocation_study_with_sink(
            &study,
            cfg,
            &opts,
            |_, _| {},
            |trial| d.observe(trial),
        ))
    } else {
        let (summary, _, engine) = exit_on_engine_error(stream_colocation_study_resumable(
            &study,
            cfg,
            &opts,
            |_, _| {},
        ));
        (summary, engine)
    };

    let mut panels = vec![panel("all scenarios (a, e)", &summary.all)];
    for b in &summary.by_samples {
        if b.methods.rup.average.count() > 0 {
            panels.push(panel(&format!("{} (b, f)", b.label), &b.methods));
        }
    }
    for b in &summary.by_workloads {
        if b.methods.rup.average.count() > 0 {
            panels.push(panel(&format!("{} (c, g)", b.label), &b.methods));
        }
    }
    for b in &summary.by_grid_ci {
        if b.methods.rup.average.count() > 0 {
            panels.push(panel(&format!("{} (d, h)", b.label), &b.methods));
        }
    }

    println!("Figure 8: attribution fairness under interference");
    for p in &panels {
        print_panel(p);
    }

    let overall = &panels[0];
    println!(
        "\nheadline: RUP {:.2}% avg / {:.2}% worst — Fair-CO2 {:.2}% avg / {:.2}% worst",
        overall.average[0].mean_pct,
        overall.worst_case[0].mean_pct,
        overall.average[1].mean_pct,
        overall.worst_case[1].mean_pct,
    );
    println!("paper:    RUP 9.7% avg / 31.7% worst — Fair-CO2 1.72% avg / 5.0% worst");
    println!(
        "engine:   {} trials in {} batches, {} scratch-served solves",
        engine.trials, engine.batches, engine.scratch.table_reuses
    );

    let average_cdf = METHODS
        .iter()
        .zip(method_streams(&summary.all))
        .map(|(m, s)| MethodCdf {
            method: (*m).to_owned(),
            points: s.average.hist.cdf_points(),
        })
        .collect();

    let probe = DemandStudy {
        max_workloads: study.max_workloads,
        ..DemandStudy::default()
    };
    let schedule = probe.generate_schedule(0);
    let shapley_sampling = sample_schedule(
        &schedule,
        args.usize("permutations", 4096),
        threads,
        study.base_seed,
    );
    print_report(&shapley_sampling);

    if let Some(d) = dump {
        let (path, lines) = d.finish();
        println!("wrote {} ({lines} per-trial JSONL records)", path.display());
    }
    let path = write_json(
        "fig8",
        &Fig8 {
            panels,
            average_cdf,
            shapley_sampling,
            engine,
        },
    );
    println!("\nwrote {}", path.display());
}
