//! **Figure 8** — Monte Carlo fairness under interference: average (top)
//! and worst-case (bottom) deviation from the ground-truth Shapley across
//! 10,000 random colocation scenarios — overall, by historical sampling
//! rate, by workload count, and by grid carbon intensity.
//!
//! Tune with `--trials N --min-workloads N --max-workloads N
//! --min-grid-ci X --max-grid-ci X --threads N`.
//! Writes `results/fig8.json`.

use fairco2_bench::{print_report, sample_schedule, write_json, Args, SamplingReport};
use fairco2_montecarlo::colocations::{ColocationStudy, ColocationTrial};
use fairco2_montecarlo::runner::{default_threads, run_parallel};
use fairco2_montecarlo::schedules::DemandStudy;
use fairco2_trace::stats::Summary;
use serde::Serialize;

#[derive(Serialize)]
struct Fig8 {
    panels: Vec<Panel>,
    /// Convergence trace of the sampled engine on a peak game sized to
    /// this study's workload counts — exact enumeration is intractable at
    /// this scale, so sampling is the only ground-truth path.
    shapley_sampling: SamplingReport,
}

#[derive(Serialize)]
struct MethodStats {
    method: String,
    mean_pct: f64,
    median_pct: f64,
    p95_pct: f64,
}

#[derive(Serialize)]
struct Panel {
    label: String,
    scenarios: usize,
    average: Vec<MethodStats>,
    worst_case: Vec<MethodStats>,
}

fn stats<F: Fn(&ColocationTrial) -> f64>(
    method: &str,
    trials: &[&ColocationTrial],
    pick: F,
) -> MethodStats {
    let s: Summary = trials.iter().map(|t| pick(t)).collect();
    MethodStats {
        method: method.to_owned(),
        mean_pct: s.mean(),
        median_pct: s.quantile(0.5),
        p95_pct: s.quantile(0.95),
    }
}

fn panel(label: &str, trials: &[&ColocationTrial]) -> Panel {
    Panel {
        label: label.to_owned(),
        scenarios: trials.len(),
        average: vec![
            stats("rup-baseline", trials, |t| t.rup.average_pct),
            stats("fair-co2", trials, |t| t.fair_co2.average_pct),
        ],
        worst_case: vec![
            stats("rup-baseline", trials, |t| t.rup.worst_case_pct),
            stats("fair-co2", trials, |t| t.fair_co2.worst_case_pct),
        ],
    }
}

fn print_panel(p: &Panel) {
    println!("\n[{}] ({} scenarios)", p.label, p.scenarios);
    for (a, w) in p.average.iter().zip(&p.worst_case) {
        println!(
            "  {:<14} avg: mean {:>6.2}% p50 {:>6.2}% p95 {:>6.2}%   worst: mean {:>6.2}% p95 {:>6.2}%",
            a.method, a.mean_pct, a.median_pct, a.p95_pct, w.mean_pct, w.p95_pct
        );
    }
}

fn main() {
    let args = Args::parse();
    let study = ColocationStudy {
        trials: args.usize("trials", 10_000),
        min_workloads: args.usize("min-workloads", 4),
        max_workloads: args.usize("max-workloads", 100),
        min_grid_ci: args.f64("min-grid-ci", 0.0),
        max_grid_ci: args.f64("max-grid-ci", 1000.0),
        min_samples: args.usize("min-samples", 1),
        max_samples: args.usize("max-samples", 15),
        base_seed: args.u64("seed", ColocationStudy::default().base_seed),
    };
    let threads = args.usize("threads", default_threads());

    eprintln!(
        "running {} colocation trials on {threads} threads (exact matching-game ground truth)…",
        study.trials
    );
    let trials: Vec<ColocationTrial> = run_parallel(study.trials, threads, |t| study.run_trial(t));

    let all: Vec<&ColocationTrial> = trials.iter().collect();
    let mut panels = vec![panel("all scenarios (a, e)", &all)];

    for (lo, hi) in [(1usize, 3usize), (4, 7), (8, 11), (12, 14)] {
        let subset: Vec<&ColocationTrial> = trials
            .iter()
            .filter(|t| (lo..=hi).contains(&t.samples))
            .collect();
        if !subset.is_empty() {
            panels.push(panel(
                &format!("sampling {lo}-{hi} of 14 partners (b, f)"),
                &subset,
            ));
        }
    }
    for (lo, hi) in [(4usize, 25usize), (26, 50), (51, 75), (76, 100)] {
        let subset: Vec<&ColocationTrial> = trials
            .iter()
            .filter(|t| (lo..=hi).contains(&t.workloads))
            .collect();
        if !subset.is_empty() {
            panels.push(panel(&format!("{lo}-{hi} workloads (c, g)"), &subset));
        }
    }
    for (lo, hi) in [
        (0.0, 250.0),
        (250.0, 500.0),
        (500.0, 750.0),
        (750.0, 1000.0),
    ] {
        let subset: Vec<&ColocationTrial> = trials
            .iter()
            .filter(|t| t.grid_ci >= lo && t.grid_ci < hi + 1e-9)
            .collect();
        if !subset.is_empty() {
            panels.push(panel(
                &format!("grid CI {lo:.0}-{hi:.0} gCO2e/kWh (d, h)"),
                &subset,
            ));
        }
    }

    println!("Figure 8: attribution fairness under interference");
    for p in &panels {
        print_panel(p);
    }

    let overall = &panels[0];
    println!(
        "\nheadline: RUP {:.2}% avg / {:.2}% worst — Fair-CO2 {:.2}% avg / {:.2}% worst",
        overall.average[0].mean_pct,
        overall.worst_case[0].mean_pct,
        overall.average[1].mean_pct,
        overall.worst_case[1].mean_pct,
    );
    println!("paper:    RUP 9.7% avg / 31.7% worst — Fair-CO2 1.72% avg / 5.0% worst");

    let probe = DemandStudy {
        max_workloads: study.max_workloads,
        ..DemandStudy::default()
    };
    let schedule = probe.generate_schedule(0);
    let shapley_sampling = sample_schedule(
        &schedule,
        args.usize("permutations", 4096),
        threads,
        study.base_seed,
    );
    print_report(&shapley_sampling);

    let path = write_json(
        "fig8",
        &Fig8 {
            panels,
            shapley_sampling,
        },
    );
    println!("\nwrote {}", path.display());
}
