//! **Section 5.1 theory** — the unit-resource-time approximation's
//! over-attribution of long-running workloads, measured against the
//! exact workload-level ground truth, and the future-work discount that
//! removes it.
//!
//! Writes `results/theory.json`.

use fairco2_bench::{write_json, Args};
use fairco2_shapley::unit_time::{IntensityConvention, UnitTimeScenario};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    short_lived_k: usize,
    paper_short_g: f64,
    paper_long_g: f64,
    eq5_long_g: f64,
    ground_truth_long_g: f64,
    over_attribution_phi: f64,
    over_attribution_eq5: f64,
    equalizing_discount: f64,
}

/// Command-line flags this binary accepts.
const FLAGS: &[&str] = &["workloads", "intervals", "long-peak", "carbon"];

fn main() {
    let args = Args::parse(FLAGS);
    let n = args.usize("workloads", 100);
    let m = args.usize("intervals", 12);
    let p = args.f64("long-peak", 0.2);
    let carbon = args.f64("carbon", 1000.0);

    println!("Section 5.1: over-attribution of long-running workloads (n={n}, m={m}, p={p})");
    println!(
        "{:>5} {:>11} {:>11} {:>11} {:>11} {:>9} {:>9} {:>9}",
        "K",
        "paper shrt",
        "paper long",
        "eq5 long",
        "truth long",
        "over(phi)",
        "over(eq5)",
        "discount"
    );
    let mut rows = Vec::new();
    for k in [50usize, 70, 80, 90, 95, 98] {
        let s = UnitTimeScenario {
            workloads: n,
            short_lived: k,
            intervals: m,
            long_peak: p,
            total_carbon: carbon,
        };
        let paper = s.paper_formula();
        let eq5 = s.temporal_attribution(IntensityConvention::Eq5, 0.0);
        let truth = s.ground_truth();
        let over_phi = s.over_attribution(IntensityConvention::ProportionalToPhi);
        let over_eq5 = s.over_attribution(IntensityConvention::Eq5);
        let discount = s.equalizing_discount(IntensityConvention::ProportionalToPhi);
        println!(
            "{k:>5} {:>11.2} {:>11.2} {:>11.2} {:>11.2} {:>9.3} {:>9.3} {:>9.3}",
            paper.short_each,
            paper.long_each,
            eq5.long_each,
            truth.long_each,
            over_phi,
            over_eq5,
            discount
        );
        rows.push(Row {
            short_lived_k: k,
            paper_short_g: paper.short_each,
            paper_long_g: paper.long_each,
            eq5_long_g: eq5.long_each,
            ground_truth_long_g: truth.long_each,
            over_attribution_phi: over_phi,
            over_attribution_eq5: over_eq5,
            equalizing_discount: discount,
        });
    }

    println!("\nAs K → N the paper's C·p·(m−1)/((n−K)·m) term concentrates on ever");
    println!("fewer long-running workloads; the Eq. 5 intensity (∝ φ·q) softens the");
    println!("distortion, and the solved discount removes it entirely — the");
    println!("\"discounting carbon for long-running workloads\" the paper leaves to");
    println!("future work.");

    let path = write_json("theory", &rows);
    println!("\nwrote {}", path.display());
}
