//! **Figure 5** — demand forecasting: fit 21 days of the Azure-like
//! trace, forecast the remaining 9 days, and compare with the actual
//! demand.
//!
//! Writes `results/fig5.json`.

use fairco2_bench::{write_json, Args};
use fairco2_forecast::{split_at_day, SeasonalForecaster};
use fairco2_trace::stats::{mape, worst_ape};
use fairco2_trace::AzureLikeTrace;
use serde::Serialize;

#[derive(Serialize)]
struct Fig5 {
    train_days: u32,
    horizon_days: u32,
    actual_hourly: Vec<f64>,
    forecast_hourly: Vec<f64>,
    demand_mape_pct: f64,
    demand_worst_ape_pct: f64,
}

/// Command-line flags this binary accepts.
const FLAGS: &[&str] = &["seed", "train-days", "days"];

fn main() {
    let args = Args::parse(FLAGS);
    let seed = args.u64("seed", 7);
    let train_days = args.usize("train-days", 21) as u32;
    let total_days = args.usize("days", 30) as u32;

    let trace = AzureLikeTrace::builder()
        .days(total_days)
        .seed(seed)
        .build();
    let (train, test) = split_at_day(trace.series(), train_days).expect("30-day trace splits");
    let model = SeasonalForecaster::default_daily_weekly()
        .fit(&train)
        .expect("21 days of 5-minute samples is plenty");
    let forecast = model.predict(test.len());

    let m = mape(test.values(), forecast.values()).expect("aligned series");
    let w = worst_ape(test.values(), forecast.values()).expect("aligned series");

    println!(
        "Figure 5: {train_days}-day history -> {}-day demand forecast",
        total_days - train_days
    );
    println!("demand forecast MAPE      = {m:.2} %");
    println!("demand forecast worst APE = {w:.2} %");
    println!("\nday  actual-mean  forecast-mean  (cores)");
    let day = 86_400 / i64::from(test.step());
    for d in 0..i64::from(total_days - train_days) {
        let a: f64 = test.values()[(d * day) as usize..((d + 1) * day) as usize]
            .iter()
            .sum::<f64>()
            / day as f64;
        let f: f64 = forecast.values()[(d * day) as usize..((d + 1) * day) as usize]
            .iter()
            .sum::<f64>()
            / day as f64;
        println!("{:>3}  {a:>11.0}  {f:>13.0}", train_days as i64 + d + 1);
    }

    let out = Fig5 {
        train_days,
        horizon_days: total_days - train_days,
        actual_hourly: test.downsample_mean(12).expect("hourly").into_values(),
        forecast_hourly: forecast.downsample_mean(12).expect("hourly").into_values(),
        demand_mape_pct: m,
        demand_worst_ape_pct: w,
    };
    let path = write_json("fig5", &out);
    println!("\nwrote {}", path.display());
}
