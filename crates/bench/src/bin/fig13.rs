//! **Figure 13** — one week of dynamic FAISS reconfiguration: the service
//! tracks the live grid carbon intensity (CAISO-like duck curve) and
//! Fair-CO₂'s embodied intensity signal, switching (index, cores, batch)
//! under a 2-second tail-latency target. The paper reports 38.4 % carbon
//! savings against the performance-optimal configuration.
//!
//! Writes `results/fig13.json`.

use fairco2_bench::{write_json, Args};
use fairco2_optimize::dynamic::DynamicStudy;
use fairco2_optimize::faiss::IndexKind;
use fairco2_shapley::temporal::TemporalShapley;
use fairco2_trace::{AzureLikeTrace, GridIntensityTrace};
use serde::Serialize;

#[derive(Serialize)]
struct HourRow {
    hour: i64,
    grid_ci: f64,
    embodied_scale: f64,
    index: String,
    cores: u32,
    batch: u32,
    optimized_g: f64,
    baseline_g: f64,
}

#[derive(Serialize)]
struct Fig13 {
    saving_pct: f64,
    optimized_total_kg: f64,
    baseline_total_kg: f64,
    index_switches: usize,
    hnsw_hours: usize,
    ivf_hours: usize,
    hours: Vec<HourRow>,
}

/// Command-line flags this binary accepts.
const FLAGS: &[&str] = &["seed", "days"];

fn main() {
    let args = Args::parse(FLAGS);
    let seed = args.u64("seed", 13);
    let days = args.usize("days", 7) as u32;

    // Grid CI: a CAISO-like duck curve, hourly for one week.
    let grid = GridIntensityTrace::caiso_like(days, 3600, seed);
    // Embodied intensity: Temporal Shapley over an Azure-like demand
    // trace covering the same week (hourly leaves).
    let demand = AzureLikeTrace::builder()
        .days(days)
        .step_seconds(3600)
        .seed(seed ^ 0xA2)
        .build();
    let signal = TemporalShapley::new(vec![days as usize, 24])
        .attribute(demand.series(), 1000.0)
        .expect("hourly week divides day-by-hour")
        .leaf_intensity()
        .clone();

    let study = DynamicStudy::default();
    let outcome = study.run(&grid, &signal);

    let hours: Vec<HourRow> = outcome
        .intervals
        .iter()
        .map(|i| HourRow {
            hour: i.t / 3600,
            grid_ci: i.grid_ci,
            embodied_scale: i.embodied_scale,
            index: i.config.index.to_string(),
            cores: i.config.cores,
            batch: i.config.batch,
            optimized_g: i.optimized_g,
            baseline_g: i.baseline_g,
        })
        .collect();

    let hnsw_hours = outcome
        .intervals
        .iter()
        .filter(|i| i.config.index == IndexKind::Hnsw)
        .count();

    println!("Figure 13: one-week dynamic FAISS optimization (2 s tail target)");
    println!("\nfirst 48 hours:");
    println!(
        "{:>5} {:>8} {:>9} {:>6} {:>6} {:>6} {:>10} {:>10}",
        "hour", "grid CI", "emb scale", "index", "cores", "batch", "opt g", "base g"
    );
    for h in hours.iter().take(48) {
        println!(
            "{:>5} {:>8.0} {:>9.2} {:>6} {:>6} {:>6} {:>10.1} {:>10.1}",
            h.hour,
            h.grid_ci,
            h.embodied_scale,
            h.index,
            h.cores,
            h.batch,
            h.optimized_g,
            h.baseline_g
        );
    }

    let out = Fig13 {
        saving_pct: 100.0 * outcome.saving(),
        optimized_total_kg: outcome.optimized_total_g() / 1000.0,
        baseline_total_kg: outcome.baseline_total_g() / 1000.0,
        index_switches: outcome.index_switches(),
        hnsw_hours,
        ivf_hours: outcome.intervals.len() - hnsw_hours,
        hours,
    };

    println!(
        "\nweek total: optimized {:.2} kgCO2e vs performance-optimal {:.2} kgCO2e",
        out.optimized_total_kg, out.baseline_total_kg
    );
    println!(
        "carbon saving = {:.1} % (paper: 38.4 %); index switches = {}; IVF hours = {}, HNSW hours = {}",
        out.saving_pct, out.index_switches, out.ivf_hours, out.hnsw_hours
    );

    let path = write_json("fig13", &out);
    println!("\nwrote {}", path.display());
}
