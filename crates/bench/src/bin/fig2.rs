//! **Figure 2** — pairwise colocation characterization: runtime stretch
//! (a) and dynamic-energy/attribution stretch (b) for every (victim,
//! aggressor) pair of the 15-workload suite.
//!
//! Prints both matrices and writes `results/fig2.json`.

use fairco2_bench::write_json;
use fairco2_workloads::interference::ColocationMatrix;
use fairco2_workloads::{InterferenceModel, WorkloadKind, ALL_WORKLOADS};
use serde::Serialize;

#[derive(Serialize)]
struct Fig2 {
    workloads: Vec<String>,
    runtime_factor: Vec<Vec<f64>>,
    energy_factor: Vec<Vec<f64>>,
    mean_inflicted: Vec<f64>,
    mean_suffered: Vec<f64>,
}

fn print_matrix(title: &str, matrix: &[Vec<f64>]) {
    println!("\n{title}");
    print!("{:<8}", "vict\\agg");
    for w in ALL_WORKLOADS {
        print!("{:>7}", w.name());
    }
    println!();
    for (vi, row) in matrix.iter().enumerate() {
        print!("{:<8}", ALL_WORKLOADS[vi].name());
        for v in row {
            print!("{v:>7.2}");
        }
        println!();
    }
}

fn main() {
    let model = InterferenceModel::paper_calibrated();
    let matrix: ColocationMatrix = model.colocation_matrix();

    print_matrix(
        "Figure 2(a): runtime factor of VICTIM (row) colocated with AGGRESSOR (column)",
        &matrix.runtime_factor,
    );
    print_matrix(
        "Figure 2(b): dynamic-energy factor of VICTIM (row) colocated with AGGRESSOR (column)",
        &matrix.energy_factor,
    );

    println!("\nAnchors (paper): NBODY|CH = 1.87, CH|NBODY = 1.39");
    println!(
        "Reproduced:     NBODY|CH = {:.2}, CH|NBODY = {:.2}",
        matrix.runtime(WorkloadKind::Nbody, WorkloadKind::Ch),
        matrix.runtime(WorkloadKind::Ch, WorkloadKind::Nbody)
    );

    let mut ranked: Vec<(WorkloadKind, f64)> = ALL_WORKLOADS
        .iter()
        .map(|&w| (w, matrix.mean_inflicted(w)))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\nHeaviest aggressors (mean slowdown inflicted):");
    for (w, f) in ranked.iter().take(3) {
        println!("  {:<7} {:.3}", w.name(), f);
    }

    let out = Fig2 {
        workloads: ALL_WORKLOADS.iter().map(|w| w.name().to_owned()).collect(),
        runtime_factor: matrix.runtime_factor.clone(),
        energy_factor: matrix.energy_factor.clone(),
        mean_inflicted: ALL_WORKLOADS
            .iter()
            .map(|&w| matrix.mean_inflicted(w))
            .collect(),
        mean_suffered: ALL_WORKLOADS
            .iter()
            .map(|&w| matrix.mean_suffered(w))
            .collect(),
    };
    let path = write_json("fig2", &out);
    println!("\nwrote {}", path.display());
}
