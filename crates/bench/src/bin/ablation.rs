//! **Ablation study** — the design choices behind Fair-CO₂'s
//! interference adjustment, measured on the colocation Monte Carlo:
//!
//! * estimator: moment form (exact matching-game formula at estimated
//!   moments) vs the literal Eq. 8/10 ratio form;
//! * history sampling: 1, 4, 8, 14 historical partners;
//! * occupancy model: slot accounting vs whole-node-max accounting.
//!
//! Tune with `--trials N`. Writes `results/ablation.json`.

use fairco2::colocation::{
    AdjustmentKind, ColocationAttributor, ColocationScenario, FairCo2Colocation,
    GroundTruthMatching, RupColocation,
};
use fairco2::metrics::summarize;
use fairco2_bench::{write_json, Args};
use fairco2_carbon::units::CarbonIntensity;
use fairco2_trace::stats::Summary;
use fairco2_workloads::history::sampled_profile_from_population;
use fairco2_workloads::node::OccupancyModel;
use fairco2_workloads::{NodeAccounting, WorkloadKind, ALL_WORKLOADS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    configuration: String,
    avg_mean_pct: f64,
    avg_p95_pct: f64,
    worst_mean_pct: f64,
}

fn run_config(
    trials: usize,
    kind: AdjustmentKind,
    samples: usize,
    occupancy: OccupancyModel,
) -> (f64, f64, f64) {
    let mut avg = Summary::new();
    let mut worst = Summary::new();
    for trial in 0..trials {
        let mut rng = StdRng::seed_from_u64(0xAB1A + trial as u64);
        let n = rng.gen_range(10..=80);
        let kinds: Vec<WorkloadKind> = (0..n)
            .map(|_| ALL_WORKLOADS[rng.gen_range(0..ALL_WORKLOADS.len())])
            .collect();
        let scenario = ColocationScenario::pair_in_order(&kinds).expect("n ≥ 10");
        let ci = rng.gen_range(0.0..1000.0);
        let ctx = NodeAccounting::paper_default(CarbonIntensity::from_g_per_kwh(ci))
            .occupancy_model(occupancy);
        let truth = GroundTruthMatching
            .attribute(&scenario, &ctx)
            .expect("valid scenario");
        let profiles = scenario
            .workloads()
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let mut pool = kinds.clone();
                pool.swap_remove(i);
                sampled_profile_from_population(
                    ctx.interference(),
                    w.kind,
                    &pool,
                    samples,
                    &mut rng,
                )
            })
            .collect();
        let shares = FairCo2Colocation::with_profiles(profiles)
            .adjustment(kind)
            .attribute(&scenario, &ctx)
            .expect("profiles aligned");
        let s = summarize(&shares, &truth).expect("non-zero truth");
        avg.push(s.average_pct);
        worst.push(s.worst_case_pct);
    }
    (avg.mean(), avg.quantile(0.95), worst.mean())
}

fn run_rup(trials: usize, occupancy: OccupancyModel) -> (f64, f64, f64) {
    let mut avg = Summary::new();
    let mut worst = Summary::new();
    for trial in 0..trials {
        let mut rng = StdRng::seed_from_u64(0xAB1A + trial as u64);
        let n = rng.gen_range(10..=80);
        let kinds: Vec<WorkloadKind> = (0..n)
            .map(|_| ALL_WORKLOADS[rng.gen_range(0..ALL_WORKLOADS.len())])
            .collect();
        let scenario = ColocationScenario::pair_in_order(&kinds).expect("n ≥ 10");
        let ci = rng.gen_range(0.0..1000.0);
        let ctx = NodeAccounting::paper_default(CarbonIntensity::from_g_per_kwh(ci))
            .occupancy_model(occupancy);
        let truth = GroundTruthMatching
            .attribute(&scenario, &ctx)
            .expect("valid scenario");
        let shares = RupColocation
            .attribute(&scenario, &ctx)
            .expect("valid scenario");
        let s = summarize(&shares, &truth).expect("non-zero truth");
        avg.push(s.average_pct);
        worst.push(s.worst_case_pct);
    }
    (avg.mean(), avg.quantile(0.95), worst.mean())
}

/// Command-line flags this binary accepts.
const FLAGS: &[&str] = &["trials"];

fn main() {
    let args = Args::parse(FLAGS);
    let trials = args.usize("trials", 500);

    println!("Ablation: Fair-CO2 colocation design choices ({trials} trials each)");
    println!(
        "{:<52} {:>9} {:>9} {:>10}",
        "configuration", "avg mean", "avg p95", "worst mean"
    );
    let mut rows = Vec::new();
    let mut emit = |label: String, (a, p, w): (f64, f64, f64)| {
        println!("{label:<52} {a:>8.2}% {p:>8.2}% {w:>9.2}%");
        rows.push(Row {
            configuration: label,
            avg_mean_pct: a,
            avg_p95_pct: p,
            worst_mean_pct: w,
        });
    };

    for occupancy in [OccupancyModel::SlotSeconds, OccupancyModel::WholeNodeMax] {
        let occ = match occupancy {
            OccupancyModel::SlotSeconds => "slot",
            OccupancyModel::WholeNodeMax => "max",
        };
        emit(format!("rup-baseline [{occ}]"), run_rup(trials, occupancy));
        for kind in [AdjustmentKind::Marginal, AdjustmentKind::RatioForm] {
            let k = match kind {
                AdjustmentKind::Marginal => "moment",
                AdjustmentKind::RatioForm => "ratio",
            };
            for samples in [1usize, 4, 8, 14] {
                emit(
                    format!("fair-co2 [{occ}, {k}, {samples} samples]"),
                    run_config(trials, kind, samples, occupancy),
                );
            }
        }
    }

    println!("\nfindings: with ≥4 historical samples the moment estimator dominates");
    println!("the ratio form and keeps improving with history, while the ratio form");
    println!("plateaus (its structural bias binds); at a single sample the ratio");
    println!("form's lower variance makes it competitive. Slot accounting (separable");
    println!("costs) is friendlier to both estimators than whole-node-max accounting.");

    let path = write_json("ablation", &rows);
    println!("\nwrote {}", path.display());
}
