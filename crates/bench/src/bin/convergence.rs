//! **Monte Carlo convergence diagnostics** — how quickly the headline
//! fairness statistics of Figures 7 and 8 stabilize with trial count, so
//! reduced-scale runs (`--trials`) can be trusted.
//!
//! One streaming pass per study: the engine's in-order progress callback
//! snapshots the running means at each checkpoint, so no per-trial
//! records are ever materialized. `--checkpoint <path>` snapshots both
//! studies (to `<path>.demand` / `<path>.colocation`) for `--resume`;
//! note a resumed run only reports convergence marks past the restored
//! frontier. Writes `results/convergence.json`.

use fairco2_bench::{
    exit_on_engine_error, print_report, sample_schedule, study_options, write_json, Args,
    SamplingReport, CHECKPOINT_FLAGS,
};
use fairco2_montecarlo::colocations::ColocationStudy;
use fairco2_montecarlo::engine::{
    stream_colocation_study_resumable, stream_demand_study_resumable,
};
use fairco2_montecarlo::runner::default_threads;
use fairco2_montecarlo::schedules::DemandStudy;
use fairco2_montecarlo::EngineConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    trials: usize,
    rup_avg_pct: f64,
    fair_avg_pct: f64,
}

#[derive(Serialize)]
struct Convergence {
    demand: Vec<Point>,
    colocation: Vec<Point>,
    /// Instrumented sampled-Shapley run on a representative schedule:
    /// stderr-vs-permutations trace plus work counters.
    shapley_sampling: SamplingReport,
}

/// Batch size of the convergence runs: every checkpoint is a multiple of
/// 50, so the engine's post-merge progress callback lands on each one
/// exactly.
const CHECKPOINT_BATCH: usize = 50;

fn checkpoints(max_trials: usize) -> Vec<usize> {
    [250usize, 500, 1000, 2000, 4000, 8000]
        .into_iter()
        .filter(|&c| c <= max_trials)
        .collect()
}

fn print_points(title: &str, points: &[Point]) {
    println!("\n{title}:");
    println!("{:>8} {:>10} {:>10}", "trials", "RUP avg", "Fair avg");
    for p in points {
        println!(
            "{:>8} {:>9.2}% {:>9.2}%",
            p.trials, p.rup_avg_pct, p.fair_avg_pct
        );
    }
}

/// Command-line flags this binary accepts.
const FLAGS: &[&str] = &["max-trials", "threads", "permutations"];

fn main() {
    let args = Args::parse(&[FLAGS, CHECKPOINT_FLAGS].concat());
    let max_trials = args.usize("max-trials", 4000);
    let threads = args.usize("threads", default_threads());
    let marks = checkpoints(max_trials);
    let cfg = EngineConfig {
        threads,
        batch_trials: CHECKPOINT_BATCH,
        collect_trials: false,
    };

    let demand_study = DemandStudy {
        trials: max_trials,
        ..DemandStudy::default()
    };
    eprintln!("streaming {max_trials} demand trials…");
    let mut demand = Vec::new();
    exit_on_engine_error(stream_demand_study_resumable(
        &demand_study,
        cfg,
        &study_options(&args, "demand"),
        |done, s| {
            if marks.contains(&(done as usize)) {
                demand.push(Point {
                    trials: done as usize,
                    rup_avg_pct: s.all.rup.average.mean(),
                    fair_avg_pct: s.all.fair_co2.average.mean(),
                });
            }
        },
    ));

    let colocation_study = ColocationStudy {
        trials: max_trials,
        ..ColocationStudy::default()
    };
    eprintln!("streaming {max_trials} colocation trials…");
    let mut colocation = Vec::new();
    exit_on_engine_error(stream_colocation_study_resumable(
        &colocation_study,
        cfg,
        &study_options(&args, "colocation"),
        |done, s| {
            if marks.contains(&(done as usize)) {
                colocation.push(Point {
                    trials: done as usize,
                    rup_avg_pct: s.all.rup.average.mean(),
                    fair_avg_pct: s.all.fair_co2.average.mean(),
                });
            }
        },
    ));

    println!("Monte Carlo convergence of the headline average deviations");
    print_points("demand study (Figure 7)", &demand);
    print_points("colocation study (Figure 8)", &colocation);

    let drift = |points: &[Point]| {
        points
            .windows(2)
            .map(|w| (w[1].rup_avg_pct - w[0].rup_avg_pct).abs())
            .fold(0.0f64, f64::max)
    };
    println!(
        "\nmax checkpoint-to-checkpoint drift: demand {:.2} pp, colocation {:.2} pp",
        drift(&demand),
        drift(&colocation)
    );
    println!("≈1000 trials already reproduce the full-scale ordering and levels.");

    // Permutation-level convergence of the sampled engine itself, on the
    // first generated schedule of the demand study.
    let schedule = demand_study.generate_schedule(0);
    let shapley_sampling = sample_schedule(
        &schedule,
        args.usize("permutations", 4096),
        threads,
        demand_study.base_seed,
    );
    print_report(&shapley_sampling);

    let path = write_json(
        "convergence",
        &Convergence {
            demand,
            colocation,
            shapley_sampling,
        },
    );
    println!("\nwrote {}", path.display());
}
