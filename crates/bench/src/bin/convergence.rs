//! **Monte Carlo convergence diagnostics** — how quickly the headline
//! fairness statistics of Figures 7 and 8 stabilize with trial count, so
//! reduced-scale runs (`--trials`) can be trusted.
//!
//! Writes `results/convergence.json`.

use fairco2_bench::{print_report, sample_schedule, write_json, Args, SamplingReport};
use fairco2_montecarlo::colocations::ColocationStudy;
use fairco2_montecarlo::runner::{default_threads, run_parallel};
use fairco2_montecarlo::schedules::DemandStudy;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    trials: usize,
    rup_avg_pct: f64,
    fair_avg_pct: f64,
}

#[derive(Serialize)]
struct Convergence {
    demand: Vec<Point>,
    colocation: Vec<Point>,
    /// Instrumented sampled-Shapley run on a representative schedule:
    /// stderr-vs-permutations trace plus work counters.
    shapley_sampling: SamplingReport,
}

fn main() {
    let args = Args::parse();
    let max_trials = args.usize("max-trials", 4000);
    let threads = args.usize("threads", default_threads());
    let checkpoints: Vec<usize> = [250usize, 500, 1000, 2000, 4000, 8000]
        .into_iter()
        .filter(|&c| c <= max_trials)
        .collect();

    // Run once at the largest scale; prefixes give every checkpoint
    // (trials are independent and identically seeded by index).
    let demand_study = DemandStudy::default();
    eprintln!("running {max_trials} demand trials…");
    let demand_trials = run_parallel(max_trials, threads, |t| demand_study.run_trial(t));
    let colocation_study = ColocationStudy::default();
    eprintln!("running {max_trials} colocation trials…");
    let colocation_trials = run_parallel(max_trials, threads, |t| colocation_study.run_trial(t));

    println!("Monte Carlo convergence of the headline average deviations");
    println!("\ndemand study (Figure 7):");
    println!("{:>8} {:>10} {:>10}", "trials", "RUP avg", "Fair avg");
    let mut demand = Vec::new();
    for &c in &checkpoints {
        let rup: f64 = demand_trials[..c]
            .iter()
            .map(|t| t.rup.average_pct)
            .sum::<f64>()
            / c as f64;
        let fair: f64 = demand_trials[..c]
            .iter()
            .map(|t| t.fair_co2.average_pct)
            .sum::<f64>()
            / c as f64;
        println!("{c:>8} {rup:>9.2}% {fair:>9.2}%");
        demand.push(Point {
            trials: c,
            rup_avg_pct: rup,
            fair_avg_pct: fair,
        });
    }

    println!("\ncolocation study (Figure 8):");
    println!("{:>8} {:>10} {:>10}", "trials", "RUP avg", "Fair avg");
    let mut colocation = Vec::new();
    for &c in &checkpoints {
        let rup: f64 = colocation_trials[..c]
            .iter()
            .map(|t| t.rup.average_pct)
            .sum::<f64>()
            / c as f64;
        let fair: f64 = colocation_trials[..c]
            .iter()
            .map(|t| t.fair_co2.average_pct)
            .sum::<f64>()
            / c as f64;
        println!("{c:>8} {rup:>9.2}% {fair:>9.2}%");
        colocation.push(Point {
            trials: c,
            rup_avg_pct: rup,
            fair_avg_pct: fair,
        });
    }

    let drift = |points: &[Point]| {
        points
            .windows(2)
            .map(|w| (w[1].rup_avg_pct - w[0].rup_avg_pct).abs())
            .fold(0.0f64, f64::max)
    };
    println!(
        "\nmax checkpoint-to-checkpoint drift: demand {:.2} pp, colocation {:.2} pp",
        drift(&demand),
        drift(&colocation)
    );
    println!("≈1000 trials already reproduce the full-scale ordering and levels.");

    // Permutation-level convergence of the sampled engine itself, on the
    // first generated schedule of the demand study.
    let schedule = demand_study.generate_schedule(0);
    let shapley_sampling = sample_schedule(
        &schedule,
        args.usize("permutations", 4096),
        threads,
        demand_study.base_seed,
    );
    print_report(&shapley_sampling);

    let path = write_json(
        "convergence",
        &Convergence {
            demand,
            colocation,
            shapley_sampling,
        },
    );
    println!("\nwrote {}", path.display());
}
