//! **Figure 6** — a worked example of the evaluation pipeline: one mock
//! colocation set, attributed by the RUP-Baseline, Fair-CO₂, and the
//! ground-truth Shapley, with per-workload deviations.
//!
//! Writes `results/fig6.json`.

use fairco2::colocation::{
    ColocationAttributor, ColocationScenario, FairCo2Colocation, GroundTruthMatching, RupColocation,
};
use fairco2::metrics::summarize;
use fairco2_bench::{write_json, Args};
use fairco2_carbon::units::CarbonIntensity;
use fairco2_workloads::{NodeAccounting, WorkloadKind};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: String,
    partner: Option<String>,
    ground_truth_g: f64,
    rup_g: f64,
    fair_co2_g: f64,
    rup_dev_pct: f64,
    fair_dev_pct: f64,
}

/// Command-line flags this binary accepts.
const FLAGS: &[&str] = &["grid-ci"];

fn main() {
    let args = Args::parse(FLAGS);
    let grid_ci = args.f64("grid-ci", 250.0);

    use WorkloadKind::*;
    let set = [Nbody, Ch, Pg100, Spark, Llama, Wc, Faiss];
    let scenario = ColocationScenario::pair_in_order(&set).expect("non-empty set");
    let ctx = NodeAccounting::paper_default(CarbonIntensity::from_g_per_kwh(grid_ci));

    let truth = GroundTruthMatching
        .attribute(&scenario, &ctx)
        .expect("valid scenario");
    let rup = RupColocation
        .attribute(&scenario, &ctx)
        .expect("valid scenario");
    let fair = FairCo2Colocation::with_full_history()
        .attribute(&scenario, &ctx)
        .expect("valid scenario");

    println!("Figure 6: one mock colocation set at {grid_ci} gCO2e/kWh");
    println!(
        "{:<8} {:<8} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "workload", "partner", "truth g", "RUP g", "FairCO2 g", "RUP dev", "Fair dev"
    );
    let rows: Vec<Row> = scenario
        .workloads()
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let rup_dev = 100.0 * (rup[i] - truth[i]) / truth[i];
            let fair_dev = 100.0 * (fair[i] - truth[i]) / truth[i];
            println!(
                "{:<8} {:<8} {:>12.1} {:>12.1} {:>12.1} {:>8.1}% {:>8.1}%",
                w.kind.name(),
                w.partner.map_or("-", |p| p.name()),
                truth[i],
                rup[i],
                fair[i],
                rup_dev,
                fair_dev
            );
            Row {
                workload: w.kind.name().to_owned(),
                partner: w.partner.map(|p| p.name().to_owned()),
                ground_truth_g: truth[i],
                rup_g: rup[i],
                fair_co2_g: fair[i],
                rup_dev_pct: rup_dev,
                fair_dev_pct: fair_dev,
            }
        })
        .collect();

    let rup_sum = summarize(&rup, &truth).expect("non-zero truth");
    let fair_sum = summarize(&fair, &truth).expect("non-zero truth");
    println!(
        "\nRUP-Baseline : avg |dev| {:.2} %, worst {:.2} %",
        rup_sum.average_pct, rup_sum.worst_case_pct
    );
    println!(
        "Fair-CO2     : avg |dev| {:.2} %, worst {:.2} %",
        fair_sum.average_pct, fair_sum.worst_case_pct
    );

    let path = write_json("fig6", &rows);
    println!("\nwrote {}", path.display());
}
