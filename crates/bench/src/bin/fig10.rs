//! **Figure 10** — carbon-optimal workload configuration vs grid carbon
//! intensity, for the PBBS kernels and Spark: footprints of the energy-,
//! embodied-, and carbon-optimal configurations normalized to the
//! performance-optimal configuration.
//!
//! Writes `results/fig10.json`.

use fairco2_bench::{write_json, Args};
use fairco2_optimize::scaling::ScalingModel;
use fairco2_optimize::sweep::sweep_over_grid_ci;
use serde::Serialize;

#[derive(Serialize)]
struct CiPoint {
    grid_ci: f64,
    perf_optimal_g: f64,
    energy_optimal_g: f64,
    embodied_optimal_g: f64,
    carbon_optimal_g: f64,
    carbon_optimal_cores: u32,
    carbon_optimal_memory_gb: f64,
    saving_vs_perf: f64,
}

#[derive(Serialize)]
struct WorkloadPanel {
    workload: String,
    points: Vec<CiPoint>,
    max_saving: f64,
}

/// Command-line flags this binary accepts.
const FLAGS: &[&str] = &["max-grid-ci", "ci-steps"];

fn main() {
    let args = Args::parse(FLAGS);
    let max_ci = args.f64("max-grid-ci", 700.0);
    let steps = args.usize("ci-steps", 15);

    let grid_cis: Vec<f64> = (0..=steps)
        .map(|k| max_ci * k as f64 / steps as f64)
        .collect();

    let mut panels = Vec::new();
    println!("Figure 10: carbon-optimal configuration vs grid carbon intensity");
    for model in ScalingModel::sweep_suite() {
        let rows = sweep_over_grid_ci(&model, &grid_cis);
        let points: Vec<CiPoint> = rows
            .iter()
            .map(|(ci, out)| CiPoint {
                grid_ci: *ci,
                perf_optimal_g: out.performance_optimal.total_g(),
                energy_optimal_g: out.energy_optimal.total_g(),
                embodied_optimal_g: out.embodied_optimal.total_g(),
                carbon_optimal_g: out.carbon_optimal.total_g(),
                carbon_optimal_cores: out.carbon_optimal.cores,
                carbon_optimal_memory_gb: out.carbon_optimal.memory_gb,
                saving_vs_perf: out.carbon_saving(),
            })
            .collect();
        let max_saving = points.iter().map(|p| p.saving_vs_perf).fold(0.0, f64::max);

        println!("\n{} (max saving {:.0}%)", model.name, 100.0 * max_saving);
        println!(
            "{:>8} {:>10} {:>10} {:>7} {:>9} {:>8}",
            "grid CI", "perf g", "opt g", "saving", "opt cores", "opt mem"
        );
        for p in points.iter().step_by(3) {
            println!(
                "{:>8.0} {:>10.2} {:>10.2} {:>6.0}% {:>9} {:>7.0}G",
                p.grid_ci,
                p.perf_optimal_g,
                p.carbon_optimal_g,
                100.0 * p.saving_vs_perf,
                p.carbon_optimal_cores,
                p.carbon_optimal_memory_gb
            );
        }
        panels.push(WorkloadPanel {
            workload: model.name.clone(),
            points,
            max_saving,
        });
    }

    let best = panels.iter().map(|p| p.max_saving).fold(0.0f64, f64::max);
    println!(
        "\nheadline: up to {:.0}% carbon savings vs the performance-optimal configuration (paper: up to 65%)",
        100.0 * best
    );

    let path = write_json("fig10", &panels);
    println!("\nwrote {}", path.display());
}
