//! **Figure 4** — hierarchical Temporal Shapley: a 30-day, 5-minute
//! embodied-carbon-intensity signal from aggregate demand, refined
//! 30 d → 3 d → 8 h → 1 h → 5 min (split ratios 10·9·8·12), plus the
//! computational-cost comparison behind the paper's ">600 000×" claim.
//!
//! Writes `results/fig4.json`.

use std::time::Instant;

use fairco2_bench::{write_json, Args};
use fairco2_carbon::ServerSpec;
use fairco2_shapley::temporal::TemporalShapley;
use fairco2_trace::AzureLikeTrace;
use serde::Serialize;

#[derive(Serialize)]
struct Fig4 {
    level_labels: Vec<String>,
    /// Per-level intensity signal (gCO₂e per core-second), sampled hourly
    /// for compactness.
    level_intensity_hourly: Vec<Vec<f64>>,
    monthly_embodied_g: f64,
    closed_form_operations: u64,
    naive_subset_evaluations: f64,
    elapsed_ms: f64,
    ground_truth_log2_coalitions: f64,
}

/// Command-line flags this binary accepts.
const FLAGS: &[&str] = &["seed"];

fn main() {
    let args = Args::parse(FLAGS);
    let seed = args.u64("seed", 7);

    let trace = AzureLikeTrace::builder().days(30).seed(seed).build();
    let server = ServerSpec::xeon_6240r();
    // A fleet of servers sized to the synthetic demand peak; carbon scales
    // linearly so the signal shape is fleet-size invariant.
    let fleet_servers = (trace.series().peak() / f64::from(server.physical_cores())).ceil();
    let monthly = server.embodied_per_month().as_grams() * fleet_servers;

    let hierarchy = TemporalShapley::paper_hierarchy();
    let start = Instant::now();
    let att = hierarchy
        .attribute(trace.series(), monthly)
        .expect("8640 samples divide by 10*9*8*12");
    let elapsed = start.elapsed().as_secs_f64() * 1000.0;

    let labels = ["30 d", "3 d", "8 h", "1 h", "5 min"];
    println!("Figure 4: Temporal Shapley embodied carbon intensity (30-day Azure-like trace)");
    println!(
        "fleet = {fleet_servers} servers, monthly embodied = {:.1} kgCO2e",
        monthly / 1000.0
    );
    println!("\nlevel   min intensity    mean intensity   max intensity  (g / core-s)");
    let mut hourly = Vec::new();
    for (label, signal) in labels.iter().zip(att.level_intensity()) {
        println!(
            "{label:>6}   {:>12.3e}    {:>12.3e}    {:>12.3e}",
            signal.min(),
            signal.mean(),
            signal.peak()
        );
        hourly.push(
            signal
                .downsample_mean(12)
                .expect("12 five-minute samples per hour")
                .into_values(),
        );
    }

    // The scalability claim: the trace aggregates ~2M VMs; the ground
    // truth would enumerate 2^(2e6) coalitions.
    let vms = 2_000_000f64;
    println!("\ncomputational cost:");
    println!(
        "  closed form            : {:>12} marginal updates in {elapsed:.1} ms",
        att.closed_form_operations()
    );
    println!(
        "  naive per-level subsets: {:>12.3e} coalition evaluations",
        att.naive_subset_evaluations()
    );
    println!("  ground-truth Shapley   : 2^{vms:.0} coalitions (log2 = {vms:.0})");
    println!(
        "  Temporal Shapley is ~{:.0e}x cheaper than even the naive per-level enumeration",
        att.naive_subset_evaluations() / att.closed_form_operations() as f64
    );

    let out = Fig4 {
        level_labels: labels.iter().map(|s| s.to_string()).collect(),
        level_intensity_hourly: hourly,
        monthly_embodied_g: monthly,
        closed_form_operations: att.closed_form_operations(),
        naive_subset_evaluations: att.naive_subset_evaluations(),
        elapsed_ms: elapsed,
        ground_truth_log2_coalitions: vms,
    };
    let path = write_json("fig4", &out);
    println!("\nwrote {}", path.display());
}
