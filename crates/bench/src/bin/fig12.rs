//! **Figure 12** — FAISS carbon–latency Pareto fronts at two grid carbon
//! intensities (California-like vs Sweden-like), showing how the
//! Pareto-optimal set of (index, cores, batch) shifts with the grid — and
//! where the IVF↔HNSW crossover lies.
//!
//! Writes `results/fig12.json`.

use fairco2_bench::{write_json, Args};
use fairco2_optimize::faiss::{FaissModel, IndexKind};
use fairco2_optimize::scaling::ResourcePricing;
use serde::Serialize;

#[derive(Serialize)]
struct FrontPoint {
    index: String,
    cores: u32,
    batch: u32,
    tail_latency_s: f64,
    carbon_per_kquery_g: f64,
    embodied_share: f64,
}

#[derive(Serialize)]
struct Fig12 {
    fronts: Vec<(String, f64, Vec<FrontPoint>)>,
    crossover_grid_ci: Option<f64>,
    latency_target_s: f64,
}

/// Command-line flags this binary accepts.
const FLAGS: &[&str] = &["california-ci", "sweden-ci", "latency-target"];

fn main() {
    let args = Args::parse(FLAGS);
    let california_ci = args.f64("california-ci", 250.0);
    let sweden_ci = args.f64("sweden-ci", 25.0);
    let target = args.f64("latency-target", 2.0);

    let model = FaissModel::default();
    let mut fronts = Vec::new();
    println!("Figure 12: FAISS carbon-latency Pareto fronts");
    for (label, ci) in [
        ("California-like", california_ci),
        ("Sweden-like", sweden_ci),
    ] {
        let pricing = ResourcePricing::paper_default(ci);
        let front = model.pareto_front(&pricing);
        println!("\n{label} grid ({ci:.0} gCO2e/kWh):");
        println!(
            "{:>6} {:>6} {:>6} {:>10} {:>14} {:>10}",
            "index", "cores", "batch", "tail s", "g/kquery", "emb share"
        );
        let points: Vec<FrontPoint> = front
            .iter()
            .map(|p| {
                println!(
                    "{:>6} {:>6} {:>6} {:>10.3} {:>14.4} {:>9.0}%",
                    p.config.index.to_string(),
                    p.config.cores,
                    p.config.batch,
                    p.tail_latency_s,
                    p.carbon_per_kquery_g,
                    100.0 * p.embodied_per_kquery_g / p.carbon_per_kquery_g
                );
                FrontPoint {
                    index: p.config.index.to_string(),
                    cores: p.config.cores,
                    batch: p.config.batch,
                    tail_latency_s: p.tail_latency_s,
                    carbon_per_kquery_g: p.carbon_per_kquery_g,
                    embodied_share: p.embodied_per_kquery_g / p.carbon_per_kquery_g,
                }
            })
            .collect();
        fronts.push((label.to_owned(), ci, points));
    }

    // Locate the IVF↔HNSW crossover under the latency target.
    let mut crossover = None;
    for ci in 1..=400 {
        let best = model
            .best_under_latency(&ResourcePricing::paper_default(f64::from(ci)), target)
            .expect("grid always has a feasible config");
        if best.config.index == IndexKind::Hnsw {
            crossover = Some(f64::from(ci));
            break;
        }
    }
    match crossover {
        Some(ci) => println!(
            "\ncarbon-optimal index switches IVF -> HNSW at ~{ci:.0} gCO2e/kWh \
             under a {target}s tail target (paper: ~90 gCO2e/kWh)"
        ),
        None => println!("\nno IVF->HNSW crossover below 400 gCO2e/kWh"),
    }

    let out = Fig12 {
        fronts,
        crossover_grid_ci: crossover,
        latency_target_s: target,
    };
    let path = write_json("fig12", &out);
    println!("\nwrote {}", path.display());
}
