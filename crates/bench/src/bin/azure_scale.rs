//! **Azure-scale co-simulation driver** — streams the ~2M-VM synthetic
//! trace through the resumable study engine and reports per-tenant
//! Fair-CO₂ attribution under three shifting policies (run immediately
//! at home, temporal shifting, migration-cost-aware spatio-temporal
//! shifting). Writes `results/azure_scale.json`.
//!
//! Supports the standard checkpoint flags (`--checkpoint`,
//! `--checkpoint-every`, `--resume`, `--retries`); a killed run resumed
//! from its snapshot reproduces the uninterrupted report bit for bit.

use fairco2_bench::{
    exit_on_engine_error, run_azure_scale, study_options, write_json, Args, AzureScaleStudy,
    CHECKPOINT_FLAGS,
};
use fairco2_montecarlo::EngineConfig;
use fairco2_optimize::spatial::MigrationCost;

/// Command-line flags this binary accepts (plus the checkpoint set).
const FLAGS: &[&str] = &[
    "vms",
    "days",
    "regions",
    "tenants",
    "slack-hours",
    "deferrable-share",
    "migration-gb",
    "threads",
    "batch-buckets",
    "seed",
];

fn main() {
    let mut known: Vec<&str> = FLAGS.to_vec();
    known.extend_from_slice(CHECKPOINT_FLAGS);
    let args = Args::parse(&known);
    let defaults = AzureScaleStudy::default();
    let study = AzureScaleStudy {
        vms: args.u64("vms", defaults.vms),
        days: args.usize("days", defaults.days as usize) as u32,
        regions: args.usize("regions", defaults.regions),
        tenants: args.usize("tenants", defaults.tenants),
        slack_hours: args.usize("slack-hours", defaults.slack_hours as usize) as i64,
        deferrable_share: args.f64("deferrable-share", defaults.deferrable_share),
        migration: MigrationCost {
            data_gb: args.f64("migration-gb", defaults.migration.data_gb),
            g_per_gb: defaults.migration.g_per_gb,
        },
        seed: args.u64("seed", defaults.seed),
        ..defaults
    };
    let cfg = EngineConfig {
        threads: args.usize("threads", 1),
        batch_trials: args.usize("batch-buckets", 720),
        collect_trials: false,
    };
    let opts = study_options(&args, "");

    println!(
        "azure scale: ~{} VMs over {} days, {} regions × {} tenants, {} h slack, {} threads",
        study.vms, study.days, study.regions, study.tenants, study.slack_hours, cfg.threads
    );
    let report = exit_on_engine_error(run_azure_scale(&study, cfg, &opts));

    println!(
        "{} VMs simulated ({} batches, {} retries)",
        report.vms, report.engine.batches, report.engine.retries
    );
    println!(
        "{:<16} {:>12} {:>11} {:>11} {:>11} {:>8} {:>9}",
        "policy", "total kg", "oper kg", "embod kg", "migr kg", "saving", "shifted"
    );
    for s in &report.scenarios {
        println!(
            "{:<16} {:>12.1} {:>11.1} {:>11.1} {:>11.1} {:>7.2}% {:>9}",
            s.scenario,
            s.total_kg,
            s.operational_kg,
            s.embodied_kg,
            s.migration_kg,
            s.saving_vs_baseline_pct,
            s.shifted_vms
        );
    }
    println!(
        "\n{:<8} {:>9} {:>9} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "tenant", "vms", "defer", "baseline kg", "temporal kg", "spatio kg", "Δtemp", "Δspatio"
    );
    for row in &report.tenant_rows {
        println!(
            "{:<8} {:>9} {:>9} {:>12.1} {:>12.1} {:>12.1} {:>8.2}% {:>8.2}%",
            row.tenant,
            row.vms,
            row.deferrable_vms,
            row.baseline_kg,
            row.temporal_kg,
            row.spatio_temporal_kg,
            row.temporal_delta_pct,
            row.spatio_delta_pct
        );
    }
    println!("\nper-tenant deltas differ because tenants own different VM mixes:");
    println!("the Temporal Shapley re-attribution keeps each scenario's embodied");
    println!("budget conserved, so a tenant's delta is real redistribution, not");
    println!("a bookkeeping artifact.");

    let path = write_json("azure_scale", &report);
    println!("\nwrote {}", path.display());
}
