//! **Surrogate attribution benchmark** — trains the ridge surrogate on an
//! out-of-sample harvest, asserts the serving gates (efficiency axiom,
//! zero-tolerance collapse, thread invariance, audited accuracy budget),
//! sweeps the tolerance → (fallback rate, error, throughput) frontier,
//! and times the surrogate pipeline against the streaming engine on the
//! full evaluation study.
//!
//! Defaults to the paper's 10,000-trial demand study. Tune with
//! `--trials N --train N --audit N --max-workloads N --tolerance X
//! --budget X --lambda X --seed N --threads N --reps N`. Writes
//! `results/BENCH_surrogate.json`; `gates_passed` in that JSON is the
//! machine-checkable contract (CI asserts it on a reduced study).

use fairco2_bench::surrogate::print_surrogate;
use fairco2_bench::{run_surrogate, write_json, Args, SurrogateStudy};
use fairco2_montecarlo::runner::default_threads;

/// Command-line flags this binary accepts.
const FLAGS: &[&str] = &[
    "trials",
    "train",
    "audit",
    "max-workloads",
    "tolerance",
    "budget",
    "lambda",
    "seed",
    "threads",
    "reps",
];

fn main() {
    let args = Args::parse(FLAGS);
    let defaults = SurrogateStudy::default();
    let study = SurrogateStudy {
        trials: args.usize("trials", defaults.trials),
        train_trials: args.usize("train", defaults.train_trials),
        audit_trials: args.usize("audit", defaults.audit_trials),
        max_workloads: args.usize("max-workloads", defaults.max_workloads),
        threads: args.usize("threads", default_threads()),
        tolerance: args.f64("tolerance", defaults.tolerance),
        accuracy_budget: args.f64("budget", defaults.accuracy_budget),
        lambda: args.f64("lambda", defaults.lambda),
        seed: args.u64("seed", defaults.seed),
        reps: args.usize("reps", defaults.reps),
        ..defaults
    };

    eprintln!(
        "surrogate benchmark: {} eval trials, {} train, {} audited (≤{} workloads, tol {})…",
        study.trials, study.train_trials, study.audit_trials, study.max_workloads, study.tolerance
    );
    let report = run_surrogate(&study);
    print_surrogate(&report);

    let path = write_json("BENCH_surrogate", &report);
    println!("\nwrote {}", path.display());
}
