//! **Spatio-temporal shifting study** — the optimization the paper's
//! introduction motivates: a deferrable batch job chooses *where* and
//! *when* to run against regional grid-CI traces and Fair-CO₂ embodied
//! intensity signals.
//!
//! Compares four strategies over a week of 2-hour batch jobs:
//! run-immediately-at-home, temporal shifting only, spatial shifting
//! only, and full spatio-temporal shifting.
//! Writes `results/spatial_shift.json`.

use fairco2_bench::{write_json, Args};
use fairco2_optimize::scaling::ResourcePricing;
use fairco2_optimize::spatial::{best_placement, job_carbon, BatchJob, Region};
use fairco2_shapley::temporal::TemporalShapley;
use fairco2_trace::{AzureLikeTrace, GridIntensityTrace};
use serde::Serialize;

#[derive(Serialize)]
struct StrategyRow {
    strategy: String,
    total_carbon_kg: f64,
    saving_vs_immediate_pct: f64,
}

fn embodied_signal(days: u32, seed: u64) -> fairco2_trace::TimeSeries {
    let demand = AzureLikeTrace::builder()
        .days(days)
        .step_seconds(3600)
        .seed(seed)
        .build();
    TemporalShapley::new(vec![days as usize, 24])
        .attribute(demand.series(), 1000.0)
        .expect("hourly days divide")
        .leaf_intensity()
        .clone()
}

/// Command-line flags this binary accepts.
const FLAGS: &[&str] = &["days", "jobs-per-day", "slack-hours"];

fn main() {
    let args = Args::parse(FLAGS);
    let days = args.usize("days", 7) as u32;
    let jobs_per_day = args.usize("jobs-per-day", 4);
    let slack_h = args.usize("slack-hours", 12) as i64;

    let regions = vec![
        Region {
            name: "california (duck curve)".into(),
            grid: GridIntensityTrace::caiso_like(days, 3600, 5),
            embodied_signal: embodied_signal(days, 5),
        },
        Region {
            name: "coal-heavy (flat dirty)".into(),
            grid: GridIntensityTrace::constant(650.0, days, 3600),
            embodied_signal: embodied_signal(days, 6),
        },
        Region {
            name: "sweden (flat clean)".into(),
            grid: GridIntensityTrace::sweden_like(days, 3600, 7),
            embodied_signal: embodied_signal(days, 7),
        },
    ];
    let home = 0usize; // jobs originate in California
    let pricing = ResourcePricing::paper_default(0.0); // CI comes from traces

    let job_at = |arrival: i64, slack: i64| BatchJob {
        runtime_s: 2.0 * 3600.0,
        dynamic_power_w: 220.0,
        cores: 48.0,
        memory_gb: 96.0,
        earliest: arrival,
        deadline: arrival + 2 * 3600 + slack * 3600,
    };

    let arrivals: Vec<i64> = (0..i64::from(days))
        .flat_map(|d| {
            (0..jobs_per_day as i64)
                .map(move |k| d * 86_400 + k * (86_400 / jobs_per_day as i64) + 3600)
        })
        .filter(|a| a + 2 * 3600 + slack_h * 3600 <= i64::from(days) * 86_400)
        .collect();

    let mut totals = vec![0.0f64; 4];
    for &arrival in &arrivals {
        // 1. Immediate, at home.
        let immediate = job_carbon(&regions[home], &job_at(arrival, slack_h), arrival, &pricing)
            .expect("arrival is inside the trace");
        totals[0] += immediate.carbon_g;
        // 2. Temporal only (home region, deferred).
        let temporal = best_placement(&regions[home..=home], &job_at(arrival, slack_h), &pricing)
            .expect("window is feasible");
        totals[1] += temporal.carbon_g;
        // 3. Spatial only (any region, immediate).
        let spatial = regions
            .iter()
            .filter_map(|r| job_carbon(r, &job_at(arrival, 0), arrival, &pricing))
            .map(|p| p.carbon_g)
            .fold(f64::INFINITY, f64::min);
        totals[2] += spatial;
        // 4. Full spatio-temporal.
        let full = best_placement(&regions, &job_at(arrival, slack_h), &pricing)
            .expect("window is feasible");
        totals[3] += full.carbon_g;
    }

    let labels = [
        "immediate at home",
        "temporal shifting",
        "spatial shifting",
        "spatio-temporal",
    ];
    println!(
        "Spatio-temporal shifting: {}×2h batch jobs, {slack_h} h slack, 3 regions",
        arrivals.len()
    );
    println!("{:<22} {:>12} {:>10}", "strategy", "carbon kg", "saving");
    let mut rows = Vec::new();
    for (label, &total) in labels.iter().zip(&totals) {
        let saving = 100.0 * (1.0 - total / totals[0]);
        println!("{label:<22} {:>12.2} {saving:>9.1}%", total / 1000.0);
        rows.push(StrategyRow {
            strategy: (*label).to_owned(),
            total_carbon_kg: total / 1000.0,
            saving_vs_immediate_pct: saving,
        });
    }
    println!("\ndeferring into the solar trough and escaping dirty hours compound:");
    println!("the Fair-CO2 embodied signal keeps capacity pressure priced in, so");
    println!("shifting never just moves the peak problem elsewhere.");

    let path = write_json("spatial_shift", &rows);
    println!("\nwrote {}", path.display());
}
