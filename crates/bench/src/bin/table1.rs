//! **Table 1** — TDP vs embodied carbon per component: power is a poor
//! proxy for embodied carbon.
//!
//! Prints the paper's table from the carbon models and writes
//! `results/table1.json`.

use fairco2_bench::write_json;
use fairco2_carbon::embodied::{CpuModel, DramModel, SsdModel};
use fairco2_carbon::ServerSpec;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    component: String,
    tdp_w: f64,
    embodied_kgco2e: f64,
    kg_per_tdp_watt: f64,
}

fn main() {
    let cpu = CpuModel::xeon_6240r();
    let dram = DramModel::ddr4_192gb();
    let ssd = SsdModel::sata_480gb();
    let rows = vec![
        Row {
            component: "DRAM (192 GB DDR4)".into(),
            tdp_w: dram.tdp.as_watts(),
            embodied_kgco2e: dram.embodied().as_kg(),
            kg_per_tdp_watt: dram.kg_per_tdp_watt(),
        },
        Row {
            component: format!("CPU ({})", cpu.name),
            tdp_w: cpu.tdp.as_watts(),
            embodied_kgco2e: cpu.embodied().as_kg(),
            kg_per_tdp_watt: cpu.kg_per_tdp_watt(),
        },
        Row {
            component: "SSD (480 GB)".into(),
            tdp_w: ssd.tdp.as_watts(),
            embodied_kgco2e: ssd.embodied().as_kg(),
            kg_per_tdp_watt: ssd.embodied().as_kg() / ssd.tdp.as_watts(),
        },
    ];

    println!("Table 1: TDP to embodied-carbon ratios (server components)");
    println!(
        "{:<28} {:>8} {:>18} {:>16}",
        "Component", "TDP", "Embodied", "Ratio kg/W"
    );
    for r in &rows {
        println!(
            "{:<28} {:>6.0} W {:>12.2} kgCO2e {:>16.4}",
            r.component, r.tdp_w, r.embodied_kgco2e, r.kg_per_tdp_watt
        );
    }
    let gap = rows[0].kg_per_tdp_watt / rows[1].kg_per_tdp_watt;
    println!("\nDRAM embodies {gap:.0}x more carbon per TDP watt than the CPU —");
    println!("energy/power telemetry cannot attribute embodied carbon fairly.");

    let server = ServerSpec::xeon_6240r();
    let breakdown = server.embodied();
    println!(
        "\nWhole server: {:.1} kgCO2e (cpu {:.1} + dram {:.1} + ssd {:.1} + platform {:.1})",
        breakdown.total().as_kg(),
        breakdown.cpu.as_kg(),
        breakdown.dram.as_kg(),
        breakdown.ssd.as_kg(),
        breakdown.platform.as_kg()
    );

    let path = write_json("table1", &rows);
    println!("\nwrote {}", path.display());
}
