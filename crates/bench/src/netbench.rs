//! Network-attribution benchmark: the LP-valued coalition game on the
//! vendored revised simplex, with every correctness gate asserted
//! in-binary **before** any timing runs.
//!
//! The study builds a deterministic leaf/spine fabric whose link prices
//! come from [`LinkCarbonModel`] (operational + embodied grams per GB,
//! snapped to the dyadic grid) and whose capacities and tenant demands
//! are small integers — the exact-arithmetic regime in which warm and
//! cold simplex solves are bit-identical.
//!
//! Gates (recorded in `gates_passed`):
//!
//! 1. **Duality gap** — every routed coalition solve across the full
//!    lattice passes the independent KKT certificate with a gap at most
//!    `gap_tolerance` (scaled);
//! 2. **Warm bit-identity** — the warm-started lattice fill (each
//!    coalition started from its parent's optimal basis) equals the cold
//!    fill bit for bit;
//! 3. **Thread invariance** — `parallel_exact_shapley` at 1, 2, and 8
//!    threads is bit-identical to the serial solver;
//! 4. **Iteration savings** — warm-starting strictly reduces total
//!    simplex iterations versus cold (the headline ratio in the JSON).
//!
//! Only after all four pass are the lattice fills and Shapley solves
//! timed.

use std::time::Instant;

use serde::Serialize;

use fairco2_carbon::network::LinkCarbonModel;
use fairco2_carbon::units::CarbonIntensity;
use fairco2_shapley::coalition::Coalition;
use fairco2_shapley::exact::{exact_shapley, parallel_exact_shapley};
use fairco2_shapley::netgame::{CoalitionValue, Link, Network, NetworkCarbonGame};

/// Configuration of the network-attribution benchmark.
#[derive(Debug, Clone)]
pub struct NetworkStudy {
    /// Tenants in the game; the lattice has `2^tenants` coalitions.
    pub tenants: usize,
    /// Worker threads for the parallel exact solve timing.
    pub threads: usize,
    /// Scaled duality-gap tolerance of gate 1.
    pub gap_tolerance: f64,
    /// Timing repetitions per measured path (best wall-clock wins).
    pub reps: usize,
}

impl Default for NetworkStudy {
    fn default() -> Self {
        Self {
            tenants: 12,
            threads: 8,
            gap_tolerance: 1e-9,
            reps: 3,
        }
    }
}

/// Grid intensities (gCO₂e/kWh) cycled across link classes so prices
/// differ per link but stay on the dyadic grid.
const LINK_INTENSITIES: [f64; 4] = [50.0, 125.0, 300.0, 475.0];

/// The benchmark fabric: five injection leaves, two spine aggregators,
/// one egress. Every leaf reaches both spines (contended, cheap) and
/// keeps an expensive direct backup to the egress, so every coalition
/// routes and the duality-gap gate covers the whole lattice.
pub fn benchmark_network() -> Network {
    const LEAVES: usize = 5;
    let spine_a = LEAVES; // node 5
    let spine_b = LEAVES + 1; // node 6
    let egress = LEAVES + 2; // node 7
    let price = |class: usize| {
        LinkCarbonModel::datacenter_default(CarbonIntensity::from_g_per_kwh(
            LINK_INTENSITIES[class % LINK_INTENSITIES.len()],
        ))
        .dyadic_grams_per_gb()
    };
    let mut links = Vec::new();
    for leaf in 0..LEAVES {
        links.push(Link {
            from: leaf,
            to: spine_a,
            capacity: (5 + (leaf * 3) % 4) as f64,
            carbon_per_unit: price(leaf),
        });
        links.push(Link {
            from: leaf,
            to: spine_b,
            capacity: (4 + (leaf * 5) % 5) as f64,
            carbon_per_unit: price(leaf + 1),
        });
        // Direct backup: generous capacity at roughly 8× the spine price
        // keeps the LP feasible while leaving it strictly worse than any
        // spine route.
        links.push(Link {
            from: leaf,
            to: egress,
            capacity: 64.0,
            carbon_per_unit: 8.0 * price(leaf + 2),
        });
    }
    // Spine downlinks are the shared bottlenecks coalitions contend for.
    links.push(Link {
        from: spine_a,
        to: egress,
        capacity: 13.0,
        carbon_per_unit: price(0),
    });
    links.push(Link {
        from: spine_b,
        to: egress,
        capacity: 11.0,
        carbon_per_unit: price(1),
    });
    // Cross link lets a loaded spine spill to the other.
    links.push(Link {
        from: spine_a,
        to: spine_b,
        capacity: 6.0,
        carbon_per_unit: price(2),
    });
    Network::new(LEAVES + 3, egress, links)
}

/// `tenants` demand vectors: small deterministic integer injections at
/// two leaves each, so coalitions overlap on the contended spines.
pub fn benchmark_demands(tenants: usize) -> Vec<Vec<f64>> {
    let nodes = 8;
    (0..tenants)
        .map(|t| {
            let mut d = vec![0.0f64; nodes];
            d[t % 5] += ((t * 7 + 3) % 3 + 1) as f64;
            d[(t * 3 + 1) % 5] += ((t * 5 + 1) % 2 + 1) as f64;
            d
        })
        .collect()
}

/// Machine-readable network benchmark results, written to
/// `results/BENCH_network.json`.
#[derive(Debug, Clone, Serialize)]
pub struct NetworkReport {
    /// Tenants in the game.
    pub tenants: usize,
    /// Coalitions in the lattice (`2^tenants`).
    pub coalitions: u64,
    /// Links in the fabric.
    pub links: usize,
    /// Worker threads of the parallel timing run.
    pub threads: usize,
    /// Scaled duality-gap tolerance the certificate gate enforced.
    pub gap_tolerance: f64,
    /// Largest certified duality gap over every routed solve.
    pub max_duality_gap: f64,
    /// Coalitions whose demand was unroutable (penalty-valued); zero on
    /// this fabric, so the certificate gate covers the whole lattice.
    pub unroutable_coalitions: u64,
    /// Warm fills offered a parent basis.
    pub warm_attempts: u64,
    /// Warm offers the dual simplex served without cold fallback.
    pub warm_hits: u64,
    /// `warm_hits / warm_attempts`.
    pub warm_hit_rate: f64,
    /// Total simplex iterations of the cold lattice fill.
    pub cold_iterations: u64,
    /// Total simplex iterations of the warm lattice fill.
    pub warm_iterations: u64,
    /// `1 − warm_iterations / cold_iterations` (the headline savings).
    pub iteration_savings_ratio: f64,
    /// Gate 2: warm lattice bit-identical to cold.
    pub warm_bit_identical: bool,
    /// Gate 3: parallel exact Shapley bit-identical at 1/2/8 threads.
    pub thread_invariant: bool,
    /// All gates asserted before any timing run.
    pub gates_passed: bool,
    /// Cold lattice fill, best wall-clock.
    pub cold_lattice_secs: f64,
    /// Warm lattice fill, best wall-clock.
    pub warm_lattice_secs: f64,
    /// `cold_lattice_secs / warm_lattice_secs`.
    pub lattice_speedup: f64,
    /// Serial exact Shapley over the LP game, best wall-clock.
    pub serial_exact_secs: f64,
    /// Parallel exact Shapley at `threads`, best wall-clock.
    pub parallel_exact_secs: f64,
    /// `serial_exact_secs / parallel_exact_secs`.
    pub exact_speedup: f64,
}

fn best_secs<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Runs the gates, then the timings. Panics if any gate fails.
pub fn run_network(study: &NetworkStudy) -> NetworkReport {
    assert!(study.tenants >= 2 && study.tenants <= 20, "2..=20 tenants");
    let network = benchmark_network();
    let links = network.links().len();
    let game = NetworkCarbonGame::new(network, benchmark_demands(study.tenants));
    let n = study.tenants;

    // Gate 1: every routed solve across the lattice passes the KKT
    // certificate with a duality gap within tolerance.
    let mut max_gap = 0.0f64;
    let mut unroutable = 0u64;
    for mask in 0..(1u64 << n) {
        let coalition = Coalition::from_mask(n, mask);
        match game.evaluate(&coalition) {
            CoalitionValue::Routed(sol) => {
                let gap = game.certified_gap(&coalition, &sol).abs();
                let scale = 1.0 + sol.objective.abs();
                assert!(
                    gap <= study.gap_tolerance * scale,
                    "duality gap {gap} above tolerance on mask {mask:#b}"
                );
                max_gap = max_gap.max(gap);
            }
            CoalitionValue::Unroutable { .. } => unroutable += 1,
        }
    }

    // Gate 2: warm lattice bit-identical to cold.
    let (cold_values, cold_stats) = game.fill_lattice_cold();
    let (warm_values, warm_stats) = game.fill_lattice_warm();
    for (mask, (c, w)) in cold_values.iter().zip(&warm_values).enumerate() {
        assert_eq!(
            c.to_bits(),
            w.to_bits(),
            "warm fill diverged from cold on mask {mask:#b}: {c} vs {w}"
        );
    }

    // Gate 3: parallel exact Shapley bit-identical at 1/2/8 threads.
    let serial_phi = exact_shapley(&game).expect("serial exact");
    for threads in [1usize, 2, 8] {
        let phi = parallel_exact_shapley(&game, threads).expect("parallel exact");
        for (p, (a, b)) in serial_phi.iter().zip(&phi).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "player {p} diverged at {threads} threads"
            );
        }
    }

    // Gate 4: warm-starting must strictly reduce total simplex
    // iterations — the point of carrying the parent basis around.
    assert!(
        warm_stats.iterations < cold_stats.iterations,
        "warm fill took {} iterations vs cold {}",
        warm_stats.iterations,
        cold_stats.iterations
    );

    // All gates held — now time.
    let cold_lattice_secs = best_secs(study.reps, || game.fill_lattice_cold());
    let warm_lattice_secs = best_secs(study.reps, || game.fill_lattice_warm());
    let serial_exact_secs = best_secs(study.reps, || exact_shapley(&game).unwrap());
    let parallel_exact_secs = best_secs(study.reps, || {
        parallel_exact_shapley(&game, study.threads).unwrap()
    });

    NetworkReport {
        tenants: n,
        coalitions: cold_stats.coalitions,
        links,
        threads: study.threads,
        gap_tolerance: study.gap_tolerance,
        max_duality_gap: max_gap,
        unroutable_coalitions: unroutable,
        warm_attempts: warm_stats.warm_attempts,
        warm_hits: warm_stats.warm_hits,
        warm_hit_rate: warm_stats.warm_hits as f64 / warm_stats.warm_attempts.max(1) as f64,
        cold_iterations: cold_stats.iterations,
        warm_iterations: warm_stats.iterations,
        iteration_savings_ratio: 1.0
            - warm_stats.iterations as f64 / cold_stats.iterations.max(1) as f64,
        warm_bit_identical: true,
        thread_invariant: true,
        gates_passed: true,
        cold_lattice_secs,
        warm_lattice_secs,
        lattice_speedup: cold_lattice_secs / warm_lattice_secs,
        serial_exact_secs,
        parallel_exact_secs,
        exact_speedup: serial_exact_secs / parallel_exact_secs,
    }
}

/// Human-readable summary of a [`NetworkReport`].
pub fn print_network(report: &NetworkReport) {
    println!(
        "network    n={:<2} ({} coalitions, {} links)  max gap {:.2e}  warm hits {}/{} ({:.1}%)",
        report.tenants,
        report.coalitions,
        report.links,
        report.max_duality_gap,
        report.warm_hits,
        report.warm_attempts,
        100.0 * report.warm_hit_rate
    );
    println!(
        "           iterations cold {} → warm {} ({:.1}% saved)  lattice {:.4}s → {:.4}s ({:.2}x)",
        report.cold_iterations,
        report.warm_iterations,
        100.0 * report.iteration_savings_ratio,
        report.cold_lattice_secs,
        report.warm_lattice_secs,
        report.lattice_speedup
    );
    println!(
        "           exact Shapley serial {:.4}s  parallel {:.4}s ({:.2}x at {} threads)",
        report.serial_exact_secs, report.parallel_exact_secs, report.exact_speedup, report.threads
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_study_passes_all_gates() {
        let report = run_network(&NetworkStudy {
            tenants: 6,
            threads: 2,
            reps: 1,
            ..NetworkStudy::default()
        });
        assert!(report.gates_passed);
        assert_eq!(report.coalitions, 64);
        assert_eq!(report.unroutable_coalitions, 0);
        assert!(report.iteration_savings_ratio > 0.0);
    }

    #[test]
    fn benchmark_fabric_routes_every_singleton() {
        let game = NetworkCarbonGame::new(benchmark_network(), benchmark_demands(12));
        for t in 0..12 {
            let c = Coalition::from_mask(12, 1 << t);
            assert!(
                matches!(game.evaluate(&c), CoalitionValue::Routed(_)),
                "tenant {t} must route"
            );
        }
    }
}
