use fairco2::colocation::*;
use fairco2_carbon::units::CarbonIntensity;
use fairco2_workloads::{NodeAccounting, WorkloadKind, ALL_WORKLOADS};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let n = 40;
    let kinds: Vec<WorkloadKind> = (0..n)
        .map(|_| ALL_WORKLOADS[rng.gen_range(0..15)])
        .collect();
    let scenario = ColocationScenario::pair_in_order(&kinds).unwrap();
    let ctx = NodeAccounting::paper_default(CarbonIntensity::from_g_per_kwh(100.0));
    let truth = GroundTruthMatching.attribute(&scenario, &ctx).unwrap();
    let marg = FairCo2Colocation::with_full_history()
        .attribute(&scenario, &ctx)
        .unwrap();
    let ratio = FairCo2Colocation::with_full_history()
        .adjustment(AdjustmentKind::RatioForm)
        .attribute(&scenario, &ctx)
        .unwrap();
    println!(
        "{:<8}{:<8}{:>10}{:>10}{:>10}{:>8}{:>8}",
        "kind", "partner", "truth", "marg", "ratio", "m dev%", "r dev%"
    );
    for (i, w) in scenario.workloads().iter().enumerate() {
        println!(
            "{:<8}{:<8}{:>10.1}{:>10.1}{:>10.1}{:>8.2}{:>8.2}",
            w.kind.name(),
            w.partner.map_or("-", |p| p.name()),
            truth[i],
            marg[i],
            ratio[i],
            100.0 * (marg[i] - truth[i]) / truth[i],
            100.0 * (ratio[i] - truth[i]) / truth[i]
        );
    }
    let pools = scenario.carbon(&ctx);
    println!(
        "pools: emb {:.0} static {:.0} dyn {:.0}",
        pools.embodied, pools.static_operational, pools.dynamic_operational
    );
}
