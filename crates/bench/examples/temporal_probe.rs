//! Stage-level timing probe for the flat Temporal Shapley cascade:
//! where does a year-long attribution spend its time? Run with
//! `cargo run --release -p fairco2-bench --example temporal_probe`.

use std::time::Instant;

use fairco2_shapley::cascade::CascadeScratch;
use fairco2_shapley::kernels::{
    hierarchy_bounds, level_sums_lanes, level_sums_scalar, prefix_blocked, prefix_scalar,
    CANONICAL_LANES, PREFIX_BLOCK,
};
use fairco2_shapley::temporal::TemporalShapley;
use fairco2_trace::TimeSeries;

fn best<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let samples = 105_120usize;
    let demand = TimeSeries::from_fn(0, 300, samples, |t| {
        let day = t as f64 / 86_400.0;
        40.0 + 25.0 * (day * std::f64::consts::TAU).sin().abs()
            + 10.0 * (day / 7.0 * std::f64::consts::TAU).cos()
    })
    .unwrap();
    let h = TemporalShapley::paper_hierarchy();
    let reps = 30;

    let per_period = best(reps, || h.attribute_per_period(&demand, 1.0e6).unwrap());
    let fresh = best(reps, || h.attribute(&demand, 1.0e6).unwrap());
    let mut scratch = CascadeScratch::new();
    h.attribute_with_scratch(&demand, 1.0e6, 1, &mut scratch)
        .unwrap();
    let reuse = best(reps, || {
        h.attribute_with_scratch(&demand, 1.0e6, 1, &mut scratch)
            .unwrap()
    });
    let materialize = best(reps, || scratch.to_attribution());

    // Incremental hierarchies localize the level-solver cost.
    let mut partial = Vec::new();
    for splits in [
        vec![],
        vec![10],
        vec![10, 9],
        vec![10, 9, 8],
        vec![10, 9, 8, 12],
    ] {
        let h = TemporalShapley::new(splits.clone());
        let mut s = CascadeScratch::new();
        h.attribute_with_scratch(&demand, 1.0e6, 1, &mut s).unwrap();
        let t = best(reps, || {
            h.attribute_with_scratch(&demand, 1.0e6, 1, &mut s).unwrap()
        });
        partial.push((splits, t));
    }

    // Stage floors for context: one pass of the raw demand (the fused
    // sweep's read traffic), a full intensity-sized write, and the
    // serial prefix chain.
    let values = demand.values().to_vec();
    let sum_pass = best(reps, || values.iter().sum::<f64>());
    let mut sink = vec![0.0f64; samples];
    let fill_pass = best(reps, || {
        sink.fill(1.0);
        sink[samples / 2]
    });
    let sweep_pass = best(reps, || {
        // Replica of the fused sweep's inner work: 8 accumulator slots
        // plus a peak chain over ~12-sample leaf periods.
        let mut file = [0.0f64; 8];
        let mut peak_sink = 0.0f64;
        for chunk in values.chunks(12) {
            let mut peak = f64::NEG_INFINITY;
            for &v in chunk {
                for slot in file.iter_mut() {
                    *slot += v;
                }
                peak = f64::max(peak, v);
            }
            peak_sink += peak;
        }
        (file, peak_sink)
    });
    let mut out = vec![0.0f64; samples + 1];
    let prefix_pass = best(reps, || {
        let mut acc = 0.0;
        for (slot, v) in out[1..].iter_mut().zip(&values) {
            acc += v * 300.0;
            *slot = acc;
        }
        out[samples]
    });

    // The actual retained kernels, scalar vs lane canonical, so the
    // floors above can be compared with what the cascade really runs.
    let bounds = hierarchy_bounds(samples, &[10, 9, 8, 12]).unwrap();
    let mut q = Vec::new();
    let mut peaks = Vec::new();
    let sweep_scalar = best(reps, || {
        level_sums_scalar(&values, 300.0, &bounds, &mut q, &mut peaks);
        q[bounds.len() - 1].len()
    });
    let sweep_lane = best(reps, || {
        level_sums_lanes::<CANONICAL_LANES>(&values, 300.0, &bounds, &mut q, &mut peaks);
        q[bounds.len() - 1].len()
    });
    let mut prefix = Vec::new();
    let kernel_prefix_scalar = best(reps, || {
        prefix_scalar(&values, 300.0, &mut prefix);
        prefix[samples]
    });
    let kernel_prefix_lane = best(reps, || {
        prefix_blocked::<PREFIX_BLOCK>(&values, 300.0, &mut prefix);
        prefix[samples]
    });

    println!("samples            {samples}");
    println!("per-period         {:>9.1} µs", per_period * 1e6);
    println!("flat fresh         {:>9.1} µs", fresh * 1e6);
    println!("flat scratch       {:>9.1} µs", reuse * 1e6);
    println!("to_attribution     {:>9.1} µs", materialize * 1e6);
    for (splits, t) in &partial {
        println!("scratch {:<13} {:>9.1} µs", format!("{splits:?}"), t * 1e6);
    }
    println!("-- floors --");
    println!("one sum pass       {:>9.1} µs", sum_pass * 1e6);
    println!("one fill pass      {:>9.1} µs", fill_pass * 1e6);
    println!("fused sweep        {:>9.1} µs", sweep_pass * 1e6);
    println!("prefix chain       {:>9.1} µs", prefix_pass * 1e6);
    println!("-- kernels (scalar vs lane canonical) --");
    println!(
        "level sums         {:>9.1} µs  vs  {:>9.1} µs  ({:.2}x, {CANONICAL_LANES} lanes)",
        sweep_scalar * 1e6,
        sweep_lane * 1e6,
        sweep_scalar / sweep_lane
    );
    println!(
        "leaf prefix        {:>9.1} µs  vs  {:>9.1} µs  ({:.2}x, B={PREFIX_BLOCK})",
        kernel_prefix_scalar * 1e6,
        kernel_prefix_lane * 1e6,
        kernel_prefix_scalar / kernel_prefix_lane
    );
}
