use fairco2::colocation::*;
use fairco2::metrics::summarize;
use fairco2_carbon::units::CarbonIntensity;
use fairco2_workloads::{NodeAccounting, WorkloadKind, ALL_WORKLOADS};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    for &(n, ci) in &[(10usize, 250.0), (40, 100.0), (80, 500.0), (61, 20.0)] {
        let kinds: Vec<WorkloadKind> = (0..n)
            .map(|_| ALL_WORKLOADS[rng.gen_range(0..15)])
            .collect();
        let scenario = ColocationScenario::pair_in_order(&kinds).unwrap();
        let ctx = NodeAccounting::paper_default(CarbonIntensity::from_g_per_kwh(ci));
        let truth = GroundTruthMatching.attribute(&scenario, &ctx).unwrap();
        let rup = RupColocation.attribute(&scenario, &ctx).unwrap();
        let marg = FairCo2Colocation::with_full_history()
            .attribute(&scenario, &ctx)
            .unwrap();
        let ratio = FairCo2Colocation::with_full_history()
            .adjustment(AdjustmentKind::RatioForm)
            .attribute(&scenario, &ctx)
            .unwrap();
        let s = |m: &Vec<f64>| {
            let d = summarize(m, &truth).unwrap();
            format!("avg {:.2}% worst {:.2}%", d.average_pct, d.worst_case_pct)
        };
        println!(
            "n={n} ci={ci}: RUP [{}]  MARG [{}]  RATIO [{}]",
            s(&rup),
            s(&marg),
            s(&ratio)
        );
    }
}
