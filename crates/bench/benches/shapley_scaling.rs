//! The scalability claim behind Fair-CO₂ (paper Section 5.1): exact
//! Shapley enumeration explodes exponentially while Temporal Shapley's
//! closed form and the matching-game moment formula stay polynomial.
//!
//! Benchmarks:
//! * `exact_enumeration/n` — ground-truth solver, `Θ(n·2ⁿ)`;
//! * `peak_closed_form/n` — Temporal Shapley peak game, `O(n log n)`;
//! * `matching_closed_form/n` — colocation game, `O(n²)`;
//! * `permutation_sampling/n` — the generic estimator at a fixed budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fairco2_shapley::exact::exact_shapley_fast;
use fairco2_shapley::game::PeakDemandGame;
use fairco2_shapley::sampled::{sampled_shapley, SampleConfig};
use fairco2_shapley::temporal::peak_shapley;
use fairco2_shapley::MatchingGame;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn peak_game(n: usize, steps: usize, seed: u64) -> PeakDemandGame {
    let mut rng = StdRng::seed_from_u64(seed);
    let demand = (0..n)
        .map(|_| (0..steps).map(|_| rng.gen_range(0.0..96.0)).collect())
        .collect();
    PeakDemandGame::new(demand)
}

fn matching_game(n: usize, seed: u64) -> MatchingGame {
    let mut rng = StdRng::seed_from_u64(seed);
    let isolated: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..5.0)).collect();
    let mut pair = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let c = 0.6 * (isolated[i] + isolated[j]) * rng.gen_range(1.0..1.4);
            pair[i][j] = c;
            pair[j][i] = c;
        }
    }
    MatchingGame::new(isolated, pair)
}

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_enumeration");
    group.sample_size(10);
    for n in [8usize, 12, 16, 18] {
        let game = peak_game(n, 8, n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &game, |b, g| {
            b.iter(|| exact_shapley_fast(black_box(g)).unwrap())
        });
    }
    group.finish();
}

fn bench_peak_closed_form(c: &mut Criterion) {
    let mut group = c.benchmark_group("peak_closed_form");
    for n in [8usize, 64, 512, 4096] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let peaks: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1000.0)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &peaks, |b, p| {
            b.iter(|| peak_shapley(black_box(p)))
        });
    }
    group.finish();
}

fn bench_matching_closed_form(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching_closed_form");
    for n in [10usize, 50, 100, 200] {
        let game = matching_game(n, n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &game, |b, g| {
            b.iter(|| black_box(g).shapley())
        });
    }
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("permutation_sampling");
    group.sample_size(10);
    let config = SampleConfig {
        max_permutations: 200,
        target_stderr: 0.0,
        min_permutations: 10,
        antithetic: true,
    };
    for n in [16usize, 64] {
        let game = peak_game(n, 8, n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &game, |b, g| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| sampled_shapley(black_box(g), &config, &mut rng))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_exact,
    bench_peak_closed_form,
    bench_matching_closed_form,
    bench_sampling
);
criterion_main!(benches);
