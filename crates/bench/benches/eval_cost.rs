//! Cost of producing one attribution, before and after the PR's three
//! optimizations:
//!
//! * `exact_serial` / `exact_parallel` — the `Θ(n·2ⁿ)` ground-truth
//!   solver, single-threaded versus fanned out over the deterministic
//!   partitioner (bit-identical results, wall-clock only differs);
//! * `sampling_uncached` / `sampling_cached` — permutation sampling with
//!   and without the coalition-value memo table;
//! * `toggle_scan` / `toggle_tree` — the Gray-code table fill through the
//!   original dense `O(steps)` re-scan versus the `O(log steps)` segment
//!   tree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fairco2_shapley::default_threads;
use fairco2_shapley::exact::{exact_shapley, exact_shapley_fast, parallel_exact_shapley};
use fairco2_shapley::game::{PeakDemandGame, ScanPeak};
use fairco2_shapley::sampled::{sampled_shapley, sampled_shapley_cached, SampleConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn peak_game(n: usize, steps: usize, seed: u64) -> PeakDemandGame {
    let mut rng = StdRng::seed_from_u64(seed);
    let demand = (0..n)
        .map(|_| (0..steps).map(|_| rng.gen_range(0.0..96.0)).collect())
        .collect();
    PeakDemandGame::new(demand)
}

/// Schedule-shaped demand: each workload occupies a contiguous window of
/// `steps / 32` slices (like [`ScheduledWorkload`] slice ranges), so rows
/// are zero almost everywhere. This sparsity is what the segment-tree
/// toggle exploits: `O(|support| · log steps)` per toggle versus the
/// scan's unconditional `O(steps)` re-scan. On fully dense demand the
/// linear scan is competitive — the tree's advantage is the schedule
/// structure, not a universal constant factor.
fn windowed_peak_game(n: usize, steps: usize, seed: u64) -> PeakDemandGame {
    let mut rng = StdRng::seed_from_u64(seed);
    let window = (steps / 32).max(1);
    let demand = (0..n)
        .map(|p| {
            let start = p * (steps - window) / n.max(2);
            (0..steps)
                .map(|t| {
                    if (start..start + window).contains(&t) {
                        rng.gen_range(1.0..96.0)
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();
    PeakDemandGame::new(demand)
}

fn bench_exact_parallelism(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_shapley");
    group.sample_size(10);
    let threads = default_threads();
    for n in [12usize, 16, 20] {
        let game = peak_game(n, 8, n as u64);
        group.bench_with_input(BenchmarkId::new("serial", n), &game, |b, g| {
            b.iter(|| exact_shapley(black_box(g)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &game, |b, g| {
            b.iter(|| parallel_exact_shapley(black_box(g), threads).unwrap())
        });
    }
    group.finish();
}

fn bench_sampling_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling");
    group.sample_size(10);
    let config = SampleConfig {
        max_permutations: 1024,
        target_stderr: 0.0,
        min_permutations: 1,
        antithetic: true,
    };
    for n in [12usize, 16] {
        let game = peak_game(n, 8, n as u64);
        group.bench_with_input(BenchmarkId::new("uncached", n), &game, |b, g| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| sampled_shapley(black_box(g), &config, &mut rng))
        });
        group.bench_with_input(BenchmarkId::new("cached", n), &game, |b, g| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| sampled_shapley_cached(black_box(g), &config, &mut rng))
        });
    }
    group.finish();
}

fn bench_toggle_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("toggle");
    group.sample_size(10);
    // Many time steps with schedule-sparse rows is where the re-scan
    // hurts: each of the 2ⁿ toggles pays O(steps) in the scan path but
    // only O(|support| · log steps) in the tree path.
    for steps in [64usize, 512] {
        let game = windowed_peak_game(14, steps, steps as u64);
        let scan = ScanPeak(game.clone());
        group.bench_with_input(BenchmarkId::new("tree", steps), &game, |b, g| {
            b.iter(|| exact_shapley_fast(black_box(g)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("scan", steps), &scan, |b, g| {
            b.iter(|| exact_shapley_fast(black_box(g)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_exact_parallelism,
    bench_sampling_cache,
    bench_toggle_paths
);
criterion_main!(benches);
