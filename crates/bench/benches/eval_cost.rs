//! Cost of producing one attribution, before and after the PR's three
//! optimizations:
//!
//! * `exact_serial` / `exact_parallel` — the `Θ(n·2ⁿ)` ground-truth
//!   solver, single-threaded versus fanned out over the deterministic
//!   partitioner (bit-identical results, wall-clock only differs);
//! * `sampling_uncached` / `sampling_cached` — permutation sampling with
//!   and without the coalition-value memo table;
//! * `toggle_scan` / `toggle_tree` — the Gray-code table fill through the
//!   original dense `O(steps)` re-scan versus the `O(log steps)` segment
//!   tree;
//! * `cascade_per_period` / `cascade_flat` / `cascade_scratch` — the
//!   hierarchical Temporal Shapley pipeline through the old owned
//!   per-period path versus the flat zero-copy engine (fresh and with a
//!   reused [`CascadeScratch`]);
//! * `billing_per_call` / `billing_batch` — workload billing-window
//!   queries one `workload_carbon` call at a time versus the batched
//!   prefix-table entry point;
//! * `kernel_sweep` / `kernel_prefix` / `kernel_scatter` — the retained
//!   scalar inner loops versus the canonical lane-parallel kernels
//!   (multi-accumulator sweep, blocked prefix, quad-unrolled table
//!   scatter).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fairco2_shapley::cascade::{BillingQuery, CascadeScratch};
use fairco2_shapley::default_threads;
use fairco2_shapley::exact::{
    exact_shapley, exact_shapley_fast, parallel_exact_shapley, shapley_from_table,
    shapley_from_table_scalar,
};
use fairco2_shapley::game::{PeakDemandGame, ScanPeak};
use fairco2_shapley::kernels::{
    hierarchy_bounds, level_sums_lanes, level_sums_scalar, prefix_blocked, prefix_scalar,
    CANONICAL_LANES, PREFIX_BLOCK,
};
use fairco2_shapley::sampled::{sampled_shapley, sampled_shapley_cached, SampleConfig};
use fairco2_shapley::temporal::TemporalShapley;
use fairco2_trace::TimeSeries;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn peak_game(n: usize, steps: usize, seed: u64) -> PeakDemandGame {
    let mut rng = StdRng::seed_from_u64(seed);
    let demand = (0..n)
        .map(|_| (0..steps).map(|_| rng.gen_range(0.0..96.0)).collect())
        .collect();
    PeakDemandGame::new(demand)
}

/// Schedule-shaped demand: each workload occupies a contiguous window of
/// `steps / 32` slices (like [`ScheduledWorkload`] slice ranges), so rows
/// are zero almost everywhere. This sparsity is what the segment-tree
/// toggle exploits: `O(|support| · log steps)` per toggle versus the
/// scan's unconditional `O(steps)` re-scan. On fully dense demand the
/// linear scan is competitive — the tree's advantage is the schedule
/// structure, not a universal constant factor.
fn windowed_peak_game(n: usize, steps: usize, seed: u64) -> PeakDemandGame {
    let mut rng = StdRng::seed_from_u64(seed);
    let window = (steps / 32).max(1);
    let demand = (0..n)
        .map(|p| {
            let start = p * (steps - window) / n.max(2);
            (0..steps)
                .map(|t| {
                    if (start..start + window).contains(&t) {
                        rng.gen_range(1.0..96.0)
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();
    PeakDemandGame::new(demand)
}

fn bench_exact_parallelism(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_shapley");
    group.sample_size(10);
    let threads = default_threads();
    for n in [12usize, 16, 20] {
        let game = peak_game(n, 8, n as u64);
        group.bench_with_input(BenchmarkId::new("serial", n), &game, |b, g| {
            b.iter(|| exact_shapley(black_box(g)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &game, |b, g| {
            b.iter(|| parallel_exact_shapley(black_box(g), threads).unwrap())
        });
    }
    group.finish();
}

fn bench_sampling_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling");
    group.sample_size(10);
    let config = SampleConfig {
        max_permutations: 1024,
        target_stderr: 0.0,
        min_permutations: 1,
        antithetic: true,
    };
    for n in [12usize, 16] {
        let game = peak_game(n, 8, n as u64);
        group.bench_with_input(BenchmarkId::new("uncached", n), &game, |b, g| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| sampled_shapley(black_box(g), &config, &mut rng))
        });
        group.bench_with_input(BenchmarkId::new("cached", n), &game, |b, g| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| sampled_shapley_cached(black_box(g), &config, &mut rng))
        });
    }
    group.finish();
}

fn bench_toggle_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("toggle");
    group.sample_size(10);
    // Many time steps with schedule-sparse rows is where the re-scan
    // hurts: each of the 2ⁿ toggles pays O(steps) in the scan path but
    // only O(|support| · log steps) in the tree path.
    for steps in [64usize, 512] {
        let game = windowed_peak_game(14, steps, steps as u64);
        let scan = ScanPeak(game.clone());
        group.bench_with_input(BenchmarkId::new("tree", steps), &game, |b, g| {
            b.iter(|| exact_shapley_fast(black_box(g)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("scan", steps), &scan, |b, g| {
            b.iter(|| exact_shapley_fast(black_box(g)).unwrap())
        });
    }
    group.finish();
}

/// A diurnal+weekly demand trace on the 5-minute grid, like the
/// `perf_report` temporal section uses (shrunk to keep Criterion's
/// warm-up affordable).
fn diurnal_demand(samples: usize) -> TimeSeries {
    TimeSeries::from_fn(0, 300, samples, |t| {
        let day = t as f64 / 86_400.0;
        let base = 40.0
            + 25.0 * (day * std::f64::consts::TAU).sin().abs()
            + 10.0 * (day / 7.0 * std::f64::consts::TAU).cos();
        if (t / 300) % 97 == 0 {
            0.0
        } else {
            base
        }
    })
    .expect("non-empty series")
}

fn bench_cascade_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("cascade");
    group.sample_size(10);
    let hierarchy = TemporalShapley::paper_hierarchy();
    // 30 days of 5-minute samples: one paper-hierarchy root period.
    for samples in [8_640usize, 34_560] {
        let demand = diurnal_demand(samples);
        group.bench_with_input(BenchmarkId::new("per_period", samples), &demand, |b, d| {
            b.iter(|| hierarchy.attribute_per_period(black_box(d), 1.0e6).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("flat", samples), &demand, |b, d| {
            b.iter(|| hierarchy.attribute(black_box(d), 1.0e6).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("scratch", samples), &demand, |b, d| {
            let mut scratch = CascadeScratch::new();
            hierarchy
                .attribute_with_scratch(d, 1.0e6, 1, &mut scratch)
                .unwrap();
            b.iter(|| {
                hierarchy
                    .attribute_with_scratch(black_box(d), 1.0e6, 1, &mut scratch)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_billing_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("billing");
    group.sample_size(10);
    let hierarchy = TemporalShapley::paper_hierarchy();
    let demand = diurnal_demand(8_640);
    let attribution = hierarchy.attribute(&demand, 1.0e6).unwrap();
    let horizon = 8_640i64 * 300;
    let mut rng = StdRng::seed_from_u64(7);
    let queries: Vec<BillingQuery> = (0..100_000)
        .map(|_| {
            let t0 = rng.gen_range(-3_600..horizon);
            (t0, t0 + rng.gen_range(0..86_400), rng.gen_range(0.0..64.0))
        })
        .collect();
    group.bench_function("per_call", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|&(t0, t1, alloc)| attribution.workload_carbon(t0, t1, alloc))
                .sum::<f64>()
        })
    });
    group.bench_function("batch", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            attribution.workload_carbon_batch_into(black_box(&queries), &mut out);
            out.iter().sum::<f64>()
        })
    });
    group.finish();
}

fn bench_kernel_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_sweep");
    group.sample_size(10);
    for samples in [8_640usize, 34_560] {
        let demand = diurnal_demand(samples);
        let values = demand.values().to_vec();
        let bounds = hierarchy_bounds(samples, &[10, 9, 8, 12]).expect("paper splits");
        let mut q = Vec::new();
        let mut peaks = Vec::new();
        group.bench_with_input(BenchmarkId::new("scalar", samples), &values, |b, v| {
            b.iter(|| {
                level_sums_scalar(black_box(v), 300.0, &bounds, &mut q, &mut peaks);
                q.last().map(Vec::len)
            })
        });
        group.bench_with_input(BenchmarkId::new("lane", samples), &values, |b, v| {
            b.iter(|| {
                level_sums_lanes::<CANONICAL_LANES>(
                    black_box(v),
                    300.0,
                    &bounds,
                    &mut q,
                    &mut peaks,
                );
                q.last().map(Vec::len)
            })
        });
    }
    group.finish();
}

fn bench_kernel_prefix(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_prefix");
    group.sample_size(10);
    for samples in [8_640usize, 34_560] {
        let demand = diurnal_demand(samples);
        let values = demand.values().to_vec();
        let mut prefix = Vec::new();
        group.bench_with_input(BenchmarkId::new("scalar", samples), &values, |b, v| {
            b.iter(|| {
                prefix_scalar(black_box(v), 300.0, &mut prefix);
                prefix[v.len()]
            })
        });
        group.bench_with_input(BenchmarkId::new("lane", samples), &values, |b, v| {
            b.iter(|| {
                prefix_blocked::<PREFIX_BLOCK>(black_box(v), 300.0, &mut prefix);
                prefix[v.len()]
            })
        });
    }
    group.finish();
}

fn bench_kernel_scatter(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_scatter");
    group.sample_size(10);
    for n in [14usize, 18] {
        // A synthetic non-negative characteristic table, like a peak-demand
        // game's toggle fill would produce.
        let table: Vec<f64> = (0..1u64 << n)
            .map(|m| {
                let mut x = m.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(7);
                x ^= x >> 33;
                ((x >> 40) % 8_001) as f64 / 100.0
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("scalar", n), &table, |b, t| {
            b.iter(|| shapley_from_table_scalar(n, black_box(t)))
        });
        group.bench_with_input(BenchmarkId::new("lane", n), &table, |b, t| {
            b.iter(|| shapley_from_table(n, black_box(t)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_exact_parallelism,
    bench_sampling_cache,
    bench_toggle_paths,
    bench_cascade_paths,
    bench_billing_queries,
    bench_kernel_sweep,
    bench_kernel_prefix,
    bench_kernel_scatter
);
criterion_main!(benches);
