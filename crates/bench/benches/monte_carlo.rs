//! Per-trial cost of the two Monte Carlo studies — what 10,000 trials of
//! Figures 7 and 8 cost per scenario, and how the parallel runner scales.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fairco2_montecarlo::colocations::ColocationStudy;
use fairco2_montecarlo::runner::run_parallel;
use fairco2_montecarlo::schedules::DemandStudy;

fn bench_demand_trial(c: &mut Criterion) {
    let study = DemandStudy::default();
    let mut group = c.benchmark_group("monte_carlo");
    group.sample_size(10);
    group.bench_function("demand_trial_exact_truth", |b| {
        let mut t = 0usize;
        b.iter(|| {
            t += 1;
            study.run_trial(black_box(t % 1000))
        })
    });
    group.finish();
}

fn bench_colocation_trial(c: &mut Criterion) {
    let study = ColocationStudy::default();
    c.bench_function("monte_carlo/colocation_trial", |b| {
        let mut t = 0usize;
        b.iter(|| {
            t += 1;
            study.run_trial(black_box(t % 1000))
        })
    });
}

fn bench_runner_overhead(c: &mut Criterion) {
    c.bench_function("monte_carlo/runner_1000_noop_trials", |b| {
        b.iter(|| run_parallel(1000, 4, |t| black_box(t) * 2))
    });
}

criterion_group!(
    benches,
    bench_demand_trial,
    bench_colocation_trial,
    bench_runner_overhead
);
criterion_main!(benches);
