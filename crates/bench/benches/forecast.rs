//! Cost of the live-signal pipeline (paper Section 5.3): fitting the
//! Prophet-substitute on 21 days of 5-minute samples, forecasting 9 days,
//! and producing the live intensity signal end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fairco2::signal::LiveSignal;
use fairco2_forecast::{split_at_day, SeasonalForecaster};
use fairco2_trace::AzureLikeTrace;

fn bench_fit(c: &mut Criterion) {
    let trace = AzureLikeTrace::builder().days(21).seed(3).build();
    let series = trace.series().clone();
    let mut group = c.benchmark_group("forecast");
    group.sample_size(10);
    group.bench_function("fit_21_days_5min", |b| {
        b.iter(|| {
            SeasonalForecaster::default_daily_weekly()
                .fit(black_box(&series))
                .unwrap()
        })
    });
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let trace = AzureLikeTrace::builder().days(21).seed(3).build();
    let model = SeasonalForecaster::default_daily_weekly()
        .fit(trace.series())
        .unwrap();
    c.bench_function("forecast/predict_9_days", |b| {
        b.iter(|| black_box(&model).predict(9 * 288))
    });
}

fn bench_live_signal(c: &mut Criterion) {
    let trace = AzureLikeTrace::builder().days(30).seed(3).build();
    let (history, holdout) = split_at_day(trace.series(), 21).unwrap();
    let mut group = c.benchmark_group("forecast");
    group.sample_size(10);
    group.bench_function("live_signal_end_to_end", |b| {
        b.iter(|| {
            LiveSignal::paper_default()
                .generate(black_box(&history), holdout.len(), 1.0e6)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fit, bench_predict, bench_live_signal);
criterion_main!(benches);
