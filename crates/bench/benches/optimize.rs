//! Cost of carbon-aware optimization decisions (paper Section 8): one
//! full configuration sweep, one FAISS Pareto front, one optimizer
//! decision, and the entire week-long dynamic case study.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fairco2_optimize::dynamic::DynamicStudy;
use fairco2_optimize::faiss::FaissModel;
use fairco2_optimize::scaling::{ResourcePricing, ScalingModel};
use fairco2_optimize::sweep::sweep_configurations;
use fairco2_shapley::temporal::TemporalShapley;
use fairco2_trace::{AzureLikeTrace, GridIntensityTrace};
use fairco2_workloads::WorkloadKind;

fn bench_sweep(c: &mut Criterion) {
    let model = ScalingModel::for_workload(WorkloadKind::Spark);
    let pricing = ResourcePricing::paper_default(250.0);
    c.bench_function("optimize/config_sweep_spark", |b| {
        b.iter(|| sweep_configurations(black_box(&model), &pricing))
    });
}

fn bench_pareto(c: &mut Criterion) {
    let model = FaissModel::default();
    let pricing = ResourcePricing::paper_default(250.0);
    c.bench_function("optimize/faiss_pareto_front", |b| {
        b.iter(|| black_box(&model).pareto_front(&pricing))
    });
}

fn bench_decision(c: &mut Criterion) {
    let model = FaissModel::default();
    let pricing = ResourcePricing::paper_default(250.0);
    c.bench_function("optimize/faiss_best_under_latency", |b| {
        b.iter(|| black_box(&model).best_under_latency(&pricing, 2.0).unwrap())
    });
}

fn bench_dynamic_week(c: &mut Criterion) {
    let grid = GridIntensityTrace::caiso_like(7, 3600, 13);
    let demand = AzureLikeTrace::builder()
        .days(7)
        .step_seconds(3600)
        .seed(41)
        .build();
    let signal = TemporalShapley::new(vec![7, 24])
        .attribute(demand.series(), 1000.0)
        .unwrap()
        .leaf_intensity()
        .clone();
    let mut group = c.benchmark_group("optimize");
    group.sample_size(10);
    group.bench_function("dynamic_week_simulation", |b| {
        b.iter(|| DynamicStudy::default().run(black_box(&grid), &signal))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sweep,
    bench_pareto,
    bench_decision,
    bench_dynamic_week
);
criterion_main!(benches);
