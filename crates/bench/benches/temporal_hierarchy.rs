//! The cost of generating the Figure 4 carbon-intensity signal: the full
//! hierarchical Temporal Shapley pass over a 30-day, 5-minute trace
//! (8640 samples → 8640 leaf periods via splits 10·9·8·12), plus the
//! single-level variants — the "27 seconds on one core" claim of the
//! paper is reproduced here in milliseconds because the closed form
//! replaces subset enumeration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fairco2_shapley::temporal::TemporalShapley;
use fairco2_trace::AzureLikeTrace;

fn bench_paper_hierarchy(c: &mut Criterion) {
    let trace = AzureLikeTrace::builder().days(30).seed(7).build();
    let series = trace.series().clone();
    c.bench_function("temporal_hierarchy/paper_30d_to_5min", |b| {
        b.iter(|| {
            TemporalShapley::paper_hierarchy()
                .attribute(black_box(&series), 1.0e6)
                .unwrap()
        })
    });
}

fn bench_single_level(c: &mut Criterion) {
    let trace = AzureLikeTrace::builder().days(30).seed(7).build();
    let series = trace.series().clone();
    let mut group = c.benchmark_group("temporal_single_level");
    for split in [24usize, 240, 2880] {
        group.bench_with_input(BenchmarkId::from_parameter(split), &split, |b, &m| {
            b.iter(|| {
                TemporalShapley::new(vec![m])
                    .attribute(black_box(&series), 1.0e6)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_workload_lookup(c: &mut Criterion) {
    // Once the signal exists, pricing one workload is a linear scan of
    // its window — the O(1)-per-period cost the paper highlights.
    let trace = AzureLikeTrace::builder().days(30).seed(7).build();
    let att = TemporalShapley::paper_hierarchy()
        .attribute(trace.series(), 1.0e6)
        .unwrap();
    c.bench_function("temporal_hierarchy/workload_lookup_1day", |b| {
        b.iter(|| black_box(&att).workload_carbon(86_400, 2 * 86_400, 48.0))
    });
}

criterion_group!(
    benches,
    bench_paper_hierarchy,
    bench_single_level,
    bench_workload_lookup
);
criterion_main!(benches);
