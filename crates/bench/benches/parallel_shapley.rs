//! Scaling of the batched parallel Shapley engine with worker count.
//!
//! One fixed [`PeakDemandGame`] (a 60-workload random schedule), one fixed
//! permutation budget, thread counts 1 / 2 / 8. The engine is bit-exact
//! across thread counts, so the curves measure pure scheduling overhead;
//! the acceptance bar is ≥2× at 8 threads over serial.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fairco2_montecarlo::schedules::DemandStudy;
use fairco2_shapley::game::PeakDemandGame;
use fairco2_shapley::{parallel_sampled_shapley, ParallelConfig, SampleConfig};

fn bench_thread_scaling(c: &mut Criterion) {
    let study = DemandStudy {
        max_workloads: 60,
        min_time_slices: 8,
        max_time_slices: 12,
        ..DemandStudy::default()
    };
    let game = PeakDemandGame::new(study.generate_schedule(0).demand_matrix());

    let mut group = c.benchmark_group("parallel_shapley");
    group.sample_size(10);
    for threads in [1usize, 2, 8] {
        let config = ParallelConfig {
            sample: SampleConfig {
                max_permutations: 4096,
                target_stderr: 0.0, // disable early stopping: fixed work
                ..SampleConfig::default()
            },
            threads,
            ..ParallelConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &config,
            |b, config| b.iter(|| parallel_sampled_shapley(&game, config, 42)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_thread_scaling);
criterion_main!(benches);
