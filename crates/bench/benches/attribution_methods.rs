//! Throughput of the attribution methods themselves: what it costs to
//! price a schedule (demand setting) or a scenario (colocation setting)
//! with each method, including the exponential ground truth — the gap is
//! the paper's motivation in microcosm.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fairco2::colocation::{
    ColocationAttributor, ColocationScenario, FairCo2Colocation, GroundTruthMatching, RupColocation,
};
use fairco2::demand::{
    DemandAttributor, DemandProportional, GroundTruthShapley, RupBaseline, TemporalFairCo2,
};
use fairco2_carbon::units::CarbonIntensity;
use fairco2_montecarlo::schedules::random_schedule;
use fairco2_workloads::{NodeAccounting, WorkloadKind, ALL_WORKLOADS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_demand_methods(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(77);
    let schedule = random_schedule(&mut rng, 8, 9, 20);
    let mut group = c.benchmark_group("demand_attribution");
    group.sample_size(10);
    group.bench_function("ground_truth_exact", |b| {
        b.iter(|| {
            GroundTruthShapley
                .attribute(black_box(&schedule), 1000.0)
                .unwrap()
        })
    });
    group.bench_function("rup_baseline", |b| {
        b.iter(|| RupBaseline.attribute(black_box(&schedule), 1000.0).unwrap())
    });
    group.bench_function("demand_proportional", |b| {
        b.iter(|| {
            DemandProportional
                .attribute(black_box(&schedule), 1000.0)
                .unwrap()
        })
    });
    group.bench_function("fair_co2_temporal", |b| {
        b.iter(|| {
            TemporalFairCo2::per_step()
                .attribute(black_box(&schedule), 1000.0)
                .unwrap()
        })
    });
    group.finish();
}

fn bench_colocation_methods(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(78);
    let kinds: Vec<WorkloadKind> = (0..80)
        .map(|_| ALL_WORKLOADS[rng.gen_range(0..ALL_WORKLOADS.len())])
        .collect();
    let scenario = ColocationScenario::pair_in_order(&kinds).unwrap();
    let ctx = NodeAccounting::paper_default(CarbonIntensity::from_g_per_kwh(250.0));
    let mut group = c.benchmark_group("colocation_attribution_n80");
    group.bench_function("ground_truth_matching", |b| {
        b.iter(|| {
            GroundTruthMatching
                .attribute(black_box(&scenario), &ctx)
                .unwrap()
        })
    });
    group.bench_function("rup_baseline", |b| {
        b.iter(|| RupColocation.attribute(black_box(&scenario), &ctx).unwrap())
    });
    group.bench_function("fair_co2_full_history", |b| {
        b.iter(|| {
            FairCo2Colocation::with_full_history()
                .attribute(black_box(&scenario), &ctx)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_demand_methods, bench_colocation_methods);
criterion_main!(benches);
