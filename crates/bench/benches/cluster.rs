//! Cost of the discrete-event cluster simulator: events are O(running
//! jobs) each, so a 300-job stream with ~20 concurrent jobs simulates in
//! well under a millisecond per simulated hour.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fairco2_cluster::policy::{FirstFit, LeastInterference};
use fairco2_cluster::{JobStream, Simulator};

fn bench_simulation(c: &mut Criterion) {
    let sim = Simulator::paper_default();
    let mut group = c.benchmark_group("cluster_simulation");
    group.sample_size(10);
    for jobs in [50usize, 200, 800] {
        let stream = JobStream::poisson(jobs, 60.0, 7);
        group.bench_with_input(BenchmarkId::new("first_fit", jobs), &stream, |b, s| {
            b.iter(|| sim.run(black_box(s), &mut FirstFit))
        });
    }
    let stream = JobStream::poisson(200, 60.0, 7);
    group.bench_with_input(
        BenchmarkId::new("least_interference", 200),
        &stream,
        |b, s| b.iter(|| sim.run(black_box(s), &mut LeastInterference::default())),
    );
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
