//! The streaming Monte Carlo study engine.
//!
//! Work is split into fixed-size trial batches (boundaries depend only on
//! the batch size — never on the thread count). Worker threads pull batch
//! indices from an atomic counter, run each batch's trials through their
//! own [`TrialScratch`] arena, and send the batch's summary accumulator
//! down a channel. The caller's thread reorders arrivals by batch index
//! and merges them strictly in order, so the merged summary is
//! bit-identical to the serial
//! [`DemandStudySummary::from_trials`] fold at any thread count.
//!
//! Memory stays `O(threads)`: one scratch arena per worker (the 32 MiB
//! exact-solver table dominates), plus a reorder buffer that holds only
//! the batch accumulators that arrived ahead of order.

use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use serde::{Deserialize, Serialize};

use crate::colocations::{ColocationStudy, ColocationTrial};
use crate::schedules::{DemandStudy, DemandTrial};
use crate::scratch::{ScratchStats, TrialScratch};
use crate::streaming::{ColocationStudySummary, DemandStudySummary, DEFAULT_BATCH_TRIALS};

/// Engine knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads (0 clamps to 1).
    pub threads: usize,
    /// Trials per batch. Determinism contract: the same batch size always
    /// produces the same summary bits, at any thread count.
    pub batch_trials: usize,
    /// Also return every per-trial record (the `--dump-trials` path).
    /// Costs `O(trials)` memory; summaries are unaffected.
    pub collect_trials: bool,
}

impl EngineConfig {
    /// The default configuration at a given thread count.
    pub fn new(threads: usize) -> Self {
        Self {
            threads,
            batch_trials: DEFAULT_BATCH_TRIALS,
            collect_trials: false,
        }
    }
}

/// What a study run did, for perf reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Trials executed.
    pub trials: u64,
    /// Batches executed.
    pub batches: u64,
    /// Worker threads used.
    pub threads: u64,
    /// Aggregated scratch-reuse counters across workers.
    pub scratch: ScratchStats,
    /// Deepest the reorder buffer got (batch accumulators held while
    /// waiting for an earlier batch).
    pub max_reorder_depth: u64,
}

/// Runs `trials` trials through per-worker scratch arenas, streaming
/// batch accumulators to `merge` strictly in batch-index order.
///
/// `make_scratch` is called once per worker; `run_batch` folds one batch
/// of trial indices through the worker's scratch; `merge` receives
/// `(batch_index, accumulator)` with indices in ascending order, on the
/// calling thread.
///
/// # Panics
///
/// Propagates panics from worker threads.
pub fn stream_batches<A, S, F, M>(
    trials: usize,
    threads: usize,
    batch_trials: usize,
    make_scratch: S,
    run_batch: F,
    mut merge: M,
) -> EngineStats
where
    A: Send,
    S: Fn() -> TrialScratch + Sync,
    F: Fn(Range<usize>, &mut TrialScratch) -> A + Sync,
    M: FnMut(usize, A),
{
    let threads = threads.max(1);
    let batch_trials = batch_trials.max(1);
    let n_batches = trials.div_ceil(batch_trials);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, A)>();

    let (scratch, max_reorder_depth) = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                let tx = tx.clone();
                let next = &next;
                let make_scratch = &make_scratch;
                let run_batch = &run_batch;
                scope.spawn(move || {
                    let mut scratch = make_scratch();
                    loop {
                        let b = next.fetch_add(1, Ordering::Relaxed);
                        if b >= n_batches {
                            break;
                        }
                        let start = b * batch_trials;
                        let end = (start + batch_trials).min(trials);
                        let acc = run_batch(start..end, &mut scratch);
                        if tx.send((b, acc)).is_err() {
                            break;
                        }
                    }
                    scratch.stats()
                })
            })
            .collect();
        drop(tx);

        // Reorder arrivals so merges happen strictly in batch order —
        // this is what makes the summary thread-count invariant.
        let mut pending: BTreeMap<usize, A> = BTreeMap::new();
        let mut next_merge = 0usize;
        let mut max_depth = 0usize;
        for (idx, acc) in rx {
            pending.insert(idx, acc);
            max_depth = max_depth.max(pending.len());
            while let Some(acc) = pending.remove(&next_merge) {
                merge(next_merge, acc);
                next_merge += 1;
            }
        }

        let mut total = ScratchStats::default();
        for w in workers {
            total.merge(&w.join().expect("study worker panicked"));
        }
        assert!(
            pending.is_empty() && next_merge == n_batches,
            "batch stream ended with unmerged batches"
        );
        (total, max_depth)
    });

    EngineStats {
        trials: trials as u64,
        batches: n_batches as u64,
        threads: threads as u64,
        scratch,
        max_reorder_depth: max_reorder_depth as u64,
    }
}

/// Streams the demand study: per-worker arenas, in-order batch merges,
/// `on_progress(trials_so_far, &summary)` after every merge (for
/// convergence checkpoints and progress display).
///
/// Returns the summary, the per-trial dump when
/// [`EngineConfig::collect_trials`] is set, and the engine stats. The
/// summary is bit-identical to
/// [`DemandStudySummary::from_trials`] over the serially collected trials
/// at the same batch size, at any thread count.
pub fn stream_demand_study_observed(
    study: &DemandStudy,
    cfg: EngineConfig,
    mut on_progress: impl FnMut(u64, &DemandStudySummary),
) -> (DemandStudySummary, Option<Vec<DemandTrial>>, EngineStats) {
    let mut master = DemandStudySummary::empty(study);
    let mut dump: Option<Vec<DemandTrial>> = cfg.collect_trials.then(Vec::new);
    let stats = stream_batches(
        study.trials,
        cfg.threads,
        cfg.batch_trials,
        || TrialScratch::for_demand(study),
        |range, scratch| {
            let mut acc = DemandStudySummary::empty(study);
            let mut kept = cfg.collect_trials.then(|| Vec::with_capacity(range.len()));
            for t in range {
                let trial = study.run_trial_with_scratch(t, scratch);
                acc.record(&trial);
                if let Some(k) = &mut kept {
                    k.push(trial);
                }
            }
            (acc, kept)
        },
        |_idx, (acc, kept): (DemandStudySummary, Option<Vec<DemandTrial>>)| {
            master.merge(&acc);
            if let (Some(d), Some(k)) = (&mut dump, kept) {
                d.extend(k);
            }
            on_progress(master.trials, &master);
        },
    );
    (master, dump, stats)
}

/// [`stream_demand_study_observed`] without a progress callback.
pub fn stream_demand_study(
    study: &DemandStudy,
    cfg: EngineConfig,
) -> (DemandStudySummary, Option<Vec<DemandTrial>>, EngineStats) {
    stream_demand_study_observed(study, cfg, |_, _| {})
}

/// Streams the colocation study; the colocation counterpart of
/// [`stream_demand_study_observed`].
pub fn stream_colocation_study_observed(
    study: &ColocationStudy,
    cfg: EngineConfig,
    mut on_progress: impl FnMut(u64, &ColocationStudySummary),
) -> (
    ColocationStudySummary,
    Option<Vec<ColocationTrial>>,
    EngineStats,
) {
    let mut master = ColocationStudySummary::empty(study);
    let mut dump: Option<Vec<ColocationTrial>> = cfg.collect_trials.then(Vec::new);
    let stats = stream_batches(
        study.trials,
        cfg.threads,
        cfg.batch_trials,
        TrialScratch::new,
        |range, scratch| {
            let mut acc = ColocationStudySummary::empty(study);
            let mut kept = cfg.collect_trials.then(|| Vec::with_capacity(range.len()));
            for t in range {
                let trial = study.run_trial_with_scratch(t, scratch);
                acc.record(&trial);
                if let Some(k) = &mut kept {
                    k.push(trial);
                }
            }
            (acc, kept)
        },
        |_idx, (acc, kept): (ColocationStudySummary, Option<Vec<ColocationTrial>>)| {
            master.merge(&acc);
            if let (Some(d), Some(k)) = (&mut dump, kept) {
                d.extend(k);
            }
            on_progress(master.trials, &master);
        },
    );
    (master, dump, stats)
}

/// [`stream_colocation_study_observed`] without a progress callback.
pub fn stream_colocation_study(
    study: &ColocationStudy,
    cfg: EngineConfig,
) -> (
    ColocationStudySummary,
    Option<Vec<ColocationTrial>>,
    EngineStats,
) {
    stream_colocation_study_observed(study, cfg, |_, _| {})
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_demand() -> DemandStudy {
        DemandStudy {
            trials: 37,
            max_workloads: 8,
            ..DemandStudy::default()
        }
    }

    #[test]
    fn demand_stream_matches_serial_fold_bitwise() {
        let study = small_demand();
        let trials: Vec<DemandTrial> = (0..study.trials).map(|t| study.run_trial(t)).collect();
        let serial = DemandStudySummary::from_trials(&study, &trials, 8);
        let cfg = EngineConfig {
            threads: 3,
            batch_trials: 8,
            collect_trials: true,
        };
        let (streamed, dump, stats) = stream_demand_study(&study, cfg);
        assert_eq!(streamed, serial);
        assert_eq!(stats.trials, 37);
        assert_eq!(stats.batches, 5);
        assert_eq!(stats.scratch.trials, 37);
        // The dump is the full trial stream, in trial order.
        let dump = dump.unwrap();
        assert_eq!(dump.len(), trials.len());
        for (a, b) in dump.iter().zip(&trials) {
            assert_eq!(a.trial, b.trial);
            assert_eq!(a.rup.average_pct.to_bits(), b.rup.average_pct.to_bits());
        }
    }

    #[test]
    fn progress_fires_after_every_in_order_merge() {
        let study = small_demand();
        let mut seen = Vec::new();
        let cfg = EngineConfig {
            threads: 2,
            batch_trials: 10,
            collect_trials: false,
        };
        let (summary, dump, _) =
            stream_demand_study_observed(&study, cfg, |n, s| seen.push((n, s.trials)));
        assert!(dump.is_none());
        assert_eq!(seen, vec![(10, 10), (20, 20), (30, 30), (37, 37)]);
        assert_eq!(summary.trials, 37);
    }

    #[test]
    fn scratch_arena_is_reused_across_a_worker_run() {
        let study = small_demand();
        let cfg = EngineConfig {
            threads: 1,
            batch_trials: 64,
            collect_trials: false,
        };
        let (_, _, stats) = stream_demand_study(&study, cfg);
        // One pre-grown table, every solve served from it.
        assert_eq!(stats.scratch.table_grows, 1);
        assert_eq!(stats.scratch.table_reuses, 37);
    }

    #[test]
    fn zero_trials_produce_an_empty_summary() {
        let study = DemandStudy {
            trials: 0,
            ..small_demand()
        };
        let (summary, _, stats) = stream_demand_study(&study, EngineConfig::new(4));
        assert_eq!(summary.trials, 0);
        assert_eq!(stats.batches, 0);
    }

    #[test]
    fn colocation_stream_matches_serial_fold_bitwise() {
        let study = ColocationStudy {
            trials: 21,
            max_workloads: 16,
            ..ColocationStudy::default()
        };
        let trials: Vec<ColocationTrial> = (0..study.trials).map(|t| study.run_trial(t)).collect();
        let serial = ColocationStudySummary::from_trials(&study, &trials, 5);
        let cfg = EngineConfig {
            threads: 4,
            batch_trials: 5,
            collect_trials: false,
        };
        let (streamed, _, stats) = stream_colocation_study(&study, cfg);
        assert_eq!(streamed, serial);
        assert_eq!(stats.scratch.trials, 21);
    }
}
