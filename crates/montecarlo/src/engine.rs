//! The streaming Monte Carlo study engine.
//!
//! Work is split into fixed-size trial batches (boundaries depend only on
//! the batch size — never on the thread count). Worker threads pull batch
//! indices from an atomic counter, run each batch's trials through their
//! own [`TrialScratch`] arena, and send the batch's summary accumulator
//! down a channel. The caller's thread reorders arrivals by batch index
//! and merges them strictly in order, so the merged summary is
//! bit-identical to the serial
//! [`DemandStudySummary::from_trials`] fold at any thread count.
//!
//! Memory stays `O(threads)`: one scratch arena per worker (the 32 MiB
//! exact-solver table dominates), plus a reorder buffer that holds only
//! the batch accumulators that arrived ahead of order.
//!
//! # Fault containment and resume
//!
//! A batch that panics or returns an error is caught on the worker,
//! requeued on a **fresh scratch arena** (the old arena may be mid-update
//! and is retired, its counters preserved), and retried up to the
//! configured budget. Retries and requeues are counted in
//! [`EngineStats`]; a batch that exhausts its budget surfaces as
//! [`EngineError::BatchAbandoned`] — never a hang, never a silently
//! short study.
//!
//! Because every trial is a pure function of `(study config, trial
//! index)` and merges happen in strict batch order, the merged prefix is
//! a complete description of progress. [`StudyOptions::checkpoint`]
//! snapshots it every K merges; resuming re-runs nothing before the
//! frontier and is bit-identical to an uninterrupted run.

use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;

use fairco2_shapley::parallel::panic_message;
use serde::{Deserialize, Serialize};

use crate::checkpoint::{
    colocation_fingerprint, demand_fingerprint, CheckpointError, CheckpointSpec,
    ColocationSnapshot, DemandSnapshot, PendingColocationBatch, PendingDemandBatch, WriteFault,
};
use crate::colocations::{ColocationStudy, ColocationTrial};
use crate::faults::FaultPlan;
use crate::schedules::{DemandStudy, DemandTrial};
use crate::scratch::{EngineScratch, ScratchStats, TrialScratch};
use crate::streaming::{ColocationStudySummary, DemandStudySummary, DEFAULT_BATCH_TRIALS};

/// Engine knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads (0 clamps to 1).
    pub threads: usize,
    /// Trials per batch. Determinism contract: the same batch size always
    /// produces the same summary bits, at any thread count.
    pub batch_trials: usize,
    /// Also return every per-trial record (the `--dump-trials` path).
    /// Costs `O(trials)` memory; summaries are unaffected.
    pub collect_trials: bool,
}

impl EngineConfig {
    /// The default configuration at a given thread count.
    pub fn new(threads: usize) -> Self {
        Self {
            threads,
            batch_trials: DEFAULT_BATCH_TRIALS,
            collect_trials: false,
        }
    }
}

/// What a study run did, for perf reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Trials merged into the summary (includes checkpointed prefix
    /// trials on resumed runs).
    pub trials: u64,
    /// Batches in the study.
    pub batches: u64,
    /// Worker threads used.
    pub threads: u64,
    /// Aggregated scratch-reuse counters across workers. On resumed
    /// runs, counters from the interrupted run's workers are not
    /// recoverable; this covers completed runs only.
    pub scratch: ScratchStats,
    /// Deepest the reorder buffer got (batch accumulators held while
    /// waiting for an earlier batch).
    pub max_reorder_depth: u64,
    /// Failed batch attempts that were re-executed after a panic or
    /// error (fault containment).
    pub retries: u64,
    /// Distinct batches that failed at least once and were requeued on a
    /// fresh scratch arena.
    pub requeued_batches: u64,
}

/// A batch attempt's typed failure (the non-panic fault path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchFailure {
    message: String,
}

impl BatchFailure {
    /// A failure carrying `message`.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// The failure message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

/// Why a study run could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A batch kept failing after its retry budget was spent. The study
    /// is incomplete; no partial summary is returned.
    BatchAbandoned {
        /// The failing batch index.
        batch: usize,
        /// Attempts made (retry budget + 1).
        attempts: u32,
        /// Message of the final failure (panic text or batch error).
        last_error: String,
    },
    /// Writing or restoring a checkpoint failed.
    Checkpoint(CheckpointError),
    /// A [`FaultPlan::kill_after_writes`] failpoint stopped the run —
    /// the test harness's stand-in for SIGKILL.
    Killed {
        /// Checkpoint writes that had landed when the run stopped.
        writes: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BatchAbandoned {
                batch,
                attempts,
                last_error,
            } => write!(
                f,
                "batch {batch} abandoned after {attempts} attempts: {last_error}"
            ),
            Self::Checkpoint(e) => write!(f, "{e}"),
            Self::Killed { writes } => {
                write!(
                    f,
                    "run killed by fault plan after {writes} checkpoint writes"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<CheckpointError> for EngineError {
    fn from(e: CheckpointError) -> Self {
        Self::Checkpoint(e)
    }
}

/// Where to pick a study back up: the merged-prefix frontier plus any
/// batches that had already finished ahead of it (the reorder buffer).
///
/// Invariant: every pending batch index is at least `frontier` (a
/// checkpoint cut mid-drain can park the frontier batch itself here;
/// anything below it has already been merged).
#[derive(Debug, Clone)]
pub struct ResumeState<A> {
    /// Batches `0..frontier` are merged; execution restarts here.
    pub frontier: usize,
    /// Completed `(batch, accumulator)` pairs beyond the frontier; they
    /// are merged in order without re-execution.
    pub pending: Vec<(usize, A)>,
}

/// What the in-order merge callback can observe at each merge point —
/// enough to cut a complete checkpoint.
pub struct MergeCtx<'a, A> {
    /// The batch being merged; after this call the frontier is
    /// `batch + 1`.
    pub batch: usize,
    /// Completed batches still waiting in the reorder buffer (all
    /// indices are `> batch`).
    pub pending: &'a BTreeMap<usize, A>,
    /// Failed attempts re-executed so far (point-in-time).
    pub retries: u64,
    /// Distinct batches requeued so far (point-in-time).
    pub requeued_batches: u64,
}

/// Runs `trials` trials through per-worker scratch arenas, streaming
/// batch accumulators to `merge` strictly in batch-index order, with
/// fault containment and frontier resume.
///
/// `make_scratch` is called once per worker plus once per requeue;
/// `run_batch` folds one batch of trial indices through the worker's
/// scratch and may fail (panic or [`BatchFailure`]) — it receives the
/// 0-based attempt number so deterministic failpoints can key off it.
/// `merge` receives each accumulator exactly once, in ascending batch
/// order, on the calling thread; returning an error stops the run.
///
/// With `resume`, batches before the frontier are skipped entirely and
/// preloaded pending batches are merged without re-execution; the merged
/// stream is bit-identical to an uninterrupted run because batch
/// boundaries and trial seeds depend only on the study config.
///
/// # Errors
///
/// [`EngineError::BatchAbandoned`] when a batch fails more than
/// `retry_budget` times; whatever error `merge` returns, verbatim.
///
/// # Panics
///
/// Panics if a resume state is inconsistent with the batch count (a
/// checkpoint for a different study passed validation — a caller bug).
#[allow(clippy::too_many_arguments)]
pub fn stream_batches_resumable<A, C, S, F, M>(
    trials: usize,
    threads: usize,
    batch_trials: usize,
    retry_budget: u32,
    resume: Option<ResumeState<A>>,
    make_scratch: S,
    run_batch: F,
    mut merge: M,
) -> Result<EngineStats, EngineError>
where
    A: Send,
    C: EngineScratch,
    S: Fn() -> C + Sync,
    F: Fn(Range<usize>, &mut C, u32) -> Result<A, BatchFailure> + Sync,
    M: FnMut(MergeCtx<'_, A>, A) -> Result<(), EngineError>,
{
    let threads = threads.max(1);
    let batch_trials = batch_trials.max(1);
    let n_batches = trials.div_ceil(batch_trials);
    let resume = resume.unwrap_or(ResumeState {
        frontier: 0,
        pending: Vec::new(),
    });
    let frontier = resume.frontier;
    assert!(frontier <= n_batches, "resume frontier beyond the study");
    // Indices the workers must not re-execute (already completed, parked
    // in the reorder buffer at checkpoint time).
    let mut done: Vec<usize> = resume.pending.iter().map(|(b, _)| *b).collect();
    done.sort_unstable();
    for &b in &done {
        assert!(
            b >= frontier && b < n_batches,
            "resume pending batch {b} outside [{frontier}, {n_batches})"
        );
    }

    let next = AtomicUsize::new(frontier);
    let abort = AtomicBool::new(false);
    let retries = AtomicU64::new(0);
    let requeued = AtomicU64::new(0);
    let executed_trials = AtomicU64::new(0);
    let executed_batches = AtomicU64::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<A, EngineError>)>();

    let (scratch, max_reorder_depth, error) = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                let tx = tx.clone();
                let next = &next;
                let abort = &abort;
                let retries = &retries;
                let requeued = &requeued;
                let executed_trials = &executed_trials;
                let executed_batches = &executed_batches;
                let done = &done;
                let make_scratch = &make_scratch;
                let run_batch = &run_batch;
                scope.spawn(move || {
                    let mut scratch = make_scratch();
                    let mut retired = ScratchStats::default();
                    'batches: while !abort.load(Ordering::Relaxed) {
                        let b = next.fetch_add(1, Ordering::Relaxed);
                        if b >= n_batches {
                            break;
                        }
                        if done.binary_search(&b).is_ok() {
                            continue; // completed before the interruption
                        }
                        let start = b * batch_trials;
                        let end = (start + batch_trials).min(trials);
                        let mut attempt = 0u32;
                        let outcome = loop {
                            let result =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    run_batch(start..end, &mut scratch, attempt)
                                }));
                            let failure = match result {
                                Ok(Ok(acc)) => break Ok(acc),
                                Ok(Err(f)) => f,
                                Err(payload) => BatchFailure::new(panic_message(payload.as_ref())),
                            };
                            // The arena may be mid-update from the failed
                            // attempt; retire it (keeping its counters)
                            // and requeue the batch on a fresh one.
                            retired.merge(&scratch.stats());
                            scratch = make_scratch();
                            if attempt == 0 {
                                requeued.fetch_add(1, Ordering::Relaxed);
                            }
                            if attempt >= retry_budget {
                                break Err(EngineError::BatchAbandoned {
                                    batch: b,
                                    attempts: attempt + 1,
                                    last_error: failure.message,
                                });
                            }
                            retries.fetch_add(1, Ordering::Relaxed);
                            attempt += 1;
                            if abort.load(Ordering::Relaxed) {
                                break 'batches;
                            }
                        };
                        match outcome {
                            Ok(acc) => {
                                executed_trials.fetch_add((end - start) as u64, Ordering::Relaxed);
                                executed_batches.fetch_add(1, Ordering::Relaxed);
                                if tx.send((b, Ok(acc))).is_err() {
                                    break;
                                }
                            }
                            Err(e) => {
                                abort.store(true, Ordering::Relaxed);
                                let _ = tx.send((b, Err(e)));
                                break;
                            }
                        }
                    }
                    retired.merge(&scratch.stats());
                    retired
                })
            })
            .collect();
        drop(tx);

        // Reorder arrivals so merges happen strictly in batch order —
        // this is what makes the summary thread-count invariant. Batches
        // restored from a checkpoint's reorder buffer start out parked
        // here and are consumed by the same in-order drain.
        let mut pending: BTreeMap<usize, A> = resume.pending.into_iter().collect();
        let mut next_merge = frontier;
        let mut max_depth = pending.len();
        let mut error: Option<EngineError> = None;
        // A checkpoint cut mid-drain can park the frontier batch itself
        // in the reorder buffer; workers never re-send it, so anything
        // already eligible must merge before waiting on arrivals.
        while let Some(acc) = pending.remove(&next_merge) {
            let ctx = MergeCtx {
                batch: next_merge,
                pending: &pending,
                retries: retries.load(Ordering::Relaxed),
                requeued_batches: requeued.load(Ordering::Relaxed),
            };
            if let Err(e) = merge(ctx, acc) {
                error = Some(e);
                abort.store(true, Ordering::Relaxed);
                break;
            }
            next_merge += 1;
        }
        for (idx, outcome) in rx {
            match outcome {
                Err(e) => {
                    error = Some(match error.take() {
                        // Deterministic report when several batches fail
                        // around the abort: the lowest batch index wins.
                        Some(cur) => prefer_error(cur, e),
                        None => e,
                    });
                    abort.store(true, Ordering::Relaxed);
                }
                Ok(_) if error.is_some() => {}
                Ok(acc) => {
                    pending.insert(idx, acc);
                    max_depth = max_depth.max(pending.len());
                    while let Some(acc) = pending.remove(&next_merge) {
                        let ctx = MergeCtx {
                            batch: next_merge,
                            pending: &pending,
                            retries: retries.load(Ordering::Relaxed),
                            requeued_batches: requeued.load(Ordering::Relaxed),
                        };
                        if let Err(e) = merge(ctx, acc) {
                            error = Some(e);
                            abort.store(true, Ordering::Relaxed);
                            break;
                        }
                        next_merge += 1;
                    }
                }
            }
        }

        let mut total = ScratchStats::default();
        for w in workers {
            total.merge(&w.join().expect("study worker panicked"));
        }
        if error.is_none() {
            assert!(
                pending.is_empty() && next_merge == n_batches,
                "batch stream ended with unmerged batches"
            );
        }
        (total, max_depth, error)
    });

    if let Some(e) = error {
        return Err(e);
    }
    Ok(EngineStats {
        trials: executed_trials.load(Ordering::Relaxed),
        batches: executed_batches.load(Ordering::Relaxed),
        threads: threads as u64,
        scratch,
        max_reorder_depth: max_reorder_depth as u64,
        retries: retries.load(Ordering::Relaxed),
        requeued_batches: requeued.load(Ordering::Relaxed),
    })
}

fn prefer_error(cur: EngineError, new: EngineError) -> EngineError {
    match (&cur, &new) {
        (
            EngineError::BatchAbandoned { batch: a, .. },
            EngineError::BatchAbandoned { batch: b, .. },
        ) if b < a => new,
        _ => cur,
    }
}

/// [`stream_batches_resumable`] with the pre-fault-tolerance contract:
/// no retries, no resume, and worker failures surface as panics.
///
/// # Panics
///
/// Propagates panics from worker threads (message contains
/// `"study worker panicked"`).
pub fn stream_batches<A, C, S, F, M>(
    trials: usize,
    threads: usize,
    batch_trials: usize,
    make_scratch: S,
    run_batch: F,
    mut merge: M,
) -> EngineStats
where
    A: Send,
    C: EngineScratch,
    S: Fn() -> C + Sync,
    F: Fn(Range<usize>, &mut C) -> A + Sync,
    M: FnMut(usize, A),
{
    let result = stream_batches_resumable(
        trials,
        threads,
        batch_trials,
        0,
        None,
        make_scratch,
        |range, scratch, _attempt| Ok(run_batch(range, scratch)),
        |ctx, acc| {
            merge(ctx.batch, acc);
            Ok(())
        },
    );
    match result {
        Ok(stats) => stats,
        Err(e) => panic!("study worker panicked: {e}"),
    }
}

/// Fault-tolerance and checkpointing knobs for a study run.
#[derive(Debug, Clone, Default)]
pub struct StudyOptions {
    /// Snapshot the merged prefix to this path every K merged batches.
    pub checkpoint: Option<CheckpointSpec>,
    /// Restore from [`Self::checkpoint`]'s path before running (a
    /// missing file starts fresh; an invalid one is an error).
    pub resume: bool,
    /// Re-run a failing batch up to this many extra times on a fresh
    /// scratch arena before abandoning the study.
    pub retry_budget: u32,
    /// Deterministic failpoints (tests only; default injects nothing).
    pub faults: FaultPlan,
}

impl StudyOptions {
    /// Options with a retry budget and no checkpointing.
    pub fn retrying(retry_budget: u32) -> Self {
        Self {
            retry_budget,
            ..Self::default()
        }
    }
}

type DemandAcc = (DemandStudySummary, Option<Vec<DemandTrial>>);
type ColocationAcc = (ColocationStudySummary, Option<Vec<ColocationTrial>>);

/// Streams the demand study with fault containment, checkpointing, and
/// resume; `on_progress(trials_so_far, &summary)` fires after every
/// in-order merge.
///
/// The summary is bit-identical to
/// [`DemandStudySummary::from_trials`] over the serially collected
/// trials at the same batch size — at any thread count, across any
/// checkpoint/resume boundary, and under any fault plan whose failures
/// stay within the retry budget. On resumed runs the per-trial dump
/// (when [`EngineConfig::collect_trials`] is set) contains only trials
/// executed after the restore point.
///
/// # Errors
///
/// [`EngineError::Checkpoint`] for invalid checkpoints or failed writes,
/// [`EngineError::BatchAbandoned`] when faults exceed the retry budget,
/// and [`EngineError::Killed`] from a kill failpoint.
pub fn stream_demand_study_resumable(
    study: &DemandStudy,
    cfg: EngineConfig,
    opts: &StudyOptions,
    on_progress: impl FnMut(u64, &DemandStudySummary),
) -> Result<(DemandStudySummary, Option<Vec<DemandTrial>>, EngineStats), EngineError> {
    demand_study_impl(study, cfg, opts, on_progress, None)
}

/// [`stream_demand_study_resumable`] with a **streaming per-trial sink**:
/// `on_trial` observes every trial exactly once, in ascending trial
/// order, on the merge thread — at any thread count the observed stream
/// is identical, because batches are merged strictly in batch-index order
/// and trials are generated in index order within each batch. Memory
/// stays `O(threads · batch)`: trials are dropped after the sink sees
/// them instead of being collected (this is what backs `--dump-trials`
/// JSONL harvests of full 10,000-trial studies).
///
/// On resumed runs the sink observes only trials executed after the
/// restore point, mirroring the collect path's contract.
///
/// # Errors
///
/// Same contract as [`stream_demand_study_resumable`].
pub fn stream_demand_study_with_sink(
    study: &DemandStudy,
    cfg: EngineConfig,
    opts: &StudyOptions,
    on_progress: impl FnMut(u64, &DemandStudySummary),
    mut on_trial: impl FnMut(&DemandTrial),
) -> Result<(DemandStudySummary, EngineStats), EngineError> {
    let (summary, _, stats) =
        demand_study_impl(study, cfg, opts, on_progress, Some(&mut on_trial))?;
    Ok((summary, stats))
}

fn demand_study_impl(
    study: &DemandStudy,
    cfg: EngineConfig,
    opts: &StudyOptions,
    mut on_progress: impl FnMut(u64, &DemandStudySummary),
    mut sink: Option<&mut dyn FnMut(&DemandTrial)>,
) -> Result<(DemandStudySummary, Option<Vec<DemandTrial>>, EngineStats), EngineError> {
    let keep_trials = cfg.collect_trials || sink.is_some();
    let batch_trials = cfg.batch_trials.max(1);
    let n_batches = study.trials.div_ceil(batch_trials);
    let fingerprint = demand_fingerprint(study, batch_trials);
    let mut master = DemandStudySummary::empty(study);
    let mut dump: Option<Vec<DemandTrial>> = cfg.collect_trials.then(Vec::new);
    let mut carried = EngineStats::default();
    let mut resume_state: Option<ResumeState<DemandAcc>> = None;
    if opts.resume {
        if let Some(spec) = &opts.checkpoint {
            if spec.path.exists() {
                let snap = DemandSnapshot::load(&spec.path, &fingerprint)?;
                master = snap.summary;
                carried = snap.stats;
                resume_state = Some(ResumeState {
                    frontier: snap.frontier as usize,
                    pending: snap
                        .pending
                        .into_iter()
                        .map(|p| (p.batch as usize, (p.summary, None)))
                        .collect(),
                });
            }
        }
    }

    let faults = &opts.faults;
    let mut since_write = 0usize;
    let mut write_attempts = 0usize;
    let mut writes = 0usize;
    let stats = stream_batches_resumable(
        study.trials,
        cfg.threads,
        batch_trials,
        opts.retry_budget,
        resume_state,
        || TrialScratch::for_demand(study),
        |range, scratch, attempt| {
            let batch = range.start / batch_trials;
            if let Some(kind) = faults.batch_fault(batch, attempt) {
                FaultPlan::fire(kind, &format!("batch {batch}"))?;
            }
            let mut acc = DemandStudySummary::empty(study);
            let mut kept = keep_trials.then(|| Vec::with_capacity(range.len()));
            for t in range {
                if let Some(kind) = faults.trial_fault(t, attempt) {
                    FaultPlan::fire(kind, &format!("trial {t}"))?;
                }
                let trial = study.run_trial_with_scratch(t, scratch);
                acc.record(&trial);
                if let Some(k) = &mut kept {
                    k.push(trial);
                }
            }
            Ok((acc, kept))
        },
        |ctx, (acc, kept): DemandAcc| {
            master.merge(&acc);
            if let Some(k) = kept {
                if let Some(observe) = sink.as_deref_mut() {
                    for trial in &k {
                        observe(trial);
                    }
                }
                if let Some(d) = &mut dump {
                    d.extend(k);
                }
            }
            on_progress(master.trials, &master);
            if let Some(spec) = &opts.checkpoint {
                since_write += 1;
                if since_write >= spec.every_batches.max(1) {
                    since_write = 0;
                    let snap = DemandSnapshot {
                        fingerprint: fingerprint.clone(),
                        frontier: ctx.batch as u64 + 1,
                        summary: master.clone(),
                        pending: ctx
                            .pending
                            .iter()
                            .map(|(b, (s, _))| PendingDemandBatch {
                                batch: *b as u64,
                                summary: s.clone(),
                            })
                            .collect(),
                        stats: checkpoint_stats(&carried, &ctx, master.trials, cfg.threads),
                    };
                    let fault = if faults.fail_checkpoint_write(write_attempts) {
                        WriteFault::TornTmp
                    } else {
                        WriteFault::None
                    };
                    write_attempts += 1;
                    snap.save(&spec.path, fault)?;
                    writes += 1;
                    if faults.should_kill(writes) {
                        return Err(EngineError::Killed { writes });
                    }
                }
            }
            Ok(())
        },
    )?;
    let stats = total_stats(stats, &carried, n_batches, master.trials);
    Ok((master, dump, stats))
}

/// Streams the colocation study with fault containment, checkpointing,
/// and resume; the colocation counterpart of
/// [`stream_demand_study_resumable`].
///
/// # Errors
///
/// Same contract as [`stream_demand_study_resumable`].
pub fn stream_colocation_study_resumable(
    study: &ColocationStudy,
    cfg: EngineConfig,
    opts: &StudyOptions,
    on_progress: impl FnMut(u64, &ColocationStudySummary),
) -> Result<
    (
        ColocationStudySummary,
        Option<Vec<ColocationTrial>>,
        EngineStats,
    ),
    EngineError,
> {
    colocation_study_impl(study, cfg, opts, on_progress, None)
}

/// [`stream_colocation_study_resumable`] with a streaming per-trial sink;
/// the colocation counterpart of [`stream_demand_study_with_sink`], with
/// the same in-trial-order, thread-invariant observation contract.
///
/// # Errors
///
/// Same contract as [`stream_colocation_study_resumable`].
pub fn stream_colocation_study_with_sink(
    study: &ColocationStudy,
    cfg: EngineConfig,
    opts: &StudyOptions,
    on_progress: impl FnMut(u64, &ColocationStudySummary),
    mut on_trial: impl FnMut(&ColocationTrial),
) -> Result<(ColocationStudySummary, EngineStats), EngineError> {
    let (summary, _, stats) =
        colocation_study_impl(study, cfg, opts, on_progress, Some(&mut on_trial))?;
    Ok((summary, stats))
}

fn colocation_study_impl(
    study: &ColocationStudy,
    cfg: EngineConfig,
    opts: &StudyOptions,
    mut on_progress: impl FnMut(u64, &ColocationStudySummary),
    mut sink: Option<&mut dyn FnMut(&ColocationTrial)>,
) -> Result<
    (
        ColocationStudySummary,
        Option<Vec<ColocationTrial>>,
        EngineStats,
    ),
    EngineError,
> {
    let keep_trials = cfg.collect_trials || sink.is_some();
    let batch_trials = cfg.batch_trials.max(1);
    let n_batches = study.trials.div_ceil(batch_trials);
    let fingerprint = colocation_fingerprint(study, batch_trials);
    let mut master = ColocationStudySummary::empty(study);
    let mut dump: Option<Vec<ColocationTrial>> = cfg.collect_trials.then(Vec::new);
    let mut carried = EngineStats::default();
    let mut resume_state: Option<ResumeState<ColocationAcc>> = None;
    if opts.resume {
        if let Some(spec) = &opts.checkpoint {
            if spec.path.exists() {
                let snap = ColocationSnapshot::load(&spec.path, &fingerprint)?;
                master = snap.summary;
                carried = snap.stats;
                resume_state = Some(ResumeState {
                    frontier: snap.frontier as usize,
                    pending: snap
                        .pending
                        .into_iter()
                        .map(|p| (p.batch as usize, (p.summary, None)))
                        .collect(),
                });
            }
        }
    }

    let faults = &opts.faults;
    let mut since_write = 0usize;
    let mut write_attempts = 0usize;
    let mut writes = 0usize;
    let stats = stream_batches_resumable(
        study.trials,
        cfg.threads,
        batch_trials,
        opts.retry_budget,
        resume_state,
        TrialScratch::new,
        |range, scratch, attempt| {
            let batch = range.start / batch_trials;
            if let Some(kind) = faults.batch_fault(batch, attempt) {
                FaultPlan::fire(kind, &format!("batch {batch}"))?;
            }
            let mut acc = ColocationStudySummary::empty(study);
            let mut kept = keep_trials.then(|| Vec::with_capacity(range.len()));
            for t in range {
                if let Some(kind) = faults.trial_fault(t, attempt) {
                    FaultPlan::fire(kind, &format!("trial {t}"))?;
                }
                let trial = study.run_trial_with_scratch(t, scratch);
                acc.record(&trial);
                if let Some(k) = &mut kept {
                    k.push(trial);
                }
            }
            Ok((acc, kept))
        },
        |ctx, (acc, kept): ColocationAcc| {
            master.merge(&acc);
            if let Some(k) = kept {
                if let Some(observe) = sink.as_deref_mut() {
                    for trial in &k {
                        observe(trial);
                    }
                }
                if let Some(d) = &mut dump {
                    d.extend(k);
                }
            }
            on_progress(master.trials, &master);
            if let Some(spec) = &opts.checkpoint {
                since_write += 1;
                if since_write >= spec.every_batches.max(1) {
                    since_write = 0;
                    let snap = ColocationSnapshot {
                        fingerprint: fingerprint.clone(),
                        frontier: ctx.batch as u64 + 1,
                        summary: master.clone(),
                        pending: ctx
                            .pending
                            .iter()
                            .map(|(b, (s, _))| PendingColocationBatch {
                                batch: *b as u64,
                                summary: s.clone(),
                            })
                            .collect(),
                        stats: checkpoint_stats(&carried, &ctx, master.trials, cfg.threads),
                    };
                    let fault = if faults.fail_checkpoint_write(write_attempts) {
                        WriteFault::TornTmp
                    } else {
                        WriteFault::None
                    };
                    write_attempts += 1;
                    snap.save(&spec.path, fault)?;
                    writes += 1;
                    if faults.should_kill(writes) {
                        return Err(EngineError::Killed { writes });
                    }
                }
            }
            Ok(())
        },
    )?;
    let stats = total_stats(stats, &carried, n_batches, master.trials);
    Ok((master, dump, stats))
}

/// The stats to embed in a checkpoint cut at `ctx`: cumulative through
/// the frontier, with scratch counters carried from completed runs only
/// (live worker counters are not observable mid-run).
fn checkpoint_stats<A>(
    carried: &EngineStats,
    ctx: &MergeCtx<'_, A>,
    merged_trials: u64,
    threads: usize,
) -> EngineStats {
    EngineStats {
        trials: merged_trials,
        batches: ctx.batch as u64 + 1,
        threads: threads.max(1) as u64,
        scratch: carried.scratch,
        max_reorder_depth: carried.max_reorder_depth,
        retries: carried.retries + ctx.retries,
        requeued_batches: carried.requeued_batches + ctx.requeued_batches,
    }
}

/// Folds a run's stats with the checkpointed stats it resumed from into
/// whole-study totals. `merged_trials` (the master summary's count) is
/// authoritative for `trials`: it covers executed, carried, *and*
/// reorder-buffer batches merged straight from the checkpoint.
fn total_stats(
    mut stats: EngineStats,
    carried: &EngineStats,
    n_batches: usize,
    merged_trials: u64,
) -> EngineStats {
    stats.trials = merged_trials;
    stats.batches = n_batches as u64;
    stats.retries += carried.retries;
    stats.requeued_batches += carried.requeued_batches;
    stats.scratch.merge(&carried.scratch);
    stats.max_reorder_depth = stats.max_reorder_depth.max(carried.max_reorder_depth);
    stats
}

/// Streams the demand study: per-worker arenas, in-order batch merges,
/// `on_progress(trials_so_far, &summary)` after every merge (for
/// convergence checkpoints and progress display).
///
/// Returns the summary, the per-trial dump when
/// [`EngineConfig::collect_trials`] is set, and the engine stats. The
/// summary is bit-identical to
/// [`DemandStudySummary::from_trials`] over the serially collected trials
/// at the same batch size, at any thread count.
///
/// # Panics
///
/// Propagates panics from worker threads (no retry budget on this
/// legacy path; see [`stream_demand_study_resumable`]).
pub fn stream_demand_study_observed(
    study: &DemandStudy,
    cfg: EngineConfig,
    on_progress: impl FnMut(u64, &DemandStudySummary),
) -> (DemandStudySummary, Option<Vec<DemandTrial>>, EngineStats) {
    match stream_demand_study_resumable(study, cfg, &StudyOptions::default(), on_progress) {
        Ok(out) => out,
        Err(e) => panic!("study worker panicked: {e}"),
    }
}

/// [`stream_demand_study_observed`] without a progress callback.
pub fn stream_demand_study(
    study: &DemandStudy,
    cfg: EngineConfig,
) -> (DemandStudySummary, Option<Vec<DemandTrial>>, EngineStats) {
    stream_demand_study_observed(study, cfg, |_, _| {})
}

/// Streams the colocation study; the colocation counterpart of
/// [`stream_demand_study_observed`].
///
/// # Panics
///
/// Propagates panics from worker threads (no retry budget on this
/// legacy path; see [`stream_colocation_study_resumable`]).
pub fn stream_colocation_study_observed(
    study: &ColocationStudy,
    cfg: EngineConfig,
    on_progress: impl FnMut(u64, &ColocationStudySummary),
) -> (
    ColocationStudySummary,
    Option<Vec<ColocationTrial>>,
    EngineStats,
) {
    match stream_colocation_study_resumable(study, cfg, &StudyOptions::default(), on_progress) {
        Ok(out) => out,
        Err(e) => panic!("study worker panicked: {e}"),
    }
}

/// [`stream_colocation_study_observed`] without a progress callback.
pub fn stream_colocation_study(
    study: &ColocationStudy,
    cfg: EngineConfig,
) -> (
    ColocationStudySummary,
    Option<Vec<ColocationTrial>>,
    EngineStats,
) {
    stream_colocation_study_observed(study, cfg, |_, _| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{BatchFault, FaultKind};

    fn small_demand() -> DemandStudy {
        DemandStudy {
            trials: 37,
            max_workloads: 8,
            ..DemandStudy::default()
        }
    }

    #[test]
    fn demand_stream_matches_serial_fold_bitwise() {
        let study = small_demand();
        let trials: Vec<DemandTrial> = (0..study.trials).map(|t| study.run_trial(t)).collect();
        let serial = DemandStudySummary::from_trials(&study, &trials, 8);
        let cfg = EngineConfig {
            threads: 3,
            batch_trials: 8,
            collect_trials: true,
        };
        let (streamed, dump, stats) = stream_demand_study(&study, cfg);
        assert_eq!(streamed, serial);
        assert_eq!(stats.trials, 37);
        assert_eq!(stats.batches, 5);
        assert_eq!(stats.scratch.trials, 37);
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.requeued_batches, 0);
        // The dump is the full trial stream, in trial order.
        let dump = dump.unwrap();
        assert_eq!(dump.len(), trials.len());
        for (a, b) in dump.iter().zip(&trials) {
            assert_eq!(a.trial, b.trial);
            assert_eq!(a.rup.average_pct.to_bits(), b.rup.average_pct.to_bits());
        }
    }

    #[test]
    fn progress_fires_after_every_in_order_merge() {
        let study = small_demand();
        let mut seen = Vec::new();
        let cfg = EngineConfig {
            threads: 2,
            batch_trials: 10,
            collect_trials: false,
        };
        let (summary, dump, _) =
            stream_demand_study_observed(&study, cfg, |n, s| seen.push((n, s.trials)));
        assert!(dump.is_none());
        assert_eq!(seen, vec![(10, 10), (20, 20), (30, 30), (37, 37)]);
        assert_eq!(summary.trials, 37);
    }

    #[test]
    fn scratch_arena_is_reused_across_a_worker_run() {
        let study = small_demand();
        let cfg = EngineConfig {
            threads: 1,
            batch_trials: 64,
            collect_trials: false,
        };
        let (_, _, stats) = stream_demand_study(&study, cfg);
        // One pre-grown table, every solve served from it.
        assert_eq!(stats.scratch.table_grows, 1);
        assert_eq!(stats.scratch.table_reuses, 37);
    }

    #[test]
    fn zero_trials_produce_an_empty_summary() {
        let study = DemandStudy {
            trials: 0,
            ..small_demand()
        };
        let (summary, _, stats) = stream_demand_study(&study, EngineConfig::new(4));
        assert_eq!(summary.trials, 0);
        assert_eq!(stats.batches, 0);
    }

    #[test]
    fn colocation_stream_matches_serial_fold_bitwise() {
        let study = ColocationStudy {
            trials: 21,
            max_workloads: 16,
            ..ColocationStudy::default()
        };
        let trials: Vec<ColocationTrial> = (0..study.trials).map(|t| study.run_trial(t)).collect();
        let serial = ColocationStudySummary::from_trials(&study, &trials, 5);
        let cfg = EngineConfig {
            threads: 4,
            batch_trials: 5,
            collect_trials: false,
        };
        let (streamed, _, stats) = stream_colocation_study(&study, cfg);
        assert_eq!(streamed, serial);
        assert_eq!(stats.scratch.trials, 21);
    }

    #[test]
    fn requeued_batches_get_a_fresh_scratch_arena() {
        let study = small_demand();
        let cfg = EngineConfig {
            threads: 1,
            batch_trials: 8,
            collect_trials: false,
        };
        let opts = StudyOptions {
            retry_budget: 1,
            faults: FaultPlan {
                batches: vec![BatchFault {
                    batch: 2,
                    kind: FaultKind::Error,
                    times: 1,
                }],
                ..FaultPlan::default()
            },
            ..StudyOptions::default()
        };
        let (summary, _, stats) =
            stream_demand_study_resumable(&study, cfg, &opts, |_, _| {}).expect("within budget");
        assert_eq!(summary.trials, 37);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.requeued_batches, 1);
        // The failed attempt's arena was retired and a fresh one grown:
        // two table grows on a single worker instead of one.
        assert_eq!(stats.scratch.table_grows, 2);
    }
}
