//! Monte Carlo evaluation harness (paper Section 6.3).
//!
//! Two studies, mirroring the paper's:
//!
//! * [`schedules`] — 10,000 random workload schedules with dynamic demand
//!   (≤ 22 workloads, 4–9 time slices, 1–5 concurrent workloads,
//!   allocations from {8, 16, 32, 48, 64, 80, 96} cores, durations of 1–3
//!   slices). Embodied carbon is attributed by the RUP-Baseline, the
//!   demand-proportional baseline, and Fair-CO₂'s Temporal Shapley, each
//!   compared against the exact workload-level Shapley ground truth
//!   (Figure 7).
//! * [`colocations`] — 10,000 random colocation scenarios (4–100
//!   workloads drawn from the 15-workload suite, random pairing, grid CI
//!   swept 0–1000 gCO₂e/kWh, historical sampling rate 1–15 of 15).
//!   Attributions by the RUP-Baseline and Fair-CO₂'s interference-aware
//!   method are compared against the exact matching-game Shapley
//!   (Figures 8 and 9).
//!
//! [`runner`] executes trials across threads deterministically: trial `k`
//! always uses seed `base_seed + k`, so results are reproducible at any
//! parallelism.
//!
//! Full-scale runs go through the streaming study engine instead of
//! collecting trials:
//!
//! * [`scratch`] — per-worker [`TrialScratch`] arenas (exact-solver
//!   coalition table, share vectors, generation buffers), so a
//!   10,000-trial run performs `O(threads)` large allocations rather than
//!   `O(trials)`;
//! * [`streaming`] — constant-memory summary accumulators (Welford
//!   moments, worst-case maxima, deviation histograms for the CDF
//!   figures) merged batch-by-batch in a fixed order;
//! * [`engine`] — drives both: batches fan out across workers, are merged
//!   in batch order, and the resulting summaries are bit-identical to the
//!   collect-then-summarize path at any thread count. Studies can also
//!   attach a streaming per-trial sink (the `--dump-trials` JSONL path)
//!   that observes every trial in trial order without `O(trials)` memory;
//! * [`harvest`] — the surrogate training-set pipeline: replays each
//!   trial's schedule into `(workload features, exact Shapley share)`
//!   rows and streams them to JSONL, byte-identical at any thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod colocations;
pub mod engine;
pub mod faults;
pub mod harvest;
pub mod runner;
pub mod schedules;
pub mod scratch;
pub mod streaming;

pub use checkpoint::{
    read_envelope, write_durable_atomic, write_envelope_atomic, CheckpointError, CheckpointSpec,
    ColocationSnapshot, DemandSnapshot, WriteFault, CHECKPOINT_VERSION,
};
pub use colocations::{ColocationStudy, ColocationTrial};
pub use engine::{
    stream_colocation_study, stream_colocation_study_resumable, stream_colocation_study_with_sink,
    stream_demand_study, stream_demand_study_resumable, stream_demand_study_with_sink,
    BatchFailure, EngineConfig, EngineError, EngineStats, StudyOptions,
};
pub use faults::{BatchFault, FaultKind, FaultPlan, TrialFault};
pub use harvest::{
    fit_surrogate, harvest_demand_study_jsonl, harvest_demand_study_with, harvest_demand_trial,
    read_harvest_jsonl, HarvestRecord, HarvestScratch, HarvestStats,
};
pub use schedules::{DemandStudy, DemandTrial};
pub use scratch::{EngineScratch, NoScratch, ScratchStats, TrialScratch};
pub use streaming::{ColocationStudySummary, DemandStudySummary, Histogram, StatStream, Welford};
