//! Per-worker trial scratch arenas.
//!
//! A demand trial at the paper's scale solves an exact Shapley game of up
//! to 22 players — a 2²²-entry (32 MiB) coalition table. Allocating (and
//! page-faulting) that table per trial dominates a 10,000-trial study, so
//! the streaming engine gives every worker thread one [`TrialScratch`]
//! that owns the table plus every other per-trial buffer: share vectors,
//! schedule-generation buffers, and the colocation sampling pool. A study
//! then performs `O(threads)` large allocations instead of `O(trials)`.

use fairco2_shapley::exact::{ExactScratch, MAX_EXACT_PLAYERS};
use fairco2_workloads::history::InterferenceProfile;
use fairco2_workloads::WorkloadKind;
use serde::{Deserialize, Serialize};

use crate::schedules::DemandStudy;

/// Reusable per-worker buffers for Monte Carlo trials.
///
/// All fields are crate-internal: the studies'
/// [`run_trial_with_scratch`](crate::schedules::DemandStudy::run_trial_with_scratch)
/// paths thread them through generation, attribution, and summarization.
/// Results are bit-identical to the allocating
/// [`run_trial`](crate::schedules::DemandStudy::run_trial) paths.
#[derive(Debug, Default)]
pub struct TrialScratch {
    /// Exact-solver arena (coalition table + φ buffers) for the demand
    /// ground truth.
    pub(crate) exact: ExactScratch,
    /// Ground-truth share vector.
    pub(crate) truth: Vec<f64>,
    /// Method share vector (demand: reused across methods; colocation:
    /// the RUP shares).
    pub(crate) shares: Vec<f64>,
    /// Second method share vector (colocation: the Fair-CO₂ shares, which
    /// must coexist with the RUP shares for the per-workload records).
    pub(crate) fair: Vec<f64>,
    /// Per-slice concurrency targets drawn by the schedule generator.
    pub(crate) targets: Vec<usize>,
    /// Running per-slice concurrency of the schedule generator.
    pub(crate) concurrency: Vec<usize>,
    /// Workload kinds drawn by the colocation generator.
    pub(crate) kinds: Vec<WorkloadKind>,
    /// Per-draw sampling population (the scenario minus the sampling
    /// workload) for historical-profile sampling.
    pub(crate) pool: Vec<WorkloadKind>,
    /// Sampled historical profiles, one per workload instance.
    pub(crate) profiles: Vec<InterferenceProfile>,
    /// Trials run through this scratch.
    pub(crate) trials: u64,
}

impl TrialScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch pre-grown for the demand study: the exact-solver table is
    /// sized to the study's `max_workloads` cap up front, so the worker
    /// never reallocates it mid-run.
    pub fn for_demand(study: &DemandStudy) -> Self {
        let players = study.max_workloads.clamp(1, MAX_EXACT_PLAYERS);
        Self {
            exact: ExactScratch::for_players(players),
            ..Self::default()
        }
    }

    /// Reuse/allocation counters for reporting.
    pub fn stats(&self) -> ScratchStats {
        ScratchStats {
            trials: self.trials,
            table_grows: self.exact.grows(),
            table_reuses: self.exact.reuses(),
            table_bytes: self.exact.table_bytes() as u64,
        }
    }
}

/// A per-worker scratch arena the streaming engine can run batches
/// through.
///
/// The engine only needs two things from a scratch type: construction
/// (the `make_scratch` closure) and retirement counters when a worker
/// finishes or an arena is discarded after a failed batch. Implementing
/// this trait lets any study — the built-in demand/colocation studies
/// with [`TrialScratch`], or external ones like the Azure-scale
/// co-simulation in `fairco2-bench` — stream through
/// [`crate::engine::stream_batches_resumable`] with its own reusable
/// buffers.
pub trait EngineScratch {
    /// Reuse/allocation counters retired with this arena; the default is
    /// all-zero for scratch types that don't track any.
    fn stats(&self) -> ScratchStats {
        ScratchStats::default()
    }
}

impl EngineScratch for TrialScratch {
    fn stats(&self) -> ScratchStats {
        TrialScratch::stats(self)
    }
}

/// A no-op scratch for studies whose batches need no reusable arena.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoScratch;

impl EngineScratch for NoScratch {}

/// Scratch-reuse counters, aggregated across workers by the engine and
/// emitted in `results/BENCH_montecarlo.json`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScratchStats {
    /// Trials executed.
    pub trials: u64,
    /// Exact-table (re)allocations — `O(threads)` for a healthy run.
    pub table_grows: u64,
    /// Exact solves served from an already-sized table.
    pub table_reuses: u64,
    /// Coalition-table bytes held (summed across workers when merged).
    pub table_bytes: u64,
}

impl ScratchStats {
    /// Accumulates another worker's counters.
    pub fn merge(&mut self, other: &ScratchStats) {
        self.trials += other.trials;
        self.table_grows += other.table_grows;
        self.table_reuses += other.table_reuses;
        self.table_bytes += other.table_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_demand_pre_grows_the_exact_table() {
        let study = DemandStudy {
            max_workloads: 10,
            ..DemandStudy::default()
        };
        let scratch = TrialScratch::for_demand(&study);
        let stats = scratch.stats();
        assert_eq!(stats.table_grows, 1);
        assert_eq!(stats.table_reuses, 0);
        assert_eq!(stats.table_bytes, (1u64 << 10) * 8);
    }

    #[test]
    fn for_demand_clamps_to_the_enumeration_cap() {
        let study = DemandStudy {
            max_workloads: 1000,
            ..DemandStudy::default()
        };
        let scratch = TrialScratch::for_demand(&study);
        assert_eq!(scratch.stats().table_bytes, (1u64 << MAX_EXACT_PLAYERS) * 8);
    }

    #[test]
    fn stats_merge_sums_all_counters() {
        let mut a = ScratchStats {
            trials: 3,
            table_grows: 1,
            table_reuses: 2,
            table_bytes: 100,
        };
        let b = ScratchStats {
            trials: 4,
            table_grows: 1,
            table_reuses: 3,
            table_bytes: 200,
        };
        a.merge(&b);
        assert_eq!(a.trials, 7);
        assert_eq!(a.table_grows, 2);
        assert_eq!(a.table_reuses, 5);
        assert_eq!(a.table_bytes, 300);
    }
}
